//! Quickstart: compute a (Δ+1)-coloring of a random regular network with the
//! paper's pipeline and print the per-phase round breakdown.
//!
//! Run with `cargo run -p dcme-suite --example quickstart`.

use dcme_coloring::pipeline;
use dcme_graphs::{generators, verify, GraphStats};

fn main() {
    // A 1000-node communication network where every node has ~12 neighbours.
    let network = generators::random_regular(1000, 12, 42);
    let stats = GraphStats::compute(&network);
    println!(
        "network: n = {}, |E| = {}, Δ = {}, components = {}",
        stats.n, stats.m, stats.max_degree, stats.components
    );

    // The paper's deterministic pipeline: Linial (log* n rounds) -> the
    // mother algorithm with k = 1 (O(Δ) rounds) -> class elimination (O(Δ)).
    let result = pipeline::delta_plus_one(&network).expect("pipeline");
    verify::check_proper(&network, &result.coloring).expect("coloring must be proper");

    println!("\nphase breakdown:");
    for phase in &result.phases {
        println!(
            "  {:<22} {:>6} rounds   palette -> {}",
            phase.name, phase.rounds, phase.palette_after
        );
    }
    println!(
        "\ntotal: {} rounds, {} distinct colors (Δ+1 = {})",
        result.total_rounds(),
        result.coloring.distinct_colors(),
        network.max_degree() + 1
    );
}
