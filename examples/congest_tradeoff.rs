//! The paper's headline trade-off, interactively: sweep the batch size `k`
//! and watch rounds fall as the palette grows (Theorem 1.1 / Corollary 1.2).
//!
//! Run with `cargo run -p dcme-suite --example congest_tradeoff --release`.

use dcme_coloring::{trial, TrialConfig};
use dcme_congest::BandwidthReport;
use dcme_graphs::{coloring::Coloring, generators, verify};

fn main() {
    let n = 1500;
    let delta = 32;
    let network = generators::random_regular(n, delta, 7);
    let input = Coloring::from_ids(n);

    println!("O(kΔ) colors in O(Δ/k) rounds on regular(n={n}, d={delta}):\n");
    println!(
        "{:>6} {:>8} {:>14} {:>14} {:>12} {:>10}",
        "k", "rounds", "round bound", "colors used", "color bound", "congest"
    );

    let mut k = 1u64;
    loop {
        let out = trial::run(&network, &input, TrialConfig::proper(k)).expect("trial run");
        verify::check_proper(&network, out.coloring()).expect("proper");
        let congest = BandwidthReport::check(n, &out.metrics, 4);
        println!(
            "{:>6} {:>8} {:>14} {:>14} {:>12} {:>10}",
            k,
            out.metrics.rounds,
            out.params.rounds + 1,
            out.coloring().distinct_colors(),
            out.params.color_bound(),
            if congest.within_congest {
                "ok"
            } else {
                "VIOLATION"
            }
        );
        if k >= out.params.x {
            break;
        }
        k *= 2;
    }
    println!("\nk = 1 is the locally-iterative regime; k = X is Linial's one-round reduction.");
}
