//! Cluster-head election with (2, r)-ruling sets (Theorem 1.5): every sensor
//! is within r hops of an elected cluster head and no two heads are adjacent.
//!
//! Run with `cargo run -p dcme-suite --example ruling_set_clustering --release`.

use dcme_coloring::ruling;
use dcme_graphs::{generators, verify};

fn main() {
    // A sensor network: 800 nodes, heavy-tailed degree distribution.
    let network = generators::barabasi_albert(800, 4, 9);
    println!(
        "sensor network: n = {}, Δ = {}",
        network.num_nodes(),
        network.max_degree()
    );

    for r in [2usize, 3, 4] {
        let improved = ruling::ruling_set(&network, r).expect("Theorem 1.5 ruling set");
        verify::check_ruling_set(&network, &improved.in_set, r).expect("radius");
        let baseline = ruling::ruling_set_baseline(&network, r).expect("baseline ruling set");
        println!(
            "(2,{r})-ruling set: {} heads, sweep rounds {} (baseline {}), total rounds {} (baseline {})",
            improved.set_size,
            improved.rounds,
            baseline.rounds,
            improved.total_rounds(),
            baseline.total_rounds(),
        );
    }

    println!("\nsmaller r ⇒ more cluster heads but shorter control latency;");
    println!("Theorem 1.5 needs O(Δ^(2/(r+2))) + log* n rounds vs O(Δ^(2/r)) for the baseline.");
}
