//! Frequency assignment in a wireless grid: the classical motivation for
//! distributed coloring.  Radio towers on a torus grid must pick frequencies
//! so that no two neighbouring towers share one; a defective coloring with a
//! small defect is acceptable for low-power secondary channels.
//!
//! Run with `cargo run -p dcme-suite --example frequency_scheduling`.

use dcme_coloring::{corollary, pipeline};
use dcme_graphs::{generators, verify};

fn main() {
    // A 30x30 torus of radio towers (Δ = 4).
    let grid = generators::grid(30, 30, true);
    println!(
        "tower grid: {} towers, Δ = {}",
        grid.num_nodes(),
        grid.max_degree()
    );

    // Primary channels: a strict (Δ+1)-coloring — 5 frequencies suffice.
    let primary = pipeline::delta_plus_one(&grid).expect("primary assignment");
    verify::check_proper(&grid, &primary.coloring).expect("no interference allowed");
    println!(
        "primary channels: {} frequencies in {} synchronous rounds",
        primary.coloring.distinct_colors(),
        primary.total_rounds()
    );

    // Secondary channels: tolerate at most 1 interfering neighbour and get a
    // one-round assignment (Corollary 1.2(5) with d = 1).
    let ids = dcme_graphs::coloring::Coloring::from_ids(grid.num_nodes());
    let secondary = corollary::defective_one_round(&grid, &ids, 1).expect("secondary assignment");
    verify::check_defective(&grid, secondary.coloring(), 1).expect("defect bound");
    println!(
        "secondary channels: {} frequencies, defect <= 1, {} round(s)",
        secondary.coloring().distinct_colors(),
        secondary.metrics.rounds
    );

    // Per-frequency load: how many towers share each primary frequency.
    let classes = primary.coloring.color_classes();
    println!("\nprimary frequency load:");
    for (freq, towers) in classes {
        println!("  frequency {freq}: {} towers", towers.len());
    }
}
