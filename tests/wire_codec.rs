//! Wire-codec properties across every algorithm message type, plus the
//! CONGEST bandwidth cross-check.
//!
//! Three guarantees are pinned here:
//!
//! * **Round-trip identity** — random messages of every `NodeAlgorithm`
//!   message type survive encode → decode unchanged, and their encoded
//!   payload occupies **exactly** `MessageSize::bit_size()` bits, so the
//!   wire carries precisely what the simulator's accounting charges.
//! * **Malformed input safety** — truncated and corrupted frames come back
//!   as `WireError`s, never panics.
//! * **Bandwidth cross-check** — the paper algorithms' messages, pushed
//!   through the codec, never encode wider than the `max_message_bits` the
//!   simulator recorded for the run (and hence stay within the E12
//!   `BandwidthReport` bound).  A codec that silently fattened messages
//!   past the CONGEST bound fails here.

use proptest::prelude::*;

use dcme_baselines::degree_plus_one::{self, D1Message};
use dcme_baselines::locally_iterative::ColorMsg;
use dcme_baselines::luby::LubyMessage;
use dcme_baselines::ultrafast::{self, UltrafastMessage};
use dcme_coloring::list::{self, ListMessage};
use dcme_coloring::reduction::InputColor;
use dcme_coloring::trial::{self, TrialMessage};
use dcme_coloring::TrialConfig;
use dcme_congest::wire::{
    decode_payload, encode_payload, for_each_data_entry, DataFrameBuilder, FrameBuffer,
};
use dcme_congest::{BandwidthReport, ExecutionMode, MessageSize, WireMessage};
use dcme_graphs::coloring::Coloring;
use dcme_graphs::generators;

/// Encode → decode must be the identity, and the payload must be bit-exact.
fn assert_round_trip<M: WireMessage + MessageSize + PartialEq + core::fmt::Debug>(msg: &M) {
    let (bits, aux, bytes) = encode_payload(msg);
    assert_eq!(
        bits as u64,
        msg.bit_size(),
        "encoded payload width must equal the accounted bit_size for {msg:?}"
    );
    let back: M = decode_payload(bits, aux, &bytes)
        .unwrap_or_else(|e| panic!("decode of freshly encoded {msg:?} failed: {e}"));
    assert_eq!(&back, msg);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random messages of every algorithm message type round-trip.
    #[test]
    fn all_message_types_round_trip(a in 0u64..1_000_000, b in 0u64..1_000_000, raw in 0u64..u64::MAX) {
        assert_round_trip(&raw);
        assert_round_trip(&TrialMessage::Active { input_color: a });
        assert_round_trip(&TrialMessage::Adopted { color: b });
        assert_round_trip(&ListMessage::Propose { color: a, priority: b });
        assert_round_trip(&ListMessage::Finalized { color: a });
        assert_round_trip(&LubyMessage::Propose(a));
        assert_round_trip(&LubyMessage::Final(b));
        assert_round_trip(&ColorMsg(a));
        assert_round_trip(&InputColor(b));
        assert_round_trip(&dcme_coloring::elimination::CurrentColor(a));
        assert_round_trip(&UltrafastMessage::Try { color: a });
        assert_round_trip(&UltrafastMessage::Adopt { color: b });
        assert_round_trip(&UltrafastMessage::Fallback { color: a, id: b });
        assert_round_trip(&D1Message::Propose { color: a, priority: b });
        assert_round_trip(&D1Message::Finalized { color: a });
    }

    /// Truncating or corrupting a sealed data frame yields errors, never
    /// panics, at every cut point and byte position.
    #[test]
    fn truncated_and_corrupted_frames_are_errors(a in 0u64..100_000, b in 0u64..100_000) {
        let mut builder = DataFrameBuilder::new();
        builder.push(3, 0, &ListMessage::Propose { color: a, priority: b });
        builder.push(9, 1, &ListMessage::Finalized { color: b });
        let mut sealed = Vec::new();
        builder.seal(5, 0, 1, &mut sealed);
        let mut fb = FrameBuffer::new();
        fb.feed(&sealed);
        let frame = fb.next_frame().expect("well-formed").expect("complete");
        // The intact frame decodes.
        let mut n = 0;
        for_each_data_entry::<ListMessage>(&frame.payload, |_, _, _| n += 1).expect("intact");
        prop_assert_eq!(n, 2);
        // Every truncation is an error, not a panic.
        for cut in 0..frame.payload.len() {
            prop_assert!(
                for_each_data_entry::<ListMessage>(&frame.payload[..cut], |_, _, _| {}).is_err(),
                "truncation at {} must be an error", cut
            );
        }
        // Every single-byte corruption is handled without panicking (it may
        // decode to a different valid message, or error — never crash).
        for i in 0..frame.payload.len() {
            let mut corrupted = frame.payload.clone();
            corrupted[i] ^= 0x55;
            let _ = for_each_data_entry::<ListMessage>(&corrupted, |_, _, _| {});
        }
    }

    /// The randomized baselines' frames survive the same truncation /
    /// corruption torture (their `Fallback` / `Propose` payloads carry two
    /// variable-width fields split by the aux byte — the shape most easily
    /// broken by framing bugs).
    #[test]
    fn randomized_baseline_frames_are_corruption_safe(a in 0u64..100_000, b in 0u64..100_000) {
        let mut builder = DataFrameBuilder::new();
        builder.push(1, 0, &UltrafastMessage::Try { color: a });
        builder.push(2, 1, &UltrafastMessage::Fallback { color: a, id: b });
        builder.push(3, 2, &UltrafastMessage::Adopt { color: b });
        let mut sealed = Vec::new();
        builder.seal(2, 1, 0, &mut sealed);
        let mut fb = FrameBuffer::new();
        fb.feed(&sealed);
        let frame = fb.next_frame().expect("well-formed").expect("complete");
        let mut n = 0;
        for_each_data_entry::<UltrafastMessage>(&frame.payload, |_, _, _| n += 1).expect("intact");
        prop_assert_eq!(n, 3);
        for cut in 0..frame.payload.len() {
            prop_assert!(
                for_each_data_entry::<UltrafastMessage>(&frame.payload[..cut], |_, _, _| {})
                    .is_err(),
                "truncation at {} must be an error", cut
            );
        }
        for i in 0..frame.payload.len() {
            let mut corrupted = frame.payload.clone();
            corrupted[i] ^= 0x55;
            let _ = for_each_data_entry::<UltrafastMessage>(&corrupted, |_, _, _| {});
        }

        let mut builder = DataFrameBuilder::new();
        builder.push(7, 0, &D1Message::Propose { color: a, priority: b });
        builder.push(8, 1, &D1Message::Finalized { color: b });
        let mut sealed = Vec::new();
        builder.seal(3, 0, 1, &mut sealed);
        let mut fb = FrameBuffer::new();
        fb.feed(&sealed);
        let frame = fb.next_frame().expect("well-formed").expect("complete");
        for cut in 0..frame.payload.len() {
            prop_assert!(
                for_each_data_entry::<D1Message>(&frame.payload[..cut], |_, _, _| {}).is_err(),
                "truncation at {} must be an error", cut
            );
        }
    }
}

/// Satellite check: the mother algorithm's messages, wire-encoded, stay
/// within the `max_message_bits` the simulator recorded — and hence within
/// the E12 CONGEST bound.
#[test]
fn trial_messages_encode_within_recorded_bandwidth() {
    let n = 220;
    let g = generators::random_regular(n, 8, 13);
    let input = Coloring::from_ids(n);
    let out = trial::run(&g, &input, TrialConfig::proper(1)).expect("trial run");
    let report = BandwidthReport::check(n, &out.metrics, 4);
    assert!(report.within_congest, "{report}");

    // Every message the run actually transmitted: each node broadcasts
    // `Active{input}` while uncolored (all do in round 0) and announces
    // `Adopted{color}` exactly once.
    let mut messages: Vec<TrialMessage> = (0..n as u64)
        .map(|c| TrialMessage::Active { input_color: c })
        .collect();
    messages.extend(
        out.coloring()
            .colors()
            .iter()
            .map(|&color| TrialMessage::Adopted { color }),
    );
    for msg in &messages {
        let (bits, _, _) = encode_payload(msg);
        assert_eq!(bits as u64, msg.bit_size());
        assert!(
            bits as u64 <= out.metrics.max_message_bits,
            "codec fattened {msg:?} to {bits} bits, past the recorded max of {}",
            out.metrics.max_message_bits
        );
        assert!(bits as u64 <= report.allowed_bits);
    }
}

/// The same cross-check for the list-coloring routine's messages.
#[test]
fn list_messages_encode_within_recorded_bandwidth() {
    let n = 150;
    let g = generators::random_regular(n, 6, 29);
    let delta = 6u64;
    let lists: Vec<Vec<u64>> = (0..n).map(|_| (0..=delta).collect()).collect();
    let priorities: Vec<u64> = (0..n as u64).collect();
    let out = list::list_coloring(&g, &lists, &priorities, ExecutionMode::Sequential)
        .expect("list coloring");
    let report = BandwidthReport::check(n, &out.metrics, 4);
    assert!(report.within_congest, "{report}");

    // Round 0 transmits `Propose{0, id}` from every node; every node later
    // announces `Finalized{color}`.
    let mut messages: Vec<ListMessage> = priorities
        .iter()
        .map(|&priority| ListMessage::Propose { color: 0, priority })
        .collect();
    messages.extend(
        out.coloring
            .colors()
            .iter()
            .map(|&color| ListMessage::Finalized { color }),
    );
    for msg in &messages {
        let (bits, _, _) = encode_payload(msg);
        assert_eq!(bits as u64, msg.bit_size());
        assert!(
            bits as u64 <= out.metrics.max_message_bits,
            "codec fattened {msg:?} past the recorded max"
        );
    }
}

/// The same cross-check for the randomized baselines: every encoded payload
/// fits the declared `MessageSize`, messages known to have been transmitted
/// stay within the recorded `max_message_bits`, the recorded maximum never
/// exceeds the worst message the algorithm can legally emit, and the whole
/// run respects the E12 CONGEST bound.
#[test]
fn randomized_baseline_messages_encode_within_recorded_bandwidth() {
    use dcme_congest::wire::color_width;

    let n = 200;
    let g = generators::random_regular(n, 8, 37);
    let delta = u64::from(g.max_degree());

    let uf = dcme_baselines::ultrafast_coloring(&g, 5, ExecutionMode::Sequential);
    let report = BandwidthReport::check(n, &uf.metrics, 4);
    assert!(report.within_congest, "{report}");
    // Every node announced `Adopt{final color}` — those messages were
    // really transmitted, so they must fit the recorded maximum.
    for &color in uf.coloring.colors() {
        let msg = UltrafastMessage::Adopt { color };
        let (bits, _, _) = encode_payload(&msg);
        assert_eq!(bits as u64, msg.bit_size());
        assert!(
            bits as u64 <= uf.metrics.max_message_bits,
            "codec fattened {msg:?} past the recorded max of {}",
            uf.metrics.max_message_bits
        );
    }
    // The recorded maximum is itself bounded by the widest legal message:
    // a fallback proposal of the largest color by the largest id.
    let worst = UltrafastMessage::Fallback {
        color: delta,
        id: n as u64 - 1,
    };
    assert!(uf.metrics.max_message_bits <= worst.bit_size());
    assert_eq!(
        worst.bit_size(),
        2 + u64::from(color_width(delta)) + u64::from(color_width(n as u64 - 1))
    );

    let d1 = dcme_baselines::degree_plus_one_coloring(&g, 5, ExecutionMode::Sequential);
    let report = BandwidthReport::check(n, &d1.metrics, 4);
    assert!(report.within_congest, "{report}");
    // Node `v` proposed its final color with priority `v` (the winning
    // proposal) and announced it — both messages were really transmitted.
    for (v, &color) in d1.coloring.colors().iter().enumerate() {
        for msg in [
            D1Message::Propose {
                color,
                priority: v as u64,
            },
            D1Message::Finalized { color },
        ] {
            let (bits, _, _) = encode_payload(&msg);
            assert_eq!(bits as u64, msg.bit_size());
            assert!(
                bits as u64 <= d1.metrics.max_message_bits,
                "codec fattened {msg:?} past the recorded max of {}",
                d1.metrics.max_message_bits
            );
        }
    }
    let worst = D1Message::Propose {
        color: delta,
        priority: n as u64 - 1,
    };
    assert!(d1.metrics.max_message_bits <= worst.bit_size());

    // Declared-vs-encoded equality also holds for the cap checks above via
    // `ultrafast::round_cap` / `degree_plus_one::round_cap` runs; pin the
    // caps as the unconditional bounds the drivers promise.
    assert!(uf.metrics.rounds <= ultrafast::round_cap(n));
    assert!(d1.metrics.rounds <= degree_plus_one::round_cap(n));
}
