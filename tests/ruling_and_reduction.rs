//! Integration tests for ruling sets (Theorem 1.5 / Lemma 3.2) and the
//! one-round color-reduction characterization (Theorem 1.6), plus the
//! experiment harness smoke test.

use dcme_bench::experiments::{self, Scale};
use dcme_coloring::{reduction, ruling};
use dcme_congest::ExecutionMode;
use dcme_graphs::{coloring::Coloring, generators, verify};

#[test]
fn ruling_sets_hold_their_radius_on_diverse_graphs() {
    for (g, name) in [
        (generators::random_regular(400, 16, 3), "regular"),
        (generators::barabasi_albert(300, 3, 5), "ba"),
        (generators::grid(20, 20, true), "torus"),
    ] {
        for r in [2usize, 3] {
            let out = ruling::ruling_set(&g, r).unwrap_or_else(|e| panic!("{name} r={r}: {e}"));
            verify::check_ruling_set(&g, &out.in_set, r)
                .unwrap_or_else(|v| panic!("{name} r={r}: {v}"));
            assert!(out.set_size > 0);
        }
    }
}

#[test]
fn improved_ruling_set_sweeps_use_fewer_rounds_than_baseline_for_r_2() {
    let g = generators::random_regular(600, 32, 7);
    let improved = ruling::ruling_set(&g, 2).unwrap();
    let baseline = ruling::ruling_set_baseline(&g, 2).unwrap();
    assert!(
        improved.rounds <= baseline.rounds,
        "improved sweep {} vs baseline sweep {}",
        improved.rounds,
        baseline.rounds
    );
}

#[test]
fn lemma_3_2_radius_tracks_the_block_parameter() {
    let g = generators::random_regular(300, 10, 11);
    let coloring = Coloring::from_ids(300);
    for r in [2usize, 3, 4, 5] {
        let b = ruling::block_parameter(coloring.palette(), r);
        let out = ruling::ruling_set_from_coloring(&g, &coloring, b).unwrap();
        assert!(out.radius <= r, "r={r}: radius {}", out.radius);
        verify::check_ruling_set(&g, &out.in_set, out.radius).unwrap();
        // Rounds are at most B per level plus the final cleanup sweep.
        assert!(out.rounds <= b * r as u64 + 1);
    }
}

#[test]
fn theorem_1_6_tightness_for_tiny_parameters() {
    // Δ = 2: the threshold says 4 input colors are needed to drop one color.
    assert_eq!(reduction::max_reducible(3, 2), 0);
    assert_eq!(reduction::max_reducible(4, 2), 1);
    let (achievable, impossible) = reduction::lower_bound(2, 4, 3_000_000);
    assert_eq!(achievable, Some(true));
    assert_eq!(impossible, Some(true));

    // Δ = 2, m = 5: still k = 1 (k = 2 would need 6 colors).
    assert_eq!(reduction::max_reducible(5, 2), 1);
    let exists_4 = reduction::one_round_algorithm_exists(2, 5, 4, 3_000_000);
    let exists_3 = reduction::one_round_algorithm_exists(2, 5, 3, 3_000_000);
    assert_eq!(exists_4, Some(true));
    assert_eq!(exists_3, Some(false));
}

#[test]
fn iterated_one_round_reduction_is_slower_than_corollary_1_2_3() {
    // The heuristic-lower-bound discussion: iterating the optimal 1-round
    // algorithm needs Ω(Δ)-ish rounds to shrink a Θ(Δ²) palette, while
    // Corollary 1.2(3) does an equivalent reduction in O(1) rounds.
    let g = generators::random_regular(400, 16, 13);
    let delta = g.max_degree() as u64;
    let seed = dcme_coloring::linial::delta_squared_from_ids(&g, None)
        .unwrap()
        .coloring;
    let start = dcme_coloring::elimination::reduce_to_target(
        &g,
        &seed,
        delta * delta / 2,
        ExecutionMode::Sequential,
    )
    .unwrap()
    .0;
    let (reduced, rounds) =
        reduction::iterate_to_delta_plus_one(&g, &start, ExecutionMode::Sequential).unwrap();
    verify::check_proper(&g, &reduced).unwrap();
    assert_eq!(reduced.palette(), delta + 1);
    assert!(
        rounds >= delta / 2,
        "iterated 1-round reductions took only {rounds} rounds for Δ = {delta}"
    );
}

#[test]
fn experiment_harness_produces_consistent_tables() {
    let t = experiments::e2_linial_step(Scale::Quick);
    assert!(!t.rows.is_empty());
    assert!(t.to_markdown().contains("Linial"));
    assert_eq!(t.to_csv().lines().count(), t.rows.len() + 1);

    let t = experiments::e9_one_round(Scale::Quick);
    assert!(t.rows.iter().any(|r| r[0].contains("exhaustive")));
}
