//! End-to-end integration tests: identifiers → (Δ+1)-coloring on a spread of
//! graph families, exercising every crate of the workspace together.

use dcme_coloring::pipeline;
use dcme_congest::ExecutionMode;
use dcme_graphs::{generators, verify, GraphFamily, GraphStats};

fn families() -> Vec<GraphFamily> {
    vec![
        GraphFamily::Ring { n: 128 },
        GraphFamily::Complete { n: 12 },
        GraphFamily::CompleteBipartite { a: 10, b: 14 },
        GraphFamily::Grid {
            w: 10,
            h: 10,
            wrap: true,
        },
        GraphFamily::Caterpillar { spine: 12, legs: 4 },
        GraphFamily::RandomRegular {
            n: 300,
            d: 12,
            seed: 3,
        },
        GraphFamily::Gnp {
            n: 200,
            p: 0.05,
            seed: 4,
        },
        GraphFamily::RandomTree { n: 200, seed: 5 },
        GraphFamily::BarabasiAlbert {
            n: 200,
            m: 3,
            seed: 6,
        },
        GraphFamily::DisjointCliques { count: 6, size: 7 },
    ]
}

#[test]
fn simple_pipeline_colors_every_family_with_delta_plus_one() {
    for family in families() {
        let g = family.build();
        let result =
            pipeline::delta_plus_one(&g).unwrap_or_else(|e| panic!("{}: {e}", family.name()));
        verify::check_proper(&g, &result.coloring)
            .unwrap_or_else(|v| panic!("{}: {v}", family.name()));
        assert!(
            result.coloring.palette() <= g.max_degree() as u64 + 1,
            "{}: palette {} exceeds Δ+1",
            family.name(),
            result.coloring.palette()
        );
        // The round count is dominated by the O(Δ) phases plus log* n.
        let delta = g.max_degree() as u64;
        assert!(
            result.total_rounds() <= 40 * (delta + 1) + 64,
            "{}: {} rounds is far beyond the O(Δ) + log* n shape",
            family.name(),
            result.total_rounds()
        );
    }
}

#[test]
fn scheduled_pipeline_agrees_on_palette_bound() {
    for family in [
        GraphFamily::RandomRegular {
            n: 250,
            d: 16,
            seed: 9,
        },
        GraphFamily::Grid {
            w: 12,
            h: 12,
            wrap: false,
        },
        GraphFamily::Gnp {
            n: 150,
            p: 0.08,
            seed: 10,
        },
    ] {
        let g = family.build();
        let result = pipeline::delta_plus_one_scheduled(&g, None, ExecutionMode::Sequential)
            .unwrap_or_else(|e| panic!("{}: {e}", family.name()));
        verify::check_proper(&g, &result.coloring).unwrap();
        assert!(result.coloring.palette() <= g.max_degree() as u64 + 1);
    }
}

#[test]
fn complete_graph_needs_every_color() {
    let g = generators::complete(16);
    let result = pipeline::delta_plus_one(&g).unwrap();
    assert_eq!(result.coloring.distinct_colors(), 16);
}

#[test]
fn pipeline_round_counts_scale_linearly_in_delta_not_n() {
    // Fix Δ and grow n: the total rounds must stay essentially flat
    // (log* n changes by at most 1 in this range).
    let small = pipeline::delta_plus_one(&generators::random_regular(200, 8, 1)).unwrap();
    let large = pipeline::delta_plus_one(&generators::random_regular(1600, 8, 1)).unwrap();
    let stats = GraphStats::compute(&generators::random_regular(1600, 8, 1));
    assert_eq!(stats.max_degree, 8);
    assert!(
        large.total_rounds() <= small.total_rounds() + 24,
        "rounds grew with n: {} -> {}",
        small.total_rounds(),
        large.total_rounds()
    );

    // Fix n and grow Δ: the rounds must grow.
    let low_delta = pipeline::delta_plus_one(&generators::random_regular(600, 8, 2)).unwrap();
    let high_delta = pipeline::delta_plus_one(&generators::random_regular(600, 48, 2)).unwrap();
    assert!(high_delta.total_rounds() > low_delta.total_rounds());
}

#[test]
fn parallel_and_sequential_executors_agree_end_to_end() {
    let g = generators::gnp(300, 0.04, 77);
    let seq = pipeline::delta_plus_one_with_mode(&g, ExecutionMode::Sequential).unwrap();
    let par =
        pipeline::delta_plus_one_with_mode(&g, ExecutionMode::Parallel { threads: 4 }).unwrap();
    assert_eq!(seq.coloring, par.coloring);
    assert_eq!(seq.total_rounds(), par.total_rounds());
}
