//! Property-based integration tests: the paper's invariants must hold for
//! arbitrary random workloads and parameters, not just the hand-picked ones.

use proptest::prelude::*;

use dcme_algebra::sequence::{SequenceFamily, SequenceParams};
use dcme_coloring::{corollary, reduction, trial, TrialConfig};
use dcme_congest::ExecutionMode;
use dcme_graphs::{coloring::Coloring, generators, verify};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 1.1 on random G(n, p): proper output, round bound, palette
    /// bound, and CONGEST feasibility — for arbitrary k.
    #[test]
    fn trial_coloring_invariants(
        n in 20usize..120,
        p in 0.02f64..0.25,
        seed in 0u64..1000,
        k in 1u64..64,
    ) {
        let g = generators::gnp(n, p, seed);
        let ids = Coloring::from_ids(n);
        let out = trial::run(&g, &ids, TrialConfig::proper(k)).unwrap();
        prop_assert!(verify::check_proper(&g, out.coloring()).is_ok());
        prop_assert!(verify::check_palette(out.coloring(), out.params.color_bound()).is_ok());
        prop_assert!(out.metrics.rounds <= out.params.rounds + 1);
        let report = dcme_congest::BandwidthReport::check(n, &out.metrics, 6);
        prop_assert!(report.within_congest);
    }

    /// The defective variant: defect ≤ d for the one-round setting and a
    /// valid orientation + partition for k = 1 (Theorem 1.1 (1) and (2)).
    #[test]
    fn defective_and_outdegree_invariants(
        n in 30usize..100,
        d_frac in 1u32..4,
        seed in 0u64..500,
    ) {
        let g = generators::random_regular(n, 12, seed);
        let ids = Coloring::from_ids(n);
        let delta = g.max_degree();
        prop_assume!(delta >= 4);
        let d = (delta / (d_frac + 1)).max(1);

        let one = corollary::defective_one_round(&g, &ids, d).unwrap();
        prop_assert!(verify::check_defective(&g, one.coloring(), d as usize).is_ok());

        let out = corollary::outdegree_coloring(&g, &ids, d).unwrap();
        prop_assert!(verify::check_outdegree_orientation(&g, &out.result.oriented, d as usize).is_ok());
        prop_assert!(verify::check_partition_degree(&g, &out.result, d as usize).is_ok());
    }

    /// Trial sequences: distinct input colors never collide in more than f
    /// positions (the combinatorial heart of the round bound).
    #[test]
    fn sequence_collision_invariant(
        delta in 2u32..24,
        d in 0u32..4,
        a in 0u64..2000,
        b in 0u64..2000,
    ) {
        prop_assume!(d < delta);
        let m = 2048u64;
        prop_assume!(a < m && b < m && a != b);
        let params = SequenceParams::derive(delta, m, d, 1).unwrap();
        let fam = SequenceFamily::new(params);
        prop_assert!(fam.collision_count(a, b) <= params.f as usize);
    }

    /// The one-round reduction of Lemma 4.1 always produces a proper coloring
    /// with exactly `max_reducible` fewer palette entries.
    #[test]
    fn one_round_reduction_invariant(
        n in 40usize..120,
        d in 4usize..10,
        seed in 0u64..300,
        extra in 2u64..40,
    ) {
        let g = generators::random_regular(n, d, seed);
        let delta = g.max_degree();
        prop_assume!(delta >= 2);
        let m = delta as u64 + 1 + extra;
        prop_assume!(m <= n as u64);
        // Build a proper m-coloring by greedy + spreading the ids.
        let base = dcme_coloring::linial::delta_squared_from_ids(&g, None).unwrap().coloring;
        let input = if base.palette() > m {
            dcme_coloring::elimination::reduce_to_target(&g, &base, m, ExecutionMode::Sequential)
                .unwrap().0
        } else {
            base.with_palette(m)
        };
        let k = reduction::max_reducible(m, delta);
        let out = reduction::one_round_reduction(&g, &input, ExecutionMode::Sequential).unwrap();
        prop_assert!(verify::check_proper(&g, &out.coloring).is_ok());
        prop_assert_eq!(out.removed, k);
        prop_assert_eq!(out.coloring.palette(), m - k);
    }

    /// Theorem 1.6 threshold sanity: the required-input-colors formula is
    /// monotone in k up to its cap and max_reducible inverts it.
    #[test]
    fn threshold_consistency(delta in 2u32..64, m in 3u64..4096) {
        let k = reduction::max_reducible(m, delta);
        if k > 0 {
            prop_assert!(m >= reduction::required_input_colors(k, delta));
        }
        if k < (delta as u64).saturating_sub(1).min((delta as u64 + 3) / 2) {
            prop_assert!(m < reduction::required_input_colors(k + 1, delta));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The bitset palette (`ColorSet`) against a `HashSet<u64>` reference
    /// model: random op sequences over palettes up to 4096 colors must agree
    /// on membership, free-color counts, first-free and nth-free selection
    /// (the word-scan/popcount paths the randomized baselines now run on).
    ///
    /// The vendored proptest stub only generates integer ranges, so the op
    /// sequence itself is derived from a seeded `StdRng` inside the test.
    #[test]
    fn color_set_matches_hashset_model(
        seed in 0u64..5_000,
        palette in 1u64..4096,
    ) {
        use dcme_baselines::bitset::ColorSet;
        use dcme_baselines::rand_primitives::round_rng;
        use rand::RngExt;
        use std::collections::HashSet;

        let mut rng = round_rng(seed, 0xB175E7, palette);
        let mut set = ColorSet::with_palette(palette);
        let mut model: HashSet<u64> = HashSet::new();
        for step in 0..400u32 {
            match rng.random_range(0..6u32) {
                // Insert, occasionally past the palette edge: D1LC blocks
                // colors from neighbours whose lists are longer than its own,
                // so growth beyond the presized words must stay correct.
                0 | 1 => {
                    let c = rng.random_range(0..palette + palette / 2 + 1);
                    prop_assert_eq!(set.insert(c), model.insert(c), "insert {} at step {}", c, step);
                }
                2 => {
                    let c = rng.random_range(0..palette + palette / 2 + 1);
                    prop_assert_eq!(set.contains(c), model.contains(&c), "contains {} at step {}", c, step);
                }
                3 => {
                    let blocked_below = model.iter().filter(|&&c| c < palette).count() as u64;
                    prop_assert_eq!(set.count_below(palette), blocked_below);
                    prop_assert_eq!(set.count_free(palette), palette - blocked_below);
                }
                4 => {
                    let first = (0..palette).find(|c| !model.contains(c));
                    prop_assert_eq!(set.find_first_free(palette), first);
                }
                _ => {
                    let free: Vec<u64> = (0..palette).filter(|c| !model.contains(c)).collect();
                    // In range, at the edge, and past the end.
                    for n in [0, free.len() as u64 / 2, free.len().saturating_sub(1) as u64, free.len() as u64] {
                        prop_assert_eq!(set.nth_free(palette, n), free.get(n as usize).copied());
                    }
                }
            }
            if step == 200 {
                set.clear();
                model.clear();
            }
        }
    }
}
