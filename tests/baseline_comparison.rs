//! Integration tests comparing the paper's algorithms against the baselines:
//! the "who wins, by roughly what factor" claims of the experiment tables.

use dcme_baselines as baselines;
use dcme_coloring::pipeline;
use dcme_congest::ExecutionMode;
use dcme_graphs::{coloring::Coloring, generators, verify};

#[test]
fn all_algorithms_agree_on_the_color_count_and_are_proper() {
    let g = generators::random_regular(400, 12, 17);
    let ids = Coloring::from_ids(400);
    let delta_plus_one = g.max_degree() as u64 + 1;

    let paper = pipeline::delta_plus_one(&g).unwrap();
    let kw = baselines::kuhn_wattenhofer(&g, &ids).unwrap();
    let (li, _) = baselines::locally_iterative_reduction(&g, &ids, ExecutionMode::Sequential);
    let luby = baselines::luby_coloring(&g, 3, ExecutionMode::Sequential);
    let greedy = baselines::greedy_coloring(&g, None);

    for (name, coloring) in [
        ("paper", &paper.coloring),
        ("kuhn-wattenhofer", &kw.coloring),
        ("locally-iterative", &li),
        ("randomized", &luby.coloring),
        ("greedy", &greedy),
    ] {
        verify::check_proper(&g, coloring).unwrap_or_else(|v| panic!("{name}: {v}"));
        assert!(
            coloring.distinct_colors() as u64 <= delta_plus_one,
            "{name} used too many colors"
        );
    }
}

#[test]
fn paper_pipeline_beats_the_kw_baseline_in_rounds() {
    // The paper: O(Δ) + log* n rounds.  KW halving: O(Δ log(n/Δ)) rounds.
    // The gap must be visible once log(n/Δ) is a real factor.
    let g = generators::random_regular(1200, 8, 19);
    let ids = Coloring::from_ids(1200);
    let paper = pipeline::delta_plus_one(&g).unwrap();
    let kw = baselines::kuhn_wattenhofer(&g, &ids).unwrap();
    assert!(
        paper.total_rounds() < kw.rounds,
        "paper {} rounds vs KW {} rounds",
        paper.total_rounds(),
        kw.rounds
    );
}

#[test]
fn paper_pipeline_beats_the_locally_iterative_folklore_on_adversarial_orderings() {
    // A path with monotone identifiers forces the folklore local-maximum rule
    // into Ω(n) rounds while the paper's pipeline stays O(Δ) + log* n.
    let n = 400;
    let g = generators::path(n);
    let ids = Coloring::from_ids(n);
    let paper = pipeline::delta_plus_one(&g).unwrap();
    let (_, li_metrics) =
        baselines::locally_iterative_reduction(&g, &ids, ExecutionMode::Sequential);
    assert!(
        paper.total_rounds() * 4 < li_metrics.rounds,
        "paper {} rounds vs locally-iterative {} rounds",
        paper.total_rounds(),
        li_metrics.rounds
    );
}

#[test]
fn randomized_baseline_is_fast_but_not_deterministic() {
    let g = generators::random_regular(600, 10, 23);
    let a = baselines::luby_coloring(&g, 1, ExecutionMode::Sequential);
    let b = baselines::luby_coloring(&g, 2, ExecutionMode::Sequential);
    // Different seeds give different colorings (overwhelmingly likely), while
    // each individually is proper.
    verify::check_proper(&g, &a.coloring).unwrap();
    verify::check_proper(&g, &b.coloring).unwrap();
    assert_ne!(a.coloring, b.coloring);
    // Both should finish in O(log n) rounds.
    assert!(a.metrics.rounds <= 60);
}

#[test]
fn modern_randomized_baselines_are_proper_and_respect_their_palettes() {
    let g = generators::random_regular(400, 12, 29);
    let delta_plus_one = g.max_degree() as u64 + 1;

    let uf = baselines::ultrafast_coloring(&g, 11, ExecutionMode::Sequential);
    verify::check_proper(&g, &uf.coloring).unwrap();
    assert!(uf.coloring.distinct_colors() as u64 <= delta_plus_one);

    // D1LC is strictly harder: node v's color must come from its *own*
    // deg(v)+1 list, not just the global [Δ+1] palette.
    let d1 = baselines::degree_plus_one_coloring(&g, 11, ExecutionMode::Sequential);
    verify::check_proper(&g, &d1.coloring).unwrap();
    for v in 0..400 {
        assert!(
            d1.coloring.color(v) <= g.degree(v) as u64,
            "node {v} (deg {}) colored outside its own list",
            g.degree(v)
        );
    }

    // Both are modern O(polyloglog) structures: on a log-sized graph they
    // must not degenerate into their linear fallback regime.
    assert!(uf.metrics.rounds <= 60, "ultrafast {}", uf.metrics.rounds);
    assert!(d1.metrics.rounds <= 60, "degree+1 {}", d1.metrics.rounds);
}

#[test]
fn modern_randomized_baselines_are_seed_reproducible() {
    // The E6/EB comparison is only honest if a recorded row can be
    // regenerated: the same seed must reproduce the identical run.
    let g = generators::gnp(300, 0.04, 31);
    let a = baselines::ultrafast_coloring(&g, 3, ExecutionMode::Sequential);
    let b = baselines::ultrafast_coloring(&g, 3, ExecutionMode::Sequential);
    assert_eq!(a.coloring, b.coloring);
    assert_eq!(a.metrics.rounds, b.metrics.rounds);
    assert_eq!(a.metrics.messages, b.metrics.messages);
    let c = baselines::ultrafast_coloring(&g, 4, ExecutionMode::Sequential);
    verify::check_proper(&g, &c.coloring).unwrap();
    assert_ne!(
        a.coloring, c.coloring,
        "different seeds should explore different colorings"
    );

    let a = baselines::degree_plus_one_coloring(&g, 3, ExecutionMode::Sequential);
    let b = baselines::degree_plus_one_coloring(&g, 3, ExecutionMode::Sequential);
    assert_eq!(a.coloring, b.coloring);
    assert_eq!(a.metrics.messages, b.metrics.messages);
}

#[test]
fn greedy_color_count_is_the_reference_lower_envelope() {
    for seed in 0..3 {
        let g = generators::gnp(300, 0.05, seed);
        let greedy =
            baselines::greedy_coloring(&g, Some(&baselines::greedy::smallest_last_order(&g)));
        let paper = pipeline::delta_plus_one(&g).unwrap();
        verify::check_proper(&g, &greedy).unwrap();
        // The distributed algorithm promises Δ+1; the sequential greedy with a
        // degeneracy order can only use fewer or equally many colors.
        assert!(greedy.distinct_colors() <= paper.coloring.palette() as usize);
    }
}
