//! Integration tests for the CONGEST model guarantees: message sizes,
//! executor equivalence, and round accounting across algorithms.

use dcme_coloring::{corollary, pipeline, reduction, trial, TrialConfig};
use dcme_congest::{BandwidthReport, ExecutionMode};
use dcme_graphs::{coloring::Coloring, generators};

#[test]
fn every_main_algorithm_respects_the_congest_bandwidth_bound() {
    let n = 1024;
    let g = generators::random_regular(n, 16, 7);
    let ids = Coloring::from_ids(n);

    let metrics = [
        trial::run(&g, &ids, TrialConfig::proper(1))
            .unwrap()
            .metrics,
        trial::run(&g, &ids, TrialConfig::proper(64))
            .unwrap()
            .metrics,
        trial::run(&g, &ids, TrialConfig::defective(4, 1))
            .unwrap()
            .metrics,
        corollary::linial_color_reduction(&g, &ids).unwrap().metrics,
        pipeline::delta_plus_one(&g).unwrap().metrics,
    ];
    for (i, m) in metrics.iter().enumerate() {
        let report = BandwidthReport::check(n, m, 4);
        assert!(report.within_congest, "algorithm {i}: {report}");
    }
}

#[test]
fn one_round_algorithms_really_use_one_round() {
    let n = 512;
    let g = generators::random_regular(n, 8, 3);
    let ids = Coloring::from_ids(n);

    // Linial's reduction: one batch + the announce round.
    let lin = corollary::linial_color_reduction(&g, &ids).unwrap();
    assert!(lin.metrics.rounds <= 2);

    // Lemma 4.1: exactly one round.
    let seed = dcme_coloring::linial::delta_squared_from_ids(&g, None)
        .unwrap()
        .coloring;
    let red = reduction::one_round_reduction(&g, &seed, ExecutionMode::Sequential).unwrap();
    assert_eq!(red.metrics.rounds, 1);

    // Corollary 1.2(5): one batch + announce.
    let def = corollary::defective_one_round(&g, &ids, 2).unwrap();
    assert!(def.metrics.rounds <= 2);
}

#[test]
fn round_bound_of_theorem_1_1_holds_across_k_and_d() {
    let g = generators::gnp(400, 0.05, 11);
    let ids = Coloring::from_ids(400);
    for k in [1u64, 3, 17, 200] {
        for d in [0u32, 1, 3] {
            let out = trial::run(
                &g,
                &ids,
                TrialConfig {
                    d,
                    k,
                    mode: ExecutionMode::Sequential,
                },
            )
            .unwrap();
            assert!(
                out.metrics.rounds <= out.params.rounds + 1,
                "k={k} d={d}: rounds {} exceed bound {}",
                out.metrics.rounds,
                out.params.rounds + 1
            );
        }
    }
}

#[test]
fn parallel_executor_is_deterministic_across_thread_counts() {
    let g = generators::barabasi_albert(400, 3, 5);
    let ids = Coloring::from_ids(400);
    let reference = trial::run(&g, &ids, TrialConfig::proper(4)).unwrap();
    for threads in [1usize, 2, 4, 8] {
        let par = trial::run(&g, &ids, TrialConfig::proper(4).parallel(threads)).unwrap();
        assert_eq!(par.result, reference.result, "threads = {threads}");
        assert_eq!(par.metrics.rounds, reference.metrics.rounds);
        assert_eq!(par.metrics.messages, reference.metrics.messages);
    }
}

#[test]
fn pooled_executor_matches_sequential_on_ring_random_and_star() {
    // The tentpole equivalence guarantee: the persistent-pool executor is
    // bit-for-bit identical to the sequential reference on topologies with
    // very different degree profiles (constant, concentrated, and a hub
    // whose degree equals n - 1).
    let cases = [
        ("ring", generators::ring(257)),
        ("random", generators::gnp(300, 0.03, 23)),
        ("star", generators::star(199)),
    ];
    for (name, g) in cases {
        let ids = Coloring::from_ids(g.num_nodes());
        let seq = trial::run(&g, &ids, TrialConfig::proper(2)).unwrap();
        for threads in [1usize, 3, 8] {
            let par = trial::run(&g, &ids, TrialConfig::proper(2).parallel(threads)).unwrap();
            assert_eq!(par.result, seq.result, "{name}, threads = {threads}");
            assert_eq!(par.metrics.rounds, seq.metrics.rounds, "{name}");
            assert_eq!(par.metrics.messages, seq.metrics.messages, "{name}");
            assert_eq!(par.metrics.total_bits, seq.metrics.total_bits, "{name}");
            assert_eq!(
                par.metrics.max_message_bits, seq.metrics.max_message_bits,
                "{name}"
            );
            assert_eq!(
                par.metrics.active_per_round, seq.metrics.active_per_round,
                "{name}"
            );
        }
    }
}

#[test]
fn engine_reports_phase_timings() {
    // The phase clocks are the observability surface the engine_scaling
    // bench relies on; make sure real runs populate them.
    let g = generators::random_regular(256, 6, 3);
    let ids = Coloring::from_ids(256);
    for config in [TrialConfig::proper(2), TrialConfig::proper(2).parallel(2)] {
        let out = trial::run(&g, &ids, config).unwrap();
        let p = out.metrics.phase_nanos;
        assert!(p.send > 0, "send phase should accumulate time");
        assert!(p.deliver > 0, "deliver phase should accumulate time");
        assert!(p.receive > 0, "receive phase should accumulate time");
        assert_eq!(p.total(), p.send + p.deliver + p.receive);
    }
}

#[test]
fn message_volume_scales_with_edges_times_rounds() {
    let g = generators::random_regular(300, 10, 13);
    let ids = Coloring::from_ids(300);
    let out = trial::run(&g, &ids, TrialConfig::proper(1)).unwrap();
    // Every active node broadcasts once per round over each incident edge, so
    // the message count is at most 2 |E| rounds.
    let upper = 2 * g.num_edges() as u64 * out.metrics.rounds;
    assert!(out.metrics.messages <= upper);
    assert!(out.metrics.messages > 0);
    assert!(out.metrics.mean_message_bits() > 0.0);
}
