//! Property-based executor equivalence: on random topologies with random
//! halting schedules, the sequential, pooled and sharded executors — the
//! latter under **every transport backend** (in-process staging queues and
//! the wire-codec'd socket loopback) — must produce identical outputs,
//! round counts and message accounting.
//!
//! This is the engine contract stated in `dcme_congest::executor`: every
//! `Executor` is bit-for-bit equivalent to `SequentialExecutor` (all metrics
//! except wall-clock phase timings and the backend-describing transport
//! counters `wire_bytes_sent` / `transport_flush_nanos`).  The unit tests
//! pin it on hand-picked graphs; here it must survive arbitrary
//! `GraphFamily` workloads, thread counts, shard counts and transports.

use proptest::prelude::*;

use dcme_baselines::degree_plus_one::{self, DegreePlusOneNode};
use dcme_baselines::ultrafast::{self, UltrafastNode};
use dcme_congest::{
    ExecutionMode, FaultPlan, FaultyTransport, Inbox, NodeAlgorithm, NodeContext, Outbox,
    RecordingSink, RunOutcome, ShardedExecutor, ShardedTopology, Simulator, SimulatorConfig,
    SocketLoopback, Topology, TraceEvent, TransportBuilder,
};
use dcme_graphs::generators;

/// A deterministic workload with a per-node halting schedule: node `v`
/// broadcasts `id + round` while active, folds everything it hears into a
/// running digest, and halts after `ttl(v)` rounds — so active sets shrink
/// raggedly across worker chunk and shard boundaries.
#[derive(Clone)]
struct ScheduledGossip {
    id: u64,
    ttl: u64,
    digest: u64,
    rounds_done: u64,
}

impl ScheduledGossip {
    fn new(ttl: u64) -> Self {
        Self {
            id: 0,
            ttl,
            digest: 0,
            rounds_done: 0,
        }
    }
}

impl NodeAlgorithm for ScheduledGossip {
    type Message = u64;
    type Output = u64;

    fn init(&mut self, ctx: &NodeContext) {
        self.id = ctx.node as u64;
    }

    fn send(&mut self, ctx: &NodeContext) -> Outbox<u64> {
        Outbox::Broadcast(self.id + ctx.round)
    }

    fn receive(&mut self, _ctx: &NodeContext, inbox: &Inbox<'_, u64>) {
        for (p, m) in inbox.iter() {
            self.digest = self
                .digest
                .wrapping_mul(31)
                .wrapping_add(*m)
                .wrapping_add(p as u64);
        }
        self.rounds_done += 1;
    }

    fn is_halted(&self) -> bool {
        self.rounds_done >= self.ttl
    }

    fn output(&self) -> u64 {
        self.digest
    }
}

/// Derives a ragged-but-deterministic halting schedule from one seed.
fn schedule(n: usize, seed: u64) -> Vec<u64> {
    (0..n as u64)
        .map(|v| 1 + (v.wrapping_mul(seed | 1).wrapping_add(seed >> 3)) % 9)
        .collect()
}

fn run_with_mode(g: &Topology, ttls: &[u64], mode: ExecutionMode) -> RunOutcome<u64> {
    let config = SimulatorConfig {
        max_rounds: 1_000_000,
        mode,
    };
    let nodes: Vec<ScheduledGossip> = ttls.iter().map(|&t| ScheduledGossip::new(t)).collect();
    Simulator::with_config(g, config).run(nodes)
}

fn run_sharded<B: TransportBuilder>(
    g: &Topology,
    ttls: &[u64],
    shards: usize,
    transport: B,
) -> RunOutcome<u64> {
    let sharded = ShardedTopology::from_topology(g, shards).expect("shardable topology");
    let nodes: Vec<ScheduledGossip> = ttls.iter().map(|&t| ScheduledGossip::new(t)).collect();
    Simulator::new(&sharded).run_with_executor(nodes, &ShardedExecutor::with_transport(transport))
}

/// The four graph families the equivalence guarantee is pinned on
/// (ISSUE/DESIGN: ring, random, star, grid) — parameterized by a size knob.
fn build_graph(family: usize, size: usize, seed: u64) -> Topology {
    match family {
        0 => generators::ring(size.max(3)),
        1 => generators::random_regular(size.max(10), 4, seed),
        2 => generators::star(size.max(2)),
        _ => {
            let w = 2 + size % 7;
            generators::grid(w, size.div_ceil(w).max(1), size % 2 == 0)
        }
    }
}

/// Runs one seeded randomized baseline on every executor and transport
/// backend and asserts the runs are bit-identical to the sequential
/// reference — the engine contract applied to *randomized* algorithms,
/// which holds because their randomness is drawn from stateless
/// `(seed, node, round)` streams, never from execution history.
fn assert_randomized_equivalence<A, F>(g: &Topology, shards: usize, threads: usize, cap: u64, mk: F)
where
    A: NodeAlgorithm<Output = Option<u64>>,
    F: Fn() -> Vec<A>,
{
    let seq_config = SimulatorConfig {
        max_rounds: cap,
        mode: ExecutionMode::Sequential,
    };
    let sharded = ShardedTopology::from_topology(g, shards).expect("shardable topology");
    let seq: RunOutcome<Option<u64>> = Simulator::with_config(g, seq_config).run(mk());
    assert!(
        seq.outputs.iter().all(Option::is_some),
        "randomized baseline must finish within its unconditional cap"
    );
    let runs = [
        (
            "pooled",
            Simulator::with_config(
                g,
                SimulatorConfig {
                    max_rounds: cap,
                    mode: ExecutionMode::Parallel { threads },
                },
            )
            .run(mk()),
        ),
        (
            "sharded+inproc",
            Simulator::with_config(&sharded, seq_config)
                .run_with_executor(mk(), &ShardedExecutor::new()),
        ),
        (
            "sharded+socket",
            Simulator::with_config(&sharded, seq_config).run_with_executor(
                mk(),
                &ShardedExecutor::with_transport(SocketLoopback::unix()),
            ),
        ),
    ];
    for (name, other) in &runs {
        assert_eq!(&seq.outputs, &other.outputs, "{name} outputs diverged");
        assert_eq!(seq.metrics.rounds, other.metrics.rounds, "{name} rounds");
        assert_eq!(
            seq.metrics.messages, other.metrics.messages,
            "{name} messages"
        );
        assert_eq!(
            seq.metrics.total_bits, other.metrics.total_bits,
            "{name} bits"
        );
        assert_eq!(
            seq.metrics.max_message_bits, other.metrics.max_message_bits,
            "{name} max bits"
        );
        assert_eq!(
            seq.metrics.active_per_round, other.metrics.active_per_round,
            "{name} active sets"
        );
    }
}

/// Asserts a traced run is bit-for-bit identical to its untraced twin on
/// the same executor and transport: outputs and every logical counter,
/// including the deterministic per-backend wire-byte count.  This is the
/// out-of-band contract of `dcme_congest::trace` — sinks observe, they
/// never influence.
fn assert_tracing_invisible(name: &str, plain: &RunOutcome<u64>, traced: &RunOutcome<u64>) {
    assert_eq!(&plain.outputs, &traced.outputs, "{name} outputs diverged");
    assert_eq!(plain.metrics.rounds, traced.metrics.rounds, "{name} rounds");
    assert_eq!(
        plain.metrics.messages, traced.metrics.messages,
        "{name} messages"
    );
    assert_eq!(
        plain.metrics.total_bits, traced.metrics.total_bits,
        "{name} bits"
    );
    assert_eq!(
        plain.metrics.max_message_bits, traced.metrics.max_message_bits,
        "{name} max bits"
    );
    assert_eq!(
        plain.metrics.active_per_round, traced.metrics.active_per_round,
        "{name} active sets"
    );
    assert_eq!(
        plain.metrics.hit_round_cap, traced.metrics.hit_round_cap,
        "{name} cap"
    );
    assert_eq!(
        plain.metrics.intra_shard_messages, traced.metrics.intra_shard_messages,
        "{name} intra-shard"
    );
    assert_eq!(
        plain.metrics.cross_shard_messages, traced.metrics.cross_shard_messages,
        "{name} cross-shard"
    );
    assert_eq!(
        plain.metrics.wire_bytes_sent, traced.metrics.wire_bytes_sent,
        "{name} wire bytes"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random topology × random halting schedule × every executor: outputs,
    /// round counts and all accounting metrics agree bit for bit.
    #[test]
    fn all_executors_agree(
        family in 0usize..4,
        size in 8usize..80,
        graph_seed in 0u64..500,
        ttl_seed in 0u64..1000,
        threads in 1usize..5,
        shards in 1usize..6,
    ) {
        let g = build_graph(family, size, graph_seed);
        let ttls = schedule(g.num_nodes(), ttl_seed);

        let seq = run_with_mode(&g, &ttls, ExecutionMode::Sequential);
        let par = run_with_mode(&g, &ttls, ExecutionMode::Parallel { threads });
        let shd = run_sharded(&g, &ttls, shards, dcme_congest::InProcess);
        let sock = run_sharded(&g, &ttls, shards, SocketLoopback::unix());

        for (name, other) in [("pooled", &par), ("sharded", &shd), ("socket", &sock)] {
            prop_assert_eq!(&seq.outputs, &other.outputs, "{} outputs diverged", name);
            prop_assert_eq!(seq.metrics.rounds, other.metrics.rounds, "{} rounds", name);
            prop_assert_eq!(seq.metrics.messages, other.metrics.messages, "{} messages", name);
            prop_assert_eq!(seq.metrics.total_bits, other.metrics.total_bits, "{} bits", name);
            prop_assert_eq!(
                seq.metrics.max_message_bits,
                other.metrics.max_message_bits,
                "{} max bits", name
            );
            prop_assert_eq!(
                &seq.metrics.active_per_round,
                &other.metrics.active_per_round,
                "{} active sets", name
            );
            prop_assert_eq!(
                seq.metrics.hit_round_cap,
                other.metrics.hit_round_cap,
                "{} cap", name
            );
        }

        // Sharded attribution invariants: every message is attributed to
        // exactly one side of the shard boundary, and one shard ⇒ no
        // cross-shard traffic.
        for out in [&shd, &sock] {
            prop_assert_eq!(
                out.metrics.intra_shard_messages + out.metrics.cross_shard_messages,
                out.metrics.messages
            );
            if shards == 1 {
                prop_assert_eq!(out.metrics.cross_shard_messages, 0);
            }
            prop_assert_eq!(out.metrics.shard_phase_nanos.len(), shards);
        }
        // Transport counters describe the backend: the in-memory queues
        // move no wire bytes; the socket mesh seals one frame per shard
        // pair per round, so any multi-shard round produces real bytes.
        prop_assert_eq!(shd.metrics.wire_bytes_sent, 0);
        prop_assert_eq!(
            sock.metrics.wire_bytes_sent > 0,
            shards > 1 && sock.metrics.rounds > 0
        );
    }

    /// Seeded randomized baselines (HNT ultrafast, D1LC degree+1): on random
    /// topologies, fixed-seed runs are bit-for-bit identical across the
    /// sequential, pooled and sharded executors and both transport backends
    /// (the ISSUE 5 acceptance criterion, as a property).
    #[test]
    fn randomized_baselines_agree_across_executors_and_transports(
        family in 0usize..4,
        size in 8usize..48,
        graph_seed in 0u64..200,
        algo_seed in 0u64..1000,
        threads in 1usize..4,
        shards in 1usize..5,
    ) {
        let g = build_graph(family, size, graph_seed);
        let n = g.num_nodes();
        assert_randomized_equivalence(&g, shards, threads, ultrafast::round_cap(n), || {
            (0..n).map(|_| UltrafastNode::new(algo_seed)).collect::<Vec<_>>()
        });
        assert_randomized_equivalence(&g, shards, threads, degree_plus_one::round_cap(n), || {
            (0..n).map(|_| DegreePlusOneNode::new(algo_seed)).collect::<Vec<_>>()
        });
    }

    /// Zero-fault regression: wrapping any transport in a `FaultyTransport`
    /// with an **empty** fault plan must be bit-for-bit invisible — same
    /// outputs, rounds, messages, bit accounting *and wire bytes* as the
    /// unwrapped backend.  The fault layer may only cost when a plan fires.
    #[test]
    fn empty_fault_plan_is_bit_for_bit_invisible(
        family in 0usize..4,
        size in 8usize..48,
        graph_seed in 0u64..200,
        ttl_seed in 0u64..1000,
        plan_seed in 0u64..1000,
        shards in 1usize..6,
    ) {
        let g = build_graph(family, size, graph_seed);
        let ttls = schedule(g.num_nodes(), ttl_seed);
        let plan = FaultPlan::none(plan_seed);
        prop_assert!(plan.is_empty());

        let pairs = [
            (
                run_sharded(&g, &ttls, shards, dcme_congest::InProcess),
                run_sharded(
                    &g,
                    &ttls,
                    shards,
                    FaultyTransport::new(plan.clone(), dcme_congest::InProcess),
                ),
            ),
            (
                run_sharded(&g, &ttls, shards, SocketLoopback::unix()),
                run_sharded(
                    &g,
                    &ttls,
                    shards,
                    FaultyTransport::new(plan.clone(), SocketLoopback::unix()),
                ),
            ),
        ];
        let seq = run_with_mode(&g, &ttls, ExecutionMode::Sequential);
        for (plain, faulty) in &pairs {
            prop_assert_eq!(&seq.outputs, &faulty.outputs, "outputs vs sequential");
            prop_assert_eq!(&plain.outputs, &faulty.outputs, "outputs vs unwrapped");
            prop_assert_eq!(plain.metrics.rounds, faulty.metrics.rounds, "rounds");
            prop_assert_eq!(plain.metrics.messages, faulty.metrics.messages, "messages");
            prop_assert_eq!(plain.metrics.total_bits, faulty.metrics.total_bits, "bits");
            prop_assert_eq!(
                plain.metrics.wire_bytes_sent,
                faulty.metrics.wire_bytes_sent,
                "wire bytes"
            );
            prop_assert_eq!(
                &plain.metrics.active_per_round,
                &faulty.metrics.active_per_round,
                "active sets"
            );
            prop_assert_eq!(faulty.metrics.faults_dropped, 0);
            prop_assert_eq!(faulty.metrics.faults_duplicated, 0);
            prop_assert_eq!(faulty.metrics.faults_delayed, 0);
            prop_assert_eq!(faulty.metrics.faults_retransmitted, 0);
            prop_assert_eq!(faulty.metrics.stale_overwrites, 0);
        }
    }

    /// Scale-out construction contract: the coordinator's counting pass
    /// (`ShardPlan`) plus each worker's restricted single-shard build
    /// (`ShardSliceTopology`) reproduces the full `ShardedTopology` exactly
    /// — same plan, and per shard the same CSR slice, `dest_slot` remap and
    /// reverse ports — across random graph families and shard counts.  This
    /// is the invariant that lets mesh-mode workers rebuild only their own
    /// shard from the shared edge stream.
    #[test]
    fn restricted_shard_construction_matches_full_build(
        family in 0usize..4,
        size in 8usize..80,
        graph_seed in 0u64..500,
        shards in 1usize..6,
    ) {
        let g = build_graph(family, size, graph_seed);
        let full = ShardedTopology::from_topology(&g, shards).expect("shardable topology");
        let plan = full.plan();
        let streamed = dcme_congest::ShardPlan::from_edge_stream(g.num_nodes(), shards, |emit| {
            for (u, v) in g.edges() {
                emit(u, v);
            }
        })
        .expect("plan from stream");
        prop_assert_eq!(&streamed, &plan, "streamed plan diverged from full build");
        for shard in 0..shards {
            let slice = dcme_congest::ShardSliceTopology::build(plan.clone(), shard, |emit| {
                for (u, v) in g.edges() {
                    emit(u, v);
                }
            })
            .expect("restricted build");
            prop_assert_eq!(&slice, &full.shard_slice(shard), "slice {} diverged", shard);
        }
    }

    /// Observability regression: attaching a recording `TraceSink` to any
    /// executor × transport combination must be bit-for-bit invisible —
    /// identical outputs, rounds and every logical counter — while the
    /// sink itself observes a full run (lifecycle events bracket the
    /// stream and every round is reported).
    #[test]
    fn attached_trace_sink_is_bit_for_bit_invisible(
        family in 0usize..4,
        size in 8usize..48,
        graph_seed in 0u64..200,
        ttl_seed in 0u64..1000,
        threads in 1usize..4,
        shards in 1usize..5,
    ) {
        let g = build_graph(family, size, graph_seed);
        let ttls = schedule(g.num_nodes(), ttl_seed);
        let sharded = ShardedTopology::from_topology(&g, shards).expect("shardable topology");
        let mk = || ttls.iter().map(|&t| ScheduledGossip::new(t)).collect::<Vec<_>>();
        let config = |mode| SimulatorConfig { max_rounds: 1_000_000, mode };

        let mut sinks = Vec::new();
        for mode in [ExecutionMode::Sequential, ExecutionMode::Parallel { threads }] {
            let name = if mode == ExecutionMode::Sequential { "seq" } else { "pooled" };
            let sink = RecordingSink::new();
            let plain = run_with_mode(&g, &ttls, mode);
            let traced = Simulator::with_config(&g, config(mode))
                .with_tracer(&sink)
                .run(mk());
            assert_tracing_invisible(name, &plain, &traced);
            sinks.push((name, traced.metrics.rounds, sink));
        }
        {
            let sink = RecordingSink::new();
            let plain = run_sharded(&g, &ttls, shards, dcme_congest::InProcess);
            let traced = Simulator::new(&sharded)
                .with_tracer(&sink)
                .run_with_executor(mk(), &ShardedExecutor::new());
            assert_tracing_invisible("sharded+inproc", &plain, &traced);
            sinks.push(("sharded+inproc", traced.metrics.rounds, sink));
        }
        {
            let sink = RecordingSink::new();
            let plain = run_sharded(&g, &ttls, shards, SocketLoopback::unix());
            let traced = Simulator::new(&sharded).with_tracer(&sink).run_with_executor(
                mk(),
                &ShardedExecutor::with_transport(SocketLoopback::unix()),
            );
            assert_tracing_invisible("sharded+socket", &plain, &traced);
            sinks.push(("sharded+socket", traced.metrics.rounds, sink));
        }

        for (name, rounds, sink) in &sinks {
            prop_assert!(!sink.is_empty(), "{} emitted no events", name);
            let events = sink.take();
            prop_assert!(
                matches!(events.first(), Some(TraceEvent::RunStart { .. })),
                "{} stream must open with RunStart", name
            );
            prop_assert!(
                matches!(events.last(), Some(TraceEvent::RunEnd { rounds: r }) if r == rounds),
                "{} stream must close with RunEnd({})", name, rounds
            );
            let starts = events
                .iter()
                .filter(|e| matches!(e, TraceEvent::RoundStart { .. }))
                .count() as u64;
            prop_assert_eq!(starts, *rounds, "{}: one RoundStart per round", name);
            // The sharded streams additionally carry the worker lifecycle:
            // exactly one start and one end per shard.
            if name.starts_with("sharded") {
                let ws = events
                    .iter()
                    .filter(|e| matches!(e, TraceEvent::WorkerStart { .. }))
                    .count();
                let we = events
                    .iter()
                    .filter(|e| matches!(e, TraceEvent::WorkerEnd { .. }))
                    .count();
                prop_assert_eq!(ws, shards, "{}: WorkerStart per shard", name);
                prop_assert_eq!(we, shards, "{}: WorkerEnd per shard", name);
            }
        }
    }

    /// The round cap stops every executor at the same round with the cap
    /// flag set — also under sharding.
    #[test]
    fn round_cap_agrees_across_executors(
        size in 8usize..40,
        cap in 1u64..6,
        shards in 1usize..5,
    ) {
        let g = generators::ring(size.max(3));
        let ttls = vec![u64::MAX; g.num_nodes()]; // never halts on its own
        let config = SimulatorConfig {
            max_rounds: cap,
            mode: ExecutionMode::Sequential,
        };
        let mk = || ttls.iter().map(|&t| ScheduledGossip::new(t)).collect::<Vec<_>>();
        let seq = Simulator::with_config(&g, config).run(mk());
        let sharded = ShardedTopology::from_topology(&g, shards).unwrap();
        let shd = Simulator::with_config(&sharded, config)
            .run_with_executor(mk(), &ShardedExecutor::new());
        prop_assert!(seq.metrics.hit_round_cap);
        prop_assert!(shd.metrics.hit_round_cap);
        prop_assert_eq!(seq.metrics.rounds, cap);
        prop_assert_eq!(shd.metrics.rounds, cap);
        prop_assert_eq!(seq.outputs, shd.outputs);
    }
}
