//! Distributed-correctness tests under injected message faults.
//!
//! Two layers, one fault model:
//!
//! * **Randomized fault injection** (`dcme_congest::faults`) — proptest
//!   drives random fault plans against random graph families for the paper
//!   pipeline and both randomized baselines.  Every run must either keep
//!   the coloring invariants or fail with a *classified, replayable*
//!   counterexample (`InvariantViolation` plus the byte-identical event
//!   log a second run of the same `(seed, plan)` reproduces) — never a
//!   panic, never a silently wrong coloring.
//! * **Exhaustive schedule exploration** (`dcme_congest::mc`) — the
//!   bounded model checker walks *every* fault placement on tiny
//!   instances.  The `mc_`-prefixed tests are the CI smoke: the checker
//!   must find the seeded violation in the intentionally unprotected
//!   fixture (and replay it), and must pass the hardened fixture and the
//!   paper pipeline under the same bounds.

use std::sync::Arc;

use proptest::prelude::*;

use dcme_algebra::sequence::{SequenceFamily, SequenceParams};
use dcme_baselines::degree_plus_one::{self, DegreePlusOneNode};
use dcme_baselines::ultrafast::{self, UltrafastNode};
use dcme_coloring::trial::TrialNode;
use dcme_congest::faults::{check_coloring, render_log, run_faulty, FaultPlan, InvariantViolation};
use dcme_congest::mc::fixtures::{GreedyRobust, GreedyUnprotected};
use dcme_congest::mc::{self, McConfig, McVerdict, Violation};
use dcme_congest::{InProcess, ShardedTopology, Topology};
use dcme_graphs::coloring::Coloring;
use dcme_graphs::generators;

/// The graph families the fault harness is pinned on (the same four as the
/// executor-equivalence suite).
fn build_graph(family: usize, size: usize, seed: u64) -> Topology {
    match family {
        0 => generators::ring(size.max(3)),
        1 => generators::random_regular(size.max(10), 4, seed),
        2 => generators::star(size.max(2)),
        _ => {
            let w = 2 + size % 7;
            generators::grid(w, size.div_ceil(w).max(1), size % 2 == 0)
        }
    }
}

/// Builds the paper pipeline's per-node state machines for an identity
/// input coloring (always proper, palette `n`), plus its round cap.
fn trial_nodes(g: &Topology) -> (Vec<TrialNode>, u64) {
    let n = g.num_nodes();
    let input = Coloring::from_ids(n);
    let params = SequenceParams::derive(g.max_degree(), input.palette(), 0, 1)
        .expect("identity coloring satisfies Theorem 1.1 preconditions");
    let family = Arc::new(SequenceFamily::new(params));
    let nodes = (0..n)
        .map(|v| TrialNode::new(Arc::clone(&family), input.color(v)))
        .collect();
    (nodes, params.rounds + 2)
}

/// Asserts that one faulted run of a baseline either kept the coloring
/// invariants or failed in the classified, replayable way: the violation
/// is typed, the algorithm never claimed async tolerance, and rerunning
/// the identical `(seed, plan)` reproduces the identical outputs and the
/// byte-identical event log.
fn assert_classified_or_clean<A, F>(
    g: &ShardedTopology,
    mk: F,
    plan: &FaultPlan,
    cap: u64,
    colors_of: impl Fn(&[A::Output]) -> Vec<Option<u64>>,
) -> Option<InvariantViolation>
where
    A: dcme_congest::NodeAlgorithm,
    A::Output: Clone + PartialEq + std::fmt::Debug,
    F: Fn() -> Vec<A>,
{
    let run = run_faulty(g, mk(), plan, InProcess, cap);
    let colors = colors_of(&run.outcome.outputs);
    let verdict = check_coloring(g, &colors, true);
    if let Some(v) = &verdict {
        // A violation must be replayable from (seed, plan) alone: the
        // second run reproduces outputs, metrics counters and event log
        // byte for byte.
        let again = run_faulty(g, mk(), plan, InProcess, cap);
        assert_eq!(
            run.outcome.outputs, again.outcome.outputs,
            "violation {v} must replay deterministically"
        );
        assert_eq!(
            render_log(&run.events),
            render_log(&again.events),
            "event logs must be byte-identical across replays"
        );
        assert!(
            !run.declared_tolerant || plan.retransmit,
            "async-tolerant algorithm violated an invariant under {}: {v}",
            plan.to_spec()
        );
    }
    verdict
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random fault plans × graph families × both randomized baselines:
    /// never a panic, never an unclassified wrong answer.  Retransmission
    /// masks every fault class, so retransmitting runs must additionally
    /// be invariant-clean.
    #[test]
    fn baselines_survive_or_fail_classified(
        family in 0usize..4,
        size in 8usize..32,
        graph_seed in 0u64..200,
        plan_seed in 0u64..1000,
        drop in 0u16..250,
        dup in 0u16..250,
        delay in 0u16..250,
        retransmit_bit in 0u8..2,
        shards in 2usize..5,
    ) {
        let g = build_graph(family, size, graph_seed);
        let n = g.num_nodes();
        let sharded = ShardedTopology::from_topology(&g, shards).expect("shardable");
        let mut plan = FaultPlan::none(plan_seed)
            .with_drop(drop)
            .with_duplication(dup)
            .with_delay(delay, 3);
        let retransmit = retransmit_bit == 1;
        if retransmit {
            plan = plan.with_retransmission();
        }
        let ultra = assert_classified_or_clean(
            &sharded,
            || (0..n).map(|_| UltrafastNode::new(plan_seed)).collect::<Vec<_>>(),
            &plan,
            ultrafast::round_cap(n),
            |outs| outs.to_vec(),
        );
        let dpo = assert_classified_or_clean(
            &sharded,
            || (0..n).map(|_| DegreePlusOneNode::new(plan_seed)).collect::<Vec<_>>(),
            &plan,
            degree_plus_one::round_cap(n),
            |outs| outs.to_vec(),
        );
        if retransmit {
            prop_assert!(ultra.is_none(), "retransmission must mask faults: {:?}", ultra);
            prop_assert!(dpo.is_none(), "retransmission must mask faults: {:?}", dpo);
        }
    }

    /// The paper pipeline under random fault plans: same contract.
    #[test]
    fn paper_pipeline_survives_or_fails_classified(
        family in 0usize..4,
        size in 8usize..24,
        graph_seed in 0u64..100,
        plan_seed in 0u64..1000,
        drop in 0u16..200,
        delay in 0u16..200,
        retransmit_bit in 0u8..2,
        shards in 2usize..5,
    ) {
        let g = build_graph(family, size, graph_seed);
        let sharded = ShardedTopology::from_topology(&g, shards).expect("shardable");
        let mut plan = FaultPlan::none(plan_seed).with_drop(drop).with_delay(delay, 2);
        let retransmit = retransmit_bit == 1;
        if retransmit {
            plan = plan.with_retransmission();
        }
        let (_, cap) = trial_nodes(&g);
        let verdict = assert_classified_or_clean(
            &sharded,
            || trial_nodes(&g).0,
            &plan,
            // Slack beyond the theoretical bound: drops can stall batches.
            cap + 8,
            |outs| outs.iter().map(|o| o.color).collect(),
        );
        if retransmit {
            prop_assert!(verdict.is_none(), "retransmission must mask faults: {:?}", verdict);
        }
    }
}

/// The headline acceptance criterion: the paper pipeline passes all
/// invariant checks under drop + reorder (delay) + duplication once
/// retransmission is enabled, and produces exactly the fault-free
/// coloring.
#[test]
fn paper_pipeline_is_exact_under_drop_and_reorder_with_retransmission() {
    let g = generators::ring(24);
    let sharded = ShardedTopology::from_topology(&g, 4).unwrap();
    let (_, cap) = trial_nodes(&g);

    let clean = run_faulty(
        &sharded,
        trial_nodes(&g).0,
        &FaultPlan::none(7),
        InProcess,
        cap,
    );
    let plan = FaultPlan::none(7)
        .with_drop(200)
        .with_duplication(150)
        .with_delay(200, 2)
        .with_retransmission();
    let masked = run_faulty(&sharded, trial_nodes(&g).0, &plan, InProcess, cap);

    assert!(
        masked.outcome.metrics.faults_retransmitted > 0,
        "plan must fire"
    );
    assert_eq!(masked.outcome.metrics.faults_dropped, 0);
    assert_eq!(masked.outcome.metrics.faults_delayed, 0);
    let colors: Vec<Option<u64>> = masked.outcome.outputs.iter().map(|o| o.color).collect();
    assert_eq!(check_coloring(&sharded, &colors, true), None);
    assert_eq!(
        clean.outcome.outputs, masked.outcome.outputs,
        "retransmission must reproduce the fault-free run exactly"
    );
}

/// A partition window heals once the window closes (with retransmission):
/// the run still terminates with a proper coloring.
#[test]
fn partition_window_heals_with_retransmission() {
    let g = generators::ring(16);
    let sharded = ShardedTopology::from_topology(&g, 4).unwrap();
    let n = g.num_nodes();
    let plan = FaultPlan::none(3)
        .with_partition(0, 1, 0, 3)
        .with_retransmission();
    let run = run_faulty(
        &sharded,
        (0..n).map(|_| UltrafastNode::new(3)).collect::<Vec<_>>(),
        &plan,
        InProcess,
        ultrafast::round_cap(n) + 8,
    );
    assert!(
        run.outcome.metrics.faults_delayed > 0,
        "window must defer traffic"
    );
    assert_eq!(check_coloring(&sharded, &run.outcome.outputs, true), None);
}

/// The unprotected fixture breaks under plain transport-level drops too —
/// and the break replays from `(seed, plan)` alone.  The first violating
/// seed is found by deterministic scan, so the test is stable.
#[test]
fn transport_level_drops_break_the_unprotected_fixture_replayably() {
    let g = generators::ring(12);
    // One node per shard makes every ring edge cross-shard, so the fault
    // layer sees all of the traffic.
    let sharded = ShardedTopology::from_topology(&g, 12).unwrap();
    let n = g.num_nodes();
    let mk = || vec![GreedyUnprotected::new(); n];
    let found = (0..200u64).find(|&seed| {
        let plan = FaultPlan::none(seed).with_drop(400);
        let run = run_faulty(&sharded, mk(), &plan, InProcess, 64);
        let colors: Vec<Option<u64>> = run.outcome.outputs.clone();
        matches!(
            check_coloring(&sharded, &colors, false),
            Some(InvariantViolation::ImproperEdge { .. })
        )
    });
    let seed = found.expect("some drop seed must break the unprotected greedy");
    let plan = FaultPlan::none(seed).with_drop(400);
    let a = run_faulty(&sharded, mk(), &plan, InProcess, 64);
    let b = run_faulty(&sharded, mk(), &plan, InProcess, 64);
    assert!(!a.declared_tolerant);
    assert_eq!(a.outcome.outputs, b.outcome.outputs);
    assert_eq!(render_log(&a.events), render_log(&b.events));
    assert!(!a.events.is_empty());
}

// ---------------------------------------------------------------------------
// Model-checker smoke (run in CI as `cargo test --test fault_injection mc_`).
// ---------------------------------------------------------------------------

/// The checker must find the seeded known-violation fixture: one fault
/// suffices to break the unprotected greedy, the trace is minimal, and it
/// replays to the identical violation.
#[test]
fn mc_finds_and_replays_the_seeded_violation() {
    let g = Topology::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
    let mk = || vec![GreedyUnprotected::new(); 3];
    let config = McConfig::default();
    let McVerdict::Violated(ce) = mc::check(&g, mk, &config) else {
        panic!("the unprotected fixture must violate under one fault");
    };
    assert_eq!(
        ce.trace.len(),
        1,
        "iterative deepening yields a minimal trace"
    );
    assert!(matches!(ce.violation, Violation::ImproperEdge { .. }));
    assert_eq!(mc::replay(&g, mk, &ce.trace, &config), Some(ce.violation));
    assert_eq!(
        mc::replay(&g, mk, &[], &config),
        None,
        "fault-free replay is clean"
    );
}

/// The hardened fixture passes exhaustively under the same budget.  (The
/// triangle is the largest fixture whose hardened run plus one fault of
/// slack fits the 6-round exploration bound.)
#[test]
fn mc_passes_the_hardened_fixture() {
    let g = Topology::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
    let verdict = mc::check(&g, || vec![GreedyRobust::new(1); 3], &McConfig::default());
    assert!(
        matches!(verdict, McVerdict::Pass { .. }),
        "hardened greedy must survive every one-fault schedule, got {verdict:?}"
    );
}

/// The paper pipeline explores cleanly fault-free (budget 0 is still an
/// exhaustive statement: *no* zero-fault schedule breaks it), and keeps
/// properness under every single-duplicate schedule — duplicates are the
/// one fault class Algorithm 1's announcements are idempotent against.
#[test]
fn mc_paper_pipeline_keeps_invariants_in_bounds() {
    let g = generators::ring(6);
    let mk = || trial_nodes(&g).0;
    let fault_free = McConfig {
        max_faults: 0,
        ..McConfig::default()
    };
    assert!(
        matches!(mc::check(&g, mk, &fault_free), McVerdict::Pass { .. }),
        "paper pipeline must pass the exhaustive fault-free check"
    );
    let one_duplicate = McConfig {
        max_faults: 1,
        allow_drop: false,
        allow_delay: false,
        // Termination within MC_MAX_ROUNDS is not part of this claim;
        // properness of every committed color is.
        require_termination: false,
        ..McConfig::default()
    };
    assert!(
        matches!(mc::check(&g, mk, &one_duplicate), McVerdict::Pass { .. }),
        "paper pipeline properness must survive any single duplicate"
    );
}

/// The randomized baselines keep properness under every single-duplicate
/// schedule as well.
#[test]
fn mc_baselines_keep_properness_under_one_duplicate() {
    let g = Topology::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
    let config = McConfig {
        max_faults: 1,
        allow_drop: false,
        allow_delay: false,
        require_termination: false,
        ..McConfig::default()
    };
    let ultra = mc::check(
        &g,
        || (0..4).map(|_| UltrafastNode::new(11)).collect::<Vec<_>>(),
        &config,
    );
    assert!(
        matches!(ultra, McVerdict::Pass { .. }),
        "ultrafast: {ultra:?}"
    );
    let dpo = mc::check(
        &g,
        || {
            (0..4)
                .map(|_| DegreePlusOneNode::new(11))
                .collect::<Vec<_>>()
        },
        &config,
    );
    assert!(matches!(dpo, McVerdict::Pass { .. }), "degree+1: {dpo:?}");
}
