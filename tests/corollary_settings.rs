//! Integration tests for every Corollary 1.2 setting plus Theorem 1.3 and the
//! chopping observation, on workloads larger than the unit tests use.

use dcme_coloring::{chopping, corollary, fast, linial};
use dcme_congest::ExecutionMode;
use dcme_graphs::{coloring::Coloring, generators, verify};

fn workload(n: usize, d: usize, seed: u64) -> (dcme_congest::Topology, Coloring) {
    let g = generators::random_regular(n, d, seed);
    let ids = Coloring::from_ids(n);
    (g, ids)
}

#[test]
fn corollary_settings_meet_their_bounds_on_larger_graphs() {
    let (g, ids) = workload(800, 24, 1);
    let delta = g.max_degree() as u64;

    // (1) One-round Linial reduction.
    let lin = corollary::linial_color_reduction(&g, &ids).unwrap();
    verify::check_proper(&g, lin.coloring()).unwrap();
    assert!(lin.metrics.rounds <= 2);
    assert!(lin.params.encoded_colors() <= 256 * delta * delta);

    // (2) The k trade-off: measured rounds never exceed the theoretical bound
    // ⌈q/k⌉ + 1, and the bound itself shrinks inversely in k.
    let mut last_bound = u64::MAX;
    for k in [1u64, 8, 64, 512] {
        let out = corollary::kdelta_coloring(&g, &ids, k).unwrap();
        verify::check_proper(&g, out.coloring()).unwrap();
        assert!(out.metrics.rounds <= out.params.rounds + 1);
        assert!(out.params.rounds <= last_bound);
        last_bound = out.params.rounds;
    }

    // (4) β-outdegree coloring.
    let beta = 5u32;
    let out = corollary::outdegree_coloring(&g, &ids, beta).unwrap();
    verify::check_outdegree_orientation(&g, &out.result.oriented, beta as usize).unwrap();
    verify::check_partition_degree(&g, &out.result, beta as usize).unwrap();

    // (5) and (6) defective colorings.
    let d = 6u32;
    let one = corollary::defective_one_round(&g, &ids, d).unwrap();
    verify::check_defective(&g, one.coloring(), d as usize).unwrap();
    assert!(one.metrics.rounds <= 2);
    let (pair, _) = corollary::defective_multi_round(&g, &ids, d).unwrap();
    verify::check_defective(&g, &pair, d as usize).unwrap();
}

#[test]
fn theorem_1_3_round_scaling_beats_the_linear_worst_case_bound() {
    // With ε = 0.5 the defective phase is O(Δ^ε) and the class phase O(√d);
    // the measured total must land well below the Θ(Δ)-round *worst-case
    // bound* of the linear k = 1 algorithm.  (On random inputs the linear
    // algorithm terminates adaptively much earlier than its bound — that
    // early termination is itself reported in EXPERIMENTS.md — so the
    // guarantee-level comparison is against the bound.)
    let (g, ids) = workload(700, 48, 3);
    let m = (g.max_degree() as u64).pow(4).max(700);
    let input = Coloring::from_identifiers(&(0..700u64).collect::<Vec<_>>(), m);

    let fast_out = fast::fast_coloring(&g, &input, 0.5, ExecutionMode::Sequential).unwrap();
    verify::check_proper(&g, &fast_out.coloring).unwrap();

    let linear = corollary::kdelta_coloring(&g, &ids, 1).unwrap();
    assert!(
        fast_out.total_rounds() < linear.params.rounds,
        "Theorem 1.3 ({}) should beat the linear worst-case bound ({}) at Δ = {}",
        fast_out.total_rounds(),
        linear.params.rounds,
        g.max_degree()
    );
    // And the palette stays O(Δ^{1+ε}).
    let delta = g.max_degree() as f64;
    assert!(
        (fast_out.coloring.distinct_colors() as f64) <= 16.0 * delta.powf(1.6),
        "palette {} too large",
        fast_out.coloring.distinct_colors()
    );
}

#[test]
fn linial_iterations_stay_logstar_small_as_n_grows() {
    let mut last_iterations = 0;
    for n in [1 << 8, 1 << 11, 1 << 14] {
        let g = generators::ring(n);
        let out = linial::delta_squared_from_ids(&g, None).unwrap();
        verify::check_proper(&g, &out.coloring).unwrap();
        assert!(out.iterations <= 6);
        last_iterations = last_iterations.max(out.iterations);
    }
    assert!(last_iterations >= 1);
}

#[test]
fn chopping_overhead_matches_observation_5_1() {
    let (g, ids) = workload(500, 10, 5);
    let out = chopping::reduce_by_chopping(&g, &ids, 1.0, &chopping::default_reducer).unwrap();
    verify::check_proper(&g, &out.coloring).unwrap();
    assert_eq!(out.coloring.palette(), g.max_degree() as u64 + 1);
    let expected = chopping::expected_iterations(500, g.max_degree(), 1.0);
    assert!(out.iterations <= expected + 2);
}
