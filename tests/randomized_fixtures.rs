//! Fixed-seed regression fixtures for the randomized baselines.
//!
//! The raw-speed pass (bitset palettes, branchless cores) must be
//! bit-for-bit invisible: these fixtures pin ultrafast / degree+1
//! outputs, round counts, message counts and bit totals to the values
//! recorded on the pre-optimisation `HashSet`-based implementation.
//! Any drift in the RNG draw sequence or conflict-resolution order
//! shows up here as a hard failure with the diverging fixture named.

use dcme_baselines::degree_plus_one::{self, DegreePlusOneNode};
use dcme_baselines::ultrafast::{self, UltrafastNode};
use dcme_congest::{
    ExecutionMode, NodeAlgorithm, RunOutcome, Simulator, SimulatorConfig, Topology,
};
use dcme_graphs::generators;

/// One recorded run: (fixture name, rounds, messages, total_bits, output digest).
type Fixture = (&'static str, u64, u64, u64, u64);

/// FNV-1a over the finished color assignment, order-sensitive.
fn digest(outputs: &[Option<u64>]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for out in outputs {
        let c = out.expect("fixture runs must finish within the round cap");
        h ^= c.wrapping_add(1);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn graphs() -> Vec<(&'static str, Topology)> {
    vec![
        ("ring64", generators::ring(64)),
        ("rr48d4", generators::random_regular(48, 4, 7)),
        ("star33", generators::star(33)),
        ("grid6x8", generators::grid(6, 8, true)),
    ]
}

fn run<A: NodeAlgorithm<Output = Option<u64>>>(
    g: &Topology,
    cap: u64,
    nodes: Vec<A>,
) -> RunOutcome<Option<u64>> {
    let config = SimulatorConfig {
        max_rounds: cap,
        mode: ExecutionMode::Sequential,
    };
    Simulator::with_config(g, config).run(nodes)
}

fn record() -> Vec<Fixture> {
    let mut got = Vec::new();
    for (gname, g) in graphs() {
        let n = g.num_nodes();
        for seed in [11u64, 42] {
            let uf = run(
                &g,
                ultrafast::round_cap(n),
                (0..n).map(|_| UltrafastNode::new(seed)).collect::<Vec<_>>(),
            );
            let name: &'static str =
                Box::leak(format!("ultrafast/{gname}/seed{seed}").into_boxed_str());
            got.push((
                name,
                uf.metrics.rounds,
                uf.metrics.messages,
                uf.metrics.total_bits,
                digest(&uf.outputs),
            ));
            let d1 = run(
                &g,
                degree_plus_one::round_cap(n),
                (0..n)
                    .map(|_| DegreePlusOneNode::new(seed))
                    .collect::<Vec<_>>(),
            );
            let name: &'static str = Box::leak(format!("d1lc/{gname}/seed{seed}").into_boxed_str());
            got.push((
                name,
                d1.metrics.rounds,
                d1.metrics.messages,
                d1.metrics.total_bits,
                digest(&d1.outputs),
            ));
        }
    }
    got
}

/// Recorded on the pre-optimisation implementation (HashSet palettes,
/// per-port contains loops) — the raw-speed pass must reproduce these
/// exactly.
const EXPECTED: &[Fixture] = &[
    ("ultrafast/ring64/seed11", 6, 354, 1214, 0xe02376e3d9a43bd1),
    ("d1lc/ring64/seed11", 6, 314, 1686, 0x422014c1045ad1a6),
    ("ultrafast/ring64/seed42", 7, 344, 1200, 0xd5801b6b205a73e3),
    ("d1lc/ring64/seed42", 5, 324, 1716, 0xecf2187692cf6838),
    ("ultrafast/rr48d4/seed11", 8, 540, 2144, 0x010c3579fdff0476),
    ("d1lc/rr48d4/seed11", 5, 484, 2927, 0x78af8e2f53db69da),
    ("ultrafast/rr48d4/seed42", 7, 520, 1992, 0x022ccff340bc6c38),
    ("d1lc/rr48d4/seed42", 6, 457, 2598, 0xf56e99886d25df8a),
    ("ultrafast/star33/seed11", 4, 134, 647, 0xbd6873d509fb8a07),
    ("d1lc/star33/seed11", 2, 132, 636, 0x23a85b5bfc8f2a03),
    ("ultrafast/star33/seed42", 3, 132, 926, 0x25fea8e0720cfc2d),
    ("d1lc/star33/seed42", 2, 132, 702, 0x6b5e6539c5a50294),
    ("ultrafast/grid6x8/seed11", 6, 576, 2468, 0xe96bc0a3a2bdfef9),
    ("d1lc/grid6x8/seed11", 6, 476, 2720, 0x79070a7a4a02bf78),
    ("ultrafast/grid6x8/seed42", 7, 544, 2308, 0xb0241944076caa9e),
    ("d1lc/grid6x8/seed42", 5, 480, 2720, 0xcc65cf611da4fb8c),
];

#[test]
fn fixed_seed_runs_match_pre_optimisation_recordings() {
    let got = record();
    if EXPECTED.len() != got.len() || EXPECTED != got.as_slice() {
        let mut listing = String::new();
        for (name, r, m, b, d) in &got {
            listing.push_str(&format!("    (\"{name}\", {r}, {m}, {b}, {d:#018x}),\n"));
        }
        panic!("fixture drift; current values:\n{listing}");
    }
}
