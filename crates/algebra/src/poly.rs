//! Dense polynomials over a prime field.
//!
//! The trial-sequence construction assigns the `i`-th input color the `i`-th
//! polynomial of degree at most `f` over `F_q` in *lexicographic order of the
//! coefficient tuple* `(a_0, …, a_f)`.  Because every node knows `m`, `f`
//! and `q`, every node derives the same polynomial for a given input color
//! without any communication — this is exactly how the paper argues the
//! CONGEST implementation (a node only ever sends its input color).
//!
//! Lemma 2.1 of the paper (two distinct polynomials of degree ≤ f agree on at
//! most `max(f1,f2)` points) is what bounds the number of blocked trials; the
//! property is exercised directly by the tests and property tests here.

use serde::{Deserialize, Serialize};

use crate::field::Fq;

/// A polynomial over `F_q`, stored as coefficients `a_0 + a_1 x + … + a_f x^f`.
///
/// Trailing zero coefficients are allowed (the paper's family `P^f_q`
/// includes *all* polynomials of degree at most `f`, not just those of exact
/// degree `f`), so two `Polynomial` values are equal iff their coefficient
/// vectors are equal after padding with zeros.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Polynomial {
    field: Fq,
    coeffs: Vec<u64>,
}

impl Polynomial {
    /// Creates a polynomial from coefficients `a_0, a_1, …` (low to high).
    ///
    /// Coefficients are reduced modulo `q`.
    pub fn new(field: Fq, coeffs: Vec<u64>) -> Self {
        let coeffs = coeffs.into_iter().map(|c| field.reduce(c)).collect();
        Self { field, coeffs }
    }

    /// The zero polynomial of formal degree bound `f` (i.e. `f + 1` zero
    /// coefficients).
    pub fn zero(field: Fq, f: usize) -> Self {
        Self {
            field,
            coeffs: vec![0; f + 1],
        }
    }

    /// The underlying field.
    pub fn field(&self) -> Fq {
        self.field
    }

    /// The coefficient slice (low to high).
    pub fn coefficients(&self) -> &[u64] {
        &self.coeffs
    }

    /// The formal degree bound: number of coefficients minus one.
    pub fn degree_bound(&self) -> usize {
        self.coeffs.len().saturating_sub(1)
    }

    /// The exact degree: index of the highest non-zero coefficient, or `None`
    /// for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.iter().rposition(|&c| c != 0)
    }

    /// Evaluates the polynomial at `x` by Horner's rule.
    ///
    /// # Examples
    ///
    /// ```
    /// use dcme_algebra::{Fq, Polynomial};
    /// let f = Fq::new(7).unwrap();
    /// // p(x) = 1 + 2x + 3x^2
    /// let p = Polynomial::new(f, vec![1, 2, 3]);
    /// assert_eq!(p.eval(0), 1);
    /// assert_eq!(p.eval(2), (1 + 4 + 12) % 7);
    /// ```
    pub fn eval(&self, x: u64) -> u64 {
        let x = self.field.reduce(x);
        let mut acc = 0u64;
        for &c in self.coeffs.iter().rev() {
            acc = self.field.add(self.field.mul(acc, x), c);
        }
        acc
    }

    /// The number of points of `F_q` on which `self` and `other` agree.
    ///
    /// By Lemma 2.1 this is at most `max(deg self, deg other)` for distinct
    /// polynomials.
    pub fn agreement_count(&self, other: &Polynomial) -> usize {
        assert_eq!(self.field, other.field, "polynomials over different fields");
        self.field
            .elements()
            .filter(|&x| self.eval(x) == other.eval(x))
            .count()
    }

    /// Builds the polynomial with lexicographic index `index` among all
    /// polynomials of degree at most `f` over `F_q`.
    ///
    /// The coefficient tuple `(a_0, …, a_f)` is the base-`q` representation
    /// of `index` with `a_0` as the **most significant** digit, matching the
    /// paper's "order the tuples lexicographically" convention.  There are
    /// `q^(f+1)` such polynomials; `index` must be smaller than that.
    ///
    /// # Panics
    ///
    /// Panics if `index >= q^(f+1)` (the caller — the parameter derivation in
    /// [`crate::sequence`] — guarantees `m <= q^(f+1)`).
    pub fn from_lex_index(field: Fq, f: usize, index: u64) -> Self {
        let q = field.size();
        let capacity = q.checked_pow((f + 1) as u32);
        if let Some(cap) = capacity {
            assert!(
                index < cap,
                "polynomial index {index} out of range for q={q}, f={f}"
            );
        }
        let mut digits = vec![0u64; f + 1];
        let mut rest = index;
        // Fill from least significant digit = a_f upward so that a_0 is the
        // most significant digit of `index` in base q.
        for slot in (0..=f).rev() {
            digits[slot] = rest % q;
            rest /= q;
        }
        Self {
            field,
            coeffs: digits,
        }
    }

    /// The lexicographic index of this polynomial among all polynomials with
    /// the same degree bound, inverse of [`Polynomial::from_lex_index`].
    pub fn lex_index(&self) -> u64 {
        let q = self.field.size();
        let mut index = 0u64;
        for &c in &self.coeffs {
            index = index * q + c;
        }
        index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn field(q: u64) -> Fq {
        Fq::new(q).unwrap()
    }

    #[test]
    fn eval_matches_naive() {
        let f = field(13);
        let p = Polynomial::new(f, vec![3, 0, 7, 1]);
        for x in 0..13 {
            let naive = (3 + 7 * x * x + x * x * x) % 13;
            assert_eq!(p.eval(x), naive);
        }
    }

    #[test]
    fn degree_ignores_trailing_zeros() {
        let f = field(5);
        let p = Polynomial::new(f, vec![1, 2, 0, 0]);
        assert_eq!(p.degree(), Some(1));
        assert_eq!(p.degree_bound(), 3);
        assert_eq!(Polynomial::zero(f, 4).degree(), None);
    }

    #[test]
    fn lex_index_roundtrip_exhaustive_small() {
        let f = field(3);
        let deg = 2usize;
        for index in 0..27u64 {
            let p = Polynomial::from_lex_index(f, deg, index);
            assert_eq!(p.lex_index(), index);
            assert_eq!(p.coefficients().len(), deg + 1);
        }
    }

    #[test]
    fn lex_index_is_injective() {
        let f = field(5);
        let deg = 2usize;
        let mut seen = std::collections::HashSet::new();
        for index in 0..125u64 {
            let p = Polynomial::from_lex_index(f, deg, index);
            assert!(
                seen.insert(p.coefficients().to_vec()),
                "duplicate at {index}"
            );
        }
    }

    #[test]
    fn lex_order_matches_tuple_order() {
        // Index 0 must be the all-zero tuple and index 1 must differ only in
        // the last coefficient (a_f), i.e. a_0 is the most significant digit.
        let f = field(7);
        let p0 = Polynomial::from_lex_index(f, 3, 0);
        let p1 = Polynomial::from_lex_index(f, 3, 1);
        assert_eq!(p0.coefficients(), &[0, 0, 0, 0]);
        assert_eq!(p1.coefficients(), &[0, 0, 0, 1]);
        let p7 = Polynomial::from_lex_index(f, 3, 7);
        assert_eq!(p7.coefficients(), &[0, 0, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn lex_index_out_of_range_panics() {
        let f = field(3);
        let _ = Polynomial::from_lex_index(f, 1, 9);
    }

    #[test]
    fn lemma_2_1_distinct_polynomials_agree_on_few_points() {
        // Exhaustive check of Lemma 2.1 for q = 11, f = 2.
        let f = field(11);
        let deg = 2usize;
        let total = 11u64.pow(3);
        for i in 0..total {
            // Sampling all pairs is 1.7M comparisons; restrict j to a stride
            // to keep the test fast while still covering many pairs.
            for j in ((i + 1)..total).step_by(97) {
                let pi = Polynomial::from_lex_index(f, deg, i);
                let pj = Polynomial::from_lex_index(f, deg, j);
                let agree = pi.agreement_count(&pj);
                assert!(
                    agree <= deg,
                    "polynomials {i} and {j} agree on {agree} > {deg} points"
                );
            }
        }
    }

    proptest! {
        #[test]
        fn prop_eval_linearity(a in 0u64..97, b in 0u64..97, x in 0u64..97) {
            // (a + b x) evaluated must equal a + b*x mod 97.
            let f = field(97);
            let p = Polynomial::new(f, vec![a, b]);
            prop_assert_eq!(p.eval(x), (a + b * x) % 97);
        }

        #[test]
        fn prop_lex_roundtrip(q in prop::sample::select(vec![2u64, 3, 5, 7, 11, 13]),
                              fdeg in 0usize..4,
                              raw in 0u64..10_000) {
            let field = Fq::new(q).unwrap();
            let cap = q.pow((fdeg + 1) as u32);
            let index = raw % cap;
            let p = Polynomial::from_lex_index(field, fdeg, index);
            prop_assert_eq!(p.lex_index(), index);
        }

        #[test]
        fn prop_lemma_2_1(q in prop::sample::select(vec![13u64, 17, 19, 23]),
                          i in 0u64..1000, j in 0u64..1000) {
            let fdeg = 2usize;
            let field = Fq::new(q).unwrap();
            let cap = q.pow((fdeg + 1) as u32);
            let (i, j) = (i % cap, j % cap);
            prop_assume!(i != j);
            let pi = Polynomial::from_lex_index(field, fdeg, i);
            let pj = Polynomial::from_lex_index(field, fdeg, j);
            prop_assert!(pi.agreement_count(&pj) <= fdeg);
        }
    }
}
