//! Trial sequences for the mother algorithm (Theorem 1.1).
//!
//! Given the graph parameters `Δ`, the input-coloring size `m`, the defect
//! parameter `d` and the batch size `k`, Theorem 1.1 fixes
//!
//! * `Z = Δ / (d + 1)` (integer division, clamped to ≥ 1),
//! * `f = ⌈log_Z m⌉` — the polynomial degree bound,
//! * a prime `q` with `2fZ < q < 4fZ` (Equation (1)),
//! * `X = 4 · Z · f` — the sequence-domain bound used to state the number of
//!   output colors `k · X`,
//! * `R = ⌈q / k⌉` — the number of batches, i.e. the round bound.
//!
//! For input color `i`, the trial sequence is
//! `s_i(x) = (x mod k, p_i(x))` for `x = 0, …, q-1`, where `p_i` is the
//! `i`-th polynomial of degree ≤ f over `F_q` in lexicographic order.  The
//! sequence is consumed in `R` consecutive batches of `k` trials each (the
//! last batch may be shorter).
//!
//! The key combinatorial property (proved in the paper and asserted by the
//! tests here) is that two distinct input colors produce sequences that
//! collide — same batch index *and* same trial pair — in at most `f`
//! positions, and a fixed adopted color can collide with at most `f` later
//! trials of any neighbour.

use serde::{Deserialize, Serialize};

use crate::field::Fq;
use crate::poly::Polynomial;
use crate::primes;

/// A single color trial: the pair `(slot, value) = (x mod k, p_i(x))`.
///
/// The *output color* adopted by a node is exactly the trial pair it kept;
/// the encoded color index is `slot * q + value`, which lies in `[k · q] ⊆ [k · X]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Trial {
    /// First coordinate `x mod k` (the position inside the batch).
    pub slot: u64,
    /// Second coordinate `p_i(x) mod q`.
    pub value: u64,
}

impl Trial {
    /// Encodes the trial as a single color index in `[k * q]`.
    pub fn encode(&self, q: u64) -> u64 {
        self.slot * q + self.value
    }

    /// Decodes a color index back into a trial pair.
    pub fn decode(color: u64, q: u64) -> Self {
        Trial {
            slot: color / q,
            value: color % q,
        }
    }
}

/// Errors arising from invalid Theorem 1.1 parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamError {
    /// `m` must be at least 1.
    EmptyPalette,
    /// `k` must be at least 1.
    ZeroBatch,
    /// The defect parameter must satisfy `0 <= d <= Δ - 1` (for `Δ >= 1`).
    DefectTooLarge {
        /// requested defect
        d: u32,
        /// maximum degree
        delta: u32,
    },
    /// The derived field is too small to host one polynomial per input color.
    ///
    /// This is the regime the paper's Remark ("the condition d = Δ^ε") rules
    /// out: when `Δ/d = O(1)` and `m` is large, `q^(f+1) < m` can occur only
    /// through arithmetic mistakes, but we keep the check for safety.
    FieldTooSmall {
        /// the derived field size
        q: u64,
        /// the derived degree bound
        f: u64,
        /// the number of input colors
        m: u64,
    },
}

impl core::fmt::Display for ParamError {
    fn fmt(&self, fmt: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ParamError::EmptyPalette => write!(fmt, "input palette size m must be >= 1"),
            ParamError::ZeroBatch => write!(fmt, "batch size k must be >= 1"),
            ParamError::DefectTooLarge { d, delta } => {
                write!(
                    fmt,
                    "defect d={d} must be <= Δ-1={}",
                    delta.saturating_sub(1)
                )
            }
            ParamError::FieldTooSmall { q, f, m } => write!(
                fmt,
                "field of size {q} with degree bound {f} has too few polynomials for m={m} colors"
            ),
        }
    }
}

impl std::error::Error for ParamError {}

/// The derived parameters of Theorem 1.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SequenceParams {
    /// Maximum degree `Δ` of the graph.
    pub delta: u32,
    /// Number of input colors `m`.
    pub m: u64,
    /// Defect tolerance `d` (0 for proper colorings).
    pub d: u32,
    /// Batch size `k >= 1`.
    pub k: u64,
    /// `Z = max(1, Δ / (d+1))`.
    pub z: u64,
    /// Degree bound `f = max(1, ⌈log_Z m⌉)`.
    pub f: u64,
    /// Field size: a prime in `(2fZ, 4fZ)`.
    pub q: u64,
    /// `X = 4 Z f` — the domain bound; note `q < X`.
    pub x: u64,
    /// `R = ⌈q / k⌉` — number of batches (round bound for the main loop).
    pub rounds: u64,
}

impl SequenceParams {
    /// Derives the Theorem 1.1 parameters from `(Δ, m, d, k)`.
    ///
    /// # Errors
    ///
    /// Returns a [`ParamError`] if the inputs violate the theorem's
    /// preconditions (`m >= 1`, `k >= 1`, `0 <= d <= Δ-1`).
    ///
    /// # Examples
    ///
    /// ```
    /// use dcme_algebra::SequenceParams;
    /// // Linial-style setting: proper coloring (d = 0), m = Δ^4.
    /// let p = SequenceParams::derive(16, 16u64.pow(4), 0, 1).unwrap();
    /// assert_eq!(p.z, 16);
    /// assert!(p.q > 2 * p.f * p.z && p.q < 4 * p.f * p.z);
    /// ```
    pub fn derive(delta: u32, m: u64, d: u32, k: u64) -> Result<Self, ParamError> {
        if m == 0 {
            return Err(ParamError::EmptyPalette);
        }
        if k == 0 {
            return Err(ParamError::ZeroBatch);
        }
        if delta > 0 && d > delta.saturating_sub(1) {
            return Err(ParamError::DefectTooLarge { d, delta });
        }
        // Z = ⌈Δ/(d+1)⌉.  The proof of Theorem 1.1 charges at most
        // 2·f·Δ/(d+1) blocked trials and needs this to stay below q > 2fZ,
        // so Z must upper-bound the real ratio Δ/(d+1): round it up.  For
        // degenerate graphs (Δ = 0) use Z = 1 so isolated vertices still get
        // a valid (trivial) sequence.
        let z = (delta as u64).div_ceil(d as u64 + 1).max(1);
        let f = ceil_log(m, z).max(1);
        let q = primes::bertrand_prime(f, z);
        let x = 4 * z * f;
        debug_assert!(q < x || x <= 2, "Equation (1) guarantees q < 4fZ = X");
        // One distinct *non-constant* polynomial per input color must exist:
        // m <= q^(f+1) - q (constants are excluded, see SequenceFamily::polynomial).
        let capacity = (q as u128).checked_pow((f + 1) as u32);
        match capacity {
            Some(cap) if (m as u128) <= cap - q as u128 => {}
            Some(_) => return Err(ParamError::FieldTooSmall { q, f, m }),
            // Overflowing u128 means the capacity is astronomically large.
            None => {}
        }
        let rounds = q.div_ceil(k);
        Ok(Self {
            delta,
            m,
            d,
            k,
            z,
            f,
            q,
            x,
            rounds,
        })
    }

    /// The tight single-round (Linial-step) parameters of Remark 2.2.
    ///
    /// For the special case `k = X`, `d = 0` — one batch containing the whole
    /// sequence — the proof of Theorem 1.1 only needs `q > f·Δ` (each of the
    /// at most `Δ` neighbours blocks at most `f` of the `q` trials, and there
    /// are no already-colored neighbours in a single round).  Searching for
    /// the smallest prime satisfying this gives a palette of `q² ≈ (fΔ)²`
    /// instead of `(4fΔ)²`, which is what makes the iterated Linial reduction
    /// actually shrink the palette for moderate `n`.
    pub fn derive_one_shot(delta: u32, m: u64) -> Result<Self, ParamError> {
        if m == 0 {
            return Err(ParamError::EmptyPalette);
        }
        let delta64 = (delta as u64).max(1);
        let mut q = primes::next_prime(delta64 + 2);
        loop {
            let f = ceil_log(m, q).max(1);
            if q > f * delta64 {
                return Ok(Self {
                    delta,
                    m,
                    d: 0,
                    k: q,
                    z: delta64,
                    f,
                    q,
                    x: q,
                    rounds: 1,
                });
            }
            q = primes::next_prime(q + 1);
        }
    }

    /// The field `F_q` the sequences are built over.
    pub fn field(&self) -> Fq {
        Fq::new_unchecked(self.q)
    }

    /// Upper bound `k · X` on the number of output colors stated by
    /// Theorem 1.1.  The encoded colors actually lie in `[k · q] ⊆ [k · X]`.
    pub fn color_bound(&self) -> u64 {
        self.k * self.x
    }

    /// Number of colors actually addressable by encoded trials (`k · q`).
    pub fn encoded_colors(&self) -> u64 {
        self.k * self.q
    }

    /// Maximum number of *blocked* trials a node can ever experience:
    /// `2 f Δ / (d+1) = 2 f Z` (each neighbour blocks at most `f` trials
    /// while active and at most `f` trials after committing).  The proof of
    /// Theorem 1.1 relies on this being strictly smaller than `q`.
    pub fn blocked_bound(&self) -> u64 {
        2 * self.f * self.z
    }
}

/// Ceiling of `log_base(value)` with the conventions needed here:
/// `ceil_log(1, _) = 0`, and a base of 0 or 1 falls back to `log_2`.
pub fn ceil_log(value: u64, base: u64) -> u64 {
    if value <= 1 {
        return 0;
    }
    let base = base.max(2);
    let mut acc: u128 = 1;
    let mut exp = 0u64;
    while acc < value as u128 {
        acc *= base as u128;
        exp += 1;
    }
    exp
}

/// The family of trial sequences for a fixed parameter set.
///
/// A `SequenceFamily` is a *pure function* of the parameters: every node
/// constructs the identical family locally, which is what makes the CONGEST
/// implementation possible (nodes only ever need to announce their input
/// color and adopted colors).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SequenceFamily {
    params: SequenceParams,
}

impl SequenceFamily {
    /// Builds the family for the given parameters.
    pub fn new(params: SequenceParams) -> Self {
        Self { params }
    }

    /// Convenience constructor deriving the parameters first.
    pub fn derive(delta: u32, m: u64, d: u32, k: u64) -> Result<Self, ParamError> {
        Ok(Self::new(SequenceParams::derive(delta, m, d, k)?))
    }

    /// The parameters of this family.
    pub fn params(&self) -> &SequenceParams {
        &self.params
    }

    /// The polynomial assigned to input color `color`.
    ///
    /// Input colors are mapped to the lexicographically ordered *non-constant*
    /// polynomials of degree at most `f`.  Skipping the constant polynomials
    /// matters for the defective case (`d > 0`): the proof of Theorem 1.1
    /// charges each permanently colored neighbour at most `f` conflicts via
    /// Lemma 2.1, which requires the node's own polynomial to differ from the
    /// constant equal to the neighbour's adopted value — a constant `p_v`
    /// would be blocked on its entire sequence once more than `d` neighbours
    /// adopt that value.  There are `q^{f+1} - q ≥ q^f ≥ m` non-constant
    /// polynomials, so the mapping stays injective.
    ///
    /// # Panics
    ///
    /// Panics if `color >= m`.
    pub fn polynomial(&self, color: u64) -> Polynomial {
        assert!(
            color < self.params.m,
            "input color {color} out of range [0, {})",
            self.params.m
        );
        // Constant polynomials have lexicographic indices that are multiples
        // of q^f (all digits except the leading/constant coefficient are 0).
        let c = color as u128;
        let index = match (self.params.q as u128).checked_pow(self.params.f as u32) {
            Some(block) => {
                let per_block = block - 1;
                (c / per_block) * block + (c % per_block) + 1
            }
            // q^f exceeds u128: every valid color index is far below the
            // first non-zero constant polynomial, so shifting by one suffices.
            None => c + 1,
        };
        Polynomial::from_lex_index(self.params.field(), self.params.f as usize, index as u64)
    }

    /// The `x`-th trial of input color `color`: `(x mod k, p_color(x))`.
    pub fn trial(&self, color: u64, x: u64) -> Trial {
        debug_assert!(x < self.params.q);
        let p = self.polynomial(color);
        Trial {
            slot: x % self.params.k,
            value: p.eval(x),
        }
    }

    /// The full sequence of trials for `color` (length `q`).
    pub fn sequence(&self, color: u64) -> Vec<Trial> {
        let p = self.polynomial(color);
        (0..self.params.q)
            .map(|x| Trial {
                slot: x % self.params.k,
                value: p.eval(x),
            })
            .collect()
    }

    /// The `batch`-th batch (0-based) of trials for `color`.
    ///
    /// Batches have size `k`, except possibly the last one which has size
    /// `q - k⌊q/k⌋` as described in the paper.
    pub fn batch(&self, color: u64, batch: u64) -> Vec<Trial> {
        let mut out = Vec::with_capacity(self.params.k as usize);
        self.batch_into(color, batch, &mut out);
        out
    }

    /// Appends batch `batch` of color `color`'s trial sequence to `out`
    /// — the allocation-free variant of [`batch`](Self::batch) for hot
    /// receive loops that pool many neighbours' batches in one buffer.
    pub fn batch_into(&self, color: u64, batch: u64, out: &mut Vec<Trial>) {
        assert!(batch < self.params.rounds, "batch index out of range");
        let p = self.polynomial(color);
        let start = batch * self.params.k;
        let end = (start + self.params.k).min(self.params.q);
        out.extend((start..end).map(|x| Trial {
            slot: x % self.params.k,
            value: p.eval(x),
        }));
    }

    /// Number of batches `R`.
    pub fn num_batches(&self) -> u64 {
        self.params.rounds
    }

    /// Counts positions `x` on which the sequences of two colors produce the
    /// *identical* trial pair.  For distinct colors this is at most `f`
    /// (Lemma 2.1), which is the quantity the proof of Theorem 1.1 charges
    /// per neighbour.
    pub fn collision_count(&self, color_a: u64, color_b: u64) -> usize {
        let pa = self.polynomial(color_a);
        let pb = self.polynomial(color_b);
        (0..self.params.q)
            .filter(|&x| pa.eval(x) == pb.eval(x))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn derive_rejects_bad_inputs() {
        assert_eq!(
            SequenceParams::derive(8, 0, 0, 1),
            Err(ParamError::EmptyPalette)
        );
        assert_eq!(
            SequenceParams::derive(8, 10, 0, 0),
            Err(ParamError::ZeroBatch)
        );
        assert!(matches!(
            SequenceParams::derive(8, 10, 8, 1),
            Err(ParamError::DefectTooLarge { .. })
        ));
    }

    #[test]
    fn derived_prime_satisfies_equation_1() {
        for delta in [2u32, 4, 8, 16, 32, 64] {
            for d in [0u32, 1, delta / 4, delta / 2] {
                if delta > 0 && d > delta - 1 {
                    continue;
                }
                let m = (delta as u64).pow(4).max(2);
                let p = SequenceParams::derive(delta, m, d, 1).unwrap();
                assert!(2 * p.f * p.z < p.q && p.q < 4 * p.f * p.z);
                assert_eq!(p.x, 4 * p.z * p.f);
                assert!(p.blocked_bound() < p.q, "proof requires 2fZ < q");
            }
        }
    }

    #[test]
    fn one_shot_params_satisfy_remark_2_2() {
        for delta in [2u32, 4, 8, 16, 64] {
            for m in [16u64, 1000, 1 << 20] {
                let p = SequenceParams::derive_one_shot(delta, m).unwrap();
                assert!(primes::is_prime(p.q));
                // The single-round blocked-trials bound: q > f·Δ.
                assert!(
                    p.q > p.f * delta as u64,
                    "delta={delta} m={m}: q={} f={}",
                    p.q,
                    p.f
                );
                // One distinct polynomial per input color.
                assert!((p.q as u128).pow((p.f + 1) as u32) >= m as u128);
                assert_eq!(p.rounds, 1);
                assert_eq!(p.k, p.q);
            }
        }
    }

    #[test]
    fn one_shot_palette_shrinks_for_moderate_inputs() {
        // The whole point of the tighter constants: one step from n = 4096
        // identifiers on a ring (Δ = 2) already lands well below n.
        let p = SequenceParams::derive_one_shot(2, 4096).unwrap();
        assert!(p.encoded_colors() < 4096, "palette {}", p.encoded_colors());
        let p = SequenceParams::derive_one_shot(8, 2000).unwrap();
        assert!(p.encoded_colors() < 2000);
    }

    #[test]
    fn isolated_vertices_get_trivial_params() {
        let p = SequenceParams::derive(0, 5, 0, 1).unwrap();
        assert_eq!(p.z, 1);
        assert!(p.q >= 2);
    }

    #[test]
    fn sequence_length_and_batching() {
        let fam = SequenceFamily::derive(8, 4096, 0, 3).unwrap();
        let q = fam.params().q;
        let seq = fam.sequence(7);
        assert_eq!(seq.len() as u64, q);
        let mut reassembled = Vec::new();
        for b in 0..fam.num_batches() {
            reassembled.extend(fam.batch(7, b));
        }
        assert_eq!(reassembled, seq);
        // All but the last batch have size exactly k.
        for b in 0..fam.num_batches() - 1 {
            assert_eq!(fam.batch(7, b).len() as u64, fam.params().k);
        }
    }

    #[test]
    fn trials_in_one_batch_have_distinct_slots() {
        let fam = SequenceFamily::derive(16, 65536, 0, 5).unwrap();
        for b in 0..fam.num_batches() {
            let batch = fam.batch(3, b);
            let slots: std::collections::HashSet<u64> = batch.iter().map(|t| t.slot).collect();
            assert_eq!(slots.len(), batch.len(), "slots within a batch must differ");
        }
    }

    #[test]
    fn collision_bound_holds_for_sampled_pairs() {
        let fam = SequenceFamily::derive(8, 4096, 0, 2).unwrap();
        let f = fam.params().f as usize;
        for a in (0..4096u64).step_by(311) {
            for b in (1..4096u64).step_by(487) {
                if a == b {
                    continue;
                }
                assert!(
                    fam.collision_count(a, b) <= f,
                    "colors {a},{b} collide too often"
                );
            }
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let q = 23;
        for slot in 0..5u64 {
            for value in 0..q {
                let t = Trial { slot, value };
                assert_eq!(Trial::decode(t.encode(q), q), t);
            }
        }
    }

    #[test]
    fn encoded_colors_fit_in_bound() {
        let fam = SequenceFamily::derive(16, 16u64.pow(4), 0, 4).unwrap();
        let q = fam.params().q;
        for color in (0..fam.params().m).step_by(1000) {
            for t in fam.sequence(color) {
                assert!(t.encode(q) < fam.params().encoded_colors());
                assert!(fam.params().encoded_colors() <= fam.params().color_bound());
            }
        }
    }

    #[test]
    fn ceil_log_small_cases() {
        assert_eq!(ceil_log(1, 10), 0);
        assert_eq!(ceil_log(2, 2), 1);
        assert_eq!(ceil_log(9, 3), 2);
        assert_eq!(ceil_log(10, 3), 3);
        assert_eq!(ceil_log(27, 3), 3);
        assert_eq!(ceil_log(28, 3), 4);
        // base < 2 falls back to log_2
        assert_eq!(ceil_log(8, 1), 3);
    }

    proptest! {
        #[test]
        fn prop_ceil_log_is_minimal_exponent(value in 1u64..1_000_000, base in 2u64..16) {
            let e = ceil_log(value, base);
            prop_assert!((base as u128).pow(e as u32) >= value as u128);
            if e > 0 {
                prop_assert!((base as u128).pow((e - 1) as u32) < value as u128);
            }
        }

        #[test]
        fn prop_distinct_colors_collide_at_most_f_times(
            delta in 2u32..20,
            a in 0u64..500,
            b in 0u64..500,
        ) {
            prop_assume!(a != b);
            let m = 512u64;
            let fam = SequenceFamily::derive(delta, m, 0, 1).unwrap();
            prop_assume!(a < m && b < m);
            prop_assert!(fam.collision_count(a, b) <= fam.params().f as usize);
        }

        #[test]
        fn prop_params_round_bound(delta in 1u32..64, k in 1u64..40) {
            let m = (delta as u64).pow(2).max(2);
            let p = SequenceParams::derive(delta, m, 0, k).unwrap();
            prop_assert_eq!(p.rounds, p.q.div_ceil(k));
            // Round bound claimed by the paper: R = ceil(X/k) and q < X.
            prop_assert!(p.rounds <= p.x.div_ceil(k));
        }
    }
}
