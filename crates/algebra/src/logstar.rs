//! The iterated logarithm `log* n` and related helpers.
//!
//! Linial's algorithm reduces an `m`-coloring to an `O(Δ² poly log m)`
//! coloring per step and therefore needs `O(log* n)` steps to go from unique
//! `O(log n)`-bit identifiers down to `O(Δ²)` colors.  The experiment
//! binaries report measured iteration counts against `log* n`, so we provide
//! the standard definition here.

/// The iterated logarithm base 2: the number of times `log2` must be applied
/// to `n` before the result drops to at most 1.
///
/// # Examples
///
/// ```
/// use dcme_algebra::logstar::log_star;
/// assert_eq!(log_star(1), 0);
/// assert_eq!(log_star(2), 1);
/// assert_eq!(log_star(4), 2);
/// assert_eq!(log_star(16), 3);
/// assert_eq!(log_star(65536), 4);
/// assert_eq!(log_star(u64::MAX), 5);
/// ```
pub fn log_star(n: u64) -> u32 {
    let mut n = n as f64;
    let mut count = 0u32;
    while n > 1.0 {
        n = n.log2();
        count += 1;
    }
    count
}

/// Ceiling of `log2(n)` for `n >= 1`, with `ceil_log2(1) = 0`.
///
/// This is the bit length needed to encode values in `[n]` and is used for
/// CONGEST bandwidth accounting.
pub fn ceil_log2(n: u64) -> u32 {
    if n <= 1 {
        0
    } else {
        64 - (n - 1).leading_zeros()
    }
}

/// Number of bits needed to transmit one value from a universe of size `n`
/// (at least one bit even for a trivial universe, since a message must be
/// distinguishable from silence).
pub fn bits_for(n: u64) -> u32 {
    ceil_log2(n).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_star_known_values() {
        assert_eq!(log_star(0), 0);
        assert_eq!(log_star(1), 0);
        assert_eq!(log_star(2), 1);
        assert_eq!(log_star(3), 2);
        assert_eq!(log_star(4), 2);
        assert_eq!(log_star(5), 3);
        assert_eq!(log_star(16), 3);
        assert_eq!(log_star(17), 4);
        assert_eq!(log_star(65536), 4);
        assert_eq!(log_star(65537), 5);
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
    }

    #[test]
    fn bits_for_is_positive() {
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(256), 8);
    }
}
