//! Primality testing and prime search.
//!
//! Equation (1) of the paper requires a prime `q` with `2fZ < q < 4fZ`,
//! whose existence follows from Bertrand's postulate.  The moduli involved
//! are small (at most a few million for any realistic `Δ` and `m`), so a
//! deterministic Miller–Rabin test with a fixed witness set — exact for all
//! 64-bit integers — is more than sufficient and keeps the construction
//! fully deterministic, as the distributed algorithm requires.

/// Deterministic Miller–Rabin primality test, exact for all `u64` inputs.
///
/// Uses the standard deterministic witness set
/// `{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}` which is known to be
/// sufficient for every integer below `3.3 · 10^24`.
///
/// # Examples
///
/// ```
/// use dcme_algebra::primes::is_prime;
/// assert!(is_prime(2));
/// assert!(is_prime(97));
/// assert!(!is_prime(1));
/// assert!(!is_prime(561)); // Carmichael number
/// ```
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n % p == 0 {
            return false;
        }
    }
    // Write n - 1 = d * 2^s with d odd.
    let mut d = n - 1;
    let mut s = 0u32;
    while d % 2 == 0 {
        d /= 2;
        s += 1;
    }
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a % n, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

#[inline]
fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

fn pow_mod(mut base: u64, mut exp: u64, m: u64) -> u64 {
    let mut acc = 1u64 % m;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, m);
        }
        base = mul_mod(base, base, m);
        exp >>= 1;
    }
    acc
}

/// Returns the smallest prime `p` with `p >= n` (and `p >= 2`).
///
/// # Examples
///
/// ```
/// use dcme_algebra::primes::next_prime;
/// assert_eq!(next_prime(0), 2);
/// assert_eq!(next_prime(14), 17);
/// assert_eq!(next_prime(17), 17);
/// ```
pub fn next_prime(n: u64) -> u64 {
    let mut candidate = n.max(2);
    loop {
        if is_prime(candidate) {
            return candidate;
        }
        candidate += 1;
    }
}

/// Finds a prime strictly inside the open interval `(lo, hi)`.
///
/// Returns `None` if the interval contains no prime.  The paper's parameter
/// choice `(2fZ, 4fZ)` always contains one by Bertrand's postulate as long
/// as `2fZ >= 1`, but the function is defensive and lets the caller handle
/// degenerate parameters.
///
/// # Examples
///
/// ```
/// use dcme_algebra::primes::prime_in_range;
/// assert_eq!(prime_in_range(10, 14), Some(11));
/// assert_eq!(prime_in_range(8, 10), None); // 9 is the only interior point
/// ```
pub fn prime_in_range(lo: u64, hi: u64) -> Option<u64> {
    if hi <= lo + 1 {
        return None;
    }
    let p = next_prime(lo + 1);
    if p < hi {
        Some(p)
    } else {
        None
    }
}

/// The prime required by Equation (1) of the paper: some `q` with
/// `2·f·Z < q < 4·f·Z`.
///
/// By Bertrand's postulate such a prime exists whenever `f·Z >= 1`; the
/// function panics on `f * Z == 0` because that indicates a caller bug
/// (the paper requires `Z >= 1` and `f >= 1`).
pub fn bertrand_prime(f: u64, z: u64) -> u64 {
    assert!(f >= 1 && z >= 1, "Equation (1) requires f >= 1 and Z >= 1");
    let lo = 2 * f * z;
    let hi = 4 * f * z;
    prime_in_range(lo, hi)
        .expect("Bertrand's postulate guarantees a prime in (2fZ, 4fZ) for fZ >= 1")
}

/// All primes `< n`, by a simple sieve.  Used by tests and by the exhaustive
/// lower-bound search where only tiny bounds occur.
pub fn primes_below(n: u64) -> Vec<u64> {
    if n <= 2 {
        return Vec::new();
    }
    let n = n as usize;
    let mut sieve = vec![true; n];
    sieve[0] = false;
    sieve[1] = false;
    let mut i = 2;
    while i * i < n {
        if sieve[i] {
            let mut j = i * i;
            while j < n {
                sieve[j] = false;
                j += i;
            }
        }
        i += 1;
    }
    sieve
        .iter()
        .enumerate()
        .filter_map(|(i, &p)| if p { Some(i as u64) } else { None })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes_classified_correctly() {
        let known = [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47];
        for n in 0..50u64 {
            assert_eq!(is_prime(n), known.contains(&n), "n={n}");
        }
    }

    #[test]
    fn carmichael_numbers_are_composite() {
        for n in [561u64, 1105, 1729, 2465, 2821, 6601, 8911] {
            assert!(!is_prime(n), "Carmichael number {n} misclassified");
        }
    }

    #[test]
    fn large_known_primes() {
        assert!(is_prime(2_147_483_647)); // 2^31 - 1
        assert!(is_prime(4_294_967_291)); // largest prime < 2^32
        assert!(!is_prime(4_294_967_295));
        assert!(is_prime(1_000_000_007));
    }

    #[test]
    fn sieve_agrees_with_miller_rabin() {
        let sieved = primes_below(2000);
        let tested: Vec<u64> = (0..2000).filter(|&n| is_prime(n)).collect();
        assert_eq!(sieved, tested);
    }

    #[test]
    fn next_prime_is_minimal() {
        for n in 0..500u64 {
            let p = next_prime(n);
            assert!(is_prime(p));
            assert!(p >= n.max(2));
            for q in n.max(2)..p {
                assert!(!is_prime(q));
            }
        }
    }

    #[test]
    fn bertrand_prime_in_window() {
        for f in 1..8u64 {
            for z in 1..40u64 {
                let q = bertrand_prime(f, z);
                assert!(is_prime(q));
                assert!(2 * f * z < q && q < 4 * f * z, "f={f} z={z} q={q}");
            }
        }
    }

    #[test]
    fn prime_in_empty_range_is_none() {
        assert_eq!(prime_in_range(3, 4), None);
        assert_eq!(prime_in_range(24, 29), None); // 25,26,27,28 all composite
    }
}
