//! Prime-field arithmetic.
//!
//! [`Fq`] is a tiny value type describing the prime field `F_q` together with
//! the modular operations the polynomial evaluation in Algorithm 1 needs.
//! Field elements are represented as canonical `u64` residues in `[0, q)`.
//!
//! The fields used by the coloring algorithms are small (the prime `q` is
//! `Θ(Δ · log_Z m)`, comfortably below `2^32` for every realistic parameter
//! choice), so all arithmetic is done in `u128` intermediates and reduced,
//! which is both simple and overflow-free.

use serde::{Deserialize, Serialize};

use crate::primes;

/// A prime field `F_q` of size `q`.
///
/// The type only stores the modulus; elements are plain `u64` values reduced
/// modulo `q`.  All operations debug-assert that the operands are canonical
/// residues.
///
/// # Examples
///
/// ```
/// use dcme_algebra::Fq;
///
/// let f = Fq::new(7).unwrap();
/// assert_eq!(f.add(5, 4), 2);
/// assert_eq!(f.mul(3, 5), 1);
/// assert_eq!(f.pow(3, 6), 1); // Fermat: a^(q-1) = 1
/// assert_eq!(f.inv(3).unwrap(), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Fq {
    q: u64,
}

/// Errors returned by [`Fq`] constructors and operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldError {
    /// The requested modulus is not a prime number.
    NotPrime(u64),
    /// Division or inversion by zero.
    ZeroInverse,
}

impl core::fmt::Display for FieldError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FieldError::NotPrime(q) => write!(f, "{q} is not prime"),
            FieldError::ZeroInverse => write!(f, "attempted to invert zero"),
        }
    }
}

impl std::error::Error for FieldError {}

impl Fq {
    /// Creates the field `F_q`, verifying that `q` is prime.
    pub fn new(q: u64) -> Result<Self, FieldError> {
        if primes::is_prime(q) {
            Ok(Self { q })
        } else {
            Err(FieldError::NotPrime(q))
        }
    }

    /// Creates the field without the primality check.
    ///
    /// Intended for callers that have already obtained `q` from
    /// [`primes::prime_in_range`] or similar; the debug build still checks.
    pub fn new_unchecked(q: u64) -> Self {
        debug_assert!(primes::is_prime(q), "modulus must be prime");
        Self { q }
    }

    /// The field size `q`.
    #[inline]
    pub fn size(&self) -> u64 {
        self.q
    }

    /// Reduces an arbitrary integer into the canonical residue range.
    #[inline]
    pub fn reduce(&self, x: u64) -> u64 {
        x % self.q
    }

    /// Addition in `F_q`.
    #[inline]
    pub fn add(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.q && b < self.q);
        let s = a + b;
        if s >= self.q {
            s - self.q
        } else {
            s
        }
    }

    /// Subtraction in `F_q`.
    #[inline]
    pub fn sub(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.q && b < self.q);
        if a >= b {
            a - b
        } else {
            a + self.q - b
        }
    }

    /// Negation in `F_q`.
    #[inline]
    pub fn neg(&self, a: u64) -> u64 {
        debug_assert!(a < self.q);
        if a == 0 {
            0
        } else {
            self.q - a
        }
    }

    /// Multiplication in `F_q`.
    #[inline]
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.q && b < self.q);
        ((a as u128 * b as u128) % self.q as u128) as u64
    }

    /// Exponentiation by squaring.
    pub fn pow(&self, mut base: u64, mut exp: u64) -> u64 {
        debug_assert!(base < self.q);
        let mut acc = 1u64 % self.q;
        base %= self.q;
        while exp > 0 {
            if exp & 1 == 1 {
                acc = self.mul(acc, base);
            }
            base = self.mul(base, base);
            exp >>= 1;
        }
        acc
    }

    /// Multiplicative inverse via Fermat's little theorem.
    pub fn inv(&self, a: u64) -> Result<u64, FieldError> {
        if a % self.q == 0 {
            return Err(FieldError::ZeroInverse);
        }
        Ok(self.pow(a, self.q - 2))
    }

    /// Division `a / b` in `F_q`.
    pub fn div(&self, a: u64, b: u64) -> Result<u64, FieldError> {
        Ok(self.mul(a, self.inv(b)?))
    }

    /// Iterator over all field elements `0, 1, …, q-1`.
    pub fn elements(&self) -> impl Iterator<Item = u64> {
        0..self.q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_rejects_composites() {
        assert_eq!(Fq::new(1), Err(FieldError::NotPrime(1)));
        assert_eq!(Fq::new(4), Err(FieldError::NotPrime(4)));
        assert_eq!(Fq::new(100), Err(FieldError::NotPrime(100)));
        assert!(Fq::new(2).is_ok());
        assert!(Fq::new(101).is_ok());
    }

    #[test]
    fn add_sub_roundtrip() {
        let f = Fq::new(13).unwrap();
        for a in f.elements() {
            for b in f.elements() {
                let s = f.add(a, b);
                assert_eq!(f.sub(s, b), a);
                assert_eq!(f.add(f.neg(a), a), 0);
            }
        }
    }

    #[test]
    fn mul_matches_naive() {
        let f = Fq::new(31).unwrap();
        for a in f.elements() {
            for b in f.elements() {
                assert_eq!(f.mul(a, b), (a * b) % 31);
            }
        }
    }

    #[test]
    fn fermat_inverse() {
        let f = Fq::new(97).unwrap();
        for a in 1..97 {
            let inv = f.inv(a).unwrap();
            assert_eq!(f.mul(a, inv), 1, "a={a}");
        }
        assert_eq!(f.inv(0), Err(FieldError::ZeroInverse));
    }

    #[test]
    fn pow_agrees_with_repeated_multiplication() {
        let f = Fq::new(11).unwrap();
        for base in f.elements() {
            let mut acc = 1;
            for e in 0..20u64 {
                assert_eq!(f.pow(base, e), acc);
                acc = f.mul(acc, base);
            }
        }
    }

    #[test]
    fn division_is_mul_by_inverse() {
        let f = Fq::new(17).unwrap();
        for a in f.elements() {
            for b in 1..17 {
                let d = f.div(a, b).unwrap();
                assert_eq!(f.mul(d, b), a);
            }
        }
    }

    #[test]
    fn two_element_field() {
        let f = Fq::new(2).unwrap();
        assert_eq!(f.add(1, 1), 0);
        assert_eq!(f.mul(1, 1), 1);
        assert_eq!(f.inv(1).unwrap(), 1);
    }
}
