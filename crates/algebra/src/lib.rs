//! Algebraic substrate for *Distributed Graph Coloring Made Easy* (Maus, SPAA 2021).
//!
//! The paper's mother algorithm (Theorem 1.1) needs, for every input color
//! `i ∈ [m]`, a sequence of color *trials* such that any two distinct
//! sequences collide in few positions.  The construction is the classical
//! one from Linial's paper \[Lin92\] built on polynomials over a finite field:
//! two distinct polynomials of degree at most `f` over `F_q` agree on at most
//! `f` points (Lemma 2.1 of the paper), so the sequences
//! `s_i(x) = (x mod k, p_i(x) mod q)` for `x = 0, …, q-1` intersect in at most
//! `f` positions.
//!
//! This crate provides everything needed to realise that construction:
//!
//! * [`field::Fq`] — a prime field with modular arithmetic,
//! * [`primes`] — deterministic primality testing and the Bertrand-window
//!   prime search used by Equation (1) of the paper,
//! * [`poly::Polynomial`] — dense polynomials over `F_q` with lexicographic
//!   indexing (so every node can derive *the same* polynomial for a given
//!   input color without communication),
//! * [`sequence`] — the trial sequences of Algorithm 1 together with the
//!   parameter derivation (`Z`, `f`, `q`, `X`, `R`) of Theorem 1.1,
//! * [`logstar`] — the iterated logarithm used to state Linial-style round
//!   bounds.
//!
//! Everything is `no_std`-agnostic in spirit (no I/O, no global state) and
//! deterministic: the same inputs always produce the same sequences on every
//! node, which is exactly the property the distributed algorithm relies on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod field;
pub mod logstar;
pub mod poly;
pub mod primes;
pub mod sequence;

pub use field::Fq;
pub use poly::Polynomial;
pub use sequence::{SequenceFamily, SequenceParams, Trial};
