//! The immutable communication graph with port numbering.
//!
//! Nodes are integers `0..n`.  Each node sees its incident edges as *ports*
//! `0..deg(v)`; the port numbering is what a LOCAL/CONGEST node actually has
//! access to (it does **not** know which node sits behind a port unless that
//! node tells it).  The topology additionally precomputes, for every directed
//! edge `(u, v)`, the port at which `u` appears in `v`'s port list, so the
//! simulator can deliver messages in `O(1)` per message.

use serde::{Deserialize, Serialize};

/// Identifier of a node: a dense index in `0..n`.
pub type NodeId = usize;

/// A port of a node: an index in `0..deg(v)` identifying one incident edge.
pub type Port = usize;

/// Errors produced when constructing a [`Topology`] or a
/// [`ShardedTopology`](crate::sharded::ShardedTopology).
///
/// The enum is `#[non_exhaustive]`: construction helpers may learn to report
/// new failure modes without a breaking change, so downstream `match`es need
/// a wildcard arm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TopologyError {
    /// An edge endpoint is `>= n`.
    NodeOutOfRange {
        /// the offending endpoint
        node: NodeId,
        /// the number of nodes
        n: usize,
    },
    /// A self-loop `(v, v)` was supplied.
    SelfLoop(NodeId),
    /// The same undirected edge was supplied twice.
    DuplicateEdge(NodeId, NodeId),
    /// A sharded construction was asked for zero shards.
    ShardCountZero,
    /// The graph exceeds the compact index range of the sharded
    /// representation (node ids and directed-edge slots are stored as `u32`).
    NodeRangeOverflow {
        /// the node count or directed-edge count that does not fit
        value: usize,
        /// the largest representable value
        limit: usize,
    },
    /// An edge stream replay disagrees with the pass-1
    /// [`ShardPlan`](crate::ShardPlan) it is being combined with: some node
    /// saw more or fewer edges than the plan's degree header recorded.
    PlanMismatch {
        /// the first node whose streamed degree differs from the plan
        node: NodeId,
    },
}

impl core::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TopologyError::NodeOutOfRange { node, n } => {
                write!(f, "edge endpoint {node} out of range for n={n}")
            }
            TopologyError::SelfLoop(v) => write!(f, "self-loop at node {v}"),
            TopologyError::DuplicateEdge(u, v) => write!(f, "duplicate edge ({u}, {v})"),
            TopologyError::ShardCountZero => write!(f, "shard count must be at least 1"),
            TopologyError::NodeRangeOverflow { value, limit } => {
                write!(
                    f,
                    "graph too large for the compact sharded representation \
                     ({value} exceeds the u32 index limit {limit})"
                )
            }
            TopologyError::PlanMismatch { node } => {
                write!(
                    f,
                    "edge stream does not replay the shard plan: degree of \
                     node {node} disagrees with the plan's degree header"
                )
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// The read-only topology interface the round engine is written against.
///
/// [`Topology`] (one global CSR) and
/// [`ShardedTopology`](crate::sharded::ShardedTopology) (edge-partitioned
/// per-shard CSR slices) both implement this trait, so the
/// [`RoundState`](crate::executor::RoundState) arena, every
/// [`Executor`](crate::executor::Executor) and the
/// [`Simulator`](crate::Simulator) work with either representation.
///
/// # The flat slot contract
///
/// `port_range(v)` maps node `v`'s ports into a single flat index space of
/// size [`num_directed_edges`](TopologyView::num_directed_edges): slot
/// `port_range(v).start + p` belongs to the directed edge arriving at
/// `(v, p)`.  The ranges of distinct nodes are disjoint, cover
/// `0..num_directed_edges()`, and are **ascending in `v`** — which is what
/// lets a sharded executor hand each worker ownership of one contiguous
/// slot sub-range.
pub trait TopologyView: Sync {
    /// Number of nodes `n`.
    fn num_nodes(&self) -> usize;

    /// Number of directed edges (`2 ·` undirected edges) — the size of any
    /// flat per-port buffer, such as the round engine's inbox arena.
    fn num_directed_edges(&self) -> usize;

    /// Maximum degree `Δ`.
    fn max_degree(&self) -> u32;

    /// Degree of node `v`.
    fn degree(&self, v: NodeId) -> usize;

    /// The neighbour of `v` behind port `p`.
    fn neighbor_at(&self, v: NodeId, p: Port) -> NodeId;

    /// The port at which `v` appears in the port list of its neighbour
    /// behind port `p`.
    fn reverse_port(&self, v: NodeId, p: Port) -> Port;

    /// The flat slot range of node `v`'s ports (see the trait docs for the
    /// indexing contract).
    fn port_range(&self, v: NodeId) -> core::ops::Range<usize>;
}

/// An undirected communication graph in compressed adjacency form.
///
/// # Examples
///
/// ```
/// use dcme_congest::Topology;
/// // A triangle.
/// let g = Topology::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
/// assert_eq!(g.num_nodes(), 3);
/// assert_eq!(g.num_edges(), 3);
/// assert_eq!(g.max_degree(), 2);
/// assert_eq!(g.degree(0), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    n: usize,
    /// CSR offsets: neighbours of `v` live at `adjacency[offsets[v]..offsets[v+1]]`.
    offsets: Vec<usize>,
    /// Flattened neighbour lists, sorted per node.
    adjacency: Vec<NodeId>,
    /// For the `i`-th entry of `adjacency` (an edge `v -> u`), the port at
    /// which `v` appears in `u`'s neighbour list.
    reverse_port: Vec<Port>,
    num_edges: usize,
    max_degree: u32,
}

impl Topology {
    /// Builds a topology from an undirected edge list.
    ///
    /// Edges may be given in either orientation; self-loops and duplicate
    /// edges are rejected.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Result<Self, TopologyError> {
        let mut seen = std::collections::HashSet::with_capacity(edges.len());
        for &(u, v) in edges {
            if u >= n {
                return Err(TopologyError::NodeOutOfRange { node: u, n });
            }
            if v >= n {
                return Err(TopologyError::NodeOutOfRange { node: v, n });
            }
            if u == v {
                return Err(TopologyError::SelfLoop(u));
            }
            let key = (u.min(v), u.max(v));
            if !seen.insert(key) {
                return Err(TopologyError::DuplicateEdge(key.0, key.1));
            }
        }

        // Build the CSR directly via degree counting — no intermediate
        // per-node Vec<Vec<NodeId>>, so construction performs a constant
        // number of flat allocations regardless of n.
        let mut offsets = vec![0usize; n + 1];
        for &(u, v) in edges {
            offsets[u + 1] += 1;
            offsets[v + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }

        let mut adjacency: Vec<NodeId> = vec![0; 2 * edges.len()];
        let mut cursor: Vec<usize> = offsets[..n].to_vec();
        for &(u, v) in edges {
            adjacency[cursor[u]] = v;
            cursor[u] += 1;
            adjacency[cursor[v]] = u;
            cursor[v] += 1;
        }
        for v in 0..n {
            adjacency[offsets[v]..offsets[v + 1]].sort_unstable();
        }

        // reverse_port[i]: position of v within u's sorted neighbour list,
        // where adjacency[i] = u and i belongs to node v.
        let mut reverse_port = vec![0usize; adjacency.len()];
        for v in 0..n {
            for port in 0..offsets[v + 1] - offsets[v] {
                let u = adjacency[offsets[v] + port];
                // Find v in u's list by binary search (lists are sorted).
                let pos = adjacency[offsets[u]..offsets[u + 1]]
                    .binary_search(&v)
                    .expect("undirected edge must appear in both lists");
                reverse_port[offsets[v] + port] = pos;
            }
        }

        let max_degree = (0..n)
            .map(|v| (offsets[v + 1] - offsets[v]) as u32)
            .max()
            .unwrap_or(0);

        Ok(Self {
            n,
            offsets,
            adjacency,
            reverse_port,
            num_edges: edges.len(),
            max_degree,
        })
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Number of directed edges (`2 · num_edges`) — the size of any flat
    /// per-port buffer, such as the round engine's inbox arena.
    #[inline]
    pub fn num_directed_edges(&self) -> usize {
        self.adjacency.len()
    }

    /// The CSR index range of node `v`'s ports: slot `port_range(v).start + p`
    /// of a flat per-port buffer belongs to `(v, p)`.
    ///
    /// This is the indexing contract shared by the round engine's
    /// [`RoundState`](crate::executor::RoundState) arena and by future
    /// edge-partitioned shards.
    #[inline]
    pub fn port_range(&self, v: NodeId) -> core::ops::Range<usize> {
        self.offsets[v]..self.offsets[v + 1]
    }

    /// Maximum degree `Δ`.
    #[inline]
    pub fn max_degree(&self) -> u32 {
        self.max_degree
    }

    /// Degree of node `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// The neighbours of `v`, in port order.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adjacency[self.offsets[v]..self.offsets[v + 1]]
    }

    /// The neighbour of `v` behind port `p`.
    #[inline]
    pub fn neighbor_at(&self, v: NodeId, p: Port) -> NodeId {
        self.neighbors(v)[p]
    }

    /// The port at which `v` appears in the port list of its neighbour behind
    /// port `p` (i.e. the port on which that neighbour receives `v`'s
    /// messages).
    #[inline]
    pub fn reverse_port(&self, v: NodeId, p: Port) -> Port {
        self.reverse_port[self.offsets[v] + p]
    }

    /// The port of `u` in `v`'s list, if `u` and `v` are adjacent.
    pub fn port_of(&self, v: NodeId, u: NodeId) -> Option<Port> {
        self.neighbors(v).binary_search(&u).ok()
    }

    /// Whether `u` and `v` are adjacent.
    pub fn are_adjacent(&self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return false;
        }
        self.port_of(v, u).is_some()
    }

    /// Iterator over all undirected edges `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.n).flat_map(move |v| {
            self.neighbors(v)
                .iter()
                .filter(move |&&u| v < u)
                .map(move |&u| (v, u))
        })
    }

    /// Iterator over all node identifiers.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        0..self.n
    }

    /// The set of nodes within hop distance at most `r` of `v` (including `v`).
    ///
    /// Used by the ruling-set verifier and by power-graph constructions.
    /// Allocates a fresh [`BallScratch`] per call; callers that query many
    /// balls of the same graph should reuse one scratch via
    /// [`Topology::ball_into`].
    pub fn ball(&self, v: NodeId, r: usize) -> Vec<NodeId> {
        let mut scratch = BallScratch::default();
        let mut out = Vec::new();
        self.ball_into(&mut scratch, v, r, &mut out);
        out
    }

    /// Writes the ball of radius `r` around `v` into `out` (cleared first),
    /// reusing `scratch` across calls.
    ///
    /// The scratch marks visited nodes with a per-call epoch instead of
    /// re-allocating (or re-zeroing) an `n`-sized visited buffer per call,
    /// so querying all `n` balls of a graph costs `O(n)` allocation total
    /// rather than `O(n²)`.
    pub fn ball_into(&self, scratch: &mut BallScratch, v: NodeId, r: usize, out: &mut Vec<NodeId>) {
        out.clear();
        let epoch = scratch.begin(self.n);
        scratch.mark[v] = epoch;
        scratch.dist[v] = 0;
        scratch.queue.push_back(v);
        out.push(v);
        while let Some(u) = scratch.queue.pop_front() {
            if scratch.dist[u] == r {
                continue;
            }
            for &w in self.neighbors(u) {
                if scratch.mark[w] != epoch {
                    scratch.mark[w] = epoch;
                    scratch.dist[w] = scratch.dist[u] + 1;
                    out.push(w);
                    scratch.queue.push_back(w);
                }
            }
        }
    }

    /// Builds the power graph `G^p`: same vertex set, an edge between any two
    /// distinct vertices at hop distance at most `p` in `G`.
    ///
    /// The paper uses `G^{α-1}` to lift (2, r)-ruling sets to (α, r)-ruling
    /// sets in the LOCAL model.
    pub fn power(&self, p: usize) -> Topology {
        assert!(p >= 1, "power must be at least 1");
        let mut edges = Vec::new();
        let mut scratch = BallScratch::default();
        let mut ball = Vec::new();
        for v in 0..self.n {
            self.ball_into(&mut scratch, v, p, &mut ball);
            for &u in &ball {
                if v < u {
                    edges.push((v, u));
                }
            }
        }
        Topology::from_edges(self.n, &edges).expect("power graph edges are valid by construction")
    }
}

impl TopologyView for Topology {
    #[inline]
    fn num_nodes(&self) -> usize {
        Topology::num_nodes(self)
    }

    #[inline]
    fn num_directed_edges(&self) -> usize {
        Topology::num_directed_edges(self)
    }

    #[inline]
    fn max_degree(&self) -> u32 {
        Topology::max_degree(self)
    }

    #[inline]
    fn degree(&self, v: NodeId) -> usize {
        Topology::degree(self, v)
    }

    #[inline]
    fn neighbor_at(&self, v: NodeId, p: Port) -> NodeId {
        Topology::neighbor_at(self, v, p)
    }

    #[inline]
    fn reverse_port(&self, v: NodeId, p: Port) -> Port {
        Topology::reverse_port(self, v, p)
    }

    #[inline]
    fn port_range(&self, v: NodeId) -> core::ops::Range<usize> {
        Topology::port_range(self, v)
    }
}

/// Reusable BFS scratch for [`Topology::ball_into`].
///
/// Visited state is tracked by stamping nodes with a monotonically
/// increasing epoch, so reusing the scratch across calls costs no clearing:
/// a new call just bumps the epoch, invalidating all previous stamps at
/// once.  Buffers grow to `n` on first use and are then recycled.
#[derive(Debug, Default)]
pub struct BallScratch {
    /// Epoch at which each node was last visited.
    mark: Vec<u64>,
    /// BFS distance, valid only where `mark[v]` equals the current epoch.
    dist: Vec<usize>,
    /// Current epoch (incremented per call).
    epoch: u64,
    /// BFS frontier queue (drained empty by every call).
    queue: std::collections::VecDeque<NodeId>,
}

impl BallScratch {
    /// Starts a new traversal over `n` nodes; returns the fresh epoch.
    fn begin(&mut self, n: usize) -> u64 {
        if self.mark.len() < n {
            self.mark.resize(n, 0);
            self.dist.resize(n, 0);
        }
        self.epoch += 1;
        self.queue.clear();
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Topology {
        Topology::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap()
    }

    #[test]
    fn rejects_invalid_edges() {
        assert!(matches!(
            Topology::from_edges(3, &[(0, 3)]),
            Err(TopologyError::NodeOutOfRange { node: 3, n: 3 })
        ));
        assert!(matches!(
            Topology::from_edges(3, &[(1, 1)]),
            Err(TopologyError::SelfLoop(1))
        ));
        assert!(matches!(
            Topology::from_edges(3, &[(0, 1), (1, 0)]),
            Err(TopologyError::DuplicateEdge(0, 1))
        ));
    }

    #[test]
    fn empty_graph() {
        let g = Topology::from_edges(5, &[]).unwrap();
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        for v in 0..5 {
            assert_eq!(g.degree(v), 0);
        }
    }

    #[test]
    fn neighbors_are_sorted_and_ports_consistent() {
        let g = Topology::from_edges(5, &[(4, 0), (4, 2), (4, 1), (1, 0)]).unwrap();
        assert_eq!(g.neighbors(4), &[0, 1, 2]);
        assert_eq!(g.neighbors(0), &[1, 4]);
        // Port consistency: the reverse of the reverse port is the original.
        for v in g.nodes() {
            for p in 0..g.degree(v) {
                let u = g.neighbor_at(v, p);
                let rp = g.reverse_port(v, p);
                assert_eq!(g.neighbor_at(u, rp), v);
                assert_eq!(g.reverse_port(u, rp), p);
            }
        }
    }

    #[test]
    fn csr_port_ranges_partition_the_directed_edges() {
        let g = Topology::from_edges(5, &[(4, 0), (4, 2), (4, 1), (1, 0)]).unwrap();
        assert_eq!(g.num_directed_edges(), 8);
        let mut covered = 0;
        for v in g.nodes() {
            let r = g.port_range(v);
            assert_eq!(r.len(), g.degree(v));
            assert_eq!(r.start, covered);
            covered = r.end;
        }
        assert_eq!(covered, g.num_directed_edges());
    }

    #[test]
    fn degrees_and_adjacency() {
        let g = triangle();
        for v in 0..3 {
            assert_eq!(g.degree(v), 2);
        }
        assert!(g.are_adjacent(0, 1));
        assert!(g.are_adjacent(1, 2));
        assert!(!g.are_adjacent(0, 0));
    }

    #[test]
    fn edges_iterator_is_canonical() {
        let g = triangle();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn ball_and_power_graph_on_path() {
        // Path 0-1-2-3-4
        let g = Topology::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let mut b = g.ball(0, 2);
        b.sort_unstable();
        assert_eq!(b, vec![0, 1, 2]);
        let g2 = g.power(2);
        assert!(g2.are_adjacent(0, 2));
        assert!(g2.are_adjacent(0, 1));
        assert!(!g2.are_adjacent(0, 3));
        assert_eq!(g2.max_degree(), 4); // middle vertex reaches everything
    }

    #[test]
    fn power_one_is_identity() {
        let g = triangle();
        let g1 = g.power(1);
        assert_eq!(g.num_edges(), g1.num_edges());
        for (u, v) in g.edges() {
            assert!(g1.are_adjacent(u, v));
        }
    }

    #[test]
    fn ball_scratch_is_reusable_across_nodes_and_graphs() {
        let g = Topology::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let mut scratch = BallScratch::default();
        let mut out = Vec::new();
        for v in g.nodes() {
            for r in 0..3 {
                g.ball_into(&mut scratch, v, r, &mut out);
                let mut fresh = g.ball(v, r);
                out.sort_unstable();
                fresh.sort_unstable();
                assert_eq!(out, fresh, "v={v} r={r}");
            }
        }
        // The same scratch serves a different (smaller) graph.
        let h = triangle();
        h.ball_into(&mut scratch, 1, 1, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn topology_view_matches_inherent_methods() {
        let g = Topology::from_edges(5, &[(4, 0), (4, 2), (4, 1), (1, 0)]).unwrap();
        let view: &dyn TopologyView = &g;
        assert_eq!(view.num_nodes(), 5);
        assert_eq!(view.num_directed_edges(), 8);
        assert_eq!(view.max_degree(), 3);
        for v in g.nodes() {
            assert_eq!(view.degree(v), g.degree(v));
            assert_eq!(view.port_range(v), g.port_range(v));
            for p in 0..g.degree(v) {
                assert_eq!(view.neighbor_at(v, p), g.neighbor_at(v, p));
                assert_eq!(view.reverse_port(v, p), g.reverse_port(v, p));
            }
        }
    }

    #[test]
    fn error_display_covers_sharding_variants() {
        let e = TopologyError::ShardCountZero;
        assert!(e.to_string().contains("at least 1"));
        let e = TopologyError::NodeRangeOverflow {
            value: 1 << 33,
            limit: u32::MAX as usize,
        };
        assert!(e.to_string().contains("u32 index limit"));
    }
}
