//! The immutable communication graph with port numbering.
//!
//! Nodes are integers `0..n`.  Each node sees its incident edges as *ports*
//! `0..deg(v)`; the port numbering is what a LOCAL/CONGEST node actually has
//! access to (it does **not** know which node sits behind a port unless that
//! node tells it).  The topology additionally precomputes, for every directed
//! edge `(u, v)`, the port at which `u` appears in `v`'s port list, so the
//! simulator can deliver messages in `O(1)` per message.

use serde::{Deserialize, Serialize};

/// Identifier of a node: a dense index in `0..n`.
pub type NodeId = usize;

/// A port of a node: an index in `0..deg(v)` identifying one incident edge.
pub type Port = usize;

/// Errors produced when constructing a [`Topology`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// An edge endpoint is `>= n`.
    NodeOutOfRange {
        /// the offending endpoint
        node: NodeId,
        /// the number of nodes
        n: usize,
    },
    /// A self-loop `(v, v)` was supplied.
    SelfLoop(NodeId),
    /// The same undirected edge was supplied twice.
    DuplicateEdge(NodeId, NodeId),
}

impl core::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TopologyError::NodeOutOfRange { node, n } => {
                write!(f, "edge endpoint {node} out of range for n={n}")
            }
            TopologyError::SelfLoop(v) => write!(f, "self-loop at node {v}"),
            TopologyError::DuplicateEdge(u, v) => write!(f, "duplicate edge ({u}, {v})"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// An undirected communication graph in compressed adjacency form.
///
/// # Examples
///
/// ```
/// use dcme_congest::Topology;
/// // A triangle.
/// let g = Topology::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
/// assert_eq!(g.num_nodes(), 3);
/// assert_eq!(g.num_edges(), 3);
/// assert_eq!(g.max_degree(), 2);
/// assert_eq!(g.degree(0), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    n: usize,
    /// CSR offsets: neighbours of `v` live at `adjacency[offsets[v]..offsets[v+1]]`.
    offsets: Vec<usize>,
    /// Flattened neighbour lists, sorted per node.
    adjacency: Vec<NodeId>,
    /// For the `i`-th entry of `adjacency` (an edge `v -> u`), the port at
    /// which `v` appears in `u`'s neighbour list.
    reverse_port: Vec<Port>,
    num_edges: usize,
    max_degree: u32,
}

impl Topology {
    /// Builds a topology from an undirected edge list.
    ///
    /// Edges may be given in either orientation; self-loops and duplicate
    /// edges are rejected.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Result<Self, TopologyError> {
        let mut seen = std::collections::HashSet::with_capacity(edges.len());
        for &(u, v) in edges {
            if u >= n {
                return Err(TopologyError::NodeOutOfRange { node: u, n });
            }
            if v >= n {
                return Err(TopologyError::NodeOutOfRange { node: v, n });
            }
            if u == v {
                return Err(TopologyError::SelfLoop(u));
            }
            let key = (u.min(v), u.max(v));
            if !seen.insert(key) {
                return Err(TopologyError::DuplicateEdge(key.0, key.1));
            }
        }

        // Build the CSR directly via degree counting — no intermediate
        // per-node Vec<Vec<NodeId>>, so construction performs a constant
        // number of flat allocations regardless of n.
        let mut offsets = vec![0usize; n + 1];
        for &(u, v) in edges {
            offsets[u + 1] += 1;
            offsets[v + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }

        let mut adjacency: Vec<NodeId> = vec![0; 2 * edges.len()];
        let mut cursor: Vec<usize> = offsets[..n].to_vec();
        for &(u, v) in edges {
            adjacency[cursor[u]] = v;
            cursor[u] += 1;
            adjacency[cursor[v]] = u;
            cursor[v] += 1;
        }
        for v in 0..n {
            adjacency[offsets[v]..offsets[v + 1]].sort_unstable();
        }

        // reverse_port[i]: position of v within u's sorted neighbour list,
        // where adjacency[i] = u and i belongs to node v.
        let mut reverse_port = vec![0usize; adjacency.len()];
        for v in 0..n {
            for port in 0..offsets[v + 1] - offsets[v] {
                let u = adjacency[offsets[v] + port];
                // Find v in u's list by binary search (lists are sorted).
                let pos = adjacency[offsets[u]..offsets[u + 1]]
                    .binary_search(&v)
                    .expect("undirected edge must appear in both lists");
                reverse_port[offsets[v] + port] = pos;
            }
        }

        let max_degree = (0..n)
            .map(|v| (offsets[v + 1] - offsets[v]) as u32)
            .max()
            .unwrap_or(0);

        Ok(Self {
            n,
            offsets,
            adjacency,
            reverse_port,
            num_edges: edges.len(),
            max_degree,
        })
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Number of directed edges (`2 · num_edges`) — the size of any flat
    /// per-port buffer, such as the round engine's inbox arena.
    #[inline]
    pub fn num_directed_edges(&self) -> usize {
        self.adjacency.len()
    }

    /// The CSR index range of node `v`'s ports: slot `port_range(v).start + p`
    /// of a flat per-port buffer belongs to `(v, p)`.
    ///
    /// This is the indexing contract shared by the round engine's
    /// [`RoundState`](crate::executor::RoundState) arena and by future
    /// edge-partitioned shards.
    #[inline]
    pub fn port_range(&self, v: NodeId) -> core::ops::Range<usize> {
        self.offsets[v]..self.offsets[v + 1]
    }

    /// Maximum degree `Δ`.
    #[inline]
    pub fn max_degree(&self) -> u32 {
        self.max_degree
    }

    /// Degree of node `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// The neighbours of `v`, in port order.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adjacency[self.offsets[v]..self.offsets[v + 1]]
    }

    /// The neighbour of `v` behind port `p`.
    #[inline]
    pub fn neighbor_at(&self, v: NodeId, p: Port) -> NodeId {
        self.neighbors(v)[p]
    }

    /// The port at which `v` appears in the port list of its neighbour behind
    /// port `p` (i.e. the port on which that neighbour receives `v`'s
    /// messages).
    #[inline]
    pub fn reverse_port(&self, v: NodeId, p: Port) -> Port {
        self.reverse_port[self.offsets[v] + p]
    }

    /// The port of `u` in `v`'s list, if `u` and `v` are adjacent.
    pub fn port_of(&self, v: NodeId, u: NodeId) -> Option<Port> {
        self.neighbors(v).binary_search(&u).ok()
    }

    /// Whether `u` and `v` are adjacent.
    pub fn are_adjacent(&self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return false;
        }
        self.port_of(v, u).is_some()
    }

    /// Iterator over all undirected edges `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.n).flat_map(move |v| {
            self.neighbors(v)
                .iter()
                .filter(move |&&u| v < u)
                .map(move |&u| (v, u))
        })
    }

    /// Iterator over all node identifiers.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        0..self.n
    }

    /// The set of nodes within hop distance at most `r` of `v` (including `v`).
    ///
    /// Used by the ruling-set verifier and by power-graph constructions.
    pub fn ball(&self, v: NodeId, r: usize) -> Vec<NodeId> {
        let mut dist = vec![usize::MAX; self.n];
        let mut queue = std::collections::VecDeque::new();
        dist[v] = 0;
        queue.push_back(v);
        let mut out = vec![v];
        while let Some(u) = queue.pop_front() {
            if dist[u] == r {
                continue;
            }
            for &w in self.neighbors(u) {
                if dist[w] == usize::MAX {
                    dist[w] = dist[u] + 1;
                    out.push(w);
                    queue.push_back(w);
                }
            }
        }
        out
    }

    /// Builds the power graph `G^p`: same vertex set, an edge between any two
    /// distinct vertices at hop distance at most `p` in `G`.
    ///
    /// The paper uses `G^{α-1}` to lift (2, r)-ruling sets to (α, r)-ruling
    /// sets in the LOCAL model.
    pub fn power(&self, p: usize) -> Topology {
        assert!(p >= 1, "power must be at least 1");
        let mut edges = Vec::new();
        for v in 0..self.n {
            for u in self.ball(v, p) {
                if v < u {
                    edges.push((v, u));
                }
            }
        }
        Topology::from_edges(self.n, &edges).expect("power graph edges are valid by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Topology {
        Topology::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap()
    }

    #[test]
    fn rejects_invalid_edges() {
        assert!(matches!(
            Topology::from_edges(3, &[(0, 3)]),
            Err(TopologyError::NodeOutOfRange { node: 3, n: 3 })
        ));
        assert!(matches!(
            Topology::from_edges(3, &[(1, 1)]),
            Err(TopologyError::SelfLoop(1))
        ));
        assert!(matches!(
            Topology::from_edges(3, &[(0, 1), (1, 0)]),
            Err(TopologyError::DuplicateEdge(0, 1))
        ));
    }

    #[test]
    fn empty_graph() {
        let g = Topology::from_edges(5, &[]).unwrap();
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        for v in 0..5 {
            assert_eq!(g.degree(v), 0);
        }
    }

    #[test]
    fn neighbors_are_sorted_and_ports_consistent() {
        let g = Topology::from_edges(5, &[(4, 0), (4, 2), (4, 1), (1, 0)]).unwrap();
        assert_eq!(g.neighbors(4), &[0, 1, 2]);
        assert_eq!(g.neighbors(0), &[1, 4]);
        // Port consistency: the reverse of the reverse port is the original.
        for v in g.nodes() {
            for p in 0..g.degree(v) {
                let u = g.neighbor_at(v, p);
                let rp = g.reverse_port(v, p);
                assert_eq!(g.neighbor_at(u, rp), v);
                assert_eq!(g.reverse_port(u, rp), p);
            }
        }
    }

    #[test]
    fn csr_port_ranges_partition_the_directed_edges() {
        let g = Topology::from_edges(5, &[(4, 0), (4, 2), (4, 1), (1, 0)]).unwrap();
        assert_eq!(g.num_directed_edges(), 8);
        let mut covered = 0;
        for v in g.nodes() {
            let r = g.port_range(v);
            assert_eq!(r.len(), g.degree(v));
            assert_eq!(r.start, covered);
            covered = r.end;
        }
        assert_eq!(covered, g.num_directed_edges());
    }

    #[test]
    fn degrees_and_adjacency() {
        let g = triangle();
        for v in 0..3 {
            assert_eq!(g.degree(v), 2);
        }
        assert!(g.are_adjacent(0, 1));
        assert!(g.are_adjacent(1, 2));
        assert!(!g.are_adjacent(0, 0));
    }

    #[test]
    fn edges_iterator_is_canonical() {
        let g = triangle();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn ball_and_power_graph_on_path() {
        // Path 0-1-2-3-4
        let g = Topology::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let mut b = g.ball(0, 2);
        b.sort_unstable();
        assert_eq!(b, vec![0, 1, 2]);
        let g2 = g.power(2);
        assert!(g2.are_adjacent(0, 2));
        assert!(g2.are_adjacent(0, 1));
        assert!(!g2.are_adjacent(0, 3));
        assert_eq!(g2.max_degree(), 4); // middle vertex reaches everything
    }

    #[test]
    fn power_one_is_identity() {
        let g = triangle();
        let g1 = g.power(1);
        assert_eq!(g.num_edges(), g1.num_edges());
        for (u, v) in g.edges() {
            assert!(g1.are_adjacent(u, v));
        }
    }
}
