//! The binary wire codec: bit-exact message payloads in length-prefixed,
//! round-sequenced frames.
//!
//! The CONGEST model bounds every message at `O(log n)` **bits**, and the
//! simulator's accounting ([`MessageSize::bit_size`]) records exactly that
//! quantity.  This module makes the accounting *honest*: every message type
//! defines a [`WireMessage`] encoding whose payload occupies **exactly**
//! `bit_size()` bits on the wire, so a run over a socket transport transmits
//! what the metrics claim — a codec that silently fattened messages past the
//! CONGEST bound would fail the bandwidth cross-check tests.
//!
//! # Payloads
//!
//! Payloads are written MSB-first through a [`BitWriter`] and read back
//! through a [`BitReader`].  Variable-width fields use the same width rule as
//! the `bit_size` accounting (`bits_for(value + 1)` for color-like fields,
//! the plain bit length for raw `u64`s), and decoders *validate
//! canonicality*: a payload whose claimed width does not match the decoded
//! value's own width is rejected with [`WireError::NonCanonical`] instead of
//! being silently accepted.
//!
//! Because a payload's width is derived from its value, the width travels
//! out-of-band in the frame entry header (`bits`), together with one
//! type-specific `aux` byte for messages with more than one variable-width
//! field (e.g. the color/priority split of a list-coloring proposal).  Entry
//! headers are *framing*, not message payload — exactly like the destination
//! slot and sender id that accompany every routed message — so they are not
//! charged against the CONGEST bound.
//!
//! # Frames
//!
//! A frame is the unit the transport moves per shard pair per round:
//!
//! ```text
//! [body_len: u32 LE]                                 length prefix
//! [kind: u8][round: u64 LE][from: u16 LE][to: u16 LE]   13-byte header
//! <kind-specific payload>
//! ```
//!
//! * `kind` — [`FrameKind`]: `Data` (a batch of routed messages),
//!   `RoundStart` (coordinator → worker round decision / stop signal),
//!   `Vote` (worker → coordinator halting vote: the shard's active count),
//!   `Output` (worker → coordinator final outputs + counters),
//!   `Topology` (coordinator → worker pass-1 shard-plan chunk),
//!   `Peers` (mesh address exchange) for the scale-out handshake,
//!   `Stats` (worker → coordinator periodic telemetry snapshot, strictly
//!   out-of-band: sent just before a `Vote`, never affecting round
//!   decisions) and `Trace` (worker → coordinator final stamped
//!   trace-event blob, sent just before the `Output` frame when the
//!   coordinator requested tracing — equally out-of-band) — see
//!   `transport`.
//! * `round` — every frame is stamped with the round it belongs to;
//!   receivers reject out-of-sequence frames with
//!   [`WireError::RoundMismatch`].
//! * `from` / `to` — shard indices, validated on receipt.
//!
//! A `Data` payload is `[count: u32 LE]` followed by `count` entries:
//!
//! ```text
//! [slot: u32 LE][sender: u32 LE][bits: u16 LE][aux: u8][payload: ⌈bits/8⌉ bytes]
//! ```
//!
//! Decoders verify the length prefix, the entry count, exact payload
//! consumption and zero padding bits; every malformed input is reported as a
//! [`WireError`] — never a panic.

use crate::algorithm::MessageSize;

/// Upper bound on a frame body, as a cheap sanity check against corrupted
/// length prefixes (a body this large would mean gigabytes of staged
/// messages for one shard pair in one round).
pub const MAX_FRAME_BODY: usize = 1 << 28;

/// Size of the fixed frame header (`kind` + `round` + `from` + `to`).
pub const FRAME_HEADER_BYTES: usize = 1 + 8 + 2 + 2;

/// A decoding error of the wire codec.
///
/// Malformed frames and payloads are *reported*, never panicked on: a
/// transport endpoint must survive a truncated or corrupted peer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The input ended before the decoder read everything it needed.
    Truncated {
        /// Bytes (frame layer) or bits (payload layer) required.
        needed: usize,
        /// Bytes/bits actually available.
        got: usize,
    },
    /// A length field exceeds its hard bound or is inconsistent.
    BadLength {
        /// The offending length.
        len: usize,
        /// The largest acceptable value.
        limit: usize,
    },
    /// An unknown [`FrameKind`] tag.
    BadKind(u8),
    /// An unknown message variant tag inside a payload.
    BadTag(u64),
    /// A frame was stamped with a different round than the receiver expects.
    RoundMismatch {
        /// The round the receiver is in.
        expected: u64,
        /// The round the frame claims.
        got: u64,
    },
    /// A frame's `from`/`to` shard fields do not match the link it arrived
    /// on.
    ShardMismatch {
        /// What the receiving endpoint expected.
        expected: (u16, u16),
        /// What the frame claims.
        got: (u16, u16),
    },
    /// A payload decoded to a value whose canonical width differs from the
    /// claimed width (or its padding bits were nonzero).
    NonCanonical,
    /// A payload or frame body had bytes left over after decoding.
    TrailingBytes(usize),
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::Truncated { needed, got } => {
                write!(f, "truncated input: needed {needed}, got {got}")
            }
            WireError::BadLength { len, limit } => {
                write!(f, "length {len} exceeds limit {limit}")
            }
            WireError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::BadTag(t) => write!(f, "unknown message tag {t}"),
            WireError::RoundMismatch { expected, got } => {
                write!(f, "round mismatch: expected {expected}, frame says {got}")
            }
            WireError::ShardMismatch { expected, got } => write!(
                f,
                "shard mismatch: expected {}->{}, frame says {}->{}",
                expected.0, expected.1, got.0, got.1
            ),
            WireError::NonCanonical => write!(f, "non-canonical payload encoding"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after decode"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for std::io::Error {
    fn from(e: WireError) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

/// MSB-first bit sink for message payloads.
///
/// Reusable: [`BitWriter::clear`] resets it without freeing the buffer, so
/// the per-message encode on the transport hot path does not allocate.
#[derive(Debug, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    bit_len: usize,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the low `width` bits of `value`, most significant first.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64` or `value` does not fit in `width` bits —
    /// both are encoder bugs, not input errors.
    pub fn write_bits(&mut self, value: u64, width: u32) {
        assert!(width <= 64, "bit width {width} > 64");
        assert!(
            width == 64 || value < (1u64 << width),
            "value {value} does not fit in {width} bits"
        );
        // This is the per-message transport hot path, so the loop shape is
        // head → whole bytes → tail instead of a uniform chunk loop: top up
        // the current partial byte once, then emit full bytes with a plain
        // shift each (no masking, no re-deriving the bit offset), then park
        // the leftover bits MSB-aligned in a fresh byte.  Byte-identical to
        // the uniform loop it replaced (pinned by the codec tests).
        let mut rem = width;
        let bit_off = (self.bit_len % 8) as u32;
        if bit_off != 0 {
            let space = 8 - bit_off;
            let take = rem.min(space);
            let chunk = ((value >> (rem - take)) & ((1u64 << take) - 1)) as u8;
            *self.bytes.last_mut().expect("partial byte exists") |= chunk << (space - take);
            self.bit_len += take as usize;
            rem -= take;
        }
        while rem >= 8 {
            rem -= 8;
            self.bytes.push((value >> rem) as u8);
            self.bit_len += 8;
        }
        if rem > 0 {
            let chunk = (value & ((1u64 << rem) - 1)) as u8;
            self.bytes.push(chunk << (8 - rem));
            self.bit_len += rem as usize;
        }
    }

    /// Number of bits written so far.
    pub fn bits_written(&self) -> usize {
        self.bit_len
    }

    /// The written bytes (the final partial byte is zero-padded).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Resets the writer, keeping its allocation.
    pub fn clear(&mut self) {
        self.bytes.clear();
        self.bit_len = 0;
    }
}

/// MSB-first bit source over a byte slice, bounded to a bit limit.
#[derive(Debug)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    limit: usize,
}

impl<'a> BitReader<'a> {
    /// Reads up to `bit_limit` bits from `bytes`.
    ///
    /// Returns [`WireError::Truncated`] if `bytes` holds fewer than
    /// `bit_limit` bits.
    pub fn new(bytes: &'a [u8], bit_limit: usize) -> Result<Self, WireError> {
        if bytes.len() * 8 < bit_limit {
            return Err(WireError::Truncated {
                needed: bit_limit,
                got: bytes.len() * 8,
            });
        }
        Ok(Self {
            bytes,
            pos: 0,
            limit: bit_limit,
        })
    }

    /// Reads `width` bits, most significant first.
    pub fn read_bits(&mut self, width: u32) -> Result<u64, WireError> {
        if width > 64 {
            return Err(WireError::BadLength {
                len: width as usize,
                limit: 64,
            });
        }
        if self.pos + width as usize > self.limit {
            return Err(WireError::Truncated {
                needed: width as usize,
                got: self.limit - self.pos,
            });
        }
        // Head → whole bytes → tail, mirroring `BitWriter::write_bits`:
        // drain the current partial byte once, then fold in full bytes with
        // a shift-or each, then pick the leftover bits off the top of the
        // next byte.
        let mut v = 0u64;
        let mut rem = width;
        let bit_off = (self.pos % 8) as u32;
        if bit_off != 0 {
            let space = 8 - bit_off;
            let take = rem.min(space);
            let byte = self.bytes[self.pos / 8];
            let chunk = (byte >> (space - take)) & (((1u16 << take) - 1) as u8);
            v = chunk as u64;
            self.pos += take as usize;
            rem -= take;
        }
        while rem >= 8 {
            v = (v << 8) | self.bytes[self.pos / 8] as u64;
            self.pos += 8;
            rem -= 8;
        }
        if rem > 0 {
            let chunk = self.bytes[self.pos / 8] >> (8 - rem);
            v = (v << rem) | chunk as u64;
            self.pos += rem as usize;
        }
        Ok(v)
    }

    /// Bits left before the limit.
    pub fn remaining(&self) -> usize {
        self.limit - self.pos
    }
}

/// A message that can cross a process boundary.
///
/// The contract every implementation must (and the codec tests do) uphold:
///
/// * [`WireMessage::encode`] writes **exactly** `self.bit_size()` bits —
///   the payload on the wire is the payload the CONGEST accounting charges;
/// * `decode(encode(m)) == m` for every value (round-trip identity);
/// * `decode` rejects malformed input with a [`WireError`], never a panic,
///   and rejects non-canonical encodings (claimed widths that do not match
///   the decoded values).
///
/// The `aux` byte returned by `encode` and handed back to `decode` is
/// out-of-band framing for messages with more than one variable-width field
/// (it typically carries the width of the first field, so the decoder can
/// split the payload); single-field messages return 0 and ignore it.
pub trait WireMessage: Sized {
    /// Encodes the payload into `w`; returns the `aux` framing byte.
    fn encode(&self, w: &mut BitWriter) -> u8;

    /// Decodes a payload of exactly `bits` bits with framing byte `aux`.
    fn decode(r: &mut BitReader<'_>, bits: u16, aux: u8) -> Result<Self, WireError>;
}

impl WireMessage for u64 {
    fn encode(&self, w: &mut BitWriter) -> u8 {
        w.write_bits(*self, self.bit_size() as u32);
        0
    }

    fn decode(r: &mut BitReader<'_>, bits: u16, _aux: u8) -> Result<Self, WireError> {
        if bits > 64 {
            return Err(WireError::BadLength {
                len: bits as usize,
                limit: 64,
            });
        }
        let v = r.read_bits(bits as u32)?;
        if v.bit_size() != bits as u64 {
            return Err(WireError::NonCanonical);
        }
        Ok(v)
    }
}

impl WireMessage for () {
    fn encode(&self, w: &mut BitWriter) -> u8 {
        w.write_bits(0, 1);
        0
    }

    fn decode(r: &mut BitReader<'_>, bits: u16, _aux: u8) -> Result<Self, WireError> {
        if bits != 1 {
            return Err(WireError::BadLength {
                len: bits as usize,
                limit: 1,
            });
        }
        if r.read_bits(1)? != 0 {
            return Err(WireError::NonCanonical);
        }
        Ok(())
    }
}

/// The wire width of a color-like value: `bits_for(value + 1)` in the
/// accounting the coloring messages use (at least one bit, so a value is
/// distinguishable from silence).  This mirrors `dcme_algebra`'s `bits_for`
/// — restated here because the simulator crate is a dependency leaf.
pub fn color_width(value: u64) -> u32 {
    if value == 0 {
        1
    } else {
        64 - value.leading_zeros()
    }
}

/// Writes a color-like value in its [`color_width`] bits.
pub fn write_color(w: &mut BitWriter, value: u64) {
    w.write_bits(value, color_width(value));
}

/// Reads a color-like value of the given width, rejecting non-canonical
/// encodings (a value whose own [`color_width`] differs from `width`).
pub fn read_color(r: &mut BitReader<'_>, width: u32) -> Result<u64, WireError> {
    if width == 0 || width > 64 {
        return Err(WireError::BadLength {
            len: width as usize,
            limit: 64,
        });
    }
    let v = r.read_bits(width)?;
    if color_width(v) != width {
        return Err(WireError::NonCanonical);
    }
    Ok(v)
}

/// Encodes `msg` into a standalone `(bits, aux, bytes)` payload triple —
/// the form the frame entries carry.  Mostly useful to tests and to
/// one-shot encoders; batch encoding goes through [`DataFrameBuilder`].
pub fn encode_payload<M: WireMessage>(msg: &M) -> (u16, u8, Vec<u8>) {
    let mut w = BitWriter::new();
    let aux = msg.encode(&mut w);
    let bits = u16::try_from(w.bits_written()).expect("payload exceeds u16 bits");
    (bits, aux, w.as_bytes().to_vec())
}

/// Decodes a standalone payload produced by [`encode_payload`], validating
/// exact consumption and zero padding.
pub fn decode_payload<M: WireMessage>(bits: u16, aux: u8, bytes: &[u8]) -> Result<M, WireError> {
    let needed = (bits as usize).div_ceil(8);
    if bytes.len() != needed {
        return Err(WireError::BadLength {
            len: bytes.len(),
            limit: needed,
        });
    }
    // Padding bits of the final partial byte must be zero.
    if bits % 8 != 0 {
        if let Some(&last) = bytes.last() {
            if last & ((1u8 << (8 - bits % 8)) - 1) != 0 {
                return Err(WireError::NonCanonical);
            }
        }
    }
    let mut r = BitReader::new(bytes, bits as usize)?;
    let msg = M::decode(&mut r, bits, aux)?;
    if r.remaining() != 0 {
        return Err(WireError::TrailingBytes(r.remaining().div_ceil(8)));
    }
    Ok(msg)
}

/// The frame kinds of the transport protocol (see the [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// A batch of routed cross-shard messages.
    Data,
    /// Coordinator → worker: the next round number, or the stop signal.
    RoundStart,
    /// Worker → coordinator: the shard's halting vote (active node count).
    Vote,
    /// Worker → coordinator: final outputs and per-shard counters.
    Output,
    /// Coordinator → worker: one chunk of the serialized pass-1
    /// [`ShardPlan`](crate::ShardPlan) (shard boundaries + degree header),
    /// from which a mesh worker builds only its own topology slice.
    Topology,
    /// Peer address exchange for the direct worker↔worker data mesh: a
    /// worker announces its mesh listener to the coordinator, and the
    /// coordinator broadcasts the full `shard → address` list back.
    Peers,
    /// Worker → coordinator: a periodic telemetry snapshot (round progress,
    /// active count, wire bytes, peak RSS, elapsed time).  Strictly
    /// out-of-band — emitted every `stats_every` rounds immediately before
    /// that round's `Vote`, consumed and rendered by the coordinator without
    /// influencing any round decision.
    Stats,
    /// Worker → coordinator: the worker's captured trace-event stream (a
    /// stamped blob, see [`crate::trace::encode_stamped`]), shipped once,
    /// immediately before the final `Output` frame, when the run is traced
    /// ([`crate::transport::ServeOptions::trace`]).  Strictly out-of-band
    /// like `Stats`: the coordinator merges (or discards) it without any
    /// effect on round decisions, outputs or merged counters.
    Trace,
}

impl FrameKind {
    fn to_u8(self) -> u8 {
        match self {
            FrameKind::Data => 0,
            FrameKind::RoundStart => 1,
            FrameKind::Vote => 2,
            FrameKind::Output => 3,
            FrameKind::Topology => 4,
            FrameKind::Peers => 5,
            FrameKind::Stats => 6,
            FrameKind::Trace => 7,
        }
    }

    fn from_u8(v: u8) -> Result<Self, WireError> {
        match v {
            0 => Ok(FrameKind::Data),
            1 => Ok(FrameKind::RoundStart),
            2 => Ok(FrameKind::Vote),
            3 => Ok(FrameKind::Output),
            4 => Ok(FrameKind::Topology),
            5 => Ok(FrameKind::Peers),
            6 => Ok(FrameKind::Stats),
            7 => Ok(FrameKind::Trace),
            other => Err(WireError::BadKind(other)),
        }
    }
}

/// The fixed per-frame header: kind, round stamp, and shard addressing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// What the frame carries.
    pub kind: FrameKind,
    /// The round this frame belongs to (sequencing check on receipt).
    pub round: u64,
    /// Sending shard.
    pub from: u16,
    /// Receiving shard (or the coordinator's pseudo-index).
    pub to: u16,
}

impl FrameHeader {
    /// Validates round and addressing against what the receiver expects.
    pub fn expect(&self, round: u64, from: u16, to: u16) -> Result<(), WireError> {
        if self.round != round {
            return Err(WireError::RoundMismatch {
                expected: round,
                got: self.round,
            });
        }
        if (self.from, self.to) != (from, to) {
            return Err(WireError::ShardMismatch {
                expected: (from, to),
                got: (self.from, self.to),
            });
        }
        Ok(())
    }
}

/// A fully received frame: header plus owned payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The decoded header.
    pub header: FrameHeader,
    /// The kind-specific payload.
    pub payload: Vec<u8>,
}

pub(crate) fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn get_u16(bytes: &[u8], at: usize) -> Result<u16, WireError> {
    bytes
        .get(at..at + 2)
        .map(|b| u16::from_le_bytes([b[0], b[1]]))
        .ok_or(WireError::Truncated {
            needed: at + 2,
            got: bytes.len(),
        })
}

pub(crate) fn get_u32(bytes: &[u8], at: usize) -> Result<u32, WireError> {
    bytes
        .get(at..at + 4)
        .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
        .ok_or(WireError::Truncated {
            needed: at + 4,
            got: bytes.len(),
        })
}

pub(crate) fn get_u64(bytes: &[u8], at: usize) -> Result<u64, WireError> {
    bytes
        .get(at..at + 8)
        .map(|b| u64::from_le_bytes(b.try_into().expect("8-byte slice")))
        .ok_or(WireError::Truncated {
            needed: at + 8,
            got: bytes.len(),
        })
}

/// Appends one complete frame (`length prefix + header + payload`) to `out`;
/// returns the number of bytes appended.
pub fn frame_into(out: &mut Vec<u8>, header: FrameHeader, payload: &[u8]) -> usize {
    let body_len = FRAME_HEADER_BYTES + payload.len();
    assert!(
        body_len <= MAX_FRAME_BODY,
        "frame body exceeds MAX_FRAME_BODY"
    );
    put_u32(out, body_len as u32);
    out.push(header.kind.to_u8());
    put_u64(out, header.round);
    put_u16(out, header.from);
    put_u16(out, header.to);
    out.extend_from_slice(payload);
    4 + body_len
}

/// Parses a frame body (everything after the length prefix).
pub fn parse_body(body: &[u8]) -> Result<Frame, WireError> {
    if body.len() < FRAME_HEADER_BYTES {
        return Err(WireError::Truncated {
            needed: FRAME_HEADER_BYTES,
            got: body.len(),
        });
    }
    let kind = FrameKind::from_u8(body[0])?;
    let round = get_u64(body, 1)?;
    let from = get_u16(body, 9)?;
    let to = get_u16(body, 11)?;
    Ok(Frame {
        header: FrameHeader {
            kind,
            round,
            from,
            to,
        },
        payload: body[FRAME_HEADER_BYTES..].to_vec(),
    })
}

/// Incremental frame reassembly over an untrusted byte stream.
///
/// Feed raw bytes as they arrive ([`FrameBuffer::feed`]) and pull complete
/// frames ([`FrameBuffer::next_frame`]); partial frames stay buffered.  Used
/// by the nonblocking socket-loopback transport; blocking links use
/// [`read_frame`] instead.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    start: usize,
}

impl FrameBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw stream bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact lazily so the buffer does not grow without bound.
        if self.start > 4096 && self.start * 2 > self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame, `Ok(None)` if more bytes are needed.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, WireError> {
        let avail = &self.buf[self.start..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let body_len = get_u32(avail, 0)? as usize;
        if body_len > MAX_FRAME_BODY {
            return Err(WireError::BadLength {
                len: body_len,
                limit: MAX_FRAME_BODY,
            });
        }
        if avail.len() < 4 + body_len {
            return Ok(None);
        }
        let frame = parse_body(&avail[4..4 + body_len])?;
        self.start += 4 + body_len;
        Ok(Some(frame))
    }
}

/// Reads exactly one frame from a blocking stream.
pub fn read_frame(r: &mut impl std::io::Read) -> std::io::Result<Frame> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let body_len = u32::from_le_bytes(len) as usize;
    if body_len > MAX_FRAME_BODY {
        return Err(WireError::BadLength {
            len: body_len,
            limit: MAX_FRAME_BODY,
        }
        .into());
    }
    let mut body = vec![0u8; body_len];
    r.read_exact(&mut body)?;
    parse_body(&body).map_err(Into::into)
}

/// Writes one complete frame to a blocking stream; returns bytes written.
pub fn write_frame(
    w: &mut impl std::io::Write,
    header: FrameHeader,
    payload: &[u8],
) -> std::io::Result<u64> {
    let mut out = Vec::with_capacity(4 + FRAME_HEADER_BYTES + payload.len());
    let n = frame_into(&mut out, header, payload);
    w.write_all(&out)?;
    Ok(n as u64)
}

/// Accumulates routed messages into one `Data` frame body.
///
/// Reusable across rounds (`seal` resets it, keeping the allocations), so
/// the transport hot path performs no per-message allocation.
#[derive(Debug, Default)]
pub struct DataFrameBuilder {
    entries: Vec<u8>,
    count: u32,
    scratch: BitWriter,
}

impl DataFrameBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one routed message (`destination slot`, `sender`, payload).
    pub fn push<M: WireMessage>(&mut self, slot: u32, sender: u32, msg: &M) {
        self.scratch.clear();
        let aux = msg.encode(&mut self.scratch);
        let bits = u16::try_from(self.scratch.bits_written()).expect("payload exceeds u16 bits");
        put_u32(&mut self.entries, slot);
        put_u32(&mut self.entries, sender);
        put_u16(&mut self.entries, bits);
        self.entries.push(aux);
        self.entries.extend_from_slice(self.scratch.as_bytes());
        self.count += 1;
    }

    /// Number of staged messages.
    pub fn len(&self) -> u32 {
        self.count
    }

    /// Whether no message is staged.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Appends the finished frame (length prefix included) to `out` and
    /// resets the builder; returns the bytes appended.
    pub fn seal(&mut self, round: u64, from: u16, to: u16, out: &mut Vec<u8>) -> u64 {
        let header = FrameHeader {
            kind: FrameKind::Data,
            round,
            from,
            to,
        };
        let body_len = FRAME_HEADER_BYTES + 4 + self.entries.len();
        assert!(
            body_len <= MAX_FRAME_BODY,
            "data frame exceeds MAX_FRAME_BODY"
        );
        put_u32(out, body_len as u32);
        out.push(header.kind.to_u8());
        put_u64(out, header.round);
        put_u16(out, header.from);
        put_u16(out, header.to);
        put_u32(out, self.count);
        out.extend_from_slice(&self.entries);
        self.entries.clear();
        self.count = 0;
        (4 + body_len) as u64
    }
}

/// Decodes every entry of a `Data` frame payload, invoking
/// `sink(slot, sender, message)` per entry.
///
/// Validates the entry count, per-entry lengths, zero padding and exact
/// payload consumption; any malformation is a [`WireError`].
pub fn for_each_data_entry<M: WireMessage>(
    payload: &[u8],
    mut sink: impl FnMut(u32, u32, M),
) -> Result<(), WireError> {
    let count = get_u32(payload, 0)?;
    let mut at = 4usize;
    for _ in 0..count {
        let slot = get_u32(payload, at)?;
        let sender = get_u32(payload, at + 4)?;
        let bits = get_u16(payload, at + 8)?;
        let aux = *payload.get(at + 10).ok_or(WireError::Truncated {
            needed: at + 11,
            got: payload.len(),
        })?;
        let nbytes = (bits as usize).div_ceil(8);
        let body = payload
            .get(at + 11..at + 11 + nbytes)
            .ok_or(WireError::Truncated {
                needed: at + 11 + nbytes,
                got: payload.len(),
            })?;
        let msg = decode_payload::<M>(bits, aux, body)?;
        sink(slot, sender, msg);
        at += 11 + nbytes;
    }
    if at != payload.len() {
        return Err(WireError::TrailingBytes(payload.len() - at));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_writer_reader_round_trip() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0, 0);
        w.write_bits(0xABCD, 16);
        w.write_bits(1, 1);
        assert_eq!(w.bits_written(), 20);
        let mut r = BitReader::new(w.as_bytes(), 20).unwrap();
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(0).unwrap(), 0);
        assert_eq!(r.read_bits(16).unwrap(), 0xABCD);
        assert_eq!(r.read_bits(1).unwrap(), 1);
        assert_eq!(r.remaining(), 0);
        assert!(matches!(r.read_bits(1), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn u64_payload_is_bit_exact_and_canonical() {
        for v in [0u64, 1, 2, 255, 256, u64::MAX] {
            let (bits, aux, bytes) = encode_payload(&v);
            assert_eq!(bits as u64, v.bit_size(), "payload width must be bit_size");
            let back: u64 = decode_payload(bits, aux, &bytes).unwrap();
            assert_eq!(back, v);
        }
        // Claiming 3 bits for value 1 is non-canonical.
        assert_eq!(
            decode_payload::<u64>(3, 0, &[0b0010_0000]),
            Err(WireError::NonCanonical)
        );
        // Nonzero padding bits are rejected.
        assert_eq!(
            decode_payload::<u64>(3, 0, &[0b1010_0001]),
            Err(WireError::NonCanonical)
        );
    }

    #[test]
    fn unit_payload_round_trips() {
        let (bits, aux, bytes) = encode_payload(&());
        assert_eq!(bits, 1);
        decode_payload::<()>(bits, aux, &bytes).unwrap();
        assert!(decode_payload::<()>(2, 0, &[0, 0]).is_err());
    }

    #[test]
    fn frame_round_trips_through_buffer() {
        let header = FrameHeader {
            kind: FrameKind::Vote,
            round: 42,
            from: 3,
            to: 0,
        };
        let mut out = Vec::new();
        frame_into(&mut out, header, &[9, 9, 9]);
        let mut fb = FrameBuffer::new();
        // Feed byte by byte: partial prefixes must return Ok(None).
        for b in &out[..out.len() - 1] {
            fb.feed(&[*b]);
        }
        assert_eq!(fb.next_frame().unwrap(), None);
        fb.feed(&out[out.len() - 1..]);
        let frame = fb.next_frame().unwrap().unwrap();
        assert_eq!(frame.header, header);
        assert_eq!(frame.payload, vec![9, 9, 9]);
        assert_eq!(fb.next_frame().unwrap(), None);
    }

    #[test]
    fn handshake_frame_kinds_round_trip() {
        // The scale-out handshake kinds (Topology, Peers) and the telemetry
        // kinds (Stats, Trace) travel through the same codec as the
        // round-loop kinds.
        for kind in [
            FrameKind::Topology,
            FrameKind::Peers,
            FrameKind::Stats,
            FrameKind::Trace,
        ] {
            let header = FrameHeader {
                kind,
                round: 0,
                from: u16::MAX,
                to: 2,
            };
            let mut out = Vec::new();
            frame_into(&mut out, header, &[5, 6, 7, 8]);
            let mut fb = FrameBuffer::new();
            fb.feed(&out);
            let frame = fb.next_frame().unwrap().unwrap();
            assert_eq!(frame.header, header);
            assert_eq!(frame.payload, vec![5, 6, 7, 8]);
        }
    }

    #[test]
    fn malformed_frames_are_errors_not_panics() {
        // Unknown kind (8 is the first unassigned tag).
        let mut body = vec![8u8];
        body.extend_from_slice(&0u64.to_le_bytes());
        body.extend_from_slice(&0u16.to_le_bytes());
        body.extend_from_slice(&0u16.to_le_bytes());
        assert_eq!(parse_body(&body), Err(WireError::BadKind(8)));
        // Truncated header.
        assert!(matches!(
            parse_body(&[0u8; 5]),
            Err(WireError::Truncated { .. })
        ));
        // Oversized length prefix.
        let mut fb = FrameBuffer::new();
        fb.feed(&(u32::MAX).to_le_bytes());
        assert!(matches!(fb.next_frame(), Err(WireError::BadLength { .. })));
    }

    #[test]
    fn data_frame_builder_round_trips_and_rejects_corruption() {
        let mut b = DataFrameBuilder::new();
        b.push(10, 1, &5u64);
        b.push(11, 2, &0u64);
        b.push(4_000_000_000, 3, &u64::MAX);
        assert_eq!(b.len(), 3);
        let mut out = Vec::new();
        let n = b.seal(7, 1, 2, &mut out);
        assert_eq!(n as usize, out.len());
        assert!(b.is_empty());

        let mut fb = FrameBuffer::new();
        fb.feed(&out);
        let frame = fb.next_frame().unwrap().unwrap();
        frame.header.expect(7, 1, 2).unwrap();
        assert_eq!(
            frame.header.expect(8, 1, 2),
            Err(WireError::RoundMismatch {
                expected: 8,
                got: 7
            })
        );
        assert!(frame.header.expect(7, 2, 1).is_err());
        let mut got = Vec::new();
        for_each_data_entry::<u64>(&frame.payload, |slot, sender, msg| {
            got.push((slot, sender, msg));
        })
        .unwrap();
        assert_eq!(
            got,
            vec![(10, 1, 5), (11, 2, 0), (4_000_000_000, 3, u64::MAX)]
        );

        // Truncating the payload anywhere must produce an error, not a panic.
        for cut in 0..frame.payload.len() {
            let res = for_each_data_entry::<u64>(&frame.payload[..cut], |_, _, _: u64| {});
            assert!(res.is_err(), "cut at {cut} must error");
        }
        // An inflated count over the same bytes is a truncation error.
        let mut inflated = frame.payload.clone();
        inflated[0] = inflated[0].wrapping_add(1);
        assert!(for_each_data_entry::<u64>(&inflated, |_, _, _: u64| {}).is_err());
    }

    #[test]
    fn blocking_read_write_frame() {
        let mut buf = Vec::new();
        let header = FrameHeader {
            kind: FrameKind::RoundStart,
            round: 3,
            from: 0,
            to: 1,
        };
        let n = write_frame(&mut buf, header, &[1]).unwrap();
        assert_eq!(n as usize, buf.len());
        let frame = read_frame(&mut &buf[..]).unwrap();
        assert_eq!(frame.header, header);
        assert_eq!(frame.payload, vec![1]);
        // Truncated stream -> io error.
        assert!(read_frame(&mut &buf[..buf.len() - 1]).is_err());
    }
}
