//! The synchronous round engine.
//!
//! [`Simulator::run`] drives a vector of per-node state machines (one
//! [`NodeAlgorithm`] instance per vertex) through synchronous rounds until
//! every node has halted or a configurable round cap is reached.  Two
//! executors are available:
//!
//! * **Sequential** — the reference implementation; trivially deterministic.
//! * **Parallel** — nodes are partitioned across [`std::thread::scope`]
//!   scoped threads for the send and receive phases.  Because a round's
//!   sends depend only on
//!   state from the previous round and receives only touch node-local state,
//!   the result is bit-for-bit identical to the sequential executor (this is
//!   asserted by tests and integration tests).
//!
//! The engine also performs CONGEST accounting: every delivered message is
//! charged its [`MessageSize::bit_size`], and the largest message of the run
//! is reported in [`RunMetrics::max_message_bits`].

use crate::algorithm::{Inbox, MessageSize, NodeAlgorithm, NodeContext, Outbox};
use crate::metrics::RunMetrics;
use crate::topology::Topology;

/// How rounds are executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// Process nodes one after another on the calling thread.
    #[default]
    Sequential,
    /// Process nodes in parallel using the given number of worker threads.
    Parallel {
        /// Number of worker threads (at least 1).
        threads: usize,
    },
}

/// Configuration of a simulator run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimulatorConfig {
    /// Hard cap on the number of rounds; prevents runaway algorithms.
    pub max_rounds: u64,
    /// Executor selection.
    pub mode: ExecutionMode,
}

impl Default for SimulatorConfig {
    fn default() -> Self {
        Self {
            max_rounds: 1_000_000,
            mode: ExecutionMode::Sequential,
        }
    }
}

/// The result of a run: one output per node plus the run metrics.
#[derive(Debug, Clone)]
pub struct RunOutcome<O> {
    /// Per-node outputs, indexed by node id.
    pub outputs: Vec<O>,
    /// Round/message/bit accounting.
    pub metrics: RunMetrics,
}

/// The synchronous round engine for a fixed topology.
pub struct Simulator<'a> {
    topology: &'a Topology,
    config: SimulatorConfig,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator with the default (sequential) configuration.
    pub fn new(topology: &'a Topology) -> Self {
        Self {
            topology,
            config: SimulatorConfig::default(),
        }
    }

    /// Creates a simulator with an explicit configuration.
    pub fn with_config(topology: &'a Topology, config: SimulatorConfig) -> Self {
        Self { topology, config }
    }

    /// The topology this simulator runs on.
    pub fn topology(&self) -> &Topology {
        self.topology
    }

    /// Runs the algorithm to completion (or to the round cap).
    ///
    /// `nodes` must contain exactly one state machine per vertex, indexed by
    /// node id.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` differs from the number of vertices.
    pub fn run<A: NodeAlgorithm>(&self, mut nodes: Vec<A>) -> RunOutcome<A::Output> {
        let n = self.topology.num_nodes();
        assert_eq!(
            nodes.len(),
            n,
            "need exactly one algorithm instance per node"
        );

        let contexts: Vec<NodeContext> = (0..n)
            .map(|v| NodeContext {
                node: v,
                degree: self.topology.degree(v),
                n,
                max_degree: self.topology.max_degree(),
                round: 0,
            })
            .collect();

        for (node, ctx) in nodes.iter_mut().zip(&contexts) {
            node.init(ctx);
        }

        let mut metrics = RunMetrics::default();
        let mut round: u64 = 0;

        loop {
            let active: Vec<bool> = nodes.iter().map(|a| !a.is_halted()).collect();
            let active_count = active.iter().filter(|&&a| a).count();
            if active_count == 0 {
                break;
            }
            if round >= self.config.max_rounds {
                metrics.hit_round_cap = true;
                break;
            }
            metrics.active_per_round.push(active_count);

            let round_ctx: Vec<NodeContext> = contexts
                .iter()
                .map(|c| NodeContext { round, ..*c })
                .collect();

            // --- Send phase -------------------------------------------------
            let outboxes: Vec<Outbox<A::Message>> = match self.config.mode {
                ExecutionMode::Sequential => nodes
                    .iter_mut()
                    .zip(&round_ctx)
                    .zip(&active)
                    .map(|((node, ctx), &is_active)| {
                        if is_active {
                            node.send(ctx)
                        } else {
                            Outbox::Silent
                        }
                    })
                    .collect(),
                ExecutionMode::Parallel { threads } => {
                    parallel_send(&mut nodes, &round_ctx, &active, threads)
                }
            };

            // --- Delivery ---------------------------------------------------
            let mut inboxes: Vec<Vec<(usize, A::Message)>> = vec![Vec::new(); n];
            for (v, outbox) in outboxes.into_iter().enumerate() {
                match outbox {
                    Outbox::Silent => {}
                    Outbox::Broadcast(msg) => {
                        for p in 0..self.topology.degree(v) {
                            let u = self.topology.neighbor_at(v, p);
                            let rp = self.topology.reverse_port(v, p);
                            metrics.record_message(msg.bit_size());
                            if active[u] {
                                inboxes[u].push((rp, msg.clone()));
                            }
                        }
                    }
                    Outbox::PerPort(list) => {
                        for (p, msg) in list {
                            assert!(
                                p < self.topology.degree(v),
                                "node {v} sent on nonexistent port {p}"
                            );
                            let u = self.topology.neighbor_at(v, p);
                            let rp = self.topology.reverse_port(v, p);
                            metrics.record_message(msg.bit_size());
                            if active[u] {
                                inboxes[u].push((rp, msg));
                            }
                        }
                    }
                }
            }

            // --- Receive phase ----------------------------------------------
            match self.config.mode {
                ExecutionMode::Sequential => {
                    for (v, node) in nodes.iter_mut().enumerate() {
                        if active[v] {
                            let inbox = Inbox::new(std::mem::take(&mut inboxes[v]));
                            node.receive(&round_ctx[v], &inbox);
                        }
                    }
                }
                ExecutionMode::Parallel { threads } => {
                    parallel_receive(&mut nodes, &round_ctx, &active, inboxes, threads);
                }
            }

            round += 1;
        }

        metrics.rounds = round;
        let outputs = nodes.iter().map(|a| a.output()).collect();
        RunOutcome { outputs, metrics }
    }
}

/// Parallel send phase: nodes are chunked and each chunk is processed by a
/// scoped worker thread.
fn parallel_send<A: NodeAlgorithm>(
    nodes: &mut [A],
    contexts: &[NodeContext],
    active: &[bool],
    threads: usize,
) -> Vec<Outbox<A::Message>> {
    let threads = threads.max(1);
    let n = nodes.len();
    let chunk = n.div_ceil(threads).max(1);
    let mut out: Vec<Outbox<A::Message>> = Vec::with_capacity(n);

    let node_chunks: Vec<&mut [A]> = nodes.chunks_mut(chunk).collect();
    let ctx_chunks: Vec<&[NodeContext]> = contexts.chunks(chunk).collect();
    let active_chunks: Vec<&[bool]> = active.chunks(chunk).collect();

    let results: Vec<Vec<Outbox<A::Message>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = node_chunks
            .into_iter()
            .zip(ctx_chunks)
            .zip(active_chunks)
            .map(|((nodes_chunk, ctx_chunk), active_chunk)| {
                scope.spawn(move || {
                    nodes_chunk
                        .iter_mut()
                        .zip(ctx_chunk)
                        .zip(active_chunk)
                        .map(|((node, ctx), &is_active)| {
                            if is_active {
                                node.send(ctx)
                            } else {
                                Outbox::Silent
                            }
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("send-phase worker panicked"))
            .collect()
    });

    for chunk_result in results {
        out.extend(chunk_result);
    }
    out
}

/// Undelivered per-node messages, as (port, payload) pairs.
type PendingInbox<M> = Vec<(usize, M)>;

/// Parallel receive phase.
fn parallel_receive<A: NodeAlgorithm>(
    nodes: &mut [A],
    contexts: &[NodeContext],
    active: &[bool],
    mut inboxes: Vec<PendingInbox<A::Message>>,
    threads: usize,
) {
    let threads = threads.max(1);
    let n = nodes.len();
    let chunk = n.div_ceil(threads).max(1);

    let node_chunks: Vec<&mut [A]> = nodes.chunks_mut(chunk).collect();
    let ctx_chunks: Vec<&[NodeContext]> = contexts.chunks(chunk).collect();
    let active_chunks: Vec<&[bool]> = active.chunks(chunk).collect();
    let inbox_chunks: Vec<&mut [PendingInbox<A::Message>]> = inboxes.chunks_mut(chunk).collect();

    std::thread::scope(|scope| {
        for (((nodes_chunk, ctx_chunk), active_chunk), inbox_chunk) in node_chunks
            .into_iter()
            .zip(ctx_chunks)
            .zip(active_chunks)
            .zip(inbox_chunks)
        {
            scope.spawn(move || {
                for (((node, ctx), &is_active), inbox) in nodes_chunk
                    .iter_mut()
                    .zip(ctx_chunk)
                    .zip(active_chunk)
                    .zip(inbox_chunk.iter_mut())
                {
                    if is_active {
                        let inbox = Inbox::new(std::mem::take(inbox));
                        node.receive(ctx, &inbox);
                    }
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    /// A toy algorithm: every node broadcasts its id for `ttl` rounds and
    /// records the sum of everything it heard, then halts.
    #[derive(Debug, Clone)]
    struct GossipSum {
        id: u64,
        ttl: u64,
        heard: u64,
        rounds_done: u64,
    }

    impl GossipSum {
        fn new(ttl: u64) -> Self {
            Self {
                id: 0,
                ttl,
                heard: 0,
                rounds_done: 0,
            }
        }
    }

    impl NodeAlgorithm for GossipSum {
        type Message = u64;
        type Output = u64;

        fn init(&mut self, ctx: &NodeContext) {
            self.id = ctx.node as u64;
        }

        fn send(&mut self, _ctx: &NodeContext) -> Outbox<u64> {
            Outbox::Broadcast(self.id)
        }

        fn receive(&mut self, _ctx: &NodeContext, inbox: &Inbox<u64>) {
            for (_, m) in inbox.iter() {
                self.heard += *m;
            }
            self.rounds_done += 1;
        }

        fn is_halted(&self) -> bool {
            self.rounds_done >= self.ttl
        }

        fn output(&self) -> u64 {
            self.heard
        }
    }

    fn triangle() -> Topology {
        Topology::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap()
    }

    #[test]
    fn gossip_on_triangle_counts_rounds_and_messages() {
        let g = triangle();
        let sim = Simulator::new(&g);
        let nodes: Vec<GossipSum> = (0..3).map(|_| GossipSum::new(2)).collect();
        let outcome = sim.run(nodes);
        assert_eq!(outcome.metrics.rounds, 2);
        // Each round every node broadcasts to 2 neighbours: 6 messages/round.
        assert_eq!(outcome.metrics.messages, 12);
        assert!(!outcome.metrics.hit_round_cap);
        // Node v hears both neighbours each of the 2 rounds: node 0 hears
        // ids 1 and 2, node 1 hears 0 and 2, node 2 hears 0 and 1.
        assert_eq!(outcome.outputs[0], 6);
        assert_eq!(outcome.outputs[1], 4);
        assert_eq!(outcome.outputs[2], 2);
        assert_eq!(outcome.metrics.active_per_round, vec![3, 3]);
    }

    #[test]
    fn round_cap_is_respected() {
        let g = triangle();
        let sim = Simulator::with_config(
            &g,
            SimulatorConfig {
                max_rounds: 3,
                mode: ExecutionMode::Sequential,
            },
        );
        let nodes: Vec<GossipSum> = (0..3).map(|_| GossipSum::new(u64::MAX)).collect();
        let outcome = sim.run(nodes);
        assert_eq!(outcome.metrics.rounds, 3);
        assert!(outcome.metrics.hit_round_cap);
    }

    #[test]
    fn parallel_matches_sequential() {
        // Ring of 64 nodes.
        let n = 64;
        let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let g = Topology::from_edges(n, &edges).unwrap();

        let seq = Simulator::new(&g).run((0..n).map(|_| GossipSum::new(5)).collect::<Vec<_>>());
        let par = Simulator::with_config(
            &g,
            SimulatorConfig {
                max_rounds: 1_000_000,
                mode: ExecutionMode::Parallel { threads: 4 },
            },
        )
        .run((0..n).map(|_| GossipSum::new(5)).collect::<Vec<_>>());

        assert_eq!(seq.outputs, par.outputs);
        assert_eq!(seq.metrics.rounds, par.metrics.rounds);
        assert_eq!(seq.metrics.messages, par.metrics.messages);
        assert_eq!(seq.metrics.total_bits, par.metrics.total_bits);
    }

    #[test]
    fn zero_round_algorithm_terminates_immediately() {
        #[derive(Clone)]
        struct Immediate;
        impl NodeAlgorithm for Immediate {
            type Message = u64;
            type Output = ();
            fn init(&mut self, _ctx: &NodeContext) {}
            fn send(&mut self, _ctx: &NodeContext) -> Outbox<u64> {
                Outbox::Silent
            }
            fn receive(&mut self, _ctx: &NodeContext, _inbox: &Inbox<u64>) {}
            fn is_halted(&self) -> bool {
                true
            }
            fn output(&self) {}
        }
        let g = triangle();
        let outcome = Simulator::new(&g).run(vec![Immediate, Immediate, Immediate]);
        assert_eq!(outcome.metrics.rounds, 0);
        assert_eq!(outcome.metrics.messages, 0);
    }

    #[test]
    #[should_panic(expected = "one algorithm instance per node")]
    fn mismatched_node_count_panics() {
        let g = triangle();
        let _ = Simulator::new(&g).run(vec![GossipSum::new(1)]);
    }

    #[test]
    fn per_port_messages_are_routed_correctly() {
        /// Sends its id only on port 0 for one round; records what it heard.
        #[derive(Clone)]
        struct PortZero {
            id: u64,
            heard: Vec<(usize, u64)>,
            done: bool,
        }
        impl NodeAlgorithm for PortZero {
            type Message = u64;
            type Output = Vec<(usize, u64)>;
            fn init(&mut self, ctx: &NodeContext) {
                self.id = ctx.node as u64;
            }
            fn send(&mut self, ctx: &NodeContext) -> Outbox<u64> {
                if ctx.degree > 0 {
                    Outbox::PerPort(vec![(0, self.id)])
                } else {
                    Outbox::Silent
                }
            }
            fn receive(&mut self, _ctx: &NodeContext, inbox: &Inbox<u64>) {
                self.heard = inbox.iter().map(|(p, m)| (p, *m)).collect();
                self.done = true;
            }
            fn is_halted(&self) -> bool {
                self.done
            }
            fn output(&self) -> Vec<(usize, u64)> {
                self.heard.clone()
            }
        }

        // Path 0 - 1 - 2.  Port 0 of node 0 is node 1; port 0 of node 1 is
        // node 0; port 0 of node 2 is node 1.
        let g = Topology::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let nodes = (0..3)
            .map(|_| PortZero {
                id: 0,
                heard: vec![],
                done: false,
            })
            .collect::<Vec<_>>();
        let outcome = Simulator::new(&g).run(nodes);
        // Node 1 hears node 0 on port 0 and node 2 on port 1.
        assert_eq!(outcome.outputs[1], vec![(0, 0), (1, 2)]);
        // Node 0 hears node 1 (which sent only on its port 0, towards node 0).
        assert_eq!(outcome.outputs[0], vec![(0, 1)]);
        // Node 2 hears nothing: node 1's port 0 points to node 0.
        assert_eq!(outcome.outputs[2], vec![]);
    }
}
