//! The synchronous round engine.
//!
//! [`Simulator::run`] drives a vector of per-node state machines (one
//! [`NodeAlgorithm`] instance per vertex) through synchronous rounds until
//! every node has halted or a configurable round cap is reached.  The round
//! loop itself is delegated to an [`Executor`] — see [`crate::executor`] for
//! the zero-allocation [`RoundState`] arena and the three shipped
//! strategies:
//!
//! * [`SequentialExecutor`] — the reference implementation; trivially
//!   deterministic.
//! * [`PooledExecutor`] — a persistent worker pool (scoped threads spawned
//!   once per run, phases coordinated by barriers).  Because a round's sends
//!   depend only on state from the previous round and receives only touch
//!   node-local state, the result is bit-for-bit identical to the sequential
//!   executor (asserted by unit and integration tests).
//! * [`ShardedExecutor`](crate::executor::ShardedExecutor) — one worker per
//!   shard of a [`ShardedTopology`](crate::sharded::ShardedTopology), driven
//!   through [`Simulator::run_with_executor`]; same bit-for-bit guarantee.
//!
//! The engine also performs CONGEST accounting: every transmitted message is
//! charged its [`crate::MessageSize::bit_size`] — including messages addressed to
//! halted receivers, which discard them; see [`crate::algorithm`] for the
//! accounting semantics — and the largest message of the run is reported in
//! [`RunMetrics::max_message_bits`].  Per-phase wall-clock totals are
//! reported in [`RunMetrics::phase_nanos`].
//!
//! Rounds are barrier-synchronous by default.  A sharded run can relax
//! this with [`crate::executor::DeliveryMode::Async`], under which late
//! (delayed or duplicated) cross-shard messages from a
//! [`crate::faults::FaultyTransport`] are accepted newest-wins instead of
//! panicking; algorithms opt in via
//! [`NodeAlgorithm::tolerates_async_delivery`].  See [`crate::faults`] for
//! the fault model and [`crate::mc`] for the exhaustive schedule explorer
//! built on the same semantics.

use crate::algorithm::{NodeAlgorithm, NodeContext};
use crate::executor::{Executor, PooledExecutor, RoundState, SequentialExecutor};
use crate::metrics::RunMetrics;
use crate::topology::{Topology, TopologyView};
use crate::trace::{NoTrace, TraceSink};

/// How rounds are executed.
///
/// This is the declarative configuration surface; each variant maps to an
/// [`Executor`] implementation (`Sequential` → [`SequentialExecutor`],
/// `Parallel` → [`PooledExecutor`]).  Use [`Simulator::run_with_executor`]
/// to supply a custom strategy directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// Process nodes one after another on the calling thread.
    #[default]
    Sequential,
    /// Process nodes on a persistent pool of worker threads.
    Parallel {
        /// Number of worker threads (at least 1).
        threads: usize,
    },
}

/// Configuration of a simulator run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimulatorConfig {
    /// Hard cap on the number of rounds; prevents runaway algorithms.
    pub max_rounds: u64,
    /// Executor selection.
    pub mode: ExecutionMode,
}

impl Default for SimulatorConfig {
    fn default() -> Self {
        Self {
            max_rounds: 1_000_000,
            mode: ExecutionMode::Sequential,
        }
    }
}

/// The result of a run: one output per node plus the run metrics.
#[derive(Debug, Clone)]
pub struct RunOutcome<O> {
    /// Per-node outputs, indexed by node id.
    pub outputs: Vec<O>,
    /// Round/message/bit accounting.
    pub metrics: RunMetrics,
}

/// The synchronous round engine for a fixed topology.
///
/// Generic over the topology representation: the default `T = Topology` is
/// the single-arena CSR; pass a
/// [`ShardedTopology`](crate::sharded::ShardedTopology) to run on the
/// edge-partitioned representation (any executor works on it; the
/// [`ShardedExecutor`](crate::executor::ShardedExecutor) additionally
/// exploits the shard layout via [`Simulator::run_with_executor`]).
pub struct Simulator<'a, T: TopologyView = Topology> {
    topology: &'a T,
    config: SimulatorConfig,
    tracer: &'a dyn TraceSink,
}

impl<'a, T: TopologyView> Simulator<'a, T> {
    /// Creates a simulator with the default (sequential) configuration.
    pub fn new(topology: &'a T) -> Self {
        Self {
            topology,
            config: SimulatorConfig::default(),
            tracer: &NoTrace,
        }
    }

    /// Creates a simulator with an explicit configuration.
    pub fn with_config(topology: &'a T, config: SimulatorConfig) -> Self {
        Self {
            topology,
            config,
            tracer: &NoTrace,
        }
    }

    /// Attaches a [`TraceSink`] that receives out-of-band trace events from
    /// every run started on this simulator.
    ///
    /// Tracing never changes outputs or metrics; the default [`NoTrace`]
    /// sink is zero-cost on the hot path.
    pub fn with_tracer(mut self, tracer: &'a dyn TraceSink) -> Self {
        self.tracer = tracer;
        self
    }

    /// The topology this simulator runs on.
    pub fn topology(&self) -> &T {
        self.topology
    }

    /// Runs the algorithm to completion (or to the round cap) with the
    /// executor selected by the configuration's [`ExecutionMode`].
    ///
    /// `nodes` must contain exactly one state machine per vertex, indexed by
    /// node id.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` differs from the number of vertices, or if an
    /// algorithm violates the port contract (sends on a nonexistent port, or
    /// twice over the same port in one round).
    pub fn run<A: NodeAlgorithm>(&self, nodes: Vec<A>) -> RunOutcome<A::Output> {
        match self.config.mode {
            ExecutionMode::Sequential => self.run_with_executor(nodes, &SequentialExecutor),
            ExecutionMode::Parallel { threads } => {
                self.run_with_executor(nodes, &PooledExecutor::new(threads))
            }
        }
    }

    /// Runs the algorithm under an explicit [`Executor`] strategy.
    ///
    /// This is the seam execution backends plug into without touching
    /// [`Simulator::run`] callers — the
    /// [`ShardedExecutor`](crate::executor::ShardedExecutor) is driven this
    /// way (it implements `Executor<ShardedTopology>` only).  The
    /// configuration's [`ExecutionMode`] is ignored; its `max_rounds` still
    /// applies.
    ///
    /// # Panics
    ///
    /// Same contract as [`Simulator::run`].
    pub fn run_with_executor<A: NodeAlgorithm, E: Executor<T>>(
        &self,
        mut nodes: Vec<A>,
        executor: &E,
    ) -> RunOutcome<A::Output> {
        let n = self.topology.num_nodes();
        assert_eq!(
            nodes.len(),
            n,
            "need exactly one algorithm instance per node"
        );

        let contexts: Vec<NodeContext> = (0..n)
            .map(|v| NodeContext {
                node: v,
                degree: self.topology.degree(v),
                n,
                max_degree: self.topology.max_degree(),
                round: 0,
            })
            .collect();

        for (node, ctx) in nodes.iter_mut().zip(&contexts) {
            node.init(ctx);
        }

        let mut metrics = RunMetrics::default();
        let mut state: RoundState<A::Message> = RoundState::new(self.topology);
        executor.drive(
            self.topology,
            &mut nodes,
            &contexts,
            &mut state,
            self.config.max_rounds,
            &mut metrics,
            self.tracer,
        );

        let outputs = nodes.iter().map(|a| a.output()).collect();
        RunOutcome { outputs, metrics }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{Inbox, Outbox};
    use crate::topology::Topology;

    /// A toy algorithm: every node broadcasts its id for `ttl` rounds and
    /// records the sum of everything it heard, then halts.
    #[derive(Debug, Clone)]
    struct GossipSum {
        id: u64,
        ttl: u64,
        heard: u64,
        rounds_done: u64,
    }

    impl GossipSum {
        fn new(ttl: u64) -> Self {
            Self {
                id: 0,
                ttl,
                heard: 0,
                rounds_done: 0,
            }
        }
    }

    impl NodeAlgorithm for GossipSum {
        type Message = u64;
        type Output = u64;

        fn init(&mut self, ctx: &NodeContext) {
            self.id = ctx.node as u64;
        }

        fn send(&mut self, _ctx: &NodeContext) -> Outbox<u64> {
            Outbox::Broadcast(self.id)
        }

        fn receive(&mut self, _ctx: &NodeContext, inbox: &Inbox<'_, u64>) {
            for (_, m) in inbox.iter() {
                self.heard += *m;
            }
            self.rounds_done += 1;
        }

        fn is_halted(&self) -> bool {
            self.rounds_done >= self.ttl
        }

        fn output(&self) -> u64 {
            self.heard
        }
    }

    fn triangle() -> Topology {
        Topology::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap()
    }

    fn parallel_config(threads: usize) -> SimulatorConfig {
        SimulatorConfig {
            max_rounds: 1_000_000,
            mode: ExecutionMode::Parallel { threads },
        }
    }

    /// Asserts sequential/pooled/sharded bit-for-bit equivalence on one
    /// workload (`threads` worker threads, and shard counts 1–3).
    fn assert_equivalent(g: &Topology, ttls: &[u64], threads: usize) {
        let mk = |n: usize, ttls: &[u64]| -> Vec<GossipSum> {
            (0..n).map(|v| GossipSum::new(ttls[v])).collect()
        };
        let n = g.num_nodes();
        let seq = Simulator::new(g).run(mk(n, ttls));
        let par = Simulator::with_config(g, parallel_config(threads)).run(mk(n, ttls));
        assert_eq!(seq.outputs, par.outputs, "threads={threads}");
        assert_eq!(seq.metrics.rounds, par.metrics.rounds);
        assert_eq!(seq.metrics.messages, par.metrics.messages);
        assert_eq!(seq.metrics.total_bits, par.metrics.total_bits);
        assert_eq!(seq.metrics.max_message_bits, par.metrics.max_message_bits);
        assert_eq!(seq.metrics.active_per_round, par.metrics.active_per_round);
        assert_eq!(seq.metrics.hit_round_cap, par.metrics.hit_round_cap);
        for shards in [1, 2, 3] {
            let sg = crate::sharded::ShardedTopology::from_topology(g, shards).unwrap();
            let out = Simulator::new(&sg)
                .run_with_executor(mk(n, ttls), &crate::executor::ShardedExecutor::new());
            assert_eq!(seq.outputs, out.outputs, "shards={shards}");
            assert_eq!(seq.metrics.rounds, out.metrics.rounds, "shards={shards}");
            assert_eq!(seq.metrics.messages, out.metrics.messages);
            assert_eq!(seq.metrics.total_bits, out.metrics.total_bits);
            assert_eq!(seq.metrics.max_message_bits, out.metrics.max_message_bits);
            assert_eq!(seq.metrics.active_per_round, out.metrics.active_per_round);
            assert_eq!(seq.metrics.hit_round_cap, out.metrics.hit_round_cap);
            // The sharded executor fully attributes every message.
            assert_eq!(
                out.metrics.intra_shard_messages + out.metrics.cross_shard_messages,
                out.metrics.messages,
                "shards={shards}"
            );
            assert_eq!(out.metrics.shard_phase_nanos.len(), shards);
            if shards == 1 {
                assert_eq!(out.metrics.cross_shard_messages, 0);
            }
        }
    }

    #[test]
    fn gossip_on_triangle_counts_rounds_and_messages() {
        let g = triangle();
        let sim = Simulator::new(&g);
        let nodes: Vec<GossipSum> = (0..3).map(|_| GossipSum::new(2)).collect();
        let outcome = sim.run(nodes);
        assert_eq!(outcome.metrics.rounds, 2);
        // Each round every node broadcasts to 2 neighbours: 6 messages/round.
        assert_eq!(outcome.metrics.messages, 12);
        assert!(!outcome.metrics.hit_round_cap);
        // Node v hears both neighbours each of the 2 rounds: node 0 hears
        // ids 1 and 2, node 1 hears 0 and 2, node 2 hears 0 and 1.
        assert_eq!(outcome.outputs[0], 6);
        assert_eq!(outcome.outputs[1], 4);
        assert_eq!(outcome.outputs[2], 2);
        assert_eq!(outcome.metrics.active_per_round, vec![3, 3]);
    }

    #[test]
    fn round_cap_is_respected() {
        let g = triangle();
        let sim = Simulator::with_config(
            &g,
            SimulatorConfig {
                max_rounds: 3,
                mode: ExecutionMode::Sequential,
            },
        );
        let nodes: Vec<GossipSum> = (0..3).map(|_| GossipSum::new(u64::MAX)).collect();
        let outcome = sim.run(nodes);
        assert_eq!(outcome.metrics.rounds, 3);
        assert!(outcome.metrics.hit_round_cap);
    }

    #[test]
    fn round_cap_is_respected_by_the_pool() {
        let g = triangle();
        let sim = Simulator::with_config(
            &g,
            SimulatorConfig {
                max_rounds: 3,
                mode: ExecutionMode::Parallel { threads: 2 },
            },
        );
        let nodes: Vec<GossipSum> = (0..3).map(|_| GossipSum::new(u64::MAX)).collect();
        let outcome = sim.run(nodes);
        assert_eq!(outcome.metrics.rounds, 3);
        assert!(outcome.metrics.hit_round_cap);
    }

    #[test]
    fn parallel_matches_sequential() {
        // Ring of 64 nodes, uniform ttl.
        let n = 64;
        let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let g = Topology::from_edges(n, &edges).unwrap();
        assert_equivalent(&g, &vec![5; n], 4);
    }

    #[test]
    fn pool_handles_staggered_halting() {
        // Nodes halt at staggered rounds, exercising active-set compaction
        // in every worker chunk.
        let n = 61; // prime, so chunks cut across the ttl pattern
        let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let g = Topology::from_edges(n, &edges).unwrap();
        let ttls: Vec<u64> = (0..n).map(|v| 1 + (v as u64 * 7) % 13).collect();
        for threads in [1, 2, 3, 8] {
            assert_equivalent(&g, &ttls, threads);
        }
        // The drain is really visible in the metrics: active counts strictly
        // shrink to the max ttl.
        let seq =
            Simulator::new(&g).run((0..n).map(|v| GossipSum::new(ttls[v])).collect::<Vec<_>>());
        assert_eq!(seq.metrics.rounds, 13);
        assert_eq!(seq.metrics.active_per_round.len(), 13);
        assert!(seq
            .metrics
            .active_per_round
            .windows(2)
            .all(|w| w[1] <= w[0]));
        assert!(*seq.metrics.active_per_round.last().unwrap() < n);
    }

    #[test]
    fn pool_with_more_threads_than_nodes() {
        let g = triangle();
        assert_equivalent(&g, &[2, 2, 2], 16);
    }

    #[test]
    fn pool_with_one_thread() {
        let n = 10;
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = Topology::from_edges(n, &edges).unwrap();
        assert_equivalent(&g, &vec![3; n], 1);
    }

    #[test]
    fn pool_on_empty_graph() {
        let g = Topology::from_edges(0, &[]).unwrap();
        let outcome = Simulator::with_config(&g, parallel_config(4)).run(Vec::<GossipSum>::new());
        assert_eq!(outcome.metrics.rounds, 0);
        assert_eq!(outcome.metrics.messages, 0);
        assert!(outcome.outputs.is_empty());
    }

    #[test]
    fn pool_on_edgeless_graph() {
        // Nodes but no edges: every node runs its rounds hearing nothing.
        let g = Topology::from_edges(5, &[]).unwrap();
        assert_equivalent(&g, &[1, 2, 3, 4, 5], 2);
    }

    #[test]
    fn zero_round_algorithm_terminates_immediately() {
        #[derive(Clone)]
        struct Immediate;
        impl NodeAlgorithm for Immediate {
            type Message = u64;
            type Output = ();
            fn init(&mut self, _ctx: &NodeContext) {}
            fn send(&mut self, _ctx: &NodeContext) -> Outbox<u64> {
                Outbox::Silent
            }
            fn receive(&mut self, _ctx: &NodeContext, _inbox: &Inbox<'_, u64>) {}
            fn is_halted(&self) -> bool {
                true
            }
            fn output(&self) {}
        }
        let g = triangle();
        for config in [SimulatorConfig::default(), parallel_config(2)] {
            let outcome =
                Simulator::with_config(&g, config).run(vec![Immediate, Immediate, Immediate]);
            assert_eq!(outcome.metrics.rounds, 0);
            assert_eq!(outcome.metrics.messages, 0);
        }
    }

    #[test]
    #[should_panic(expected = "one algorithm instance per node")]
    fn mismatched_node_count_panics() {
        let g = triangle();
        let _ = Simulator::new(&g).run(vec![GossipSum::new(1)]);
    }

    #[test]
    fn messages_to_halted_nodes_are_charged_but_discarded() {
        // Path 0 - 1.  Node 0 halts after 1 round; node 1 keeps broadcasting
        // for 3 rounds.  The CONGEST accounting charges node 1's later
        // messages (the wire is used) but node 0's state stays frozen.
        let g = Topology::from_edges(2, &[(0, 1)]).unwrap();
        for config in [SimulatorConfig::default(), parallel_config(2)] {
            let outcome =
                Simulator::with_config(&g, config).run(vec![GossipSum::new(1), GossipSum::new(3)]);
            assert_eq!(outcome.metrics.rounds, 3);
            // Round 0: both broadcast (2 messages).  Rounds 1 and 2: only
            // node 1 broadcasts, to the now-halted node 0 (1 message each) —
            // charged, per the documented semantics.
            assert_eq!(outcome.metrics.messages, 4);
            // Node 0 heard node 1 exactly once (round 0) and discarded the
            // rest; node 1 heard node 0 exactly once (round 0, before the
            // halt took effect for the next round).
            assert_eq!(outcome.outputs[0], 1);
            assert_eq!(outcome.outputs[1], 0);
            assert_eq!(outcome.metrics.active_per_round, vec![2, 1, 1]);
        }
    }

    #[test]
    fn per_port_messages_are_routed_correctly() {
        /// Sends its id only on port 0 for one round; records what it heard.
        #[derive(Clone)]
        struct PortZero {
            id: u64,
            heard: Vec<(usize, u64)>,
            done: bool,
        }
        impl NodeAlgorithm for PortZero {
            type Message = u64;
            type Output = Vec<(usize, u64)>;
            fn init(&mut self, ctx: &NodeContext) {
                self.id = ctx.node as u64;
            }
            fn send(&mut self, ctx: &NodeContext) -> Outbox<u64> {
                if ctx.degree > 0 {
                    Outbox::PerPort(vec![(0, self.id)])
                } else {
                    Outbox::Silent
                }
            }
            fn receive(&mut self, _ctx: &NodeContext, inbox: &Inbox<'_, u64>) {
                self.heard = inbox.iter().map(|(p, m)| (p, *m)).collect();
                self.done = true;
            }
            fn is_halted(&self) -> bool {
                self.done
            }
            fn output(&self) -> Vec<(usize, u64)> {
                self.heard.clone()
            }
        }

        // Path 0 - 1 - 2.  Port 0 of node 0 is node 1; port 0 of node 1 is
        // node 0; port 0 of node 2 is node 1.
        let g = Topology::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let nodes = (0..3)
            .map(|_| PortZero {
                id: 0,
                heard: vec![],
                done: false,
            })
            .collect::<Vec<_>>();
        let outcome = Simulator::new(&g).run(nodes);
        // Node 1 hears node 0 on port 0 and node 2 on port 1.
        assert_eq!(outcome.outputs[1], vec![(0, 0), (1, 2)]);
        // Node 0 hears node 1 (which sent only on its port 0, towards node 0).
        assert_eq!(outcome.outputs[0], vec![(0, 1)]);
        // Node 2 hears nothing: node 1's port 0 points to node 0.
        assert_eq!(outcome.outputs[2], vec![]);
    }

    /// Broadcasts twice over the same port in one round — a CONGEST model
    /// violation the engine must reject.
    #[derive(Clone)]
    struct DoubleSend;
    impl NodeAlgorithm for DoubleSend {
        type Message = u64;
        type Output = ();
        fn init(&mut self, _ctx: &NodeContext) {}
        fn send(&mut self, _ctx: &NodeContext) -> Outbox<u64> {
            Outbox::PerPort(vec![(0, 1), (0, 2)])
        }
        fn receive(&mut self, _ctx: &NodeContext, _inbox: &Inbox<'_, u64>) {}
        fn is_halted(&self) -> bool {
            false
        }
        fn output(&self) {}
    }

    #[test]
    #[should_panic(expected = "two messages over the same port")]
    fn duplicate_port_send_is_rejected() {
        let g = Topology::from_edges(2, &[(0, 1)]).unwrap();
        let _ = Simulator::new(&g).run(vec![DoubleSend, DoubleSend]);
    }

    /// Panics in `send` at round 1 on one node; the pool must propagate the
    /// panic instead of deadlocking at a barrier.
    #[derive(Clone)]
    struct PanicsAtRoundOne;
    impl NodeAlgorithm for PanicsAtRoundOne {
        type Message = u64;
        type Output = ();
        fn init(&mut self, _ctx: &NodeContext) {}
        fn send(&mut self, ctx: &NodeContext) -> Outbox<u64> {
            if ctx.round == 1 && ctx.node == 2 {
                panic!("algorithm exploded");
            }
            Outbox::Broadcast(ctx.node as u64)
        }
        fn receive(&mut self, _ctx: &NodeContext, _inbox: &Inbox<'_, u64>) {}
        fn is_halted(&self) -> bool {
            false
        }
        fn output(&self) {}
    }

    #[test]
    #[should_panic(expected = "algorithm exploded")]
    fn pool_propagates_algorithm_panics() {
        let n = 8;
        let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let g = Topology::from_edges(n, &edges).unwrap();
        let _ = Simulator::with_config(&g, parallel_config(3))
            .run((0..n).map(|_| PanicsAtRoundOne).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "two messages over the same port")]
    fn pool_propagates_delivery_panics() {
        let g = Topology::from_edges(2, &[(0, 1)]).unwrap();
        let _ = Simulator::with_config(&g, parallel_config(2)).run(vec![DoubleSend, DoubleSend]);
    }

    #[test]
    fn phase_timings_are_recorded() {
        let g = triangle();
        for config in [SimulatorConfig::default(), parallel_config(2)] {
            let outcome = Simulator::with_config(&g, config)
                .run((0..3).map(|_| GossipSum::new(50)).collect::<Vec<_>>());
            let p = outcome.metrics.phase_nanos;
            // 50 rounds of real work: each phase must have accumulated time.
            assert!(p.send > 0 && p.deliver > 0 && p.receive > 0);
            assert!(p.total() >= p.send);
        }
    }

    #[test]
    fn sharded_round_cap_and_empty_graph() {
        use crate::executor::ShardedExecutor;
        use crate::sharded::ShardedTopology;
        let g = ShardedTopology::from_topology(&triangle(), 2).unwrap();
        let sim = Simulator::with_config(
            &g,
            SimulatorConfig {
                max_rounds: 3,
                mode: ExecutionMode::Sequential, // ignored by the seam
            },
        );
        let out = sim.run_with_executor(
            (0..3).map(|_| GossipSum::new(u64::MAX)).collect::<Vec<_>>(),
            &ShardedExecutor::new(),
        );
        assert_eq!(out.metrics.rounds, 3);
        assert!(out.metrics.hit_round_cap);

        let empty = ShardedTopology::from_edge_stream(0, 3, |_| {}).unwrap();
        let out = Simulator::new(&empty)
            .run_with_executor(Vec::<GossipSum>::new(), &ShardedExecutor::new());
        assert_eq!(out.metrics.rounds, 0);
        assert!(out.outputs.is_empty());
    }

    #[test]
    fn sharded_attributes_cross_vs_intra_messages() {
        use crate::executor::ShardedExecutor;
        use crate::sharded::ShardedTopology;
        // A 6-ring in 2 shards of 3 nodes: per round, each shard's interior
        // node talks only intra-shard, the two border nodes each send one
        // message across — 4 cross + 8 intra per round.
        let n = 6;
        let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let dense = Topology::from_edges(n, &edges).unwrap();
        let g = ShardedTopology::from_topology(&dense, 2).unwrap();
        assert_eq!(g.shard_nodes(0), 0..3);
        let out = Simulator::new(&g).run_with_executor(
            (0..n).map(|_| GossipSum::new(2)).collect::<Vec<_>>(),
            &ShardedExecutor::new(),
        );
        assert_eq!(out.metrics.rounds, 2);
        assert_eq!(out.metrics.messages, 24);
        assert_eq!(out.metrics.cross_shard_messages, 8);
        assert_eq!(out.metrics.intra_shard_messages, 16);
    }

    #[test]
    #[should_panic(expected = "algorithm exploded")]
    fn sharded_propagates_algorithm_panics() {
        use crate::executor::ShardedExecutor;
        use crate::sharded::ShardedTopology;
        let n = 8;
        let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let dense = Topology::from_edges(n, &edges).unwrap();
        let g = ShardedTopology::from_topology(&dense, 3).unwrap();
        let _ = Simulator::new(&g).run_with_executor(
            (0..n).map(|_| PanicsAtRoundOne).collect::<Vec<_>>(),
            &ShardedExecutor::new(),
        );
    }

    #[test]
    #[should_panic(expected = "two messages over the same port")]
    fn sharded_propagates_delivery_panics() {
        use crate::executor::ShardedExecutor;
        use crate::sharded::ShardedTopology;
        let dense = Topology::from_edges(2, &[(0, 1)]).unwrap();
        let g = ShardedTopology::from_topology(&dense, 2).unwrap();
        let _ = Simulator::new(&g)
            .run_with_executor(vec![DoubleSend, DoubleSend], &ShardedExecutor::new());
    }

    #[test]
    fn sharded_run_leaves_a_clean_arena_for_reuse() {
        // Regression: sharded workers track touched slots thread-locally, so
        // they must retire their final-round slots on exit — otherwise a
        // reused arena replays the previous run's messages as phantoms.
        use crate::executor::{Executor, RoundState, SequentialExecutor, ShardedExecutor};
        use crate::sharded::ShardedTopology;

        /// Never sends; records how many messages arrived in its one round.
        #[derive(Clone)]
        struct HearOnce {
            heard: usize,
            done: bool,
        }
        impl NodeAlgorithm for HearOnce {
            type Message = u64;
            type Output = usize;
            fn init(&mut self, _ctx: &NodeContext) {}
            fn send(&mut self, _ctx: &NodeContext) -> Outbox<u64> {
                Outbox::Silent
            }
            fn receive(&mut self, _ctx: &NodeContext, inbox: &Inbox<'_, u64>) {
                self.heard = inbox.len();
                self.done = true;
            }
            fn is_halted(&self) -> bool {
                self.done
            }
            fn output(&self) -> usize {
                self.heard
            }
        }

        let dense = Topology::from_edges(2, &[(0, 1)]).unwrap();
        let g = ShardedTopology::from_topology(&dense, 2).unwrap();
        let contexts: Vec<NodeContext> = (0..2)
            .map(|v| NodeContext {
                node: v,
                degree: 1,
                n: 2,
                max_degree: 1,
                round: 0,
            })
            .collect();
        let mut state: RoundState<u64> = RoundState::new(&g);

        // Run 1 (sharded): both nodes broadcast in their final round.
        let mut gossips: Vec<GossipSum> = (0..2).map(|_| GossipSum::new(1)).collect();
        for (node, ctx) in gossips.iter_mut().zip(&contexts) {
            node.init(ctx);
        }
        let mut metrics = RunMetrics::default();
        ShardedExecutor::new().drive(
            &g,
            &mut gossips,
            &contexts,
            &mut state,
            1000,
            &mut metrics,
            &NoTrace,
        );
        assert_eq!(metrics.messages, 2);

        // Run 2 reuses the arena: pure listeners must hear *nothing*.
        let mut listeners = vec![
            HearOnce {
                heard: 0,
                done: false
            };
            2
        ];
        let mut metrics = RunMetrics::default();
        SequentialExecutor.drive(
            &g,
            &mut listeners,
            &contexts,
            &mut state,
            1000,
            &mut metrics,
            &NoTrace,
        );
        assert_eq!(
            [listeners[0].output(), listeners[1].output()],
            [0, 0],
            "stale messages leaked from the previous sharded run"
        );
    }

    #[test]
    fn pooled_executor_runs_on_a_sharded_topology() {
        // Sequential and pooled are generic over the representation, so a
        // sharded topology can be driven without the sharded executor too.
        use crate::sharded::ShardedTopology;
        let n = 12;
        let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let dense = Topology::from_edges(n, &edges).unwrap();
        let g = ShardedTopology::from_topology(&dense, 3).unwrap();
        let mk = || (0..n).map(|_| GossipSum::new(3)).collect::<Vec<_>>();
        let seq = Simulator::new(&dense).run(mk());
        let pooled = Simulator::with_config(&g, parallel_config(2)).run(mk());
        assert_eq!(seq.outputs, pooled.outputs);
        assert_eq!(seq.metrics.messages, pooled.metrics.messages);
    }

    #[test]
    fn custom_executor_seam_accepts_an_explicit_strategy() {
        let g = triangle();
        let sim = Simulator::new(&g);
        let pooled = crate::executor::PooledExecutor::new(2);
        let via_seam = sim.run_with_executor(
            (0..3).map(|_| GossipSum::new(2)).collect::<Vec<_>>(),
            &pooled,
        );
        let via_mode = Simulator::with_config(&g, parallel_config(2))
            .run((0..3).map(|_| GossipSum::new(2)).collect::<Vec<_>>());
        assert_eq!(via_seam.outputs, via_mode.outputs);
        assert_eq!(via_seam.metrics.messages, via_mode.metrics.messages);
    }
}
