//! Edge-partitioned sharded topology for `n ≥ 10^7` graphs.
//!
//! [`ShardedTopology`] stores the same port-numbered communication graph as
//! [`Topology`], but partitioned into `S` contiguous
//! node-range *shards*, each holding its own CSR slice.  The representation
//! is built for two things the single-arena [`Topology`] cannot do at the
//! `n ≥ 10^7` scale the ROADMAP targets:
//!
//! * **Streaming construction** — [`ShardedTopology::from_edge_stream`]
//!   consumes the edge list as a replayable *stream* (two passes: degree
//!   counting, then CSR fill), so peak memory is the final CSR itself; no
//!   global `Vec<(NodeId, NodeId)>` or hash-set of edges is ever
//!   materialised.
//! * **Shard ownership** — every shard owns a contiguous range of nodes
//!   *and* the contiguous range of inbox slots of exactly those nodes, so
//!   the [`ShardedExecutor`](crate::executor::ShardedExecutor) can give each
//!   worker thread exclusive, lock-free ownership of one shard's slots and
//!   exchange only cross-shard messages through staging queues.
//!
//! # Shard layout
//!
//! Nodes are split into `S` contiguous ranges chosen to balance
//! `deg(v) + 1` (directed edges plus active-set weight) across shards:
//!
//! ```text
//! nodes:  [0 ─────────┬──────────┬───────────── n)
//!          shard 0    shard 1    shard 2
//! slots:  [0 ─────────┬──────────┬───────────── 2m)
//!          slots of    slots of   slots of
//!          shard 0's   shard 1's  shard 2's
//!          nodes       nodes      nodes
//! ```
//!
//! Because the flat slot contract of
//! [`TopologyView`] assigns slot ranges in
//! ascending node order, the shard's node range induces its slot range; both
//! are recorded in prefix arrays (`node_start` / `slot_start`).
//!
//! # The cross-shard port remap table
//!
//! Delivering a message sent by `v` over port `p` requires the *global slot*
//! of the receiving endpoint — which generally lives in another shard's CSR.
//! Each shard therefore precomputes, for every outgoing directed edge, the
//! destination slot ([`ShardedTopology::dest_slot`]): senders never chase
//! another shard's offsets at delivery time, they look up one `u32` and
//! either write the slot directly (intra-shard) or enqueue the pair
//! `(slot, message)` for the owning worker (cross-shard).
//!
//! # Compact indexing
//!
//! Neighbour ids, reverse ports and destination slots are stored as `u32`
//! (half the memory of the `usize`-based [`Topology`] —
//! the difference between fitting a `10^7`-node graph in RAM or not).
//! Graphs whose node count or directed-edge count exceeds `u32::MAX` are
//! rejected with [`TopologyError::NodeRangeOverflow`].

use serde::{Deserialize, Serialize};

use crate::topology::{NodeId, Port, Topology, TopologyError, TopologyView};

/// The largest node count / directed-edge count the compact `u32`
/// representation can index.
const INDEX_LIMIT: usize = u32::MAX as usize;

/// One shard's CSR slice: the adjacency of a contiguous node range.
///
/// All offsets are *local* (relative to the shard's first slot); global
/// slots are `slot_start[s] + local`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct ShardCsr {
    /// Local CSR offsets: the ports of the shard's `i`-th node occupy local
    /// slots `offsets[i]..offsets[i + 1]`.
    offsets: Vec<usize>,
    /// Neighbour (global) node ids, sorted per node.
    adjacency: Vec<u32>,
    /// For each outgoing directed edge, the port at which the sender appears
    /// in the receiver's port list.
    reverse_port: Vec<u32>,
    /// The port remap table: for each outgoing directed edge, the *global*
    /// inbox slot of the receiving endpoint.
    dest_slot: Vec<u32>,
}

/// An edge-partitioned, port-numbered communication graph (see the
/// [module docs](self) for the layout).
///
/// Implements [`TopologyView`], so it runs under every executor; the
/// [`ShardedExecutor`](crate::executor::ShardedExecutor) additionally
/// exploits the shard structure for parallel delivery.
///
/// # Examples
///
/// ```
/// use dcme_congest::{ShardedTopology, TopologyView};
/// // A triangle, split into 2 shards.
/// let g = ShardedTopology::from_edge_stream(3, 2, |emit| {
///     emit(0, 1);
///     emit(1, 2);
///     emit(2, 0);
/// })
/// .unwrap();
/// assert_eq!(g.num_nodes(), 3);
/// assert_eq!(g.num_shards(), 2);
/// assert_eq!(g.num_directed_edges(), 6);
/// assert_eq!(g.degree(1), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardedTopology {
    n: usize,
    num_edges: usize,
    max_degree: u32,
    /// Shard `s` owns nodes `node_start[s]..node_start[s + 1]` (length
    /// `S + 1`, ascending, `node_start[S] == n`).
    node_start: Vec<usize>,
    /// Shard `s` owns flat slots `slot_start[s]..slot_start[s + 1]`.
    slot_start: Vec<usize>,
    shards: Vec<ShardCsr>,
}

impl ShardedTopology {
    /// Builds a sharded topology from a replayable edge stream.
    ///
    /// `stream` is invoked exactly **twice** and must emit the same sequence
    /// of undirected edges on both invocations (pass 1 counts degrees and
    /// chooses shard boundaries, pass 2 fills the per-shard CSR slices).
    /// Deterministic generators satisfy this by construction; randomized
    /// ones by re-seeding their RNG inside the closure.
    ///
    /// Peak memory is the final CSR plus `O(n)` scratch — the edge list is
    /// never materialised.
    ///
    /// # Errors
    ///
    /// * [`TopologyError::ShardCountZero`] if `num_shards == 0`;
    /// * [`TopologyError::NodeRangeOverflow`] if `n` or the directed-edge
    ///   count exceeds `u32::MAX`;
    /// * [`TopologyError::NodeOutOfRange`] / [`TopologyError::SelfLoop`] /
    ///   [`TopologyError::DuplicateEdge`] exactly as
    ///   [`Topology::from_edges`] reports them.
    pub fn from_edge_stream<F>(
        n: usize,
        num_shards: usize,
        mut stream: F,
    ) -> Result<Self, TopologyError>
    where
        F: FnMut(&mut dyn FnMut(NodeId, NodeId)),
    {
        if num_shards == 0 {
            return Err(TopologyError::ShardCountZero);
        }
        if n > INDEX_LIMIT {
            return Err(TopologyError::NodeRangeOverflow {
                value: n,
                limit: INDEX_LIMIT,
            });
        }

        // --- Pass 1: validate endpoints, count degrees ------------------
        let mut degree: Vec<u32> = vec![0; n];
        let mut num_edges: usize = 0;
        let mut first_error: Option<TopologyError> = None;
        stream(&mut |u: NodeId, v: NodeId| {
            if first_error.is_some() {
                return;
            }
            if u >= n || v >= n {
                let node = if u >= n { u } else { v };
                first_error = Some(TopologyError::NodeOutOfRange { node, n });
                return;
            }
            if u == v {
                first_error = Some(TopologyError::SelfLoop(u));
                return;
            }
            if 2 * (num_edges + 1) > INDEX_LIMIT {
                first_error = Some(TopologyError::NodeRangeOverflow {
                    value: 2 * (num_edges + 1),
                    limit: INDEX_LIMIT,
                });
                return;
            }
            degree[u] += 1;
            degree[v] += 1;
            num_edges += 1;
        });
        if let Some(e) = first_error {
            return Err(e);
        }

        // --- Shard boundaries: balance deg(v) + 1 per shard -------------
        // The weight deg(v) + 1 balances both slot ownership (delivery
        // work) and node ownership (send/receive work); the +1 also keeps
        // the split sensible on edgeless graphs.
        let total_weight = 2 * num_edges + n;
        let mut node_start = Vec::with_capacity(num_shards + 1);
        let mut slot_start = Vec::with_capacity(num_shards + 1);
        node_start.push(0);
        slot_start.push(0);
        let mut acc_weight: usize = 0;
        let mut acc_slots: usize = 0;
        let mut next_cut = 1usize;
        for (v, &d) in degree.iter().enumerate().take(n) {
            acc_weight += d as usize + 1;
            acc_slots += d as usize;
            // Close shard `next_cut - 1` once its fair share of weight is
            // reached; several cuts can land on one node for tiny graphs.
            while next_cut < num_shards && acc_weight * num_shards >= next_cut * total_weight {
                node_start.push(v + 1);
                slot_start.push(acc_slots);
                next_cut += 1;
            }
        }
        // Degenerate graphs (or more shards than weight): pad with empty
        // shards at the end.
        while node_start.len() < num_shards {
            node_start.push(n);
            slot_start.push(2 * num_edges);
        }
        node_start.push(n);
        slot_start.push(2 * num_edges);

        // --- Local CSR offsets per shard --------------------------------
        let mut shards: Vec<ShardCsr> = Vec::with_capacity(num_shards);
        for s in 0..num_shards {
            let nodes = node_start[s]..node_start[s + 1];
            let mut offsets = Vec::with_capacity(nodes.len() + 1);
            offsets.push(0usize);
            for v in nodes {
                offsets.push(offsets.last().unwrap() + degree[v] as usize);
            }
            let slots = offsets[offsets.len() - 1];
            shards.push(ShardCsr {
                offsets,
                adjacency: vec![0u32; slots],
                reverse_port: vec![0u32; slots],
                dest_slot: vec![0u32; slots],
            });
        }

        // --- Pass 2: fill adjacency -------------------------------------
        // `cursor[v]` is the next free port of `v`; the degree buffer is
        // reused as the cursor (filled entries count back up to degree).
        let shard_of = |node_start: &[usize], v: NodeId| -> usize {
            node_start.partition_point(|&s| s <= v) - 1
        };
        let mut cursor: Vec<u32> = vec![0; n];
        stream(&mut |u: NodeId, v: NodeId| {
            for (a, b) in [(u, v), (v, u)] {
                let s = shard_of(&node_start[..=num_shards], a);
                let local = shards[s].offsets[a - node_start[s]] + cursor[a] as usize;
                shards[s].adjacency[local] = b as u32;
                cursor[a] += 1;
            }
        });
        debug_assert!(
            cursor.iter().zip(&degree).all(|(c, d)| c == d),
            "pass 2 must replay exactly the edges of pass 1"
        );

        // --- Sort per-node port lists, reject duplicate edges ------------
        for s in 0..num_shards {
            for i in 0..node_start[s + 1] - node_start[s] {
                let (lo, hi) = (shards[s].offsets[i], shards[s].offsets[i + 1]);
                let ports = &mut shards[s].adjacency[lo..hi];
                ports.sort_unstable();
                if let Some(w) = ports.windows(2).find(|w| w[0] == w[1]) {
                    let v = node_start[s] + i;
                    let u = w[0] as usize;
                    return Err(TopologyError::DuplicateEdge(v.min(u), v.max(u)));
                }
            }
        }

        // --- Reverse ports + the cross-shard port remap table ------------
        for s in 0..num_shards {
            for i in 0..node_start[s + 1] - node_start[s] {
                let v = node_start[s] + i;
                for local in shards[s].offsets[i]..shards[s].offsets[i + 1] {
                    let u = shards[s].adjacency[local] as usize;
                    let su = shard_of(&node_start[..=num_shards], u);
                    let u_local = u - node_start[su];
                    let (lo, hi) = (shards[su].offsets[u_local], shards[su].offsets[u_local + 1]);
                    let rp = shards[su].adjacency[lo..hi]
                        .binary_search(&(v as u32))
                        .expect("undirected edge must appear in both port lists");
                    let dest = slot_start[su] + lo + rp;
                    // Borrow dance: `shards[s]` and `shards[su]` may alias.
                    let shard = &mut shards[s];
                    shard.reverse_port[local] = rp as u32;
                    shard.dest_slot[local] = dest as u32;
                }
            }
        }

        let max_degree = degree.iter().copied().max().unwrap_or(0);
        Ok(Self {
            n,
            num_edges,
            max_degree,
            node_start,
            slot_start,
            shards,
        })
    }

    /// Shards an already-built [`Topology`] (mainly for tests and for
    /// workloads whose graph already fits in one arena).
    ///
    /// The result is structurally identical to the source: same port
    /// numbering, same flat slot contract, so runs are bit-for-bit
    /// reproducible across the two representations.
    ///
    /// # Errors
    ///
    /// [`TopologyError::ShardCountZero`] and
    /// [`TopologyError::NodeRangeOverflow`] as in
    /// [`ShardedTopology::from_edge_stream`]; the edge list itself is
    /// already validated.
    pub fn from_topology(topology: &Topology, num_shards: usize) -> Result<Self, TopologyError> {
        Self::from_edge_stream(topology.num_nodes(), num_shards, |emit| {
            for (u, v) in topology.edges() {
                emit(u, v);
            }
        })
    }

    /// Number of shards `S`.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// The contiguous node range owned by shard `s`.
    #[inline]
    pub fn shard_nodes(&self, s: usize) -> core::ops::Range<NodeId> {
        self.node_start[s]..self.node_start[s + 1]
    }

    /// The contiguous flat-slot range owned by shard `s` (the inbox slots of
    /// exactly the nodes in [`ShardedTopology::shard_nodes`]).
    #[inline]
    pub fn shard_slots(&self, s: usize) -> core::ops::Range<usize> {
        self.slot_start[s]..self.slot_start[s + 1]
    }

    /// The shard owning node `v`.
    #[inline]
    pub fn shard_of(&self, v: NodeId) -> usize {
        self.node_start.partition_point(|&s| s <= v) - 1
    }

    /// The shard owning flat slot `slot`.
    #[inline]
    pub fn shard_of_slot(&self, slot: usize) -> usize {
        self.slot_start.partition_point(|&s| s <= slot) - 1
    }

    /// The global inbox slot that a message sent by `v` over port `p` lands
    /// in — one lookup in the precomputed port remap table.
    #[inline]
    pub fn dest_slot(&self, v: NodeId, p: Port) -> usize {
        self.dest_slot_from(self.shard_of(v), v, p)
    }

    /// [`ShardedTopology::dest_slot`] with the sender's shard already known
    /// — the sharded executor's per-message hot path, where `v` always
    /// belongs to the calling worker's shard, skips the `shard_of` search.
    #[inline]
    pub fn dest_slot_from(&self, shard: usize, v: NodeId, p: Port) -> usize {
        debug_assert_eq!(self.shard_of(v), shard);
        let csr = &self.shards[shard];
        let local = csr.offsets[v - self.node_start[shard]] + p;
        csr.dest_slot[local] as usize
    }

    /// Degree of `v` with its shard already known (see
    /// [`ShardedTopology::dest_slot_from`]).
    #[inline]
    pub fn degree_from(&self, shard: usize, v: NodeId) -> usize {
        debug_assert_eq!(self.shard_of(v), shard);
        let csr = &self.shards[shard];
        let i = v - self.node_start[shard];
        csr.offsets[i + 1] - csr.offsets[i]
    }

    #[inline]
    fn locate(&self, v: NodeId) -> (&ShardCsr, usize) {
        let s = self.shard_of(v);
        (&self.shards[s], v - self.node_start[s])
    }
}

impl TopologyView for ShardedTopology {
    #[inline]
    fn num_nodes(&self) -> usize {
        self.n
    }

    #[inline]
    fn num_directed_edges(&self) -> usize {
        2 * self.num_edges
    }

    #[inline]
    fn max_degree(&self) -> u32 {
        self.max_degree
    }

    #[inline]
    fn degree(&self, v: NodeId) -> usize {
        let (shard, i) = self.locate(v);
        shard.offsets[i + 1] - shard.offsets[i]
    }

    #[inline]
    fn neighbor_at(&self, v: NodeId, p: Port) -> NodeId {
        let (shard, i) = self.locate(v);
        shard.adjacency[shard.offsets[i] + p] as NodeId
    }

    #[inline]
    fn reverse_port(&self, v: NodeId, p: Port) -> Port {
        let (shard, i) = self.locate(v);
        shard.reverse_port[shard.offsets[i] + p] as Port
    }

    #[inline]
    fn port_range(&self, v: NodeId) -> core::ops::Range<usize> {
        let s = self.shard_of(v);
        let shard = &self.shards[s];
        let i = v - self.node_start[s];
        let base = self.slot_start[s];
        base + shard.offsets[i]..base + shard.offsets[i + 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Asserts the sharded and dense representations describe the exact
    /// same port-numbered graph (same flat slot contract included).
    fn assert_same_structure(dense: &Topology, sharded: &ShardedTopology) {
        assert_eq!(sharded.num_nodes(), dense.num_nodes());
        assert_eq!(sharded.num_edges(), dense.num_edges());
        assert_eq!(sharded.num_directed_edges(), dense.num_directed_edges());
        assert_eq!(TopologyView::max_degree(sharded), dense.max_degree());
        for v in dense.nodes() {
            assert_eq!(TopologyView::degree(sharded, v), dense.degree(v), "v={v}");
            assert_eq!(
                TopologyView::port_range(sharded, v),
                dense.port_range(v),
                "v={v}"
            );
            for p in 0..dense.degree(v) {
                assert_eq!(
                    TopologyView::neighbor_at(sharded, v, p),
                    dense.neighbor_at(v, p)
                );
                assert_eq!(
                    TopologyView::reverse_port(sharded, v, p),
                    dense.reverse_port(v, p)
                );
                let u = dense.neighbor_at(v, p);
                let rp = dense.reverse_port(v, p);
                assert_eq!(sharded.dest_slot(v, p), dense.port_range(u).start + rp);
            }
        }
    }

    fn ring_edges(n: usize) -> Vec<(NodeId, NodeId)> {
        (0..n).map(|i| (i, (i + 1) % n)).collect()
    }

    #[test]
    fn matches_dense_topology_for_every_shard_count() {
        let edges = ring_edges(13);
        let dense = Topology::from_edges(13, &edges).unwrap();
        for s in [1, 2, 3, 5, 13, 20] {
            let sharded = ShardedTopology::from_topology(&dense, s).unwrap();
            assert_eq!(sharded.num_shards(), s);
            assert_same_structure(&dense, &sharded);
        }
    }

    #[test]
    fn shard_ranges_partition_nodes_and_slots() {
        let edges = ring_edges(17);
        let dense = Topology::from_edges(17, &edges).unwrap();
        let g = ShardedTopology::from_topology(&dense, 4).unwrap();
        let mut node_cover = 0;
        let mut slot_cover = 0;
        for s in 0..g.num_shards() {
            let nodes = g.shard_nodes(s);
            let slots = g.shard_slots(s);
            assert_eq!(nodes.start, node_cover);
            assert_eq!(slots.start, slot_cover);
            node_cover = nodes.end;
            slot_cover = slots.end;
            for v in nodes {
                assert_eq!(g.shard_of(v), s);
                let pr = TopologyView::port_range(&g, v);
                assert!(pr.start >= g.shard_slots(s).start && pr.end <= g.shard_slots(s).end);
                for slot in pr {
                    assert_eq!(g.shard_of_slot(slot), s);
                }
            }
        }
        assert_eq!(node_cover, 17);
        assert_eq!(slot_cover, g.num_directed_edges());
    }

    #[test]
    fn streaming_construction_matches_from_topology() {
        let edges = ring_edges(9);
        let dense = Topology::from_edges(9, &edges).unwrap();
        let via_stream = ShardedTopology::from_edge_stream(9, 3, |emit| {
            for &(u, v) in &edges {
                emit(u, v);
            }
        })
        .unwrap();
        let via_topology = ShardedTopology::from_topology(&dense, 3).unwrap();
        assert_eq!(via_stream, via_topology);
    }

    #[test]
    fn star_hub_weight_is_handled() {
        // A star concentrates all edges at node 0: shard 0 gets the hub,
        // later shards share the leaves; the structure must still match.
        let edges: Vec<_> = (1..=40).map(|v| (0, v)).collect();
        let dense = Topology::from_edges(41, &edges).unwrap();
        for s in [2, 3, 8] {
            let sharded = ShardedTopology::from_topology(&dense, s).unwrap();
            assert_same_structure(&dense, &sharded);
        }
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let g = ShardedTopology::from_edge_stream(0, 3, |_| {}).unwrap();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_directed_edges(), 0);
        let g = ShardedTopology::from_edge_stream(5, 2, |_| {}).unwrap();
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(TopologyView::max_degree(&g), 0);
        for v in 0..5 {
            assert_eq!(TopologyView::degree(&g, v), 0);
        }
    }

    #[test]
    fn rejects_invalid_streams() {
        assert_eq!(
            ShardedTopology::from_edge_stream(3, 0, |_| {}),
            Err(TopologyError::ShardCountZero)
        );
        assert!(matches!(
            ShardedTopology::from_edge_stream(3, 2, |emit| emit(0, 3)),
            Err(TopologyError::NodeOutOfRange { node: 3, n: 3 })
        ));
        assert!(matches!(
            ShardedTopology::from_edge_stream(3, 2, |emit| emit(1, 1)),
            Err(TopologyError::SelfLoop(1))
        ));
        assert!(matches!(
            ShardedTopology::from_edge_stream(3, 2, |emit| {
                emit(0, 1);
                emit(1, 0);
            }),
            Err(TopologyError::DuplicateEdge(0, 1))
        ));
    }

    #[test]
    fn rejects_node_range_overflow() {
        assert!(matches!(
            ShardedTopology::from_edge_stream(INDEX_LIMIT + 1, 2, |_| {}),
            Err(TopologyError::NodeRangeOverflow { .. })
        ));
    }
}
