//! Edge-partitioned sharded topology for `n ≥ 10^7` graphs.
//!
//! [`ShardedTopology`] stores the same port-numbered communication graph as
//! [`Topology`], but partitioned into `S` contiguous
//! node-range *shards*, each holding its own CSR slice.  The representation
//! is built for two things the single-arena [`Topology`] cannot do at the
//! `n ≥ 10^7` scale the ROADMAP targets:
//!
//! * **Streaming construction** — [`ShardedTopology::from_edge_stream`]
//!   consumes the edge list as a replayable *stream* (two passes: degree
//!   counting, then CSR fill), so peak memory is the final CSR itself; no
//!   global `Vec<(NodeId, NodeId)>` or hash-set of edges is ever
//!   materialised.
//! * **Shard ownership** — every shard owns a contiguous range of nodes
//!   *and* the contiguous range of inbox slots of exactly those nodes, so
//!   the [`ShardedExecutor`](crate::executor::ShardedExecutor) can give each
//!   worker thread exclusive, lock-free ownership of one shard's slots and
//!   exchange only cross-shard messages through staging queues.
//!
//! # Shard layout
//!
//! Nodes are split into `S` contiguous ranges chosen to balance
//! `deg(v) + 1` (directed edges plus active-set weight) across shards:
//!
//! ```text
//! nodes:  [0 ─────────┬──────────┬───────────── n)
//!          shard 0    shard 1    shard 2
//! slots:  [0 ─────────┬──────────┬───────────── 2m)
//!          slots of    slots of   slots of
//!          shard 0's   shard 1's  shard 2's
//!          nodes       nodes      nodes
//! ```
//!
//! Because the flat slot contract of
//! [`TopologyView`] assigns slot ranges in
//! ascending node order, the shard's node range induces its slot range; both
//! are recorded in prefix arrays (`node_start` / `slot_start`).
//!
//! # The cross-shard port remap table
//!
//! Delivering a message sent by `v` over port `p` requires the *global slot*
//! of the receiving endpoint — which generally lives in another shard's CSR.
//! Each shard therefore precomputes, for every outgoing directed edge, the
//! destination slot ([`ShardedTopology::dest_slot`]): senders never chase
//! another shard's offsets at delivery time, they look up one `u32` and
//! either write the slot directly (intra-shard) or enqueue the pair
//! `(slot, message)` for the owning worker (cross-shard).
//!
//! # Compact indexing
//!
//! Neighbour ids, reverse ports and destination slots are stored as `u32`
//! (half the memory of the `usize`-based [`Topology`] —
//! the difference between fitting a `10^7`-node graph in RAM or not).
//! Graphs whose node count or directed-edge count exceeds `u32::MAX` are
//! rejected with [`TopologyError::NodeRangeOverflow`].

use serde::{Deserialize, Serialize};

use crate::topology::{NodeId, Port, Topology, TopologyError, TopologyView};
use crate::wire::{get_u32, get_u64, put_u32, put_u64, WireError};

/// The largest node count / directed-edge count the compact `u32`
/// representation can index.
const INDEX_LIMIT: usize = u32::MAX as usize;

/// One shard's CSR slice: the adjacency of a contiguous node range.
///
/// All offsets are *local* (relative to the shard's first slot); global
/// slots are `slot_start[s] + local`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct ShardCsr {
    /// Local CSR offsets: the ports of the shard's `i`-th node occupy local
    /// slots `offsets[i]..offsets[i + 1]`.
    offsets: Vec<usize>,
    /// Neighbour (global) node ids, sorted per node.
    adjacency: Vec<u32>,
    /// For each outgoing directed edge, the port at which the sender appears
    /// in the receiver's port list.
    reverse_port: Vec<u32>,
    /// The port remap table: for each outgoing directed edge, the *global*
    /// inbox slot of the receiving endpoint.
    dest_slot: Vec<u32>,
}

/// The result of construction **pass 1** over an edge stream: validated
/// shard boundaries plus the full per-node degree header.
///
/// This is the compact *topology header* of the scale-out protocol.  The
/// coordinator runs pass 1 exactly once, ships the plan as `Topology` wire
/// frames (via [`ShardPlan::to_bytes`]), and each worker combines the plan
/// with its own replay of the edge stream to build just its shard's slice
/// ([`ShardSliceTopology::build`]) — no process ever materialises the whole
/// CSR.  [`ShardedTopology::from_edge_stream`] feeds the same plan into
/// pass 2 ([`ShardedTopology::from_plan`]), so restricted and full builds
/// agree bit for bit.
///
/// Serialized size is `24 + 16(S + 1) + 4n` bytes: the degree array
/// dominates, and is exactly what makes every remap table reconstructible
/// locally without shipping `O(m)` edge data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    n: usize,
    num_edges: usize,
    max_degree: u32,
    /// Shard `s` owns nodes `node_start[s]..node_start[s + 1]`.
    node_start: Vec<usize>,
    /// Shard `s` owns flat slots `slot_start[s]..slot_start[s + 1]`.
    slot_start: Vec<usize>,
    /// Degree of every node — the header that lets any worker recompute any
    /// node's port-range start with one local prefix sum.
    degree: Vec<u32>,
}

impl ShardPlan {
    /// Runs construction pass 1: validates the stream's endpoints, counts
    /// degrees and chooses shard boundaries balancing `deg(v) + 1` weight.
    ///
    /// `stream` is invoked exactly **once** here; combine the plan with
    /// further replays via [`ShardedTopology::from_plan`] (full build) or
    /// [`ShardSliceTopology::build`] (one shard only).
    ///
    /// # Errors
    ///
    /// Exactly the pass-1 subset of
    /// [`ShardedTopology::from_edge_stream`]'s errors:
    /// [`TopologyError::ShardCountZero`],
    /// [`TopologyError::NodeRangeOverflow`],
    /// [`TopologyError::NodeOutOfRange`] and [`TopologyError::SelfLoop`]
    /// (duplicate edges are caught in pass 2, which sorts the port lists).
    pub fn from_edge_stream<F>(
        n: usize,
        num_shards: usize,
        mut stream: F,
    ) -> Result<Self, TopologyError>
    where
        F: FnMut(&mut dyn FnMut(NodeId, NodeId)),
    {
        if num_shards == 0 {
            return Err(TopologyError::ShardCountZero);
        }
        if n > INDEX_LIMIT {
            return Err(TopologyError::NodeRangeOverflow {
                value: n,
                limit: INDEX_LIMIT,
            });
        }

        // --- Pass 1: validate endpoints, count degrees ------------------
        let mut degree: Vec<u32> = vec![0; n];
        let mut num_edges: usize = 0;
        let mut first_error: Option<TopologyError> = None;
        stream(&mut |u: NodeId, v: NodeId| {
            if first_error.is_some() {
                return;
            }
            if u >= n || v >= n {
                let node = if u >= n { u } else { v };
                first_error = Some(TopologyError::NodeOutOfRange { node, n });
                return;
            }
            if u == v {
                first_error = Some(TopologyError::SelfLoop(u));
                return;
            }
            if 2 * (num_edges + 1) > INDEX_LIMIT {
                first_error = Some(TopologyError::NodeRangeOverflow {
                    value: 2 * (num_edges + 1),
                    limit: INDEX_LIMIT,
                });
                return;
            }
            degree[u] += 1;
            degree[v] += 1;
            num_edges += 1;
        });
        if let Some(e) = first_error {
            return Err(e);
        }

        // --- Shard boundaries: balance deg(v) + 1 per shard -------------
        // The weight deg(v) + 1 balances both slot ownership (delivery
        // work) and node ownership (send/receive work); the +1 also keeps
        // the split sensible on edgeless graphs.
        let total_weight = 2 * num_edges + n;
        let mut node_start = Vec::with_capacity(num_shards + 1);
        let mut slot_start = Vec::with_capacity(num_shards + 1);
        node_start.push(0);
        slot_start.push(0);
        let mut acc_weight: usize = 0;
        let mut acc_slots: usize = 0;
        let mut next_cut = 1usize;
        for (v, &d) in degree.iter().enumerate().take(n) {
            acc_weight += d as usize + 1;
            acc_slots += d as usize;
            // Close shard `next_cut - 1` once its fair share of weight is
            // reached; several cuts can land on one node for tiny graphs.
            while next_cut < num_shards && acc_weight * num_shards >= next_cut * total_weight {
                node_start.push(v + 1);
                slot_start.push(acc_slots);
                next_cut += 1;
            }
        }
        // Degenerate graphs (or more shards than weight): pad with empty
        // shards at the end.
        while node_start.len() < num_shards {
            node_start.push(n);
            slot_start.push(2 * num_edges);
        }
        node_start.push(n);
        slot_start.push(2 * num_edges);

        let max_degree = degree.iter().copied().max().unwrap_or(0);
        Ok(Self {
            n,
            num_edges,
            max_degree,
            node_start,
            slot_start,
            degree,
        })
    }

    /// Number of nodes of the planned graph.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of shards `S`.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.node_start.len() - 1
    }

    /// Number of undirected edges the stream emitted.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Maximum degree Δ.
    #[inline]
    pub fn max_degree(&self) -> u32 {
        self.max_degree
    }

    /// The contiguous node range owned by shard `s`.
    #[inline]
    pub fn shard_nodes(&self, s: usize) -> core::ops::Range<NodeId> {
        self.node_start[s]..self.node_start[s + 1]
    }

    /// Degree of node `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.degree[v] as usize
    }

    /// Serializes the plan into the payload bytes of `Topology` wire frames
    /// (little-endian, fixed layout — see the struct docs for the size).
    pub fn to_bytes(&self) -> Vec<u8> {
        let s = self.num_shards();
        let mut out = Vec::with_capacity(24 + 16 * (s + 1) + 4 * self.n);
        put_u64(&mut out, self.n as u64);
        put_u64(&mut out, self.num_edges as u64);
        put_u32(&mut out, self.max_degree);
        put_u32(&mut out, s as u32);
        for &x in &self.node_start {
            put_u64(&mut out, x as u64);
        }
        for &x in &self.slot_start {
            put_u64(&mut out, x as u64);
        }
        for &d in &self.degree {
            put_u32(&mut out, d);
        }
        out
    }

    /// Decodes a plan serialized by [`ShardPlan::to_bytes`], re-validating
    /// every structural invariant (lengths, monotone boundaries, degree
    /// sums) so a corrupted or forged frame is reported as a [`WireError`],
    /// never trusted.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let n = get_u64(bytes, 0)? as usize;
        let num_edges = get_u64(bytes, 8)? as usize;
        let max_degree = get_u32(bytes, 16)?;
        let s = get_u32(bytes, 20)? as usize;
        if n > INDEX_LIMIT {
            return Err(WireError::BadLength {
                len: n,
                limit: INDEX_LIMIT,
            });
        }
        if s == 0 {
            return Err(WireError::BadLength { len: 0, limit: 0 });
        }
        // Length check before any O(n)/O(S) allocation: the input itself
        // bounds what we allocate.
        let expected = 24 + 16 * (s + 1) + 4 * n;
        if bytes.len() < expected {
            return Err(WireError::Truncated {
                needed: expected,
                got: bytes.len(),
            });
        }
        if bytes.len() > expected {
            return Err(WireError::TrailingBytes(bytes.len() - expected));
        }
        let mut at = 24;
        let mut node_start = Vec::with_capacity(s + 1);
        for _ in 0..=s {
            node_start.push(get_u64(bytes, at)? as usize);
            at += 8;
        }
        let mut slot_start = Vec::with_capacity(s + 1);
        for _ in 0..=s {
            slot_start.push(get_u64(bytes, at)? as usize);
            at += 8;
        }
        let mut degree = Vec::with_capacity(n);
        for _ in 0..n {
            degree.push(get_u32(bytes, at)?);
            at += 4;
        }
        // Structural invariants: boundaries are monotone prefix arrays that
        // cover [0, n) / [0, 2m), and the slot widths equal the degree sums
        // of the node ranges they claim.
        let ok_bounds = node_start[0] == 0
            && slot_start[0] == 0
            && node_start[s] == n
            && slot_start[s] == 2 * num_edges
            && node_start.windows(2).all(|w| w[0] <= w[1])
            && slot_start.windows(2).all(|w| w[0] <= w[1]);
        if !ok_bounds {
            return Err(WireError::NonCanonical);
        }
        // Every boundary sitting at node `v` must cut the slot space at
        // the degree prefix sum (several can, for empty shards).
        let mut acc: usize = 0;
        let mut k = 0usize;
        for (v, &d) in degree.iter().enumerate() {
            while k <= s && node_start[k] == v {
                if slot_start[k] != acc {
                    return Err(WireError::NonCanonical);
                }
                k += 1;
            }
            acc += d as usize;
        }
        while k <= s && node_start[k] == n {
            if slot_start[k] != acc {
                return Err(WireError::NonCanonical);
            }
            k += 1;
        }
        if k != s + 1 || degree.iter().copied().max().unwrap_or(0) != max_degree {
            return Err(WireError::NonCanonical);
        }
        Ok(Self {
            n,
            num_edges,
            max_degree,
            node_start,
            slot_start,
            degree,
        })
    }
}

/// An edge-partitioned, port-numbered communication graph (see the
/// [module docs](self) for the layout).
///
/// Implements [`TopologyView`], so it runs under every executor; the
/// [`ShardedExecutor`](crate::executor::ShardedExecutor) additionally
/// exploits the shard structure for parallel delivery.
///
/// # Examples
///
/// ```
/// use dcme_congest::{ShardedTopology, TopologyView};
/// // A triangle, split into 2 shards.
/// let g = ShardedTopology::from_edge_stream(3, 2, |emit| {
///     emit(0, 1);
///     emit(1, 2);
///     emit(2, 0);
/// })
/// .unwrap();
/// assert_eq!(g.num_nodes(), 3);
/// assert_eq!(g.num_shards(), 2);
/// assert_eq!(g.num_directed_edges(), 6);
/// assert_eq!(g.degree(1), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardedTopology {
    n: usize,
    num_edges: usize,
    max_degree: u32,
    /// Shard `s` owns nodes `node_start[s]..node_start[s + 1]` (length
    /// `S + 1`, ascending, `node_start[S] == n`).
    node_start: Vec<usize>,
    /// Shard `s` owns flat slots `slot_start[s]..slot_start[s + 1]`.
    slot_start: Vec<usize>,
    shards: Vec<ShardCsr>,
}

impl ShardedTopology {
    /// Builds a sharded topology from a replayable edge stream.
    ///
    /// `stream` is invoked exactly **twice** and must emit the same sequence
    /// of undirected edges on both invocations (pass 1 counts degrees and
    /// chooses shard boundaries, pass 2 fills the per-shard CSR slices).
    /// Deterministic generators satisfy this by construction; randomized
    /// ones by re-seeding their RNG inside the closure.
    ///
    /// Peak memory is the final CSR plus `O(n)` scratch — the edge list is
    /// never materialised.
    ///
    /// # Errors
    ///
    /// * [`TopologyError::ShardCountZero`] if `num_shards == 0`;
    /// * [`TopologyError::NodeRangeOverflow`] if `n` or the directed-edge
    ///   count exceeds `u32::MAX`;
    /// * [`TopologyError::NodeOutOfRange`] / [`TopologyError::SelfLoop`] /
    ///   [`TopologyError::DuplicateEdge`] exactly as
    ///   [`Topology::from_edges`] reports them.
    pub fn from_edge_stream<F>(
        n: usize,
        num_shards: usize,
        mut stream: F,
    ) -> Result<Self, TopologyError>
    where
        F: FnMut(&mut dyn FnMut(NodeId, NodeId)),
    {
        let plan = ShardPlan::from_edge_stream(n, num_shards, &mut stream)?;
        Self::from_plan(&plan, stream)
    }

    /// Construction **pass 2**: fills every shard's CSR slice, sorts port
    /// lists and precomputes the remap tables, given a pass-1 [`ShardPlan`]
    /// and one more replay of the same edge stream.
    ///
    /// This is the full-build counterpart of [`ShardSliceTopology::build`];
    /// [`ShardedTopology::from_edge_stream`] is the convenience wrapper
    /// running both passes.
    ///
    /// # Errors
    ///
    /// * [`TopologyError::DuplicateEdge`] if the stream emits an undirected
    ///   edge twice;
    /// * [`TopologyError::PlanMismatch`] if the replay does not emit exactly
    ///   the edges the plan counted.
    pub fn from_plan<F>(plan: &ShardPlan, mut stream: F) -> Result<Self, TopologyError>
    where
        F: FnMut(&mut dyn FnMut(NodeId, NodeId)),
    {
        let n = plan.n;
        let num_shards = plan.num_shards();
        let node_start = plan.node_start.clone();
        let slot_start = plan.slot_start.clone();
        let degree = &plan.degree;

        // --- Local CSR offsets per shard --------------------------------
        let mut shards: Vec<ShardCsr> = Vec::with_capacity(num_shards);
        for s in 0..num_shards {
            let nodes = node_start[s]..node_start[s + 1];
            let mut offsets = Vec::with_capacity(nodes.len() + 1);
            offsets.push(0usize);
            for v in nodes {
                offsets.push(offsets.last().unwrap() + degree[v] as usize);
            }
            let slots = offsets[offsets.len() - 1];
            shards.push(ShardCsr {
                offsets,
                adjacency: vec![0u32; slots],
                reverse_port: vec![0u32; slots],
                dest_slot: vec![0u32; slots],
            });
        }

        // --- Pass 2: fill adjacency -------------------------------------
        // `cursor[v]` is the next free port of `v`; an edge beyond the
        // degree the plan recorded means the replay diverged.
        let shard_of = |node_start: &[usize], v: NodeId| -> usize {
            node_start.partition_point(|&s| s <= v) - 1
        };
        let mut cursor: Vec<u32> = vec![0; n];
        let mut mismatch: Option<NodeId> = None;
        stream(&mut |u: NodeId, v: NodeId| {
            if mismatch.is_some() {
                return;
            }
            for (a, b) in [(u, v), (v, u)] {
                if a >= n || cursor[a] >= degree[a] {
                    mismatch = Some(if a >= n { u.max(v) } else { a });
                    return;
                }
                let s = shard_of(&node_start[..=num_shards], a);
                let local = shards[s].offsets[a - node_start[s]] + cursor[a] as usize;
                shards[s].adjacency[local] = b as u32;
                cursor[a] += 1;
            }
        });
        if let Some(node) = mismatch {
            return Err(TopologyError::PlanMismatch { node });
        }
        if let Some(v) = (0..n).find(|&v| cursor[v] != degree[v]) {
            return Err(TopologyError::PlanMismatch { node: v });
        }

        // --- Sort per-node port lists, reject duplicate edges ------------
        for s in 0..num_shards {
            for i in 0..node_start[s + 1] - node_start[s] {
                let (lo, hi) = (shards[s].offsets[i], shards[s].offsets[i + 1]);
                let ports = &mut shards[s].adjacency[lo..hi];
                ports.sort_unstable();
                if let Some(w) = ports.windows(2).find(|w| w[0] == w[1]) {
                    let v = node_start[s] + i;
                    let u = w[0] as usize;
                    return Err(TopologyError::DuplicateEdge(v.min(u), v.max(u)));
                }
            }
        }

        // --- Reverse ports + the cross-shard port remap table ------------
        for s in 0..num_shards {
            for i in 0..node_start[s + 1] - node_start[s] {
                let v = node_start[s] + i;
                for local in shards[s].offsets[i]..shards[s].offsets[i + 1] {
                    let u = shards[s].adjacency[local] as usize;
                    let su = shard_of(&node_start[..=num_shards], u);
                    let u_local = u - node_start[su];
                    let (lo, hi) = (shards[su].offsets[u_local], shards[su].offsets[u_local + 1]);
                    let rp = shards[su].adjacency[lo..hi]
                        .binary_search(&(v as u32))
                        .expect("undirected edge must appear in both port lists");
                    let dest = slot_start[su] + lo + rp;
                    // Borrow dance: `shards[s]` and `shards[su]` may alias.
                    let shard = &mut shards[s];
                    shard.reverse_port[local] = rp as u32;
                    shard.dest_slot[local] = dest as u32;
                }
            }
        }

        Ok(Self {
            n,
            num_edges: plan.num_edges,
            max_degree: plan.max_degree,
            node_start,
            slot_start,
            shards,
        })
    }

    /// Shards an already-built [`Topology`] (mainly for tests and for
    /// workloads whose graph already fits in one arena).
    ///
    /// The result is structurally identical to the source: same port
    /// numbering, same flat slot contract, so runs are bit-for-bit
    /// reproducible across the two representations.
    ///
    /// # Errors
    ///
    /// [`TopologyError::ShardCountZero`] and
    /// [`TopologyError::NodeRangeOverflow`] as in
    /// [`ShardedTopology::from_edge_stream`]; the edge list itself is
    /// already validated.
    pub fn from_topology(topology: &Topology, num_shards: usize) -> Result<Self, TopologyError> {
        Self::from_edge_stream(topology.num_nodes(), num_shards, |emit| {
            for (u, v) in topology.edges() {
                emit(u, v);
            }
        })
    }

    /// Number of shards `S`.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// The contiguous node range owned by shard `s`.
    #[inline]
    pub fn shard_nodes(&self, s: usize) -> core::ops::Range<NodeId> {
        self.node_start[s]..self.node_start[s + 1]
    }

    /// The contiguous flat-slot range owned by shard `s` (the inbox slots of
    /// exactly the nodes in [`ShardedTopology::shard_nodes`]).
    #[inline]
    pub fn shard_slots(&self, s: usize) -> core::ops::Range<usize> {
        self.slot_start[s]..self.slot_start[s + 1]
    }

    /// The shard owning node `v`.
    #[inline]
    pub fn shard_of(&self, v: NodeId) -> usize {
        self.node_start.partition_point(|&s| s <= v) - 1
    }

    /// The shard owning flat slot `slot`.
    #[inline]
    pub fn shard_of_slot(&self, slot: usize) -> usize {
        self.slot_start.partition_point(|&s| s <= slot) - 1
    }

    /// The global inbox slot that a message sent by `v` over port `p` lands
    /// in — one lookup in the precomputed port remap table.
    #[inline]
    pub fn dest_slot(&self, v: NodeId, p: Port) -> usize {
        self.dest_slot_from(self.shard_of(v), v, p)
    }

    /// [`ShardedTopology::dest_slot`] with the sender's shard already known
    /// — the sharded executor's per-message hot path, where `v` always
    /// belongs to the calling worker's shard, skips the `shard_of` search.
    #[inline]
    pub fn dest_slot_from(&self, shard: usize, v: NodeId, p: Port) -> usize {
        debug_assert_eq!(self.shard_of(v), shard);
        let csr = &self.shards[shard];
        let local = csr.offsets[v - self.node_start[shard]] + p;
        csr.dest_slot[local] as usize
    }

    /// Degree of `v` with its shard already known (see
    /// [`ShardedTopology::dest_slot_from`]).
    #[inline]
    pub fn degree_from(&self, shard: usize, v: NodeId) -> usize {
        debug_assert_eq!(self.shard_of(v), shard);
        let csr = &self.shards[shard];
        let i = v - self.node_start[shard];
        csr.offsets[i + 1] - csr.offsets[i]
    }

    #[inline]
    fn locate(&self, v: NodeId) -> (&ShardCsr, usize) {
        let s = self.shard_of(v);
        (&self.shards[s], v - self.node_start[s])
    }

    /// Reconstructs the pass-1 [`ShardPlan`] this topology was (or could
    /// have been) built from — boundaries, degree header and all.
    ///
    /// Used by the scale-out coordinator when the full graph happens to be
    /// in memory anyway (e.g. `--verify` runs) and by the equivalence tests
    /// comparing restricted against full construction.
    pub fn plan(&self) -> ShardPlan {
        let mut degree = vec![0u32; self.n];
        for (s, csr) in self.shards.iter().enumerate() {
            for (i, d) in csr.offsets.windows(2).enumerate() {
                degree[self.node_start[s] + i] = (d[1] - d[0]) as u32;
            }
        }
        ShardPlan {
            n: self.n,
            num_edges: self.num_edges,
            max_degree: self.max_degree,
            node_start: self.node_start.clone(),
            slot_start: self.slot_start.clone(),
            degree,
        }
    }

    /// Extracts shard `s` as a standalone [`ShardSliceTopology`] — the
    /// reference answer that [`ShardSliceTopology::build`] must reproduce
    /// without ever holding the other shards.
    pub fn shard_slice(&self, s: usize) -> ShardSliceTopology {
        ShardSliceTopology {
            plan: self.plan(),
            shard: s,
            csr: self.shards[s].clone(),
        }
    }
}

/// One shard's complete topology view, built **without materialising any
/// other shard's CSR**: the worker-side product of the scale-out
/// construction split.
///
/// Holds the `O(n)` [`ShardPlan`] plus the owned shard's `O(m/S)` CSR slice
/// (adjacency, reverse ports and the precomputed `dest_slot` remap).  The
/// slice is bit-for-bit identical to the corresponding shard of the full
/// [`ShardedTopology`] build — the equivalence proptest pins this — so a
/// mesh worker serving it is indistinguishable on the wire from one holding
/// the whole graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSliceTopology {
    plan: ShardPlan,
    shard: usize,
    csr: ShardCsr,
}

impl ShardSliceTopology {
    /// Builds shard `shard`'s slice from a pass-1 plan plus replays of the
    /// same edge stream.
    ///
    /// `stream` is invoked exactly **twice**, but both passes only *retain*
    /// data about the shard's own nodes and their direct neighbours (the
    /// *frontier*): peak memory is `O(n)` for the plan plus `O(m/S +
    /// frontier)` for the slice, never the full `O(m)` CSR.
    ///
    /// The frontier adjacency is needed because `dest_slot[(v, p)]` is the
    /// receiver's slot, which depends on where the sender ranks among the
    /// *receiver's* sorted neighbours; rebuilding the frontier's port lists
    /// locally (pass B) avoids shipping any remote CSR data.
    ///
    /// # Errors
    ///
    /// * [`TopologyError::NodeOutOfRange`] / [`TopologyError::SelfLoop`] on
    ///   invalid edges (checked for the whole stream, as in the full build);
    /// * [`TopologyError::DuplicateEdge`] for duplicates involving an owned
    ///   or frontier node (remote-only duplicates are the remote shards'
    ///   responsibility);
    /// * [`TopologyError::PlanMismatch`] if the replay does not match the
    ///   plan's degree header.
    pub fn build<F>(plan: ShardPlan, shard: usize, mut stream: F) -> Result<Self, TopologyError>
    where
        F: FnMut(&mut dyn FnMut(NodeId, NodeId)),
    {
        assert!(
            shard < plan.num_shards(),
            "shard index {shard} out of range for {} shards",
            plan.num_shards()
        );
        let n = plan.n;
        let lo = plan.node_start[shard];
        let hi = plan.node_start[shard + 1];

        // --- Local CSR offsets from the plan's degree header -------------
        let mut offsets = Vec::with_capacity(hi - lo + 1);
        offsets.push(0usize);
        for v in lo..hi {
            offsets.push(offsets.last().unwrap() + plan.degree[v] as usize);
        }
        let slots = *offsets.last().unwrap();

        // --- Pass A: own nodes' adjacency (validating every edge) --------
        let mut adjacency = vec![0u32; slots];
        let mut cursor = vec![0u32; hi - lo];
        let mut first_error: Option<TopologyError> = None;
        stream(&mut |u: NodeId, v: NodeId| {
            if first_error.is_some() {
                return;
            }
            if u >= n || v >= n {
                let node = if u >= n { u } else { v };
                first_error = Some(TopologyError::NodeOutOfRange { node, n });
                return;
            }
            if u == v {
                first_error = Some(TopologyError::SelfLoop(u));
                return;
            }
            for (a, b) in [(u, v), (v, u)] {
                if a >= lo && a < hi {
                    let i = a - lo;
                    if offsets[i] + cursor[i] as usize >= offsets[i + 1] {
                        first_error = Some(TopologyError::PlanMismatch { node: a });
                        return;
                    }
                    adjacency[offsets[i] + cursor[i] as usize] = b as u32;
                    cursor[i] += 1;
                }
            }
        });
        if let Some(e) = first_error.take() {
            return Err(e);
        }
        if let Some(i) = (0..hi - lo).find(|&i| cursor[i] as usize != plan.degree(lo + i)) {
            return Err(TopologyError::PlanMismatch { node: lo + i });
        }

        // --- Sort own port lists, reject duplicates ----------------------
        for i in 0..hi - lo {
            let ports = &mut adjacency[offsets[i]..offsets[i + 1]];
            ports.sort_unstable();
            if let Some(w) = ports.windows(2).find(|w| w[0] == w[1]) {
                let v = lo + i;
                let u = w[0] as usize;
                return Err(TopologyError::DuplicateEdge(v.min(u), v.max(u)));
            }
        }

        // --- The frontier: remote endpoints of the shard's edges ---------
        let mut frontier: Vec<u32> = adjacency
            .iter()
            .copied()
            .filter(|&u| (u as usize) < lo || (u as usize) >= hi)
            .collect();
        frontier.sort_unstable();
        frontier.dedup();

        // --- Pass B: rebuild the frontier's own port lists ---------------
        let mut fr_off = Vec::with_capacity(frontier.len() + 1);
        fr_off.push(0usize);
        for &u in &frontier {
            fr_off.push(fr_off.last().unwrap() + plan.degree(u as usize));
        }
        let mut fr_adj = vec![0u32; *fr_off.last().unwrap()];
        let mut fr_cursor = vec![0u32; frontier.len()];
        stream(&mut |u: NodeId, v: NodeId| {
            if first_error.is_some() {
                return;
            }
            for (a, b) in [(u, v), (v, u)] {
                if (a < lo || a >= hi) && a < n {
                    if let Ok(fi) = frontier.binary_search(&(a as u32)) {
                        if fr_off[fi] + fr_cursor[fi] as usize >= fr_off[fi + 1] {
                            first_error = Some(TopologyError::PlanMismatch { node: a });
                            return;
                        }
                        fr_adj[fr_off[fi] + fr_cursor[fi] as usize] = b as u32;
                        fr_cursor[fi] += 1;
                    }
                }
            }
        });
        if let Some(e) = first_error.take() {
            return Err(e);
        }
        if let Some(fi) =
            (0..frontier.len()).find(|&fi| fr_off[fi] + fr_cursor[fi] as usize != fr_off[fi + 1])
        {
            return Err(TopologyError::PlanMismatch {
                node: frontier[fi] as usize,
            });
        }
        for fi in 0..frontier.len() {
            let ports = &mut fr_adj[fr_off[fi]..fr_off[fi + 1]];
            ports.sort_unstable();
            if let Some(w) = ports.windows(2).find(|w| w[0] == w[1]) {
                let v = frontier[fi] as usize;
                let u = w[0] as usize;
                return Err(TopologyError::DuplicateEdge(v.min(u), v.max(u)));
            }
        }

        // --- Global port-range starts of the frontier --------------------
        // One monotone sweep over the plan's degree header: the flat slot
        // of `u`'s first port is `slot_start[su] +` (degree sum of `su`'s
        // nodes before `u`).
        let mut fr_port_start = vec![0usize; frontier.len()];
        {
            let mut fi = 0usize;
            for su in 0..plan.num_shards() {
                if fi >= frontier.len() {
                    break;
                }
                let su_hi = plan.node_start[su + 1];
                if (frontier[fi] as usize) >= su_hi {
                    continue;
                }
                let mut acc = plan.slot_start[su];
                let mut v = plan.node_start[su];
                while fi < frontier.len() && (frontier[fi] as usize) < su_hi {
                    let u = frontier[fi] as usize;
                    while v < u {
                        acc += plan.degree[v] as usize;
                        v += 1;
                    }
                    fr_port_start[fi] = acc;
                    fi += 1;
                }
            }
        }

        // --- Reverse ports + dest_slot, all from local data --------------
        let mut reverse_port = vec![0u32; slots];
        let mut dest_slot = vec![0u32; slots];
        for i in 0..hi - lo {
            let v = lo + i;
            for local in offsets[i]..offsets[i + 1] {
                let u = adjacency[local] as usize;
                let (rp, dest) = if u >= lo && u < hi {
                    let j = u - lo;
                    let (ulo, uhi) = (offsets[j], offsets[j + 1]);
                    let rp = adjacency[ulo..uhi]
                        .binary_search(&(v as u32))
                        .expect("undirected edge must appear in both port lists");
                    (rp, plan.slot_start[shard] + ulo + rp)
                } else {
                    let fi = frontier
                        .binary_search(&(u as u32))
                        .expect("remote neighbour is in the frontier by construction");
                    let rp = match fr_adj[fr_off[fi]..fr_off[fi + 1]].binary_search(&(v as u32)) {
                        Ok(rp) => rp,
                        // Pass A saw edge (v, u) but pass B did not: the
                        // replay diverged between invocations.
                        Err(_) => return Err(TopologyError::PlanMismatch { node: u }),
                    };
                    (rp, fr_port_start[fi] + rp)
                };
                reverse_port[local] = rp as u32;
                dest_slot[local] = dest as u32;
            }
        }

        Ok(Self {
            plan,
            shard,
            csr: ShardCsr {
                offsets,
                adjacency,
                reverse_port,
                dest_slot,
            },
        })
    }

    /// The pass-1 plan the slice was built from.
    #[inline]
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The shard index this slice owns.
    #[inline]
    pub fn shard(&self) -> usize {
        self.shard
    }
}

/// The topology surface the shard-serving round loop needs — everything
/// [`route_outbox`](crate::executor) and the remote worker protocol touch,
/// abstracted so a worker can run on either the full [`ShardedTopology`] or
/// its own [`ShardSliceTopology`].
///
/// The `*_from` accessors take the caller's shard explicitly (the hot-path
/// contract of [`ShardedTopology::dest_slot_from`]); a slice implementation
/// only answers for the shard it owns and `debug_assert`s that.
pub trait ShardTopologyView {
    /// Total node count of the global graph.
    fn num_nodes(&self) -> usize;
    /// Number of shards `S`.
    fn num_shards(&self) -> usize;
    /// Maximum degree Δ of the global graph.
    fn max_degree(&self) -> u32;
    /// The contiguous node range owned by shard `s`.
    fn shard_nodes(&self, s: usize) -> core::ops::Range<NodeId>;
    /// The contiguous flat-slot range owned by shard `s`.
    fn shard_slots(&self, s: usize) -> core::ops::Range<usize>;
    /// The shard owning flat slot `slot`.
    fn shard_of_slot(&self, slot: usize) -> usize;
    /// Degree of `v`, which must belong to `shard`.
    fn degree_from(&self, shard: usize, v: NodeId) -> usize;
    /// The global inbox slot a message sent by `v` (of `shard`) over port
    /// `p` lands in.
    fn dest_slot_from(&self, shard: usize, v: NodeId, p: Port) -> usize;
    /// The global flat-slot range of `v`'s own inbox, `v` in `shard`.
    fn port_range_from(&self, shard: usize, v: NodeId) -> core::ops::Range<usize>;
}

impl ShardTopologyView for ShardedTopology {
    #[inline]
    fn num_nodes(&self) -> usize {
        self.n
    }

    #[inline]
    fn num_shards(&self) -> usize {
        ShardedTopology::num_shards(self)
    }

    #[inline]
    fn max_degree(&self) -> u32 {
        self.max_degree
    }

    #[inline]
    fn shard_nodes(&self, s: usize) -> core::ops::Range<NodeId> {
        ShardedTopology::shard_nodes(self, s)
    }

    #[inline]
    fn shard_slots(&self, s: usize) -> core::ops::Range<usize> {
        ShardedTopology::shard_slots(self, s)
    }

    #[inline]
    fn shard_of_slot(&self, slot: usize) -> usize {
        ShardedTopology::shard_of_slot(self, slot)
    }

    #[inline]
    fn degree_from(&self, shard: usize, v: NodeId) -> usize {
        ShardedTopology::degree_from(self, shard, v)
    }

    #[inline]
    fn dest_slot_from(&self, shard: usize, v: NodeId, p: Port) -> usize {
        ShardedTopology::dest_slot_from(self, shard, v, p)
    }

    #[inline]
    fn port_range_from(&self, shard: usize, v: NodeId) -> core::ops::Range<usize> {
        debug_assert_eq!(self.shard_of(v), shard);
        let csr = &self.shards[shard];
        let i = v - self.node_start[shard];
        let base = self.slot_start[shard];
        base + csr.offsets[i]..base + csr.offsets[i + 1]
    }
}

impl ShardTopologyView for ShardSliceTopology {
    #[inline]
    fn num_nodes(&self) -> usize {
        self.plan.n
    }

    #[inline]
    fn num_shards(&self) -> usize {
        self.plan.num_shards()
    }

    #[inline]
    fn max_degree(&self) -> u32 {
        self.plan.max_degree
    }

    #[inline]
    fn shard_nodes(&self, s: usize) -> core::ops::Range<NodeId> {
        self.plan.shard_nodes(s)
    }

    #[inline]
    fn shard_slots(&self, s: usize) -> core::ops::Range<usize> {
        self.plan.slot_start[s]..self.plan.slot_start[s + 1]
    }

    #[inline]
    fn shard_of_slot(&self, slot: usize) -> usize {
        self.plan.slot_start.partition_point(|&s| s <= slot) - 1
    }

    #[inline]
    fn degree_from(&self, shard: usize, v: NodeId) -> usize {
        debug_assert_eq!(shard, self.shard, "a slice only serves its own shard");
        let i = v - self.plan.node_start[self.shard];
        self.csr.offsets[i + 1] - self.csr.offsets[i]
    }

    #[inline]
    fn dest_slot_from(&self, shard: usize, v: NodeId, p: Port) -> usize {
        debug_assert_eq!(shard, self.shard, "a slice only serves its own shard");
        let local = self.csr.offsets[v - self.plan.node_start[self.shard]] + p;
        self.csr.dest_slot[local] as usize
    }

    #[inline]
    fn port_range_from(&self, shard: usize, v: NodeId) -> core::ops::Range<usize> {
        debug_assert_eq!(shard, self.shard, "a slice only serves its own shard");
        let i = v - self.plan.node_start[self.shard];
        let base = self.plan.slot_start[self.shard];
        base + self.csr.offsets[i]..base + self.csr.offsets[i + 1]
    }
}

impl TopologyView for ShardedTopology {
    #[inline]
    fn num_nodes(&self) -> usize {
        self.n
    }

    #[inline]
    fn num_directed_edges(&self) -> usize {
        2 * self.num_edges
    }

    #[inline]
    fn max_degree(&self) -> u32 {
        self.max_degree
    }

    #[inline]
    fn degree(&self, v: NodeId) -> usize {
        let (shard, i) = self.locate(v);
        shard.offsets[i + 1] - shard.offsets[i]
    }

    #[inline]
    fn neighbor_at(&self, v: NodeId, p: Port) -> NodeId {
        let (shard, i) = self.locate(v);
        shard.adjacency[shard.offsets[i] + p] as NodeId
    }

    #[inline]
    fn reverse_port(&self, v: NodeId, p: Port) -> Port {
        let (shard, i) = self.locate(v);
        shard.reverse_port[shard.offsets[i] + p] as Port
    }

    #[inline]
    fn port_range(&self, v: NodeId) -> core::ops::Range<usize> {
        let s = self.shard_of(v);
        let shard = &self.shards[s];
        let i = v - self.node_start[s];
        let base = self.slot_start[s];
        base + shard.offsets[i]..base + shard.offsets[i + 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Asserts the sharded and dense representations describe the exact
    /// same port-numbered graph (same flat slot contract included).
    fn assert_same_structure(dense: &Topology, sharded: &ShardedTopology) {
        assert_eq!(TopologyView::num_nodes(sharded), dense.num_nodes());
        assert_eq!(sharded.num_edges(), dense.num_edges());
        assert_eq!(sharded.num_directed_edges(), dense.num_directed_edges());
        assert_eq!(TopologyView::max_degree(sharded), dense.max_degree());
        for v in dense.nodes() {
            assert_eq!(TopologyView::degree(sharded, v), dense.degree(v), "v={v}");
            assert_eq!(
                TopologyView::port_range(sharded, v),
                dense.port_range(v),
                "v={v}"
            );
            for p in 0..dense.degree(v) {
                assert_eq!(
                    TopologyView::neighbor_at(sharded, v, p),
                    dense.neighbor_at(v, p)
                );
                assert_eq!(
                    TopologyView::reverse_port(sharded, v, p),
                    dense.reverse_port(v, p)
                );
                let u = dense.neighbor_at(v, p);
                let rp = dense.reverse_port(v, p);
                assert_eq!(sharded.dest_slot(v, p), dense.port_range(u).start + rp);
            }
        }
    }

    fn ring_edges(n: usize) -> Vec<(NodeId, NodeId)> {
        (0..n).map(|i| (i, (i + 1) % n)).collect()
    }

    #[test]
    fn matches_dense_topology_for_every_shard_count() {
        let edges = ring_edges(13);
        let dense = Topology::from_edges(13, &edges).unwrap();
        for s in [1, 2, 3, 5, 13, 20] {
            let sharded = ShardedTopology::from_topology(&dense, s).unwrap();
            assert_eq!(sharded.num_shards(), s);
            assert_same_structure(&dense, &sharded);
        }
    }

    #[test]
    fn shard_ranges_partition_nodes_and_slots() {
        let edges = ring_edges(17);
        let dense = Topology::from_edges(17, &edges).unwrap();
        let g = ShardedTopology::from_topology(&dense, 4).unwrap();
        let mut node_cover = 0;
        let mut slot_cover = 0;
        for s in 0..g.num_shards() {
            let nodes = g.shard_nodes(s);
            let slots = g.shard_slots(s);
            assert_eq!(nodes.start, node_cover);
            assert_eq!(slots.start, slot_cover);
            node_cover = nodes.end;
            slot_cover = slots.end;
            for v in nodes {
                assert_eq!(g.shard_of(v), s);
                let pr = TopologyView::port_range(&g, v);
                assert!(pr.start >= g.shard_slots(s).start && pr.end <= g.shard_slots(s).end);
                for slot in pr {
                    assert_eq!(g.shard_of_slot(slot), s);
                }
            }
        }
        assert_eq!(node_cover, 17);
        assert_eq!(slot_cover, g.num_directed_edges());
    }

    #[test]
    fn streaming_construction_matches_from_topology() {
        let edges = ring_edges(9);
        let dense = Topology::from_edges(9, &edges).unwrap();
        let via_stream = ShardedTopology::from_edge_stream(9, 3, |emit| {
            for &(u, v) in &edges {
                emit(u, v);
            }
        })
        .unwrap();
        let via_topology = ShardedTopology::from_topology(&dense, 3).unwrap();
        assert_eq!(via_stream, via_topology);
    }

    #[test]
    fn star_hub_weight_is_handled() {
        // A star concentrates all edges at node 0: shard 0 gets the hub,
        // later shards share the leaves; the structure must still match.
        let edges: Vec<_> = (1..=40).map(|v| (0, v)).collect();
        let dense = Topology::from_edges(41, &edges).unwrap();
        for s in [2, 3, 8] {
            let sharded = ShardedTopology::from_topology(&dense, s).unwrap();
            assert_same_structure(&dense, &sharded);
        }
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let g = ShardedTopology::from_edge_stream(0, 3, |_| {}).unwrap();
        assert_eq!(TopologyView::num_nodes(&g), 0);
        assert_eq!(g.num_directed_edges(), 0);
        let g = ShardedTopology::from_edge_stream(5, 2, |_| {}).unwrap();
        assert_eq!(TopologyView::num_nodes(&g), 5);
        assert_eq!(TopologyView::max_degree(&g), 0);
        for v in 0..5 {
            assert_eq!(TopologyView::degree(&g, v), 0);
        }
    }

    #[test]
    fn rejects_invalid_streams() {
        assert_eq!(
            ShardedTopology::from_edge_stream(3, 0, |_| {}),
            Err(TopologyError::ShardCountZero)
        );
        assert!(matches!(
            ShardedTopology::from_edge_stream(3, 2, |emit| emit(0, 3)),
            Err(TopologyError::NodeOutOfRange { node: 3, n: 3 })
        ));
        assert!(matches!(
            ShardedTopology::from_edge_stream(3, 2, |emit| emit(1, 1)),
            Err(TopologyError::SelfLoop(1))
        ));
        assert!(matches!(
            ShardedTopology::from_edge_stream(3, 2, |emit| {
                emit(0, 1);
                emit(1, 0);
            }),
            Err(TopologyError::DuplicateEdge(0, 1))
        ));
    }

    #[test]
    fn rejects_node_range_overflow() {
        assert!(matches!(
            ShardedTopology::from_edge_stream(INDEX_LIMIT + 1, 2, |_| {}),
            Err(TopologyError::NodeRangeOverflow { .. })
        ));
    }

    /// The edge stream of a small random-circulant-like graph, replayable.
    fn mixed_stream(n: usize) -> impl FnMut(&mut dyn FnMut(NodeId, NodeId)) + Copy {
        move |emit: &mut dyn FnMut(NodeId, NodeId)| {
            for i in 0..n {
                emit(i, (i + 1) % n);
                if n > 5 {
                    emit(i, (i + n / 2 - 1) % n);
                }
            }
        }
    }

    #[test]
    fn plan_serialization_round_trips_and_rejects_corruption() {
        let plan = ShardPlan::from_edge_stream(23, 4, mixed_stream(23)).unwrap();
        let bytes = plan.to_bytes();
        assert_eq!(bytes.len(), 24 + 16 * 5 + 4 * 23);
        assert_eq!(ShardPlan::from_bytes(&bytes).unwrap(), plan);
        // Truncation, trailing garbage and structural lies are all errors.
        assert!(matches!(
            ShardPlan::from_bytes(&bytes[..bytes.len() - 1]),
            Err(WireError::Truncated { .. })
        ));
        let mut long = bytes.clone();
        long.push(0);
        assert!(matches!(
            ShardPlan::from_bytes(&long),
            Err(WireError::TrailingBytes(1))
        ));
        let mut forged = bytes.clone();
        forged[16] ^= 1; // max_degree no longer matches the degree header
        assert_eq!(ShardPlan::from_bytes(&forged), Err(WireError::NonCanonical));
        let mut forged = bytes;
        let deg_at = 24 + 16 * 5;
        forged[deg_at] = forged[deg_at].wrapping_add(1); // degree sum off by one
        assert_eq!(ShardPlan::from_bytes(&forged), Err(WireError::NonCanonical));
    }

    #[test]
    fn restricted_build_matches_every_shard_of_the_full_build() {
        for (n, shards) in [(9, 1), (9, 3), (23, 4), (23, 7), (40, 5)] {
            let full = ShardedTopology::from_edge_stream(n, shards, mixed_stream(n)).unwrap();
            let plan = ShardPlan::from_edge_stream(n, shards, mixed_stream(n)).unwrap();
            assert_eq!(plan, full.plan(), "n={n} shards={shards}");
            for s in 0..shards {
                let slice = ShardSliceTopology::build(plan.clone(), s, mixed_stream(n)).unwrap();
                assert_eq!(slice, full.shard_slice(s), "n={n} shards={shards} s={s}");
                // The trait surface agrees too (what the worker round loop
                // actually consumes).
                for v in ShardTopologyView::shard_nodes(&slice, s) {
                    assert_eq!(
                        slice.port_range_from(s, v),
                        ShardTopologyView::port_range_from(&full, s, v)
                    );
                    for p in 0..slice.degree_from(s, v) {
                        assert_eq!(slice.dest_slot_from(s, v, p), full.dest_slot(v, p));
                    }
                }
            }
        }
    }

    #[test]
    fn restricted_build_rejects_streams_that_do_not_match_the_plan() {
        let plan = ShardPlan::from_edge_stream(9, 2, mixed_stream(9)).unwrap();
        // A replay with an extra edge overflows some node's planned degree.
        let err = ShardSliceTopology::build(plan.clone(), 0, |emit| {
            mixed_stream(9)(emit);
            emit(0, 4);
        });
        assert!(matches!(err, Err(TopologyError::PlanMismatch { .. })));
        // A replay with a missing edge leaves a cursor short.
        let err = ShardSliceTopology::build(plan.clone(), 0, |emit| {
            let mut skipped = false;
            mixed_stream(9)(&mut |u, v| {
                if !skipped {
                    skipped = true;
                } else {
                    emit(u, v);
                }
            });
        });
        assert!(matches!(err, Err(TopologyError::PlanMismatch { .. })));
        // Invalid edges are still reported as such, not as mismatches.
        assert!(matches!(
            ShardSliceTopology::build(plan, 0, |emit| emit(3, 3)),
            Err(TopologyError::SelfLoop(3))
        ));
        // The full pass-2 rebuild checks the same contract.
        let plan = ShardPlan::from_edge_stream(9, 2, mixed_stream(9)).unwrap();
        let err = ShardedTopology::from_plan(&plan, |emit| {
            mixed_stream(9)(emit);
            emit(0, 4);
        });
        assert!(matches!(err, Err(TopologyError::PlanMismatch { .. })));
    }
}
