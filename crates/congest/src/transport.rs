//! The cross-shard transport subsystem.
//!
//! The [`ShardedExecutor`](crate::executor::ShardedExecutor) moves
//! cross-shard messages through a [`Transport`]: a round-framed channel
//! between shards that is **staged** during the send phase, **flushed** at
//! the send barrier and **drained** before delivery completes.  Three
//! backends ship today:
//!
//! * [`InProcess`] — per-shard-pair staging queues in shared memory (the
//!   original `ShardedExecutor` mechanism, now behind the trait).  Messages
//!   move as Rust values; nothing is encoded.
//! * [`SocketLoopback`] — every shard pair is connected by a real socket
//!   (Unix-domain or TCP loopback) and every cross-shard message crosses it
//!   through the [`wire`](crate::wire) codec: length-prefixed,
//!   round-sequenced frames of bit-exact payloads.  Same process, real
//!   kernel wire — this is what makes the CONGEST bandwidth accounting
//!   verifiable against actual encoded bytes.
//! * The **remote protocol** ([`serve_shard_on`] / [`coordinate`]) — one
//!   process per shard plus a coordinator, exchanging the same frames over
//!   blocking links (TCP in the `exp_worker` binary).  The coordinator
//!   carries the halting votes ([`FrameKind::Vote`]) and merges the
//!   per-shard counters; data frames travel over a [`DataPlane`]: either
//!   relayed through the coordinator, or peer-to-peer over a direct
//!   [`WorkerMesh`] so the coordinator handles only control traffic.  In
//!   mesh mode the coordinator ships each worker a [`ShardPlan`]
//!   ([`write_plan`]) and the peer address list ([`write_peers`]), and each
//!   worker builds only its own
//!   [`ShardSliceTopology`](crate::sharded::ShardSliceTopology) — no
//!   process ever materialises the full graph.
//!
//! # Round framing
//!
//! Per round, shard `w` seals **one data frame per other shard** — empty if
//! no message crossed that pair — so a receiver always knows how many frames
//! to expect and every frame is stamped with its round
//! ([`FrameHeader::expect`] rejects out-of-sequence frames).  `flush`
//! returns the sealed frame bytes, which the executor accumulates into
//! [`RunMetrics::wire_bytes_sent`](crate::RunMetrics::wire_bytes_sent);
//! the time spent flushing lands in
//! [`RunMetrics::transport_flush_nanos`](crate::RunMetrics::transport_flush_nanos).
//!
//! # Deadlock discipline of the socket-loopback drain
//!
//! All shards drain concurrently between two barriers, so a naive
//! "write everything, then read everything" ordering can deadlock once
//! frames outgrow the kernel socket buffers.  [`SocketTransport`] therefore
//! drains in three strictly ordered steps:
//!
//! 1. finish writing its own sealed frames, *reading opportunistically* so
//!    peers are never blocked on a full buffer;
//! 2. keep reading raw bytes until one complete frame per peer is buffered,
//!    validating each frame's **header** (kind, round, shard pair) the
//!    moment it completes — a late, duplicate or out-of-round frame is a
//!    typed [`TransportError`] here, not a panic (no payload decoding yet);
//! 3. decode payloads and deliver.
//!
//! Step 1 performs no decoding and cannot fail on algorithm-level
//! violations; by the time steps 2–3 can fail, every byte this shard owes
//! its peers is already handed to the kernel, so an error (returned to the
//! executor, which panics) or a panic (CONGEST double-send in the sink)
//! unwinds through the executor's poison barriers without stranding a peer
//! mid-read.

use std::io::{Read, Write};
use std::marker::PhantomData;
use std::sync::Mutex;
use std::time::Instant;

use crate::algorithm::{Inbox, MessageSize, NodeAlgorithm, NodeContext};
use crate::executor::{route_outbox, ShardReport};
use crate::metrics::RunMetrics;
use crate::sharded::{ShardPlan, ShardTopologyView, ShardedTopology};
use crate::simulator::RunOutcome;
use crate::trace::{
    decode_stamped, encode_stamped, ChromeTraceSink, StampedRecorder, TraceEvent, TracePhase,
    TraceSink,
};
use crate::wire::{
    for_each_data_entry, get_u16, get_u32, get_u64, put_u16, put_u32, put_u64, read_frame,
    write_frame, DataFrameBuilder, Frame, FrameBuffer, FrameHeader, FrameKind, WireError,
    WireMessage, FRAME_HEADER_BYTES,
};

/// The pseudo shard index of the coordinator in remote frames.
pub const COORDINATOR: u16 = u16::MAX;

/// Frames address shards as `u16`, and [`COORDINATOR`] reserves `u16::MAX`,
/// so wire-facing backends support at most this many shards.
pub const MAX_WIRE_SHARDS: usize = u16::MAX as usize;

/// Rejects shard layouts the `u16` frame addressing cannot represent.
fn check_wire_shard_count(shards: usize) -> std::io::Result<()> {
    if shards >= MAX_WIRE_SHARDS {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("{shards} shards exceed the wire limit of {} (u16 addressing, u16::MAX reserved for the coordinator)", MAX_WIRE_SHARDS - 1),
        ));
    }
    Ok(())
}

/// A checked failure surfaced by [`Transport::drain`]: the bytes arrived,
/// but they are not the one well-formed data frame of the round this shard
/// pair owes.
///
/// This is how a **late, duplicate or out-of-round frame** manifests: a
/// frame stamped with round `r' != r` sitting at the front of the inbound
/// buffer when the round-`r` deliver barrier drains it.  Before this type
/// existed the socket backend asserted the invariant with a panic deep in
/// its decode step; now the validation is an explicit, typed error at the
/// transport seam (the executor still aborts the run on it — through its
/// poison barriers — but callers driving a transport directly can observe
/// and test the failure).  Kernel-level I/O failures (a peer closing its
/// socket mid-run) remain panics: they are infrastructure collapse, not a
/// protocol state that a test can construct and assert on.
#[derive(Debug)]
#[non_exhaustive]
pub enum TransportError {
    /// A frame failed wire-level validation: malformed framing, or a header
    /// stamped with the wrong round or shard pair
    /// ([`crate::wire::WireError::RoundMismatch`] is the late/duplicate-frame
    /// case).
    Wire(crate::wire::WireError),
    /// The peer sent a well-formed frame of the wrong kind for this phase
    /// of the protocol.
    Protocol(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Wire(e) => write!(f, "wire-level frame validation failed: {e}"),
            TransportError::Protocol(msg) => write!(f, "transport protocol violated: {msg}"),
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransportError::Wire(e) => Some(e),
            TransportError::Protocol(_) => None,
        }
    }
}

impl From<crate::wire::WireError> for TransportError {
    fn from(e: crate::wire::WireError) -> Self {
        TransportError::Wire(e)
    }
}

impl From<TransportError> for std::io::Error {
    fn from(e: TransportError) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

/// The bounds a message type needs to cross a shard boundary: the engine
/// bounds of [`NodeAlgorithm::Message`] plus a wire codec.
///
/// Blanket-implemented; every `NodeAlgorithm::Message` qualifies.
pub trait TransportMessage: Clone + Send + Sync + MessageSize + WireMessage {}

impl<T: Clone + Send + Sync + MessageSize + WireMessage> TransportMessage for T {}

/// A round-framed cross-shard channel (see the [module docs](self)).
///
/// Calling discipline, upheld by the executor: `stage(from, ..)`, `flush
/// (from, ..)` and `drain(from, ..)` are only ever invoked by the worker
/// that owns shard `from`, and per round every shard stages, then all
/// shards cross the send barrier, then every shard flushes exactly once,
/// then all shards drain exactly once — so implementations may assume one
/// writer per pair queue and one frame per pair per round.
pub trait Transport<M: TransportMessage>: Sync {
    /// Stages one cross-shard message: `slot` is the destination's global
    /// inbox slot, `sender` the sending node.  Called during the send phase
    /// by the owner of `from`.
    fn stage(&self, from: usize, to: usize, slot: u32, sender: u32, msg: M);

    /// Seals shard `from`'s staged batches for `round` at the send barrier;
    /// returns the wire bytes this flush produced (0 for in-memory
    /// backends).
    fn flush(&self, from: usize, round: u64) -> u64;

    /// Delivers every message addressed to shard `to` for `round`, in
    /// sending-shard order, by invoking `sink(slot, sender, message)`.
    ///
    /// # Errors
    ///
    /// Returns a [`TransportError`] when an inbound frame fails validation —
    /// a malformed frame, or a **late/duplicate frame** stamped with a round
    /// other than `round` (wire-facing backends only; in-memory backends
    /// cannot fail).  The executor treats any error as fatal for the run and
    /// unwinds through its poison barriers.
    fn drain(
        &self,
        to: usize,
        round: u64,
        sink: &mut dyn FnMut(u32, u32, M),
    ) -> Result<(), TransportError>;

    /// The number of kernel write batches shard `from` has issued so far —
    /// one per successful `write(2)` syscall on its outbound peer links.
    /// This is the observable for frame coalescing: many small messages
    /// sealed into one frame and flushed in one write count as **one**
    /// batch.  In-memory backends never enter the kernel, so the default
    /// is 0.  Scheduling-dependent (how often a write is split by a full
    /// socket buffer varies run to run), so it is reported in
    /// [`RunMetrics`] but exempt from bit-for-bit
    /// equivalence checks, like the flush timing counters.
    fn syscall_batches(&self, _from: usize) -> u64 {
        0
    }
}

/// Builds a [`Transport`] for a concrete message type at run start.
///
/// The executor is configured with a builder (not a transport) because the
/// message type is chosen per run by the algorithm, while the backend choice
/// is an executor-level decision.
pub trait TransportBuilder: Sync {
    /// The transport this builder produces.
    type Transport<M: TransportMessage>: Transport<M>;

    /// Builds the per-run transport for `topology`'s shard layout.
    fn build<M: TransportMessage>(
        &self,
        topology: &ShardedTopology,
    ) -> std::io::Result<Self::Transport<M>>;
}

// ---------------------------------------------------------------------------
// In-process backend
// ---------------------------------------------------------------------------

/// The in-memory transport backend: messages stay Rust values and move
/// through per-shard-pair staging queues.  This is the
/// [`ShardedExecutor`](crate::executor::ShardedExecutor)'s default and is
/// bit-for-bit the pre-transport behavior.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InProcess;

/// The queues of the [`InProcess`] backend: `queues[from * S + to]` is
/// written only by shard `from` (send phase) and read only by shard `to`
/// (drain phase), with a barrier in between, so each mutex is uncontended
/// by construction.
#[derive(Debug)]
pub struct InProcessTransport<M> {
    shards: usize,
    queues: Vec<Mutex<Vec<(u32, u32, M)>>>,
}

impl<M: TransportMessage> Transport<M> for InProcessTransport<M> {
    fn stage(&self, from: usize, to: usize, slot: u32, sender: u32, msg: M) {
        self.queues[from * self.shards + to]
            .lock()
            .expect("staging queue lock")
            .push((slot, sender, msg));
    }

    fn flush(&self, _from: usize, _round: u64) -> u64 {
        0 // nothing to seal: values are already where the reader will look
    }

    fn drain(
        &self,
        to: usize,
        _round: u64,
        sink: &mut dyn FnMut(u32, u32, M),
    ) -> Result<(), TransportError> {
        for from in 0..self.shards {
            if from == to {
                continue;
            }
            let mut q = self.queues[from * self.shards + to]
                .lock()
                .expect("staging queue lock");
            for (slot, sender, msg) in q.drain(..) {
                sink(slot, sender, msg);
            }
        }
        Ok(())
    }
}

impl TransportBuilder for InProcess {
    type Transport<M: TransportMessage> = InProcessTransport<M>;

    fn build<M: TransportMessage>(
        &self,
        topology: &ShardedTopology,
    ) -> std::io::Result<InProcessTransport<M>> {
        let shards = topology.num_shards();
        Ok(InProcessTransport {
            shards,
            queues: (0..shards * shards)
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
        })
    }
}

// ---------------------------------------------------------------------------
// Socket-loopback backend
// ---------------------------------------------------------------------------

/// Socket family of a [`SocketLoopback`] mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LoopbackKind {
    #[cfg(unix)]
    Unix,
    Tcp,
}

/// Builds a full socket mesh between the shards of one process: every shard
/// pair gets a kernel socket, and every cross-shard message crosses it wire
/// encoded.  Use [`SocketLoopback::unix`] for Unix-domain socketpairs or
/// [`SocketLoopback::tcp`] for TCP over `127.0.0.1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SocketLoopback {
    kind: LoopbackKind,
}

impl SocketLoopback {
    /// A mesh of Unix-domain socketpairs (no filesystem paths involved).
    #[cfg(unix)]
    pub fn unix() -> Self {
        Self {
            kind: LoopbackKind::Unix,
        }
    }

    /// A mesh of TCP connections over `127.0.0.1` (ephemeral ports).
    pub fn tcp() -> Self {
        Self {
            kind: LoopbackKind::Tcp,
        }
    }
}

/// One endpoint of a loopback socket, either family.
#[derive(Debug)]
enum LoopbackStream {
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixStream),
    Tcp(std::net::TcpStream),
}

/// How long one blocked readiness wait may last before the drain loop
/// re-sweeps every peer.  Waits normally end much earlier — the kernel
/// wakes the reader the moment bytes arrive — the timeout only bounds a
/// wait on the wrong peer, preserving the liveness the old spin loop had.
const READINESS_WAIT: std::time::Duration = std::time::Duration::from_micros(100);

/// How many fruitless full sweeps the drain loop spins through (with
/// `yield_now`) before it parks in a blocked readiness wait.  Short stalls
/// — the common case, a peer is a few instructions from its own flush —
/// resolve within the spin and never pay a mode-switch syscall; only a
/// genuinely long stall (the peer is still computing its send phase) falls
/// through to the kernel-parked wait that frees the core for that peer.
const SPIN_PASSES: u32 = 64;

impl LoopbackStream {
    fn set_nonblocking(&self) -> std::io::Result<()> {
        match self {
            #[cfg(unix)]
            LoopbackStream::Unix(s) => s.set_nonblocking(true),
            LoopbackStream::Tcp(s) => s.set_nonblocking(true),
        }
    }

    /// Switches to blocking mode with `timeout` on both directions — the
    /// readiness-wait window of [`PeerLink::wait_in`] / [`PeerLink::wait_out`].
    fn set_blocking_window(&self, timeout: std::time::Duration) -> std::io::Result<()> {
        match self {
            #[cfg(unix)]
            LoopbackStream::Unix(s) => {
                s.set_nonblocking(false)?;
                s.set_read_timeout(Some(timeout))?;
                s.set_write_timeout(Some(timeout))
            }
            LoopbackStream::Tcp(s) => {
                s.set_nonblocking(false)?;
                s.set_read_timeout(Some(timeout))?;
                s.set_write_timeout(Some(timeout))
            }
        }
    }

    fn write_nb(&mut self, bytes: &[u8]) -> std::io::Result<usize> {
        match self {
            #[cfg(unix)]
            LoopbackStream::Unix(s) => s.write(bytes),
            LoopbackStream::Tcp(s) => s.write(bytes),
        }
    }

    fn read_nb(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            #[cfg(unix)]
            LoopbackStream::Unix(s) => s.read(buf),
            LoopbackStream::Tcp(s) => s.read(buf),
        }
    }
}

/// Per-(owner, peer) endpoint state.  Cell `links[owner * S + peer]` is
/// touched only by the worker owning `owner` (the mutex exists to satisfy
/// `Sync`, not because of contention): it writes `owner → peer` frames and
/// reads `peer → owner` frames on the same duplex stream.
#[derive(Debug)]
struct PeerLink {
    stream: LoopbackStream,
    /// Messages staged for `peer` this round, pre-encoding.
    batch: DataFrameBuilder,
    /// Sealed-but-unwritten frame bytes.
    out: Vec<u8>,
    out_pos: usize,
    /// Raw inbound bytes, reassembled into frames.
    inbox: FrameBuffer,
    /// The (single) complete inbound frame of the current round.
    frame: Option<Frame>,
    /// Kernel write batches issued on this link (one per successful
    /// `write` syscall) — the coalescing evidence behind the
    /// `syscall_batches` run metric.
    writes: u64,
}

impl PeerLink {
    fn new(stream: LoopbackStream) -> Self {
        Self {
            stream,
            batch: DataFrameBuilder::new(),
            out: Vec::new(),
            out_pos: 0,
            inbox: FrameBuffer::new(),
            frame: None,
            writes: 0,
        }
    }

    /// Nonblocking write pass over the pending bytes; true if it progressed.
    fn pump_out(&mut self) -> bool {
        let mut progressed = false;
        while self.out_pos < self.out.len() {
            match self.stream.write_nb(&self.out[self.out_pos..]) {
                Ok(0) => panic!("loopback transport peer closed its socket"),
                Ok(n) => {
                    self.out_pos += n;
                    self.writes += 1;
                    progressed = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => panic!("loopback transport write failed: {e}"),
            }
        }
        if self.out_pos == self.out.len() {
            self.out.clear();
            self.out_pos = 0;
        }
        progressed
    }

    fn write_done(&self) -> bool {
        self.out_pos == self.out.len()
    }

    /// Nonblocking read pass into the frame buffer; true if it progressed.
    fn pump_in(&mut self) -> bool {
        let mut progressed = false;
        let mut buf = [0u8; 16 * 1024];
        loop {
            match self.stream.read_nb(&mut buf) {
                Ok(0) => panic!("loopback transport peer closed its socket"),
                Ok(n) => {
                    self.inbox.feed(&buf[..n]);
                    progressed = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => panic!("loopback transport read failed: {e}"),
            }
        }
        progressed
    }

    /// Blocks (bounded by [`READINESS_WAIT`]) until this link has inbound
    /// bytes, feeding whatever arrives; true if bytes arrived.  The kernel
    /// parks the thread and wakes it on arrival — the poll-based
    /// replacement for spinning through `yield_now` while a peer computes.
    fn wait_in(&mut self) -> bool {
        if self.stream.set_blocking_window(READINESS_WAIT).is_err() {
            std::thread::yield_now();
            return false;
        }
        let mut buf = [0u8; 16 * 1024];
        let progressed = match self.stream.read_nb(&mut buf) {
            Ok(0) => panic!("loopback transport peer closed its socket"),
            Ok(n) => {
                self.inbox.feed(&buf[..n]);
                true
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                false
            }
            Err(e) => panic!("loopback transport read failed: {e}"),
        };
        self.stream
            .set_nonblocking()
            .expect("restoring nonblocking mode");
        progressed
    }

    /// Blocks (bounded by [`READINESS_WAIT`]) until this link's socket can
    /// absorb more of the pending outbound bytes; true if any were written.
    fn wait_out(&mut self) -> bool {
        if self.stream.set_blocking_window(READINESS_WAIT).is_err() {
            std::thread::yield_now();
            return false;
        }
        let progressed = match self.stream.write_nb(&self.out[self.out_pos..]) {
            Ok(0) => panic!("loopback transport peer closed its socket"),
            Ok(n) => {
                self.out_pos += n;
                self.writes += 1;
                true
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                false
            }
            Err(e) => panic!("loopback transport write failed: {e}"),
        };
        self.stream
            .set_nonblocking()
            .expect("restoring nonblocking mode");
        if self.out_pos == self.out.len() {
            self.out.clear();
            self.out_pos = 0;
        }
        progressed
    }
}

/// The socket-loopback transport: one kernel socket per shard pair, frames
/// through the [`wire`](crate::wire) codec.  Built by [`SocketLoopback`].
#[derive(Debug)]
pub struct SocketTransport<M> {
    shards: usize,
    /// `S × S` cells; the diagonal is `None`.
    links: Vec<Option<Mutex<PeerLink>>>,
    _msg: PhantomData<fn(M) -> M>,
}

impl<M: TransportMessage> Transport<M> for SocketTransport<M> {
    fn stage(&self, from: usize, to: usize, slot: u32, sender: u32, msg: M) {
        let mut link = self.link(from, to);
        link.batch.push(slot, sender, &msg);
    }

    fn flush(&self, from: usize, round: u64) -> u64 {
        let mut bytes = 0;
        for to in 0..self.shards {
            if to == from {
                continue;
            }
            let mut link = self.link(from, to);
            debug_assert!(link.write_done(), "previous round left unwritten bytes");
            let mut out = std::mem::take(&mut link.out);
            bytes += link.batch.seal(round, from as u16, to as u16, &mut out);
            link.out = out;
            // Opportunistic write so the drain phase has less to do.
            link.pump_out();
        }
        bytes
    }

    fn drain(
        &self,
        to: usize,
        round: u64,
        sink: &mut dyn FnMut(u32, u32, M),
    ) -> Result<(), TransportError> {
        // Step 1: hand every byte we owe to the kernel, reading as we go so
        // no peer ever stalls on a full buffer waiting for us.  When a pass
        // over every peer makes no progress, the stall means some peer's
        // socket buffer is full while that peer computes.  Spin briefly
        // (short stalls resolve in a few sweeps), then stop burning the
        // CPU the stalled peer needs — on oversubscribed machines a
        // `yield_now` spinner competes with the very peer it waits for —
        // and park in a bounded blocking write on one stalled link, letting
        // the kernel wake us the moment space frees up.
        let mut rotor = 0usize;
        let mut idle = 0u32;
        loop {
            let mut stalled: Vec<usize> = Vec::new();
            let mut progressed = false;
            for peer in 0..self.shards {
                if peer == to {
                    continue;
                }
                let mut link = self.link(to, peer);
                progressed |= link.pump_out();
                if !link.write_done() {
                    stalled.push(peer);
                }
                progressed |= link.pump_in();
            }
            if stalled.is_empty() {
                break;
            }
            if progressed {
                idle = 0;
            } else {
                idle += 1;
                if idle < SPIN_PASSES {
                    std::thread::yield_now();
                } else {
                    // Rotate which stalled link we park on so one slow peer
                    // cannot starve the others' readiness.
                    let peer = stalled[rotor % stalled.len()];
                    rotor += 1;
                    self.link(to, peer).wait_out();
                }
            }
        }
        // Step 2: buffer raw bytes until one complete frame per peer is in
        // hand, validating each frame's header the moment it materializes.
        // This is where the "every round-r frame arrives before the round-r
        // barrier" assumption is *checked* instead of assumed: a frame
        // stamped with any other round — late, duplicated, or forged — is a
        // typed [`TransportError`], not a decode-time surprise.  Decoding of
        // payloads still waits for step 3 so peers can always finish their
        // own step 1.
        idle = 0;
        loop {
            let mut waiting: Vec<usize> = Vec::new();
            let mut progressed = false;
            for peer in 0..self.shards {
                if peer == to {
                    continue;
                }
                let mut link = self.link(to, peer);
                if link.frame.is_some() {
                    continue;
                }
                progressed |= link.pump_in();
                match link.inbox.next_frame() {
                    Ok(Some(frame)) => {
                        if frame.header.kind != FrameKind::Data {
                            return Err(TransportError::Protocol(format!(
                                "expected a data frame from shard {peer}, got {:?}",
                                frame.header.kind
                            )));
                        }
                        frame.header.expect(round, peer as u16, to as u16)?;
                        link.frame = Some(frame);
                        progressed = true;
                    }
                    Ok(None) => waiting.push(peer),
                    Err(e) => return Err(TransportError::Wire(e)),
                }
            }
            if waiting.is_empty() {
                break;
            }
            if progressed {
                idle = 0;
            } else {
                idle += 1;
                if idle < SPIN_PASSES {
                    std::thread::yield_now();
                } else {
                    // Same spin-then-park discipline as step 1, on the read
                    // side: a bounded blocking read on one frame-less link —
                    // the kernel wakes us the instant its bytes arrive, and
                    // the peer we wait on gets the CPU in the meantime.
                    let peer = waiting[rotor % waiting.len()];
                    rotor += 1;
                    self.link(to, peer).wait_in();
                }
            }
        }
        // Step 3: decode and deliver in sending-shard order (headers were
        // already validated as the frames arrived).
        for peer in 0..self.shards {
            if peer == to {
                continue;
            }
            let frame = self.link(to, peer).frame.take().expect("frame buffered");
            for_each_data_entry::<M>(&frame.payload, &mut *sink)?;
        }
        Ok(())
    }

    fn syscall_batches(&self, from: usize) -> u64 {
        (0..self.shards)
            .filter(|&peer| peer != from)
            .map(|peer| self.link(from, peer).writes)
            .sum()
    }
}

impl<M> SocketTransport<M> {
    fn link(&self, owner: usize, peer: usize) -> std::sync::MutexGuard<'_, PeerLink> {
        self.links[owner * self.shards + peer]
            .as_ref()
            .expect("no link on the diagonal")
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }
}

impl TransportBuilder for SocketLoopback {
    type Transport<M: TransportMessage> = SocketTransport<M>;

    fn build<M: TransportMessage>(
        &self,
        topology: &ShardedTopology,
    ) -> std::io::Result<SocketTransport<M>> {
        let shards = topology.num_shards();
        check_wire_shard_count(shards)?;
        let mut links: Vec<Option<Mutex<PeerLink>>> = Vec::with_capacity(shards * shards);
        links.resize_with(shards * shards, || None);
        let listener = match self.kind {
            LoopbackKind::Tcp => Some(std::net::TcpListener::bind("127.0.0.1:0")?),
            #[cfg(unix)]
            LoopbackKind::Unix => None,
        };
        for a in 0..shards {
            for b in a + 1..shards {
                let (ea, eb) = match self.kind {
                    #[cfg(unix)]
                    LoopbackKind::Unix => {
                        let (x, y) = std::os::unix::net::UnixStream::pair()?;
                        (LoopbackStream::Unix(x), LoopbackStream::Unix(y))
                    }
                    LoopbackKind::Tcp => {
                        let listener = listener.as_ref().expect("tcp listener");
                        let connect = std::net::TcpStream::connect(listener.local_addr()?)?;
                        let (accept, _) = listener.accept()?;
                        connect.set_nodelay(true)?;
                        accept.set_nodelay(true)?;
                        (LoopbackStream::Tcp(connect), LoopbackStream::Tcp(accept))
                    }
                };
                ea.set_nonblocking()?;
                eb.set_nonblocking()?;
                links[a * shards + b] = Some(Mutex::new(PeerLink::new(ea)));
                links[b * shards + a] = Some(Mutex::new(PeerLink::new(eb)));
            }
        }
        Ok(SocketTransport {
            shards,
            links,
            _msg: PhantomData,
        })
    }
}

// ---------------------------------------------------------------------------
// The scale-out handshake: shard plans and peer lists on the wire
// ---------------------------------------------------------------------------

/// Chunk size for [`Topology`](FrameKind::Topology) frames carrying a
/// serialized [`ShardPlan`].  The plan's degree header is `4n` bytes, which
/// at `n = 10^8` exceeds [`MAX_FRAME_BODY`](crate::wire::MAX_FRAME_BODY),
/// so plans always ship as a numbered chunk sequence.
const PLAN_CHUNK_BYTES: usize = 32 << 20;

/// Ships a [`ShardPlan`] to one worker as a sequence of
/// [`Topology`](FrameKind::Topology) frames (payload:
/// `[seq u32][total u32][chunk bytes]`), so a worker can build its
/// [`ShardSliceTopology`](crate::sharded::ShardSliceTopology) without the
/// coordinator ever shipping (or holding) the full graph.
///
/// # Errors
///
/// Propagates link I/O failures.
pub fn write_plan<L: Write>(link: &mut L, plan: &ShardPlan, to: u16) -> std::io::Result<()> {
    let bytes = plan.to_bytes();
    let total = bytes.len().div_ceil(PLAN_CHUNK_BYTES) as u32;
    for (seq, chunk) in bytes.chunks(PLAN_CHUNK_BYTES).enumerate() {
        let mut payload = Vec::with_capacity(8 + chunk.len());
        put_u32(&mut payload, seq as u32);
        put_u32(&mut payload, total);
        payload.extend_from_slice(chunk);
        write_frame(
            link,
            FrameHeader {
                kind: FrameKind::Topology,
                round: 0,
                from: COORDINATOR,
                to,
            },
            &payload,
        )?;
    }
    link.flush()
}

/// Receives and validates the chunked [`ShardPlan`] of [`write_plan`].
///
/// # Errors
///
/// Propagates link I/O failures; out-of-sequence chunks and plans that fail
/// [`ShardPlan::from_bytes`] validation surface as `io::Error`.
pub fn read_plan<L: Read>(link: &mut L, me: u16) -> std::io::Result<ShardPlan> {
    let mut bytes: Vec<u8> = Vec::new();
    let mut next: u32 = 0;
    loop {
        let frame = read_frame(link)?;
        if frame.header.kind != FrameKind::Topology {
            return Err(protocol_error("expected a Topology frame"));
        }
        frame.header.expect(0, COORDINATOR, me)?;
        let seq = get_u32(&frame.payload, 0)?;
        let total = get_u32(&frame.payload, 4)?;
        if total == 0 || seq != next || seq >= total {
            return Err(protocol_error("Topology chunks out of sequence"));
        }
        bytes.extend_from_slice(&frame.payload[8..]);
        next += 1;
        if next == total {
            break;
        }
    }
    ShardPlan::from_bytes(&bytes).map_err(std::io::Error::from)
}

/// Validates a mesh peer list against the run's shard count: exactly one
/// address per shard, every shard present exactly once.
///
/// This is the shard-count/host-list mismatch gate — a short, long,
/// duplicated or out-of-range list is a typed [`TransportError`] *before*
/// any worker starts dialing, never a hang.
///
/// # Errors
///
/// [`TransportError::Protocol`] describing the mismatch.
pub fn validate_peer_list(peers: &[(u16, String)], shards: usize) -> Result<(), TransportError> {
    if peers.len() != shards {
        return Err(TransportError::Protocol(format!(
            "peer list names {} workers but the run has {shards} shards",
            peers.len()
        )));
    }
    let mut seen = vec![false; shards];
    for &(shard, _) in peers {
        let slot = seen.get_mut(shard as usize).ok_or_else(|| {
            TransportError::Protocol(format!(
                "peer list names shard {shard}, outside the run's {shards} shards"
            ))
        })?;
        if *slot {
            return Err(TransportError::Protocol(format!(
                "peer list names shard {shard} twice"
            )));
        }
        *slot = true;
    }
    Ok(())
}

/// Encodes a peer list as a [`Peers`](FrameKind::Peers) frame payload:
/// `[count u32]` then per peer `[shard u16][len u16][utf8 address]`.
fn peers_payload(peers: &[(u16, String)]) -> Vec<u8> {
    let mut payload = Vec::new();
    put_u32(&mut payload, peers.len() as u32);
    for (shard, addr) in peers {
        put_u16(&mut payload, *shard);
        put_u16(
            &mut payload,
            u16::try_from(addr.len()).expect("peer address exceeds u16 bytes"),
        );
        payload.extend_from_slice(addr.as_bytes());
    }
    payload
}

/// Writes a peer list as one [`Peers`](FrameKind::Peers) frame.
///
/// Workers announce their own listen address to the coordinator as a
/// single-entry list; the coordinator broadcasts the assembled full list
/// back so every worker can dial its mesh.
///
/// # Errors
///
/// Propagates link I/O failures.
pub fn write_peers<L: Write>(
    link: &mut L,
    from: u16,
    to: u16,
    peers: &[(u16, String)],
) -> std::io::Result<()> {
    write_frame(
        link,
        FrameHeader {
            kind: FrameKind::Peers,
            round: 0,
            from,
            to,
        },
        &peers_payload(peers),
    )?;
    link.flush()
}

/// Decodes the peer list of a [`Peers`](FrameKind::Peers) frame.
///
/// # Errors
///
/// [`TransportError`] on a wrong frame kind, truncated or trailing payload
/// bytes, or a non-UTF-8 address.
pub fn parse_peers(frame: &Frame) -> Result<Vec<(u16, String)>, TransportError> {
    if frame.header.kind != FrameKind::Peers {
        return Err(TransportError::Protocol(format!(
            "expected a Peers frame, got a {:?} frame",
            frame.header.kind
        )));
    }
    let p = &frame.payload;
    let count = get_u32(p, 0)? as usize;
    let mut peers = Vec::with_capacity(count.min(1024));
    let mut at = 4usize;
    for _ in 0..count {
        let shard = get_u16(p, at)?;
        let len = get_u16(p, at + 2)? as usize;
        let body = p.get(at + 4..at + 4 + len).ok_or(WireError::Truncated {
            needed: at + 4 + len,
            got: p.len(),
        })?;
        let addr = std::str::from_utf8(body).map_err(|_| {
            TransportError::Protocol(format!("peer address of shard {shard} is not valid UTF-8"))
        })?;
        peers.push((shard, addr.to_string()));
        at += 4 + len;
    }
    if at != p.len() {
        return Err(TransportError::Wire(WireError::TrailingBytes(p.len() - at)));
    }
    Ok(peers)
}

/// Reads one frame off the link and decodes it as the peer list of
/// [`write_peers`], checking the expected sender/receiver pair.
///
/// # Errors
///
/// Propagates link I/O failures; decode failures surface as `io::Error`.
pub fn read_peers<L: Read>(
    link: &mut L,
    from: u16,
    to: u16,
) -> std::io::Result<Vec<(u16, String)>> {
    let frame = read_frame(link)?;
    let peers = parse_peers(&frame).map_err(std::io::Error::from)?;
    frame.header.expect(0, from, to)?;
    Ok(peers)
}

// ---------------------------------------------------------------------------
// The direct worker↔worker data mesh
// ---------------------------------------------------------------------------

/// A full mesh of direct worker↔worker connections carrying the data frames
/// of a remote run, so the coordinator only paces rounds.
///
/// Connection setup is deterministic: every worker *dials* the listed
/// addresses of all lower shard indices (announcing its own shard index as
/// a 2-byte handshake) and *accepts* one connection from each higher index,
/// validating the announced indices.  Per round the mesh seals one data
/// frame per peer — empty if nothing crossed that pair, so receivers always
/// know how many frames to expect — and drains with the same three-step
/// spin-then-park discipline as [`SocketLoopback`]'s in-process transport
/// (see the [module docs](self)), which is deadlock-free once every worker's
/// sealed bytes are handed to the kernel.
#[derive(Debug)]
pub struct WorkerMesh {
    me: u16,
    /// Ascending peer shard indices, parallel to `links`.
    peers: Vec<u16>,
    links: Vec<PeerLink>,
}

impl WorkerMesh {
    /// Connects the full mesh for shard `me` of a `shards`-shard run.
    ///
    /// `peers` maps every shard (including `me`) to a dialable address;
    /// `listener` is the socket `me` published in that list.
    ///
    /// # Errors
    ///
    /// Rejects invalid peer lists ([`validate_peer_list`]) and handshakes
    /// announcing unexpected or duplicate shard indices, and propagates
    /// socket failures.
    pub fn connect(
        me: u16,
        shards: usize,
        peers: &[(u16, String)],
        listener: &std::net::TcpListener,
    ) -> std::io::Result<Self> {
        check_wire_shard_count(shards)?;
        validate_peer_list(peers, shards).map_err(std::io::Error::from)?;
        let mut links: Vec<(u16, PeerLink)> = Vec::with_capacity(shards.saturating_sub(1));
        for &(shard, ref addr) in peers {
            if shard >= me {
                continue;
            }
            let mut stream = std::net::TcpStream::connect(addr)?;
            stream.set_nodelay(true)?;
            stream.write_all(&me.to_le_bytes())?;
            stream.flush()?;
            links.push((shard, PeerLink::new(LoopbackStream::Tcp(stream))));
        }
        let higher = peers.iter().filter(|&&(shard, _)| shard > me).count();
        for _ in 0..higher {
            let (mut stream, _) = listener.accept()?;
            stream.set_nodelay(true)?;
            let mut id = [0u8; 2];
            stream.read_exact(&mut id)?;
            let shard = u16::from_le_bytes(id);
            if shard <= me || (shard as usize) >= shards {
                return Err(protocol_error(&format!(
                    "mesh handshake announced unexpected shard {shard}"
                )));
            }
            if links.iter().any(|&(s, _)| s == shard) {
                return Err(protocol_error(&format!(
                    "two mesh connections announced shard {shard}"
                )));
            }
            links.push((shard, PeerLink::new(LoopbackStream::Tcp(stream))));
        }
        links.sort_by_key(|&(shard, _)| shard);
        for (_, link) in &links {
            link.stream.set_nonblocking()?;
        }
        Ok(Self {
            me,
            peers: links.iter().map(|&(shard, _)| shard).collect(),
            links: links.into_iter().map(|(_, link)| link).collect(),
        })
    }

    /// Stages one cross-shard message into the target peer's pending frame.
    ///
    /// # Panics
    ///
    /// Panics if `target` is not a peer of this mesh (a routing bug).
    pub(crate) fn stage<M: WireMessage>(&mut self, target: u16, slot: u32, sender: u32, msg: &M) {
        let i = self
            .peers
            .binary_search(&target)
            .expect("staged a message for a shard with no mesh link");
        self.links[i].batch.push(slot, sender, msg);
    }

    /// Seals this round's frame for every peer (empty frames included) and
    /// starts writing them out; returns the sealed byte count.
    pub(crate) fn flush(&mut self, round: u64) -> u64 {
        let mut bytes = 0;
        for (i, link) in self.links.iter_mut().enumerate() {
            debug_assert!(link.write_done(), "previous round's frame still pending");
            let mut out = std::mem::take(&mut link.out);
            bytes += link.batch.seal(round, self.me, self.peers[i], &mut out);
            link.out = out;
            link.pump_out();
        }
        bytes
    }

    /// Drains the round: finishes this worker's writes (reading
    /// opportunistically), buffers one header-validated frame per peer,
    /// then decodes and delivers in ascending peer order — the same
    /// three-step discipline as the in-process socket drain.
    ///
    /// # Errors
    ///
    /// A late, duplicate or out-of-round frame, or a non-data frame on a
    /// mesh connection, is a typed [`TransportError`].
    pub(crate) fn exchange<M: WireMessage>(
        &mut self,
        round: u64,
        sink: &mut dyn FnMut(u32, u32, M),
    ) -> Result<(), TransportError> {
        let mut rotor: usize = 0;

        // Step 1: finish writing, reading opportunistically.
        let mut idle: u32 = 0;
        loop {
            let mut stalled: Vec<usize> = Vec::new();
            let mut progressed = false;
            for (i, link) in self.links.iter_mut().enumerate() {
                progressed |= link.pump_out();
                if !link.write_done() {
                    stalled.push(i);
                }
                progressed |= link.pump_in();
            }
            if stalled.is_empty() {
                break;
            }
            if progressed {
                idle = 0;
            } else {
                idle += 1;
                if idle < SPIN_PASSES {
                    std::thread::yield_now();
                } else {
                    let pick = stalled[rotor % stalled.len()];
                    rotor += 1;
                    self.links[pick].wait_out();
                }
            }
        }

        // Step 2: buffer one complete frame per peer, validating headers
        // the moment each frame completes.
        let mut idle: u32 = 0;
        loop {
            let mut waiting: Vec<usize> = Vec::new();
            let mut progressed = false;
            for (i, link) in self.links.iter_mut().enumerate() {
                if link.frame.is_some() {
                    continue;
                }
                progressed |= link.pump_in();
                match link.inbox.next_frame() {
                    Ok(Some(frame)) => {
                        if frame.header.kind != FrameKind::Data {
                            return Err(TransportError::Protocol(format!(
                                "expected a data frame from shard {}, got a {:?} frame",
                                self.peers[i], frame.header.kind
                            )));
                        }
                        frame.header.expect(round, self.peers[i], self.me)?;
                        link.frame = Some(frame);
                        progressed = true;
                    }
                    Ok(None) => waiting.push(i),
                    Err(e) => return Err(TransportError::Wire(e)),
                }
            }
            if waiting.is_empty() {
                break;
            }
            if progressed {
                idle = 0;
            } else {
                idle += 1;
                if idle < SPIN_PASSES {
                    std::thread::yield_now();
                } else {
                    let pick = waiting[rotor % waiting.len()];
                    rotor += 1;
                    self.links[pick].wait_in();
                }
            }
        }

        // Step 3: decode and deliver, in ascending peer order.
        for link in self.links.iter_mut() {
            let frame = link.frame.take().expect("step 2 buffered a frame per peer");
            for_each_data_entry::<M>(&frame.payload, &mut *sink)?;
        }
        Ok(())
    }

    /// Total kernel write calls issued across all mesh links.
    pub(crate) fn syscall_batches(&self) -> u64 {
        self.links.iter().map(|link| link.writes).sum()
    }
}

// ---------------------------------------------------------------------------
// The remote (multi-process) protocol
// ---------------------------------------------------------------------------

/// The data-frame path of a remote worker: relayed through the coordinator
/// (the default star topology) or exchanged peer-to-peer over a
/// [`WorkerMesh`].
///
/// Control frames ([`RoundStart`](FrameKind::RoundStart),
/// [`Vote`](FrameKind::Vote), [`Output`](FrameKind::Output)) always travel
/// over the coordinator link; only the per-round
/// [`Data`](FrameKind::Data) frames move.
#[derive(Debug)]
pub enum DataPlane {
    /// Every data frame goes to the coordinator, which relays it to the
    /// destination shard.  Two network hops per frame, no worker↔worker
    /// connections.
    Relay,
    /// Data frames travel directly between the workers over a full mesh of
    /// connections.  One hop per frame; the coordinator relays nothing
    /// (its [`RunMetrics::relayed_data_bytes`] stays zero).
    Mesh(WorkerMesh),
}

/// Serves one shard of a simulation over a blocking link to the coordinator
/// — the worker-process half of the multi-process backend (the `exp_worker`
/// binary is a thin wrapper around this).  Relay-mode shorthand for
/// [`serve_shard_on`] with [`DataPlane::Relay`].
///
/// # Errors
///
/// Propagates link I/O failures and protocol violations as `io::Error`.
///
/// # Panics
///
/// Panics on CONGEST contract violations by the algorithm (double-send on a
/// port), exactly like the in-process executors.
pub fn serve_shard<A: NodeAlgorithm, L: Read + Write, T: ShardTopologyView>(
    link: &mut L,
    topology: &T,
    shard: usize,
    nodes: Vec<A>,
) -> std::io::Result<()>
where
    A::Output: WireMessage,
{
    serve_shard_on(link, topology, shard, nodes, &mut DataPlane::Relay)
}

/// Optional behaviours of a worker's round loop ([`serve_shard_with`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeOptions {
    /// Emit a [`Stats`](FrameKind::Stats) telemetry frame every this many
    /// rounds (immediately before that round's vote).  `0` — the default —
    /// never sends one, keeping the wire protocol byte-identical to
    /// pre-telemetry workers.
    pub stats_every: u64,
    /// Capture this worker's trace events ([`TraceEvent`], stamped against
    /// the worker's own monotonic origin at its `WorkerStart`) and ship
    /// them to the coordinator as one final
    /// [`Trace`](FrameKind::Trace) frame, immediately before the
    /// [`Output`](FrameKind::Output) frame.  Strictly out-of-band, like
    /// `stats_every`: round decisions, outputs and merged counters are
    /// byte-identical either way.  `false` (the default) sends nothing and
    /// captures nothing.
    pub trace: bool,
}

/// One worker's periodic telemetry snapshot, carried by a
/// [`Stats`](FrameKind::Stats) frame.
///
/// Strictly out-of-band: the coordinator renders it (or ignores it) without
/// any effect on round decisions, outputs or merged metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// The reporting shard.
    pub shard: usize,
    /// Rounds completed by the worker so far.
    pub round: u64,
    /// The shard's active node count after its latest receive phase.
    pub active: u64,
    /// Cumulative wire bytes the worker has sent.
    pub wire_bytes: u64,
    /// The worker process's peak RSS at snapshot time, in bytes (0 when
    /// unavailable; see [`crate::metrics::process_peak_rss_bytes`]).
    pub peak_rss_bytes: u64,
    /// Wall-clock nanoseconds since the worker entered its round loop.
    pub elapsed_nanos: u64,
}

impl WorkerStats {
    /// Round throughput since the worker started, in rounds per second.
    pub fn round_rate(&self) -> f64 {
        if self.elapsed_nanos == 0 {
            0.0
        } else {
            self.round as f64 * 1e9 / self.elapsed_nanos as f64
        }
    }
}

fn write_stats(link: &mut impl Write, from: u16, stats: &WorkerStats) -> std::io::Result<()> {
    let mut payload = Vec::with_capacity(40);
    for v in [
        stats.round,
        stats.active,
        stats.wire_bytes,
        stats.peak_rss_bytes,
        stats.elapsed_nanos,
    ] {
        put_u64(&mut payload, v);
    }
    write_frame(
        link,
        FrameHeader {
            kind: FrameKind::Stats,
            round: stats.round,
            from,
            to: COORDINATOR,
        },
        &payload,
    )?;
    Ok(())
}

fn parse_stats(frame: &Frame) -> std::io::Result<WorkerStats> {
    let p = &frame.payload;
    Ok(WorkerStats {
        shard: frame.header.from as usize,
        round: get_u64(p, 0)?,
        active: get_u64(p, 8)?,
        wire_bytes: get_u64(p, 16)?,
        peak_rss_bytes: get_u64(p, 24)?,
        elapsed_nanos: get_u64(p, 32)?,
    })
}

/// Serves one shard of a simulation over a blocking link to the coordinator,
/// moving data frames over the given [`DataPlane`].
///
/// `topology` only needs the [`ShardTopologyView`] surface, so a worker can
/// serve from a [`ShardSliceTopology`](crate::sharded::ShardSliceTopology)
/// it built for its own shard without ever materialising the full graph.
///
/// `nodes` holds exactly the state machines of `topology.shard_nodes(shard)`
/// in node order; they are initialised here with their global contexts, so
/// every process derives identical state from identical inputs.
///
/// Per round the worker: receives the coordinator's
/// [`RoundStart`](FrameKind::RoundStart); runs the send phase, filling its
/// own inbox slots directly for intra-shard traffic and wire-encoding
/// cross-shard messages into one data frame per destination shard; flushes
/// those frames over the data plane (coordinator relay or direct mesh);
/// reads the other shards' frames and fills its slots; runs the receive
/// phase; and reports its halting vote ([`Vote`](FrameKind::Vote), the
/// shard's active count).  On stop it sends one [`Output`](FrameKind::Output)
/// frame carrying its counters (including its peak RSS) and its nodes'
/// wire-encoded outputs.
///
/// # Errors
///
/// Propagates link I/O failures and protocol violations as `io::Error`.
///
/// # Panics
///
/// Panics on CONGEST contract violations by the algorithm (double-send on a
/// port), exactly like the in-process executors.
pub fn serve_shard_on<A: NodeAlgorithm, L: Read + Write, T: ShardTopologyView>(
    link: &mut L,
    topology: &T,
    shard: usize,
    nodes: Vec<A>,
    data: &mut DataPlane,
) -> std::io::Result<()>
where
    A::Output: WireMessage,
{
    serve_shard_with(link, topology, shard, nodes, data, &ServeOptions::default())
}

/// [`serve_shard_on`] with explicit [`ServeOptions`] — the full-surface
/// entry point; the other two `serve_shard*` functions are shorthands for
/// default options.
///
/// With a nonzero [`ServeOptions::stats_every`] the worker additionally
/// emits a [`Stats`](FrameKind::Stats) frame every `k` rounds, immediately
/// before that round's vote on the same ordered link — pure telemetry that
/// changes no round decision, output or merged counter.
///
/// # Errors
///
/// Propagates link I/O failures and protocol violations as `io::Error`.
///
/// # Panics
///
/// Panics on CONGEST contract violations by the algorithm (double-send on a
/// port), exactly like the in-process executors.
pub fn serve_shard_with<A: NodeAlgorithm, L: Read + Write, T: ShardTopologyView>(
    link: &mut L,
    topology: &T,
    shard: usize,
    mut nodes: Vec<A>,
    data: &mut DataPlane,
    opts: &ServeOptions,
) -> std::io::Result<()>
where
    A::Output: WireMessage,
{
    let node_range = topology.shard_nodes(shard);
    let slot_range = topology.shard_slots(shard);
    assert_eq!(
        nodes.len(),
        node_range.len(),
        "need exactly one algorithm instance per shard node"
    );
    let n = topology.num_nodes();
    let shards = topology.num_shards();
    check_wire_shard_count(shards)?;
    let me = shard as u16;

    let contexts: Vec<NodeContext> = node_range
        .clone()
        .map(|v| NodeContext {
            node: v,
            degree: topology.degree_from(shard, v),
            n,
            max_degree: topology.max_degree(),
            round: 0,
        })
        .collect();
    for (node, ctx) in nodes.iter_mut().zip(&contexts) {
        node.init(ctx);
    }

    let mut slots: Vec<Option<A::Message>> = (0..slot_range.len()).map(|_| None).collect();
    let mut touched: Vec<usize> = Vec::new();
    let mut active: Vec<usize> = (0..nodes.len())
        .filter(|&i| !nodes[i].is_halted())
        .map(|i| node_range.start + i)
        .collect();
    let mut report = ShardReport::default();
    let mut batches: Vec<DataFrameBuilder> = (0..shards).map(|_| DataFrameBuilder::new()).collect();
    let mut outbuf: Vec<u8> = Vec::new();

    // Initial halting vote: the active count before round 0.
    write_vote(link, 0, me, active.len() as u64)?;

    // Trace capture is strictly local until the final Trace frame: the
    // recorder's epoch is this worker's monotonic origin (the documented
    // clock-alignment anchor), taken at its WorkerStart.
    let capture = opts.trace.then(StampedRecorder::new);
    if let Some(cap) = &capture {
        cap.emit(&TraceEvent::WorkerStart { shard });
    }

    let epoch = Instant::now();
    let mut round: u64 = 0;
    loop {
        let frame = read_frame(link)?;
        if frame.header.kind != FrameKind::RoundStart {
            return Err(protocol_error("expected a RoundStart frame"));
        }
        frame.header.expect(round, COORDINATOR, me)?;
        let stop = *frame
            .payload
            .first()
            .ok_or_else(|| protocol_error("RoundStart frame missing its stop flag"))?
            != 0;
        if stop {
            break;
        }

        // --- Send + route ------------------------------------------------
        let (m0, b0, c0) = (report.messages, report.total_bits, report.cross);
        let t = Instant::now();
        for i in touched.drain(..) {
            slots[i] = None;
        }
        for &v in &active {
            let ctx = NodeContext {
                round,
                ..contexts[v - node_range.start]
            };
            let outbox = nodes[v - node_range.start].send(&ctx);
            route_outbox(
                topology,
                shard,
                v,
                outbox,
                &mut slots,
                slot_range.start,
                &mut touched,
                &mut report,
                &mut |slot, sender, msg| {
                    let target = topology.shard_of_slot(slot as usize);
                    match data {
                        DataPlane::Relay => batches[target].push(slot, sender, &msg),
                        DataPlane::Mesh(mesh) => mesh.stage(target as u16, slot, sender, &msg),
                    }
                },
            );
        }
        let send_d = t.elapsed().as_nanos() as u64;
        report.timings.send += send_d;
        if let Some(cap) = &capture {
            cap.emit(&TraceEvent::PhaseEnd {
                round,
                shard,
                phase: TracePhase::Send,
                nanos: send_d,
            });
            cap.emit(&TraceEvent::ShardRound {
                round,
                shard,
                messages: report.messages - m0,
                bits: report.total_bits - b0,
                cross: report.cross - c0,
            });
        }

        // --- Flush: one data frame per destination shard -----------------
        let w0 = report.wire_bytes;
        let t = Instant::now();
        match data {
            DataPlane::Relay => {
                outbuf.clear();
                for (to, batch) in batches.iter_mut().enumerate() {
                    if to == shard {
                        continue;
                    }
                    report.wire_bytes += batch.seal(round, me, to as u16, &mut outbuf);
                }
                link.write_all(&outbuf)?;
                link.flush()?;
                // All peers' frames left in one coalesced write: one batch.
                report.syscall_batches += 1;
            }
            DataPlane::Mesh(mesh) => {
                report.wire_bytes += mesh.flush(round);
            }
        }
        let flush_d = t.elapsed().as_nanos() as u64;
        report.flush_nanos += flush_d;
        if let Some(cap) = &capture {
            cap.emit(&TraceEvent::ShardFlush {
                round,
                shard,
                wire_bytes: report.wire_bytes - w0,
                nanos: flush_d,
            });
        }

        // --- Drain every other shard's frames ----------------------------
        let t = Instant::now();
        match data {
            DataPlane::Relay => {
                for from in 0..shards {
                    if from == shard {
                        continue;
                    }
                    let frame = read_frame(link)?;
                    if frame.header.kind != FrameKind::Data {
                        return Err(protocol_error("expected a relayed data frame"));
                    }
                    frame.header.expect(round, from as u16, me)?;
                    for_each_data_entry::<A::Message>(&frame.payload, |slot, sender, msg| {
                        crate::executor::fill_shard_slot(
                            &mut slots,
                            slot as usize - slot_range.start,
                            msg,
                            sender as usize,
                            &mut touched,
                        );
                    })?;
                }
            }
            DataPlane::Mesh(mesh) => {
                mesh.exchange::<A::Message>(round, &mut |slot, sender, msg| {
                    crate::executor::fill_shard_slot(
                        &mut slots,
                        slot as usize - slot_range.start,
                        msg,
                        sender as usize,
                        &mut touched,
                    );
                })?;
            }
        }
        let drain_d = t.elapsed().as_nanos() as u64;
        report.timings.deliver += drain_d;
        if let Some(cap) = &capture {
            cap.emit(&TraceEvent::ShardDrain {
                round,
                shard,
                nanos: drain_d,
                stale: 0,
            });
            cap.emit(&TraceEvent::PhaseEnd {
                round,
                shard,
                phase: TracePhase::Deliver,
                nanos: drain_d,
            });
        }

        // --- Receive + compact + vote ------------------------------------
        let t = Instant::now();
        for &v in &active {
            let ctx = NodeContext {
                round,
                ..contexts[v - node_range.start]
            };
            let r = topology.port_range_from(shard, v);
            let inbox =
                Inbox::from_slots(&slots[r.start - slot_range.start..r.end - slot_range.start]);
            nodes[v - node_range.start].receive(&ctx, &inbox);
        }
        active.retain(|&v| !nodes[v - node_range.start].is_halted());
        let receive_d = t.elapsed().as_nanos() as u64;
        report.timings.receive += receive_d;
        if let Some(cap) = &capture {
            cap.emit(&TraceEvent::PhaseEnd {
                round,
                shard,
                phase: TracePhase::Receive,
                nanos: receive_d,
            });
        }
        round += 1;
        if opts.stats_every > 0 && round % opts.stats_every == 0 {
            write_stats(
                link,
                me,
                &WorkerStats {
                    shard,
                    round,
                    active: active.len() as u64,
                    wire_bytes: report.wire_bytes,
                    peak_rss_bytes: crate::metrics::process_peak_rss_bytes(),
                    elapsed_nanos: epoch.elapsed().as_nanos() as u64,
                },
            )?;
        }
        write_vote(link, round, me, active.len() as u64)?;
    }

    // --- Final report: counters + wire-encoded outputs -------------------
    if let DataPlane::Mesh(mesh) = data {
        report.syscall_batches += mesh.syscall_batches();
    }
    // The captured trace ships as one out-of-band frame ahead of the
    // Output frame on the same ordered link, mirroring how Stats frames
    // precede Votes — the coordinator merges (or discards) it without any
    // effect on the run.
    if let Some(cap) = &capture {
        cap.emit(&TraceEvent::WorkerEnd { shard });
        write_frame(
            link,
            FrameHeader {
                kind: FrameKind::Trace,
                round,
                from: me,
                to: COORDINATOR,
            },
            &encode_stamped(&cap.take()),
        )?;
    }
    let mut payload = Vec::new();
    for v in [
        report.messages,
        report.total_bits,
        report.max_message_bits,
        report.intra,
        report.cross,
        report.wire_bytes,
        report.flush_nanos,
        report.syscall_batches,
        report.timings.send,
        report.timings.deliver,
        report.timings.receive,
        crate::metrics::process_peak_rss_bytes(),
    ] {
        put_u64(&mut payload, v);
    }
    put_u32(&mut payload, nodes.len() as u32);
    let mut w = crate::wire::BitWriter::new();
    for (i, node) in nodes.iter().enumerate() {
        w.clear();
        let aux = node.output().encode(&mut w);
        let bits = u16::try_from(w.bits_written()).expect("output exceeds u16 bits");
        put_u32(&mut payload, (node_range.start + i) as u32);
        payload.extend_from_slice(&bits.to_le_bytes());
        payload.push(aux);
        payload.extend_from_slice(w.as_bytes());
    }
    write_frame(
        link,
        FrameHeader {
            kind: FrameKind::Output,
            round,
            from: me,
            to: COORDINATOR,
        },
        &payload,
    )?;
    link.flush()?;
    Ok(())
}

/// Parameters of a [`coordinate`] run.
///
/// The coordinator never needs the graph itself — only its global shape —
/// so in a scale-out run it can drive workers that each built their own
/// [`ShardSliceTopology`](crate::sharded::ShardSliceTopology) without any
/// process materialising the full topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoordinateSpec {
    /// Total node count, for output reassembly.
    pub num_nodes: usize,
    /// Number of shards (= workers).
    pub shards: usize,
    /// Round cap, after which the run stops with
    /// [`RunMetrics::hit_round_cap`] set.
    pub max_rounds: u64,
    /// When true the workers exchange data frames peer-to-peer over a
    /// [`WorkerMesh`] and the coordinator skips its collect/relay phases,
    /// carrying only control frames.
    pub mesh: bool,
    /// When true, incoming [`Stats`](FrameKind::Stats) telemetry frames are
    /// rendered as `heartbeat:` lines on stderr.  Stats frames are consumed
    /// (and validated) either way, so a worker running with a nonzero
    /// [`ServeOptions::stats_every`] works against a silent coordinator.
    pub progress: bool,
}

/// Drives a multi-process run from the coordinator side: one blocking link
/// per shard worker (in any order — workers are identified by the shard
/// index of their initial vote).
///
/// In relay mode the coordinator forwards each round's data frames between
/// the workers (counting the forwarded bytes in
/// [`RunMetrics::relayed_data_bytes`]); in mesh mode
/// ([`CoordinateSpec::mesh`]) the workers exchange them directly and the
/// coordinator only paces rounds.  Either way it tallies the halting votes
/// to decide rounds exactly like the in-process executors, and finally
/// merges the per-shard counters (in shard order, so totals are
/// deterministic) and reassembles the node outputs.
///
/// `O` is the workers' output type ([`NodeAlgorithm::Output`] with a wire
/// codec).
///
/// # Errors
///
/// Propagates link I/O failures and protocol violations as `io::Error`.
pub fn coordinate<O: WireMessage, L: Read + Write>(
    links: Vec<L>,
    spec: &CoordinateSpec,
) -> std::io::Result<RunOutcome<O>> {
    coordinate_traced(links, spec, None)
}

/// [`coordinate`] with remote trace capture: the full-surface entry point.
///
/// With `trace` set, the coordinator records its own engine-track events
/// (`RunStart`/`RoundStart`/`RoundEnd`/`RunEnd`, pid 0 in the rendered
/// file) into the sink and merges every worker's final
/// [`Trace`](FrameKind::Trace) blob into it via
/// [`ChromeTraceSink::ingest_stamped`], yielding one Perfetto-loadable
/// trace with a named track per worker — see the clock-alignment rule in
/// the [`ChromeTraceSink`] docs.  Workers only ship a blob when they run
/// with [`ServeOptions::trace`]; either side may enable tracing alone
/// (an unconsumed-side mismatch is tolerated: unexpected Trace frames are
/// validated and discarded, and a `None` sink merely drops the blobs), and
/// the run itself — rounds, outputs, merged counters — is bit-for-bit
/// identical in every combination.
///
/// # Errors
///
/// Propagates link I/O failures and protocol violations (including a
/// malformed Trace payload) as `io::Error`.
pub fn coordinate_traced<O: WireMessage, L: Read + Write>(
    links: Vec<L>,
    spec: &CoordinateSpec,
    trace: Option<&ChromeTraceSink>,
) -> std::io::Result<RunOutcome<O>> {
    let shards = spec.shards;
    check_wire_shard_count(shards)?;
    if links.len() != shards {
        return Err(protocol_error("need exactly one link per shard"));
    }

    // Identify each link by the shard index of its initial vote.
    let mut by_shard: Vec<Option<(L, u64)>> = Vec::with_capacity(shards);
    by_shard.resize_with(shards, || None);
    for mut link in links {
        let frame = read_frame(&mut link)?;
        if frame.header.kind != FrameKind::Vote || frame.header.round != 0 {
            return Err(protocol_error("expected an initial vote frame"));
        }
        let shard = frame.header.from as usize;
        let active = parse_vote(&frame)?;
        let slot = by_shard
            .get_mut(shard)
            .ok_or_else(|| protocol_error("vote from an out-of-range shard"))?;
        if slot.is_some() {
            return Err(protocol_error("two links voted for the same shard"));
        }
        *slot = Some((link, active));
    }
    let mut links: Vec<L> = Vec::with_capacity(shards);
    let mut counts: Vec<u64> = Vec::with_capacity(shards);
    for slot in by_shard {
        let (link, active) = slot.ok_or_else(|| protocol_error("a shard never connected"))?;
        links.push(link);
        counts.push(active);
    }

    let mut metrics = RunMetrics::default();
    let mut round: u64 = 0;
    let mut relay: Vec<Vec<Option<Frame>>> = (0..shards)
        .map(|_| (0..shards).map(|_| None).collect())
        .collect();
    if let Some(sink) = trace {
        sink.emit(&TraceEvent::RunStart {
            nodes: spec.num_nodes,
            shards,
        });
    }
    loop {
        let total: u64 = counts.iter().sum();
        let stop = if total == 0 {
            true
        } else if round >= spec.max_rounds {
            metrics.hit_round_cap = true;
            true
        } else {
            metrics.active_per_round.push(total as usize);
            false
        };
        for (s, link) in links.iter_mut().enumerate() {
            write_frame(
                link,
                FrameHeader {
                    kind: FrameKind::RoundStart,
                    round,
                    from: COORDINATOR,
                    to: s as u16,
                },
                &[u8::from(stop)],
            )?;
            link.flush()?;
        }
        if stop {
            break;
        }
        let round_t = Instant::now();
        if let Some(sink) = trace {
            sink.emit(&TraceEvent::RoundStart {
                round,
                active: total as usize,
            });
        }

        if !spec.mesh {
            // --- Collect every worker's outbound data frames --------------
            let t = Instant::now();
            for (s, link) in links.iter_mut().enumerate() {
                for (to, slot) in relay[s].iter_mut().enumerate() {
                    if to == s {
                        continue;
                    }
                    let frame = read_frame(link)?;
                    if frame.header.kind != FrameKind::Data {
                        return Err(protocol_error("expected a data frame"));
                    }
                    frame.header.expect(round, s as u16, to as u16)?;
                    metrics.relayed_data_bytes +=
                        (4 + FRAME_HEADER_BYTES + frame.payload.len()) as u64;
                    *slot = Some(frame);
                }
            }
            metrics.phase_nanos.send += t.elapsed().as_nanos() as u64;

            // --- Relay them, in sending-shard order per receiver ----------
            let t = Instant::now();
            for (to, link) in links.iter_mut().enumerate() {
                for row in relay.iter_mut() {
                    if let Some(frame) = row[to].take() {
                        write_frame(link, frame.header, &frame.payload)?;
                    }
                }
                link.flush()?;
            }
            metrics.phase_nanos.deliver += t.elapsed().as_nanos() as u64;
        }

        // --- Tally the halting votes --------------------------------------
        let t = Instant::now();
        round += 1;
        for (s, link) in links.iter_mut().enumerate() {
            // A worker may precede its vote with one out-of-band Stats
            // frame; the link is ordered, so telemetry can only appear here.
            let frame = loop {
                let frame = read_frame(link)?;
                if frame.header.kind != FrameKind::Stats {
                    break frame;
                }
                frame.header.expect(round, s as u16, COORDINATOR)?;
                let stats = parse_stats(&frame)?;
                if spec.progress {
                    eprintln!(
                        "heartbeat: shard {} round {} active {} wire_bytes {} rss_bytes {} \
                         {:.1} rounds/s",
                        stats.shard,
                        stats.round,
                        stats.active,
                        stats.wire_bytes,
                        stats.peak_rss_bytes,
                        stats.round_rate(),
                    );
                }
            };
            if frame.header.kind != FrameKind::Vote {
                return Err(protocol_error("expected a vote frame"));
            }
            frame.header.expect(round, s as u16, COORDINATOR)?;
            counts[s] = parse_vote(&frame)?;
        }
        metrics.phase_nanos.receive += t.elapsed().as_nanos() as u64;
        if let Some(sink) = trace {
            sink.emit(&TraceEvent::RoundEnd {
                round: round - 1,
                active: counts.iter().sum::<u64>() as usize,
                nanos: round_t.elapsed().as_nanos() as u64,
            });
        }
    }
    metrics.rounds = round;

    // --- Merge the final reports in shard order ---------------------------
    let mut outputs: Vec<Option<O>> = Vec::with_capacity(spec.num_nodes);
    outputs.resize_with(spec.num_nodes, || None);
    for (s, link) in links.iter_mut().enumerate() {
        // A traced worker precedes its Output with one out-of-band Trace
        // blob; the ordered link means it can only appear here.  The blob
        // is validated either way and merged only when a sink is attached.
        let frame = loop {
            let frame = read_frame(link)?;
            if frame.header.kind != FrameKind::Trace {
                break frame;
            }
            frame.header.expect(round, s as u16, COORDINATOR)?;
            let events = decode_stamped(&frame.payload)
                .map_err(|e| protocol_error(&format!("malformed trace blob: {e}")))?;
            if let Some(sink) = trace {
                sink.ingest_stamped(&events);
            }
        };
        if frame.header.kind != FrameKind::Output {
            return Err(protocol_error("expected an output frame"));
        }
        frame.header.expect(round, s as u16, COORDINATOR)?;
        let p = &frame.payload;
        metrics.messages += get_u64(p, 0)?;
        metrics.total_bits += get_u64(p, 8)?;
        metrics.max_message_bits = metrics.max_message_bits.max(get_u64(p, 16)?);
        metrics.intra_shard_messages += get_u64(p, 24)?;
        metrics.cross_shard_messages += get_u64(p, 32)?;
        metrics.wire_bytes_sent += get_u64(p, 40)?;
        metrics.transport_flush_nanos += get_u64(p, 48)?;
        metrics.syscall_batches += get_u64(p, 56)?;
        metrics
            .shard_phase_nanos
            .push(crate::metrics::PhaseTimings {
                send: get_u64(p, 64)?,
                deliver: get_u64(p, 72)?,
                receive: get_u64(p, 80)?,
            });
        metrics.peak_rss_bytes = metrics.peak_rss_bytes.max(get_u64(p, 88)?);
        let count = get_u32(p, 96)? as usize;
        let mut at = 100usize;
        for _ in 0..count {
            let node = get_u32(p, at)? as usize;
            let bits = crate::wire::get_u16(p, at + 4)?;
            let aux = *p
                .get(at + 6)
                .ok_or_else(|| protocol_error("truncated output entry"))?;
            let nbytes = (bits as usize).div_ceil(8);
            let body = p
                .get(at + 7..at + 7 + nbytes)
                .ok_or_else(|| protocol_error("truncated output payload"))?;
            let out = crate::wire::decode_payload::<O>(bits, aux, body)?;
            let slot = outputs
                .get_mut(node)
                .ok_or_else(|| protocol_error("output for an out-of-range node"))?;
            if slot.replace(out).is_some() {
                return Err(protocol_error("two outputs for one node"));
            }
            at += 7 + nbytes;
        }
        if at != p.len() {
            return Err(protocol_error("trailing bytes after the output entries"));
        }
    }
    let outputs: Vec<O> = outputs
        .into_iter()
        .enumerate()
        .map(|(v, o)| o.ok_or_else(|| protocol_error(&format!("no output for node {v}"))))
        .collect::<Result<_, _>>()?;
    if let Some(sink) = trace {
        sink.emit(&TraceEvent::RunEnd { rounds: round });
    }
    Ok(RunOutcome { outputs, metrics })
}

fn write_vote(link: &mut impl Write, round: u64, from: u16, active: u64) -> std::io::Result<()> {
    write_frame(
        link,
        FrameHeader {
            kind: FrameKind::Vote,
            round,
            from,
            to: COORDINATOR,
        },
        &active.to_le_bytes(),
    )?;
    link.flush()
}

fn parse_vote(frame: &Frame) -> std::io::Result<u64> {
    get_u64(&frame.payload, 0).map_err(Into::into)
}

fn protocol_error(msg: &str) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("transport protocol: {msg}"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::Outbox;
    use crate::executor::ShardedExecutor;
    use crate::simulator::Simulator;
    use crate::topology::Topology;

    /// Gossip with per-node ttl: broadcasts `id + round`, digests what it
    /// hears, halts after `ttl` rounds.
    #[derive(Clone)]
    struct Gossip {
        id: u64,
        ttl: u64,
        digest: u64,
        rounds_done: u64,
    }

    impl Gossip {
        fn new(ttl: u64) -> Self {
            Self {
                id: 0,
                ttl,
                digest: 0,
                rounds_done: 0,
            }
        }
    }

    impl NodeAlgorithm for Gossip {
        type Message = u64;
        type Output = u64;

        fn init(&mut self, ctx: &NodeContext) {
            self.id = ctx.node as u64;
        }

        fn send(&mut self, ctx: &NodeContext) -> Outbox<u64> {
            Outbox::Broadcast(self.id + ctx.round)
        }

        fn receive(&mut self, _ctx: &NodeContext, inbox: &Inbox<'_, u64>) {
            for (p, m) in inbox.iter() {
                self.digest = self
                    .digest
                    .wrapping_mul(31)
                    .wrapping_add(*m)
                    .wrapping_add(p as u64);
            }
            self.rounds_done += 1;
        }

        fn is_halted(&self) -> bool {
            self.rounds_done >= self.ttl
        }

        fn output(&self) -> u64 {
            self.digest
        }
    }

    fn ring(n: usize) -> Topology {
        let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        Topology::from_edges(n, &edges).unwrap()
    }

    fn mk(n: usize) -> Vec<Gossip> {
        (0..n).map(|v| Gossip::new(1 + (v as u64 % 5))).collect()
    }

    fn assert_logically_equal(a: &RunOutcome<u64>, b: &RunOutcome<u64>, what: &str) {
        assert_eq!(a.outputs, b.outputs, "{what}: outputs");
        assert_eq!(a.metrics.rounds, b.metrics.rounds, "{what}: rounds");
        assert_eq!(a.metrics.messages, b.metrics.messages, "{what}: messages");
        assert_eq!(a.metrics.total_bits, b.metrics.total_bits, "{what}: bits");
        assert_eq!(
            a.metrics.max_message_bits, b.metrics.max_message_bits,
            "{what}: max bits"
        );
        assert_eq!(
            a.metrics.active_per_round, b.metrics.active_per_round,
            "{what}: active"
        );
        assert_eq!(
            a.metrics.hit_round_cap, b.metrics.hit_round_cap,
            "{what}: cap"
        );
    }

    #[test]
    fn socket_loopback_matches_sequential_unix_and_tcp() {
        let n = 23;
        let dense = ring(n);
        let seq = Simulator::new(&dense).run(mk(n));
        for shards in [2, 3] {
            let g = ShardedTopology::from_topology(&dense, shards).unwrap();
            #[cfg(unix)]
            {
                let out = Simulator::new(&g).run_with_executor(
                    mk(n),
                    &ShardedExecutor::with_transport(SocketLoopback::unix()),
                );
                assert_logically_equal(&seq, &out, "unix loopback");
                assert!(
                    out.metrics.wire_bytes_sent > 0,
                    "frames must cross the wire"
                );
                assert_eq!(
                    out.metrics.intra_shard_messages + out.metrics.cross_shard_messages,
                    out.metrics.messages
                );
            }
            let out = Simulator::new(&g).run_with_executor(
                mk(n),
                &ShardedExecutor::with_transport(SocketLoopback::tcp()),
            );
            assert_logically_equal(&seq, &out, "tcp loopback");
            assert!(out.metrics.wire_bytes_sent > 0);
        }
    }

    #[test]
    fn socket_loopback_wire_bytes_are_deterministic() {
        let n = 17;
        let dense = ring(n);
        let g = ShardedTopology::from_topology(&dense, 3).unwrap();
        let run = || {
            Simulator::new(&g)
                .run_with_executor(
                    mk(n),
                    &ShardedExecutor::with_transport(SocketLoopback::tcp()),
                )
                .metrics
        };
        let (a, b) = (run(), run());
        assert_eq!(a.wire_bytes_sent, b.wire_bytes_sent);
        assert_eq!(a.cross_shard_messages, b.cross_shard_messages);
    }

    #[test]
    fn in_process_transport_reports_zero_wire_bytes() {
        let n = 12;
        let dense = ring(n);
        let g = ShardedTopology::from_topology(&dense, 2).unwrap();
        let out = Simulator::new(&g).run_with_executor(mk(n), &ShardedExecutor::new());
        assert_eq!(out.metrics.wire_bytes_sent, 0);
        assert!(out.metrics.cross_shard_messages > 0);
    }

    #[cfg(unix)]
    #[test]
    fn remote_protocol_matches_sequential_over_in_process_links() {
        // The full multi-process protocol — coordinator relay, halting
        // votes, output frames — exercised over socketpairs with worker
        // threads standing in for worker processes.
        let n = 19;
        let dense = ring(n);
        let seq = Simulator::new(&dense).run(mk(n));
        for shards in [1, 2, 3] {
            let g = ShardedTopology::from_topology(&dense, shards).unwrap();
            let mut coordinator_links = Vec::new();
            let mut worker_ends = Vec::new();
            for _ in 0..shards {
                let (c, w) = std::os::unix::net::UnixStream::pair().unwrap();
                coordinator_links.push(c);
                worker_ends.push(w);
            }
            let out = std::thread::scope(|scope| {
                for (shard, mut link) in worker_ends.drain(..).enumerate() {
                    let g = &g;
                    scope.spawn(move || {
                        let range = g.shard_nodes(shard);
                        let nodes: Vec<Gossip> =
                            range.map(|v| Gossip::new(1 + (v as u64 % 5))).collect();
                        serve_shard(&mut link, g, shard, nodes).expect("worker");
                    });
                }
                let spec = CoordinateSpec {
                    num_nodes: n,
                    shards,
                    max_rounds: 1_000_000,
                    mesh: false,
                    progress: false,
                };
                coordinate::<u64, _>(coordinator_links, &spec).expect("coordinator")
            });
            assert_logically_equal(&seq, &out, "remote");
            assert_eq!(
                out.metrics.intra_shard_messages + out.metrics.cross_shard_messages,
                out.metrics.messages
            );
            assert_eq!(out.metrics.shard_phase_nanos.len(), shards);
            assert!(
                out.metrics.peak_rss_bytes > 0,
                "workers must report their peak RSS"
            );
            if shards > 1 {
                assert!(out.metrics.wire_bytes_sent > 0);
                assert_eq!(
                    out.metrics.relayed_data_bytes, out.metrics.wire_bytes_sent,
                    "relay mode forwards every sealed data frame, byte for byte"
                );
            } else {
                assert_eq!(out.metrics.relayed_data_bytes, 0);
            }
        }
    }

    /// Telemetry is out-of-band: a run whose workers emit a Stats frame
    /// every single round produces outputs and logical counters identical
    /// to the sequential reference — the coordinator consumes the frames
    /// without letting them near a round decision.
    #[cfg(unix)]
    #[test]
    fn stats_frames_are_out_of_band() {
        let n = 19;
        let shards = 3;
        let dense = ring(n);
        let seq = Simulator::new(&dense).run(mk(n));
        let g = ShardedTopology::from_topology(&dense, shards).unwrap();
        let mut coordinator_links = Vec::new();
        let mut worker_ends = Vec::new();
        for _ in 0..shards {
            let (c, w) = std::os::unix::net::UnixStream::pair().unwrap();
            coordinator_links.push(c);
            worker_ends.push(w);
        }
        let out = std::thread::scope(|scope| {
            for (shard, mut link) in worker_ends.drain(..).enumerate() {
                let g = &g;
                scope.spawn(move || {
                    let range = g.shard_nodes(shard);
                    let nodes: Vec<Gossip> =
                        range.map(|v| Gossip::new(1 + (v as u64 % 5))).collect();
                    serve_shard_with(
                        &mut link,
                        g,
                        shard,
                        nodes,
                        &mut DataPlane::Relay,
                        &ServeOptions {
                            stats_every: 1,
                            ..ServeOptions::default()
                        },
                    )
                    .expect("worker");
                });
            }
            let spec = CoordinateSpec {
                num_nodes: n,
                shards,
                max_rounds: 1_000_000,
                mesh: false,
                progress: false,
            };
            coordinate::<u64, _>(coordinator_links, &spec).expect("coordinator")
        });
        assert_logically_equal(&seq, &out, "remote+stats");
    }

    /// Trace capture is strictly out-of-band: the run is bit-for-bit
    /// identical whether neither, either or both sides enable tracing, and
    /// when both do, the merged sink holds the engine track plus one named
    /// per-worker track with that worker's shipped events.
    #[cfg(unix)]
    #[test]
    fn trace_frames_are_out_of_band() {
        let n = 19;
        let shards = 3;
        let dense = ring(n);
        let seq = Simulator::new(&dense).run(mk(n));
        let g = ShardedTopology::from_topology(&dense, shards).unwrap();
        let run = |worker_trace: bool, coord_trace: bool| {
            let mut coordinator_links = Vec::new();
            let mut worker_ends = Vec::new();
            for _ in 0..shards {
                let (c, w) = std::os::unix::net::UnixStream::pair().unwrap();
                coordinator_links.push(c);
                worker_ends.push(w);
            }
            let sink = coord_trace.then(ChromeTraceSink::new);
            let out = std::thread::scope(|scope| {
                for (shard, mut link) in worker_ends.drain(..).enumerate() {
                    let g = &g;
                    scope.spawn(move || {
                        let nodes: Vec<Gossip> = g
                            .shard_nodes(shard)
                            .map(|v| Gossip::new(1 + (v as u64 % 5)))
                            .collect();
                        serve_shard_with(
                            &mut link,
                            g,
                            shard,
                            nodes,
                            &mut DataPlane::Relay,
                            &ServeOptions {
                                stats_every: 0,
                                trace: worker_trace,
                            },
                        )
                        .expect("worker");
                    });
                }
                let spec = CoordinateSpec {
                    num_nodes: n,
                    shards,
                    max_rounds: 1_000_000,
                    mesh: false,
                    progress: false,
                };
                coordinate_traced::<u64, _>(coordinator_links, &spec, sink.as_ref())
                    .expect("coordinator")
            });
            (out, sink)
        };

        let (baseline, _) = run(false, false);
        assert_logically_equal(&seq, &baseline, "untraced remote");
        for (worker_trace, coord_trace) in [(true, false), (false, true), (true, true)] {
            let (out, sink) = run(worker_trace, coord_trace);
            assert_logically_equal(&baseline, &out, "traced remote");
            assert_eq!(
                baseline.metrics.wire_bytes_sent, out.metrics.wire_bytes_sent,
                "trace frames must never count as data-plane wire bytes"
            );
            let Some(sink) = sink else { continue };
            let mut buf = Vec::new();
            sink.write_json(&mut buf).expect("render merged trace");
            let text = String::from_utf8(buf).expect("utf8 trace");
            assert!(text.contains("\"name\":\"engine\""), "engine track named");
            assert!(text.contains("run_start"), "coordinator events present");
            if worker_trace {
                for shard in 0..shards {
                    assert!(
                        text.contains(&format!("\"name\":\"shard {shard}\"")),
                        "worker track {shard} named in the merged file"
                    );
                }
                assert!(text.contains("worker_start"), "worker events merged");
            } else {
                assert!(
                    !text.contains("worker_start"),
                    "no worker events without worker-side capture"
                );
            }
        }
    }

    #[test]
    fn worker_stats_round_rate() {
        let stats = WorkerStats {
            round: 100,
            elapsed_nanos: 2_000_000_000,
            ..WorkerStats::default()
        };
        assert!((stats.round_rate() - 50.0).abs() < 1e-9);
        assert_eq!(WorkerStats::default().round_rate(), 0.0);
    }

    /// The mesh data plane: workers build only their own shard slice from
    /// the plan, exchange data frames peer-to-peer over TCP, and the
    /// coordinator — driving control frames only — relays zero data bytes.
    #[cfg(unix)]
    #[test]
    fn mesh_protocol_matches_sequential_and_relays_nothing() {
        let n = 19;
        let dense = ring(n);
        let seq = Simulator::new(&dense).run(mk(n));
        for shards in [1, 2, 3] {
            let plan = ShardPlan::from_edge_stream(n, shards, |emit| {
                for (u, v) in dense.edges() {
                    emit(u, v);
                }
            })
            .unwrap();
            // Every mesh listener is bound before any worker dials, so the
            // peer list is complete up front and dials land in the backlog.
            let listeners: Vec<std::net::TcpListener> = (0..shards)
                .map(|_| std::net::TcpListener::bind("127.0.0.1:0").unwrap())
                .collect();
            let peer_list: Vec<(u16, String)> = listeners
                .iter()
                .enumerate()
                .map(|(s, l)| (s as u16, l.local_addr().unwrap().to_string()))
                .collect();
            let mut coordinator_links = Vec::new();
            let mut worker_ends = Vec::new();
            for _ in 0..shards {
                let (c, w) = std::os::unix::net::UnixStream::pair().unwrap();
                coordinator_links.push(c);
                worker_ends.push(w);
            }
            let out = std::thread::scope(|scope| {
                for (shard, (mut link, listener)) in
                    worker_ends.drain(..).zip(listeners).enumerate()
                {
                    let dense = &dense;
                    let plan = plan.clone();
                    let peer_list = peer_list.clone();
                    scope.spawn(move || {
                        let slice =
                            crate::sharded::ShardSliceTopology::build(plan, shard, |emit| {
                                for (u, v) in dense.edges() {
                                    emit(u, v);
                                }
                            })
                            .expect("slice build");
                        let mesh = WorkerMesh::connect(shard as u16, shards, &peer_list, &listener)
                            .expect("mesh connect");
                        let nodes: Vec<Gossip> = slice
                            .shard_nodes(shard)
                            .map(|v| Gossip::new(1 + (v as u64 % 5)))
                            .collect();
                        serve_shard_on(&mut link, &slice, shard, nodes, &mut DataPlane::Mesh(mesh))
                            .expect("worker");
                    });
                }
                let spec = CoordinateSpec {
                    num_nodes: n,
                    shards,
                    max_rounds: 1_000_000,
                    mesh: true,
                    progress: false,
                };
                coordinate::<u64, _>(coordinator_links, &spec).expect("coordinator")
            });
            assert_logically_equal(&seq, &out, "mesh");
            assert_eq!(
                out.metrics.relayed_data_bytes, 0,
                "mesh mode must not relay data through the coordinator"
            );
            assert!(out.metrics.peak_rss_bytes > 0);
            if shards > 1 {
                assert!(out.metrics.wire_bytes_sent > 0);
                assert!(
                    out.metrics.syscall_batches > 0,
                    "mesh links must report their kernel write batches"
                );
            }
        }
    }

    /// Relay and mesh runs seal byte-identical data frames, so the total
    /// cross-shard wire bytes agree — the mesh saves the relay hop, not the
    /// encoding.
    #[cfg(unix)]
    #[test]
    fn mesh_and_relay_wire_bytes_agree() {
        let n = 23;
        let dense = ring(n);
        let shards = 3;
        let g = ShardedTopology::from_topology(&dense, shards).unwrap();
        let run = |mesh: bool| {
            let listeners: Vec<std::net::TcpListener> = (0..shards)
                .map(|_| std::net::TcpListener::bind("127.0.0.1:0").unwrap())
                .collect();
            let peer_list: Vec<(u16, String)> = listeners
                .iter()
                .enumerate()
                .map(|(s, l)| (s as u16, l.local_addr().unwrap().to_string()))
                .collect();
            let mut coordinator_links = Vec::new();
            let mut worker_ends = Vec::new();
            for _ in 0..shards {
                let (c, w) = std::os::unix::net::UnixStream::pair().unwrap();
                coordinator_links.push(c);
                worker_ends.push(w);
            }
            std::thread::scope(|scope| {
                for (shard, (mut link, listener)) in
                    worker_ends.drain(..).zip(listeners).enumerate()
                {
                    let g = &g;
                    let peer_list = peer_list.clone();
                    scope.spawn(move || {
                        let nodes: Vec<Gossip> = g
                            .shard_nodes(shard)
                            .map(|v| Gossip::new(1 + (v as u64 % 5)))
                            .collect();
                        let mut plane = if mesh {
                            DataPlane::Mesh(
                                WorkerMesh::connect(shard as u16, shards, &peer_list, &listener)
                                    .expect("mesh connect"),
                            )
                        } else {
                            DataPlane::Relay
                        };
                        serve_shard_on(&mut link, g, shard, nodes, &mut plane).expect("worker");
                    });
                }
                let spec = CoordinateSpec {
                    num_nodes: n,
                    shards,
                    max_rounds: 1_000_000,
                    mesh,
                    progress: false,
                };
                coordinate::<u64, _>(coordinator_links, &spec).expect("coordinator")
            })
        };
        let relay = run(false);
        let mesh = run(true);
        assert_logically_equal(&relay, &mesh, "relay vs mesh");
        assert_eq!(relay.metrics.wire_bytes_sent, mesh.metrics.wire_bytes_sent);
        assert!(relay.metrics.relayed_data_bytes > 0);
        assert_eq!(mesh.metrics.relayed_data_bytes, 0);
    }

    #[cfg(unix)]
    #[test]
    fn remote_protocol_respects_the_round_cap() {
        let n = 9;
        let dense = ring(n);
        let g = ShardedTopology::from_topology(&dense, 2).unwrap();
        let mut coordinator_links = Vec::new();
        let mut worker_ends = Vec::new();
        for _ in 0..2 {
            let (c, w) = std::os::unix::net::UnixStream::pair().unwrap();
            coordinator_links.push(c);
            worker_ends.push(w);
        }
        let out = std::thread::scope(|scope| {
            for (shard, mut link) in worker_ends.drain(..).enumerate() {
                let g = &g;
                scope.spawn(move || {
                    let range = g.shard_nodes(shard);
                    let nodes: Vec<Gossip> = range.map(|_| Gossip::new(u64::MAX)).collect();
                    serve_shard(&mut link, g, shard, nodes).expect("worker");
                });
            }
            let spec = CoordinateSpec {
                num_nodes: n,
                shards: 2,
                max_rounds: 4,
                mesh: false,
                progress: false,
            };
            coordinate::<u64, _>(coordinator_links, &spec).expect("coordinator")
        });
        assert_eq!(out.metrics.rounds, 4);
        assert!(out.metrics.hit_round_cap);
        assert_eq!(out.metrics.active_per_round, vec![n; 4]);
    }

    /// A 2-shard socket transport plus direct access to shard 0's outbound
    /// link, for forging raw frames onto the 0→1 wire.
    #[cfg(unix)]
    fn forged_pair() -> SocketTransport<u64> {
        let dense = ring(8);
        let g = ShardedTopology::from_topology(&dense, 2).unwrap();
        SocketLoopback::unix().build::<u64>(&g).unwrap()
    }

    /// Writes one raw frame from shard 0 to shard 1, bypassing the staging
    /// and sealing path entirely.
    #[cfg(unix)]
    fn forge_frame(t: &SocketTransport<u64>, round: u64, payload: &[u8]) {
        let header = FrameHeader {
            kind: FrameKind::Data,
            round,
            from: 0,
            to: 1,
        };
        let mut link = t.link(0, 1);
        let mut out = std::mem::take(&mut link.out);
        crate::wire::frame_into(&mut out, header, payload);
        link.out = out;
        while !link.write_done() {
            link.pump_out();
        }
    }

    /// The satellite fix pinned: a frame stamped with a future round sitting
    /// on the wire at the round-0 barrier is a checked [`TransportError`]
    /// (`WireError::RoundMismatch`), not a panic.
    #[cfg(unix)]
    #[test]
    fn out_of_round_frame_is_a_checked_transport_error() {
        let t = forged_pair();
        forge_frame(&t, 5, &0u32.to_le_bytes());
        let err = Transport::<u64>::drain(&t, 1, 0, &mut |_, _, _| {
            panic!("nothing must be delivered from an out-of-round frame")
        })
        .expect_err("out-of-round frame must be rejected");
        match err {
            TransportError::Wire(crate::wire::WireError::RoundMismatch { expected, got }) => {
                assert_eq!((expected, got), (0, 5));
            }
            other => panic!("expected a RoundMismatch, got {other}"),
        }
    }

    /// The shard-count/host-list mismatch gate: every malformed peer list —
    /// short, out-of-range, duplicated — is a typed [`TransportError`]
    /// before any mesh connection is dialed, never a hang.
    #[test]
    fn malformed_peer_lists_are_checked_transport_errors() {
        let ok = |s: u16| (s, format!("127.0.0.1:{}", 9000 + s));
        validate_peer_list(&[ok(0), ok(1), ok(2)], 3).expect("a complete list validates");

        let short = validate_peer_list(&[ok(0), ok(1)], 3).expect_err("short list");
        assert!(
            matches!(&short, TransportError::Protocol(m) if m.contains("2 workers")
                && m.contains("3 shards")),
            "unexpected error: {short}"
        );
        let long = validate_peer_list(&[ok(0), ok(1), ok(2), ok(3)], 3).expect_err("long list");
        assert!(matches!(long, TransportError::Protocol(_)));
        let out_of_range = validate_peer_list(&[ok(0), ok(1), ok(7)], 3).expect_err("shard 7");
        assert!(
            matches!(&out_of_range, TransportError::Protocol(m) if m.contains("shard 7")),
            "unexpected error: {out_of_range}"
        );
        let duplicate = validate_peer_list(&[ok(0), ok(1), ok(1)], 3).expect_err("duplicate shard");
        assert!(
            matches!(&duplicate, TransportError::Protocol(m) if m.contains("twice")),
            "unexpected error: {duplicate}"
        );
    }

    /// Peer lists survive the wire round trip, and forged `Peers` frames —
    /// truncated entries, trailing bytes, non-UTF-8 addresses, wrong kind —
    /// are typed errors, not panics.
    #[test]
    fn forged_peer_frames_are_checked_transport_errors() {
        let peers = vec![
            (0u16, "127.0.0.1:9000".to_string()),
            (1u16, "[::1]:9001".to_string()),
        ];
        let mut wire = Vec::new();
        write_peers(&mut wire, COORDINATOR, 1, &peers).unwrap();
        let frame = read_frame(&mut wire.as_slice()).unwrap();
        assert_eq!(parse_peers(&frame).expect("round trip"), peers);

        let header = FrameHeader {
            kind: FrameKind::Peers,
            round: 0,
            from: COORDINATOR,
            to: 1,
        };
        // Entry count says one peer, but the entry bytes are missing.
        let mut truncated = Vec::new();
        put_u32(&mut truncated, 1);
        let err = parse_peers(&Frame {
            header,
            payload: truncated,
        })
        .expect_err("truncated entry");
        assert!(matches!(err, TransportError::Wire(_)));

        // A valid single entry followed by stray trailing bytes.
        let mut trailing = peers_payload(&peers[..1]);
        trailing.push(0xEE);
        let err = parse_peers(&Frame {
            header,
            payload: trailing,
        })
        .expect_err("trailing bytes");
        assert!(matches!(
            err,
            TransportError::Wire(WireError::TrailingBytes(1))
        ));

        // A shard whose address bytes are not UTF-8.
        let mut bad_utf8 = Vec::new();
        put_u32(&mut bad_utf8, 1);
        put_u16(&mut bad_utf8, 0);
        put_u16(&mut bad_utf8, 2);
        bad_utf8.extend_from_slice(&[0xFF, 0xFE]);
        let err = parse_peers(&Frame {
            header,
            payload: bad_utf8,
        })
        .expect_err("non-UTF-8 address");
        assert!(
            matches!(&err, TransportError::Protocol(m) if m.contains("UTF-8")),
            "unexpected error: {err}"
        );

        // The right payload under the wrong frame kind.
        let err = parse_peers(&Frame {
            header: FrameHeader {
                kind: FrameKind::Data,
                ..header
            },
            payload: peers_payload(&peers),
        })
        .expect_err("wrong kind");
        assert!(matches!(err, TransportError::Protocol(_)));
    }

    /// A shard plan round-trips through the chunked `Topology` frame
    /// sequence regardless of chunk boundaries.
    #[test]
    fn plans_round_trip_through_chunked_topology_frames() {
        let n = 57;
        let plan = ShardPlan::from_edge_stream(n, 4, |emit| {
            for i in 0..n {
                emit(i, (i + 1) % n);
            }
        })
        .unwrap();
        let mut wire = Vec::new();
        write_plan(&mut wire, &plan, 2).unwrap();
        let got = read_plan(&mut wire.as_slice(), 2).expect("plan round trip");
        assert_eq!(got, plan);

        // A worker expecting a different shard index rejects the frames.
        read_plan(&mut wire.as_slice(), 3).expect_err("wrong destination shard");
    }

    /// A duplicated round-0 frame drains cleanly at round 0 — and the stale
    /// copy left on the wire surfaces as a checked error at the round-1
    /// barrier instead of being silently delivered as round-1 traffic.
    #[cfg(unix)]
    #[test]
    fn duplicate_frame_surfaces_at_the_next_round_barrier() {
        let t = forged_pair();
        // Two identical round-0 frames: the original and its duplicate.
        forge_frame(&t, 0, &0u32.to_le_bytes());
        forge_frame(&t, 0, &0u32.to_le_bytes());
        Transport::<u64>::drain(&t, 1, 0, &mut |_, _, _| {}).expect("round 0 drains the original");
        let err = Transport::<u64>::drain(&t, 1, 1, &mut |_, _, _| {
            panic!("the stale duplicate must not be delivered")
        })
        .expect_err("duplicate frame must be rejected at the next barrier");
        match err {
            TransportError::Wire(crate::wire::WireError::RoundMismatch { expected, got }) => {
                assert_eq!((expected, got), (1, 0));
            }
            other => panic!("expected a RoundMismatch, got {other}"),
        }
    }
}
