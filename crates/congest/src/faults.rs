//! Deterministic fault injection at the cross-shard transport seam.
//!
//! Every executor in this crate is lock-step and loss-free, which only ever
//! exercises the happy path of a CONGEST algorithm.  This module turns the
//! [`Transport`] seam into an adversary:
//! [`FaultyTransport`] wraps any inner transport backend and applies
//! **seed-driven, fully reproducible** faults to the cross-shard messages
//! that pass through it —
//!
//! * **drop** — the message never arrives;
//! * **duplication** — a second, stale copy arrives one round late;
//! * **delay** — the message is carried across `1..=max_delay` round
//!   boundaries and arrives stale;
//! * **partition windows** — a shard pair exchanges nothing for a span of
//!   rounds (messages are dropped, or deferred to the window's end when
//!   retransmission is on);
//! * **retransmission** — a reliable-channel overlay that masks drop,
//!   duplication and delay (the message is delivered in its own round and
//!   the masked fault is logged as [`FaultKind::Retransmitted`]).
//!
//! Every decision is a pure function of `(plan.seed, round, shard pair,
//! staging index)`, so a failing run replays from the `(seed, fault-plan)`
//! pair alone — no event log needs to be shipped, although one is recorded
//! ([`FaultEvent`]) so that two runs can be compared byte for byte (the
//! determinism gate) and counterexamples can be reported with their exact
//! fault placement.
//!
//! Faulted runs must use [`DeliveryMode::Async`]
//! (see [`run_faulty`], which selects it automatically): stale copies
//! crossing a round boundary violate the one-message-per-edge-per-round
//! contract that [`DeliveryMode::Strict`] enforces by panicking.
//!
//! # Scope: the transport seam
//!
//! Faults apply to **cross-shard** messages only — intra-shard messages
//! never reach the transport (workers write them straight into their own
//! inbox slots).  To subject *every* edge of a graph to faults, shard the
//! topology so no edge is intra-shard (e.g. one node per shard on tiny
//! instances, or use enough shards that the cross-shard fraction is large).
//! The exhaustive explorer in [`crate::mc`] sidesteps sharding entirely and
//! faults every edge of its tiny instances directly.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::executor::{DeliveryMode, ShardedExecutor};
use crate::sharded::ShardedTopology;
use crate::simulator::{RunOutcome, Simulator, SimulatorConfig};
use crate::topology::TopologyView;
use crate::trace::{TraceEvent, TraceSink};
use crate::transport::{Transport, TransportBuilder, TransportError, TransportMessage};
use crate::NodeAlgorithm;

/// Domain-separation constant for the fault decision stream (arbitrary odd
/// 64-bit constant, fixed forever for replay stability).
const FAULT_STREAM: u64 = 0x9e6c_63d1_7ab3_5b97;

/// The 64-bit finalizer of splitmix64: a bijective avalanche mixer.  Same
/// construction as the stateless per-`(seed, node, round)` streams the
/// randomized baselines use, duplicated here because `dcme_congest` sits
/// below them in the crate graph.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The deterministic per-message decision word: a pure function of the plan
/// seed, the round, the directed shard pair and the message's staging index
/// within that pair and round.
fn decision_word(seed: u64, round: u64, pair: u64, seq: u32) -> u64 {
    mix(mix(mix(mix(seed ^ FAULT_STREAM) ^ round) ^ pair) ^ seq as u64)
}

/// A symmetric shard-pair partition over a half-open round window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionWindow {
    /// One side of the partitioned pair.
    pub a: u16,
    /// The other side.
    pub b: u16,
    /// First partitioned round (inclusive).
    pub from_round: u64,
    /// First round after the window (exclusive).
    pub until_round: u64,
}

impl PartitionWindow {
    fn covers(&self, x: u16, y: u16, round: u64) -> bool {
        let pair = (self.a.min(self.b), self.a.max(self.b));
        (x.min(y), x.max(y)) == pair && (self.from_round..self.until_round).contains(&round)
    }
}

/// A complete, self-describing fault schedule.  Together with the graph and
/// the algorithm seed, a `FaultPlan` determines a faulted run bit for bit —
/// it round-trips through a compact spec string
/// ([`FaultPlan::to_spec`] / [`FaultPlan::from_spec`]) so counterexamples
/// can be replayed from a single CLI token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed of the per-message decision stream.
    pub seed: u64,
    /// Per-mille probability that a message is dropped.
    pub drop_per_mille: u16,
    /// Per-mille probability that a message is duplicated (the copy arrives
    /// one round late).
    pub dup_per_mille: u16,
    /// Per-mille probability that a message is delayed.
    pub delay_per_mille: u16,
    /// Maximum delay in rounds (each delayed message is carried across
    /// `1..=max_delay` round boundaries); `0` is treated as `1`.
    pub max_delay: u64,
    /// Whether the reliable-channel overlay masks drop/duplication/delay
    /// (and turns partition drops into deferrals).
    pub retransmit: bool,
    /// Shard-pair partition windows.
    pub partitions: Vec<PartitionWindow>,
}

impl FaultPlan {
    /// The empty plan: no faults, [`DeliveryMode::Strict`] semantics — a
    /// run through it is bit-for-bit identical to the unwrapped transport.
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            drop_per_mille: 0,
            dup_per_mille: 0,
            delay_per_mille: 0,
            max_delay: 1,
            retransmit: false,
            partitions: Vec::new(),
        }
    }

    /// Sets the drop probability (per mille).
    pub fn with_drop(mut self, per_mille: u16) -> Self {
        self.drop_per_mille = per_mille;
        self
    }

    /// Sets the duplication probability (per mille).
    pub fn with_duplication(mut self, per_mille: u16) -> Self {
        self.dup_per_mille = per_mille;
        self
    }

    /// Sets the delay probability (per mille) and the maximum delay.
    pub fn with_delay(mut self, per_mille: u16, max_delay: u64) -> Self {
        self.delay_per_mille = per_mille;
        self.max_delay = max_delay.max(1);
        self
    }

    /// Enables the reliable-channel (retransmission) overlay.
    pub fn with_retransmission(mut self) -> Self {
        self.retransmit = true;
        self
    }

    /// Adds a symmetric partition window between shards `a` and `b` over
    /// rounds `[from_round, until_round)`.
    pub fn with_partition(mut self, a: u16, b: u16, from_round: u64, until_round: u64) -> Self {
        self.partitions.push(PartitionWindow {
            a,
            b,
            from_round,
            until_round,
        });
        self
    }

    /// Whether the plan can never perturb a run (no fault class enabled).
    pub fn is_empty(&self) -> bool {
        self.drop_per_mille == 0
            && self.dup_per_mille == 0
            && self.delay_per_mille == 0
            && self.partitions.is_empty()
    }

    /// Whether the directed pair `from → to` is partitioned in `round`.
    pub fn is_partitioned(&self, from: u16, to: u16, round: u64) -> bool {
        self.partitions.iter().any(|w| w.covers(from, to, round))
    }

    /// The first round strictly after `round` in which `from → to` is not
    /// partitioned (where a deferred message can be delivered).
    fn partition_clear_round(&self, from: u16, to: u16, round: u64) -> u64 {
        let mut r = round + 1;
        while self.is_partitioned(from, to, r) {
            r += 1;
        }
        r
    }

    /// Renders the plan as a compact, order-stable spec string, e.g.
    /// `seed=42;drop=100;dup=0;delay=50/2;retransmit=1;part=0-1@2..5`.
    pub fn to_spec(&self) -> String {
        let mut s = format!(
            "seed={};drop={};dup={};delay={}/{};retransmit={}",
            self.seed,
            self.drop_per_mille,
            self.dup_per_mille,
            self.delay_per_mille,
            self.max_delay,
            u8::from(self.retransmit),
        );
        if !self.partitions.is_empty() {
            s.push_str(";part=");
            for (i, w) in self.partitions.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!(
                    "{}-{}@{}..{}",
                    w.a, w.b, w.from_round, w.until_round
                ));
            }
        }
        s
    }

    /// Parses a spec string produced by [`FaultPlan::to_spec`] (unknown or
    /// missing keys default to "off").
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn from_spec(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::none(0);
        for field in spec.split(';').filter(|f| !f.is_empty()) {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("fault spec field without '=': {field:?}"))?;
            let bad = |e: &dyn std::fmt::Display| format!("bad fault spec field {field:?}: {e}");
            match key {
                "seed" => plan.seed = value.parse().map_err(|e| bad(&e))?,
                "drop" => plan.drop_per_mille = value.parse().map_err(|e| bad(&e))?,
                "dup" => plan.dup_per_mille = value.parse().map_err(|e| bad(&e))?,
                "delay" => {
                    let (p, d) = value
                        .split_once('/')
                        .ok_or_else(|| bad(&"expected per_mille/max_delay"))?;
                    plan.delay_per_mille = p.parse().map_err(|e| bad(&e))?;
                    plan.max_delay = d.parse::<u64>().map_err(|e| bad(&e))?.max(1);
                }
                "retransmit" => plan.retransmit = value == "1",
                "part" => {
                    for w in value.split(',').filter(|w| !w.is_empty()) {
                        let (pair, rounds) = w
                            .split_once('@')
                            .ok_or_else(|| bad(&"expected a-b@from..until"))?;
                        let (a, b) = pair
                            .split_once('-')
                            .ok_or_else(|| bad(&"expected a-b@from..until"))?;
                        let (from, until) = rounds
                            .split_once("..")
                            .ok_or_else(|| bad(&"expected a-b@from..until"))?;
                        plan.partitions.push(PartitionWindow {
                            a: a.parse().map_err(|e| bad(&e))?,
                            b: b.parse().map_err(|e| bad(&e))?,
                            from_round: from.parse().map_err(|e| bad(&e))?,
                            until_round: until.parse().map_err(|e| bad(&e))?,
                        });
                    }
                }
                other => return Err(format!("unknown fault spec key {other:?}")),
            }
        }
        Ok(plan)
    }
}

/// What happened to one cross-shard message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// The message was dropped and never arrives.
    Dropped,
    /// An extra, stale copy of the message arrives one round late (the
    /// original arrives normally).
    Duplicated,
    /// The message arrives `rounds` round boundaries late.
    Delayed {
        /// How many round boundaries the message crosses.
        rounds: u64,
    },
    /// A drop/duplication/delay decision was masked by the retransmission
    /// overlay: the message arrives normally, in its own round.
    Retransmitted,
    /// The message was dropped because its shard pair is partitioned.
    PartitionDropped,
    /// The message was deferred past a partition window (retransmission
    /// on): it arrives, stale, in `until_round`.
    PartitionDeferred {
        /// The round in which the deferred message is delivered.
        until_round: u64,
    },
}

/// One entry of the fault event log: a fully located fault decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct FaultEvent {
    /// The round in which the message was sent.
    pub round: u64,
    /// The sending shard.
    pub from: u16,
    /// The receiving shard.
    pub to: u16,
    /// The message's staging index within `(from, to, round)`.
    pub seq: u32,
    /// The destination inbox slot (identifies the receiving edge port).
    pub slot: u32,
    /// The sending node.
    pub sender: u32,
    /// What happened.
    pub kind: FaultKind,
}

impl std::fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "r{} {}→{} #{} slot {} from node {}: {:?}",
            self.round, self.from, self.to, self.seq, self.slot, self.sender, self.kind
        )
    }
}

/// Renders an event log as one line per event — the canonical form the
/// determinism gate compares byte for byte.
pub fn render_log(events: &[FaultEvent]) -> String {
    let mut s = String::new();
    for e in events {
        s.push_str(&e.to_string());
        s.push('\n');
    }
    s
}

/// A shared handle onto a [`FaultyTransport`]'s event log, cloneable before
/// the builder moves into an executor.
#[derive(Debug, Clone, Default)]
pub struct FaultLog {
    events: Arc<Mutex<Vec<FaultEvent>>>,
}

impl FaultLog {
    /// Takes the recorded events, sorted into the canonical
    /// `(round, from, to, seq)` order (worker interleaving makes the raw
    /// append order nondeterministic; the sorted log is byte-stable).
    pub fn take(&self) -> Vec<FaultEvent> {
        let mut events =
            std::mem::take(&mut *self.events.lock().unwrap_or_else(|e| e.into_inner()));
        events.sort();
        events
    }

    fn push(&self, e: FaultEvent) {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(e);
    }
}

/// An optional shared [`TraceSink`] the fault layer mirrors its event log
/// into, as [`TraceEvent::Fault`] emissions.  `None` (the default) costs one
/// branch per *logged fault*, never per message.
#[derive(Clone, Default)]
struct FaultTracer(Option<Arc<dyn TraceSink + Send + Sync>>);

impl std::fmt::Debug for FaultTracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("FaultTracer")
            .field(&self.0.as_ref().map(|_| "dyn TraceSink"))
            .finish()
    }
}

impl FaultTracer {
    fn emit(&self, e: &FaultEvent) {
        if let Some(t) = &self.0 {
            if t.enabled() {
                t.emit(&TraceEvent::Fault {
                    round: e.round,
                    from: e.from as usize,
                    to: e.to as usize,
                    kind: e.kind,
                });
            }
        }
    }
}

/// A [`TransportBuilder`] that wraps any inner backend with the
/// seed-deterministic fault layer described in the [module docs](self).
///
/// With an empty plan the layer is a pure pass-through: it forwards every
/// staged message in its exact staging order, so runs are bit-for-bit
/// identical to the unwrapped backend (outputs, rounds, messages, wire
/// bytes) — pinned by the zero-fault regression in
/// `tests/executor_equivalence.rs`.
#[derive(Debug, Clone, Default)]
pub struct FaultyTransport<B: TransportBuilder = crate::transport::InProcess> {
    plan: FaultPlan,
    inner: B,
    log: FaultLog,
    tracer: FaultTracer,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none(0)
    }
}

impl<B: TransportBuilder> FaultyTransport<B> {
    /// Wraps `inner` with the faults of `plan`.
    pub fn new(plan: FaultPlan, inner: B) -> Self {
        Self {
            plan,
            inner,
            log: FaultLog::default(),
            tracer: FaultTracer::default(),
        }
    }

    /// A handle onto the event log, to keep after the builder moves into a
    /// [`ShardedExecutor`].
    pub fn log(&self) -> FaultLog {
        self.log.clone()
    }

    /// Mirrors every logged fault decision into `tracer` as a
    /// [`TraceEvent::Fault`], in addition to the event log.
    ///
    /// The sink is shared (`Arc`) because the builder is cloned into worker
    /// threads; like every trace seam, it is strictly out-of-band — the
    /// fault decisions, the log and the run outcome are unaffected.
    pub fn with_tracer(mut self, tracer: Arc<dyn TraceSink + Send + Sync>) -> Self {
        self.tracer = FaultTracer(Some(tracer));
        self
    }
}

impl<B: TransportBuilder> TransportBuilder for FaultyTransport<B> {
    type Transport<M: TransportMessage> = FaultyLayer<B::Transport<M>, M>;

    fn build<M: TransportMessage>(
        &self,
        topology: &ShardedTopology,
    ) -> std::io::Result<Self::Transport<M>> {
        let shards = topology.num_shards();
        let cells = shards * shards;
        Ok(FaultyLayer {
            shards,
            plan: self.plan.clone(),
            log: self.log.clone(),
            tracer: self.tracer.clone(),
            pend: (0..cells).map(|_| Mutex::new(Vec::new())).collect(),
            future: (0..cells).map(|_| Mutex::new(BTreeMap::new())).collect(),
            inner: self.inner.build::<M>(topology)?,
        })
    }
}

/// One staged message per cell: `(slot, sender, payload)` triples.
type StagedCell<M> = Vec<(u32, u32, M)>;

/// Deferred deliveries of one cell, keyed by the round they land in.
type FutureCell<M> = BTreeMap<u64, StagedCell<M>>;

/// The per-run fault layer produced by [`FaultyTransport`].  Holds each
/// round's staged messages back until `flush`, where the per-message fault
/// decisions are taken; delayed/duplicated copies wait in a per-pair future
/// map keyed by their delivery round.
#[derive(Debug)]
pub struct FaultyLayer<T, M> {
    shards: usize,
    plan: FaultPlan,
    log: FaultLog,
    tracer: FaultTracer,
    /// `S × S` staging cells (`from * S + to`), written only by worker
    /// `from` between the send and flush of one round.
    pend: Vec<Mutex<StagedCell<M>>>,
    /// Scheduled stale deliveries per cell, keyed by delivery round.
    future: Vec<Mutex<FutureCell<M>>>,
    inner: T,
}

impl<T: Transport<M>, M: TransportMessage> Transport<M> for FaultyLayer<T, M> {
    fn stage(&self, from: usize, to: usize, slot: u32, sender: u32, msg: M) {
        self.pend[from * self.shards + to]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push((slot, sender, msg));
    }

    fn flush(&self, from: usize, round: u64) -> u64 {
        for to in 0..self.shards {
            if to == from {
                continue;
            }
            let cell = from * self.shards + to;
            // Stale copies scheduled for this round go to the inner
            // transport *before* this round's fresh messages, so that under
            // async delivery the fresh message wins any slot collision.
            let matured = self.future[cell]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .remove(&round);
            for (slot, sender, msg) in matured.into_iter().flatten() {
                self.inner.stage(from, to, slot, sender, msg);
            }
            let staged =
                std::mem::take(&mut *self.pend[cell].lock().unwrap_or_else(|e| e.into_inner()));
            let pair = ((from as u64) << 16) | to as u64;
            for (seq, (slot, sender, msg)) in staged.into_iter().enumerate() {
                let seq = seq as u32;
                let event = |kind| FaultEvent {
                    round,
                    from: from as u16,
                    to: to as u16,
                    seq,
                    slot,
                    sender,
                    kind,
                };
                if self.plan.is_partitioned(from as u16, to as u16, round) {
                    if self.plan.retransmit {
                        let until_round =
                            self.plan
                                .partition_clear_round(from as u16, to as u16, round);
                        self.schedule(cell, until_round, slot, sender, msg);
                        self.record(event(FaultKind::PartitionDeferred { until_round }));
                    } else {
                        self.record(event(FaultKind::PartitionDropped));
                    }
                    continue;
                }
                let word = decision_word(self.plan.seed, round, pair, seq);
                let roll = (word % 1000) as u32;
                let drop_at = self.plan.drop_per_mille as u32;
                let dup_at = drop_at + self.plan.dup_per_mille as u32;
                let delay_at = dup_at + self.plan.delay_per_mille as u32;
                if roll < delay_at && self.plan.retransmit {
                    // The overlay masks whatever fault was rolled.
                    self.inner.stage(from, to, slot, sender, msg);
                    self.record(event(FaultKind::Retransmitted));
                } else if roll < drop_at {
                    self.record(event(FaultKind::Dropped));
                } else if roll < dup_at {
                    self.schedule(cell, round + 1, slot, sender, msg.clone());
                    self.inner.stage(from, to, slot, sender, msg);
                    self.record(event(FaultKind::Duplicated));
                } else if roll < delay_at {
                    let rounds = 1 + (word >> 32) % self.plan.max_delay.max(1);
                    self.schedule(cell, round + rounds, slot, sender, msg);
                    self.record(event(FaultKind::Delayed { rounds }));
                } else {
                    self.inner.stage(from, to, slot, sender, msg);
                }
            }
        }
        self.inner.flush(from, round)
    }

    fn drain(
        &self,
        to: usize,
        round: u64,
        sink: &mut dyn FnMut(u32, u32, M),
    ) -> Result<(), TransportError> {
        self.inner.drain(to, round, sink)
    }

    fn syscall_batches(&self, from: usize) -> u64 {
        self.inner.syscall_batches(from)
    }
}

impl<T, M> FaultyLayer<T, M> {
    /// Logs one fault decision and mirrors it to the attached trace sink.
    fn record(&self, e: FaultEvent) {
        self.tracer.emit(&e);
        self.log.push(e);
    }

    fn schedule(&self, cell: usize, round: u64, slot: u32, sender: u32, msg: M) {
        self.future[cell]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entry(round)
            .or_default()
            .push((slot, sender, msg));
    }
}

/// The result of a fault-injected run: the run outcome (with the fault
/// counters of [`RunMetrics`](crate::RunMetrics) filled in), the canonical sorted event log,
/// and whether every node declared async-delivery tolerance.
#[derive(Debug)]
pub struct FaultyRun<O> {
    /// Outputs and metrics of the run.
    pub outcome: RunOutcome<O>,
    /// The sorted fault event log (see [`render_log`]).
    pub events: Vec<FaultEvent>,
    /// Whether all nodes returned `true` from
    /// [`NodeAlgorithm::tolerates_async_delivery`] — used by the fault
    /// harness to classify an invariant violation as expected (the
    /// algorithm never claimed to survive this regime) or as a bug.
    pub declared_tolerant: bool,
}

/// Runs `nodes` on `topology` under the faults of `plan`, over `inner` as
/// the underlying backend.  Selects [`DeliveryMode::Async`] exactly when
/// the plan is non-empty, records the sorted event log, and fills the
/// fault counters of [`RunMetrics`](crate::RunMetrics) from it.
pub fn run_faulty<A: NodeAlgorithm, B: TransportBuilder>(
    topology: &ShardedTopology,
    nodes: Vec<A>,
    plan: &FaultPlan,
    inner: B,
    max_rounds: u64,
) -> FaultyRun<A::Output> {
    let declared_tolerant = nodes.iter().all(|n| n.tolerates_async_delivery());
    let delivery = if plan.is_empty() {
        DeliveryMode::Strict
    } else {
        DeliveryMode::Async
    };
    let builder = FaultyTransport::new(plan.clone(), inner);
    let log = builder.log();
    let config = SimulatorConfig {
        max_rounds,
        ..SimulatorConfig::default()
    };
    let mut outcome = Simulator::with_config(topology, config).run_with_executor(
        nodes,
        &ShardedExecutor::with_transport(builder).with_delivery(delivery),
    );
    let events = log.take();
    for e in &events {
        match e.kind {
            FaultKind::Dropped | FaultKind::PartitionDropped => outcome.metrics.faults_dropped += 1,
            FaultKind::Duplicated => outcome.metrics.faults_duplicated += 1,
            FaultKind::Delayed { .. } | FaultKind::PartitionDeferred { .. } => {
                outcome.metrics.faults_delayed += 1
            }
            FaultKind::Retransmitted => outcome.metrics.faults_retransmitted += 1,
        }
    }
    FaultyRun {
        outcome,
        events,
        declared_tolerant,
    }
}

/// A violated coloring invariant, located for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvariantViolation {
    /// Two adjacent nodes ended with the same color.
    ImproperEdge {
        /// One endpoint.
        u: usize,
        /// The other endpoint.
        v: usize,
        /// The shared color.
        color: u64,
    },
    /// A node produced no color (only reported when completeness is
    /// required, i.e. the run was expected to terminate).
    Unfinished {
        /// The uncolored node.
        node: usize,
    },
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvariantViolation::ImproperEdge { u, v, color } => {
                write!(f, "adjacent nodes {u} and {v} share color {color}")
            }
            InvariantViolation::Unfinished { node } => {
                write!(f, "node {node} finished without a color")
            }
        }
    }
}

/// Checks a coloring for properness (and, if `require_all`, completeness):
/// the invariant every fault-injection harness in this repo asserts.
pub fn check_coloring<T: TopologyView>(
    topology: &T,
    colors: &[Option<u64>],
    require_all: bool,
) -> Option<InvariantViolation> {
    for v in 0..topology.num_nodes() {
        match colors[v] {
            None if require_all => return Some(InvariantViolation::Unfinished { node: v }),
            None => {}
            Some(c) => {
                for p in 0..topology.degree(v) {
                    let u = topology.neighbor_at(v, p);
                    if u > v && colors[u] == Some(c) {
                        return Some(InvariantViolation::ImproperEdge {
                            u: v,
                            v: u,
                            color: c,
                        });
                    }
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{Inbox, NodeContext, Outbox};
    use crate::topology::Topology;
    use crate::transport::InProcess;

    /// Gossip with per-node ttl, as in the transport tests.
    #[derive(Clone)]
    struct Gossip {
        id: u64,
        ttl: u64,
        digest: u64,
        rounds_done: u64,
    }

    impl NodeAlgorithm for Gossip {
        type Message = u64;
        type Output = u64;

        fn init(&mut self, ctx: &NodeContext) {
            self.id = ctx.node as u64;
        }

        fn send(&mut self, ctx: &NodeContext) -> Outbox<u64> {
            Outbox::Broadcast(self.id + ctx.round)
        }

        fn receive(&mut self, _ctx: &NodeContext, inbox: &Inbox<'_, u64>) {
            for (p, m) in inbox.iter() {
                self.digest = self
                    .digest
                    .wrapping_mul(31)
                    .wrapping_add(*m)
                    .wrapping_add(p as u64);
            }
            self.rounds_done += 1;
        }

        fn is_halted(&self) -> bool {
            self.rounds_done >= self.ttl
        }

        fn output(&self) -> u64 {
            self.digest
        }

        fn tolerates_async_delivery(&self) -> bool {
            true
        }
    }

    fn ring(n: usize) -> Topology {
        let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        Topology::from_edges(n, &edges).unwrap()
    }

    fn mk(n: usize) -> Vec<Gossip> {
        (0..n)
            .map(|_| Gossip {
                id: 0,
                ttl: 6,
                digest: 0,
                rounds_done: 0,
            })
            .collect()
    }

    #[test]
    fn spec_round_trips() {
        let plan = FaultPlan::none(42)
            .with_drop(100)
            .with_delay(50, 3)
            .with_retransmission()
            .with_partition(0, 1, 2, 5)
            .with_partition(1, 2, 0, 4);
        let spec = plan.to_spec();
        assert_eq!(FaultPlan::from_spec(&spec).unwrap(), plan);
        assert_eq!(
            spec,
            "seed=42;drop=100;dup=0;delay=50/3;retransmit=1;part=0-1@2..5,1-2@0..4"
        );
        let empty = FaultPlan::none(7);
        assert_eq!(FaultPlan::from_spec(&empty.to_spec()).unwrap(), empty);
        assert!(FaultPlan::from_spec("drop=x").is_err());
        assert!(FaultPlan::from_spec("mystery=1").is_err());
        assert!(FaultPlan::from_spec("part=0-1@2").is_err());
    }

    #[test]
    fn empty_plan_is_a_pass_through() {
        let dense = ring(12);
        let g = ShardedTopology::from_topology(&dense, 3).unwrap();
        let plain = Simulator::new(&g).run_with_executor(mk(12), &ShardedExecutor::new());
        let faulty = run_faulty(&g, mk(12), &FaultPlan::none(9), InProcess, 1_000_000);
        assert!(faulty.events.is_empty());
        assert_eq!(plain.outputs, faulty.outcome.outputs);
        assert_eq!(plain.metrics.messages, faulty.outcome.metrics.messages);
        assert_eq!(plain.metrics.rounds, faulty.outcome.metrics.rounds);
        assert_eq!(faulty.outcome.metrics.faults_dropped, 0);
        assert_eq!(faulty.outcome.metrics.stale_overwrites, 0);
    }

    #[test]
    fn identical_plans_yield_byte_identical_logs_and_metrics() {
        let dense = ring(14);
        let g = ShardedTopology::from_topology(&dense, 4).unwrap();
        let plan = FaultPlan::none(1234)
            .with_drop(150)
            .with_duplication(100)
            .with_delay(100, 2)
            .with_partition(0, 2, 1, 3);
        // Wall-clock timings are the one exemption from byte-identity, as
        // everywhere else in the executor-equivalence contract.
        let run = || {
            let mut r = run_faulty(&g, mk(14), &plan, InProcess, 1_000_000);
            r.outcome.metrics.phase_nanos = Default::default();
            r.outcome.metrics.shard_phase_nanos.clear();
            r.outcome.metrics.transport_flush_nanos = 0;
            r
        };
        let (a, b) = (run(), run());
        assert!(!a.events.is_empty(), "plan must actually fire");
        assert_eq!(render_log(&a.events), render_log(&b.events));
        assert_eq!(a.outcome.outputs, b.outcome.outputs);
        assert_eq!(
            a.outcome.metrics.to_json("determinism"),
            b.outcome.metrics.to_json("determinism")
        );
    }

    #[test]
    fn retransmission_masks_drop_and_delay() {
        let dense = ring(14);
        let g = ShardedTopology::from_topology(&dense, 4).unwrap();
        let plan = FaultPlan::none(77).with_drop(200).with_delay(200, 3);
        let masked = run_faulty(
            &g,
            mk(14),
            &plan.clone().with_retransmission(),
            InProcess,
            1_000_000,
        );
        let clean = run_faulty(&g, mk(14), &FaultPlan::none(77), InProcess, 1_000_000);
        assert!(masked.outcome.metrics.faults_retransmitted > 0);
        assert_eq!(masked.outcome.metrics.faults_dropped, 0);
        assert_eq!(masked.outcome.metrics.faults_delayed, 0);
        assert_eq!(
            masked.outcome.outputs, clean.outcome.outputs,
            "a fully retransmitted run behaves like a fault-free one"
        );
    }

    #[test]
    fn partitions_drop_or_defer_by_retransmission() {
        let dense = ring(8);
        let g = ShardedTopology::from_topology(&dense, 2).unwrap();
        let plan = FaultPlan::none(5).with_partition(0, 1, 0, 2);
        let dropped = run_faulty(&g, mk(8), &plan, InProcess, 1_000_000);
        assert!(dropped.outcome.metrics.faults_dropped > 0);
        assert_eq!(dropped.outcome.metrics.faults_delayed, 0);
        let deferred = run_faulty(
            &g,
            mk(8),
            &plan.clone().with_retransmission(),
            InProcess,
            1_000_000,
        );
        assert!(deferred.outcome.metrics.faults_delayed > 0);
        assert_eq!(deferred.outcome.metrics.faults_dropped, 0);
        assert!(deferred
            .events
            .iter()
            .all(|e| matches!(e.kind, FaultKind::PartitionDeferred { until_round: 2 })));
    }

    #[test]
    fn duplicates_arrive_stale_and_are_counted_as_overwrites() {
        let dense = ring(10);
        let g = ShardedTopology::from_topology(&dense, 5).unwrap();
        let plan = FaultPlan::none(31).with_duplication(1000);
        let run = run_faulty(&g, mk(10), &plan, InProcess, 1_000_000);
        assert!(run.outcome.metrics.faults_duplicated > 0);
        assert!(
            run.outcome.metrics.stale_overwrites > 0,
            "every duplicated copy collides with the next round's fresh message"
        );
        assert!(run.declared_tolerant);
    }

    #[test]
    fn coloring_checker_locates_violations() {
        let g = ring(4);
        assert_eq!(
            check_coloring(&g, &[Some(0), Some(1), Some(0), Some(1)], true),
            None
        );
        assert_eq!(
            check_coloring(&g, &[Some(0), Some(0), Some(1), Some(1)], false),
            Some(InvariantViolation::ImproperEdge {
                u: 0,
                v: 1,
                color: 0
            })
        );
        assert_eq!(
            check_coloring(&g, &[Some(0), None, Some(0), Some(1)], true),
            Some(InvariantViolation::Unfinished { node: 1 })
        );
        assert_eq!(
            check_coloring(&g, &[Some(0), None, Some(0), Some(1)], false),
            None
        );
    }
}
