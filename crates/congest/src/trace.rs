//! Per-round tracing: the out-of-band observability seam of the engine.
//!
//! Every equivalence guarantee in this crate is stated over *outputs and
//! logical counters*; a run's internal shape — how fast the active set
//! drains, which shard's receive phase is the straggler, when the transport
//! flushed — was invisible until now.  This module adds a [`TraceSink`]
//! seam that the executors, the transport layer and the fault injector
//! report into, **strictly out-of-band**: sinks observe the run, they can
//! never influence it, so attaching one leaves every output and metric
//! bit-for-bit unchanged (asserted in `tests/executor_equivalence.rs`).
//!
//! # Cost model
//!
//! The default sink is [`NoTrace`]: [`TraceSink::enabled`] returns `false`
//! and every executor hoists that check out of its round loop, so a
//! disabled run performs **no event construction, no allocation and no
//! synchronization** on behalf of tracing — the per-*message* hot path is
//! never instrumented at all (events are per round × shard, a vanishing
//! fraction of the work).  Enabled sinks pay one mutex lock per event.
//!
//! # Event taxonomy
//!
//! [`TraceEvent`] covers five families, all `Copy` and stack-only:
//!
//! * **run lifecycle** — `RunStart` / `RunEnd`;
//! * **round lifecycle** — `RoundStart` / `RoundEnd` (with the round's
//!   wall-clock nanos and active-set size);
//! * **phases** — `PhaseStart` / `PhaseEnd` per engine phase per shard,
//!   plus the per-shard transport points `ShardFlush` / `ShardDrain` and
//!   the per-shard per-round traffic summary `ShardRound`;
//! * **faults** — one `Fault` per injected event of a
//!   [`FaultyTransport`](crate::faults::FaultyTransport), mirroring its
//!   replayable log;
//! * **workers** — `WorkerStart` / `WorkerEnd` lifecycle of the sharded
//!   executor's per-shard workers.
//!
//! # Shipped sinks
//!
//! * [`RoundSeries`] — accumulates one [`RoundRow`] per round (wall-clock,
//!   active set, message/bit/cross-shard traffic, wire bytes) and
//!   serializes them as JSONL rows beside the existing
//!   [`RunMetrics`](crate::RunMetrics) rows, plus p50/p95/max round-time
//!   summaries.
//! * [`ChromeTraceSink`] — records Chrome trace-event JSON (one process
//!   track per shard, phase slices, counter tracks) loadable directly in
//!   Perfetto or `chrome://tracing`; see the `exp_trace` binary.
//! * [`RecordingSink`] — keeps the raw events for tests.
//! * [`Fanout`] — feeds several sinks at once.

use std::sync::Mutex;
use std::time::Instant;

use crate::faults::FaultKind;
use crate::json::JsonValue;
use crate::metrics::{json_escape_into, JsonLinesWriter};

/// An engine phase, as seen by phase-level trace events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePhase {
    /// Asking active nodes for their outboxes (plus intra-shard routing in
    /// the sharded executor).
    Send,
    /// Clearing last round's slots and writing messages into the arena.
    Deliver,
    /// Handing inboxes to active nodes and compacting the active set.
    Receive,
}

impl TracePhase {
    /// Stable lower-case name, used as the slice name in trace files.
    pub fn name(self) -> &'static str {
        match self {
            TracePhase::Send => "send",
            TracePhase::Deliver => "deliver",
            TracePhase::Receive => "receive",
        }
    }
}

/// One out-of-band observation of a run.  Stack-only (`Copy`), so emitting
/// an event never allocates.
///
/// `shard` is the reporting shard for sharded runs; the sequential and
/// pooled executors report as shard 0.  All durations are nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A run began: node count and shard count (1 for unsharded executors).
    RunStart {
        /// Number of nodes in the topology.
        nodes: usize,
        /// Number of shards (1 for the sequential / pooled executors).
        shards: usize,
    },
    /// A run finished after `rounds` synchronous rounds.
    RunEnd {
        /// Rounds executed.
        rounds: u64,
    },
    /// A round was admitted with `active` nodes still running.
    RoundStart {
        /// The round number (0-based).
        round: u64,
        /// Active nodes at the start of the round.
        active: usize,
    },
    /// A round completed; `active` is the post-compaction count.
    RoundEnd {
        /// The round number (0-based).
        round: u64,
        /// Active nodes remaining after the round.
        active: usize,
        /// Wall-clock nanoseconds the round took.
        nanos: u64,
    },
    /// A phase began on a shard.
    PhaseStart {
        /// The round number.
        round: u64,
        /// The reporting shard.
        shard: usize,
        /// Which phase.
        phase: TracePhase,
    },
    /// A phase completed on a shard, taking `nanos` wall-clock nanoseconds.
    PhaseEnd {
        /// The round number.
        round: u64,
        /// The reporting shard.
        shard: usize,
        /// Which phase.
        phase: TracePhase,
        /// Wall-clock nanoseconds spent in the phase.
        nanos: u64,
    },
    /// A shard flushed its staged cross-shard batches at the send barrier.
    ShardFlush {
        /// The round number.
        round: u64,
        /// The flushing shard.
        shard: usize,
        /// Wire bytes the flush produced (0 for in-memory backends).
        wire_bytes: u64,
        /// Wall-clock nanoseconds the flush took.
        nanos: u64,
    },
    /// A shard drained its incoming cross-shard channels.
    ShardDrain {
        /// The round number.
        round: u64,
        /// The draining shard.
        shard: usize,
        /// Wall-clock nanoseconds the drain took.
        nanos: u64,
    },
    /// Per-shard traffic summary of one round (charged at the sender).
    ShardRound {
        /// The round number.
        round: u64,
        /// The sending shard.
        shard: usize,
        /// Messages this shard sent this round.
        messages: u64,
        /// Bits this shard sent this round.
        bits: u64,
        /// How many of those messages crossed a shard boundary.
        cross: u64,
    },
    /// A fault was injected on the `from → to` shard channel; mirrors the
    /// [`FaultLog`](crate::faults::FaultyTransport::log) entry.
    Fault {
        /// The round the fault decision was made in.
        round: u64,
        /// Sending shard of the affected message.
        from: usize,
        /// Receiving shard of the affected message.
        to: usize,
        /// What the fault did.
        kind: FaultKind,
    },
    /// A sharded worker thread started serving its shard.
    WorkerStart {
        /// The shard the worker owns.
        shard: usize,
    },
    /// A sharded worker thread finished (all rounds done or poisoned).
    WorkerEnd {
        /// The shard the worker owned.
        shard: usize,
    },
}

/// A sink for out-of-band trace events.
///
/// Implementations must be `Sync` — the sharded executor's workers emit
/// concurrently — and must treat events as *observations only*: a sink can
/// never feed information back into the run, which is what keeps traced and
/// untraced runs bit-for-bit identical.
///
/// Executors hoist [`TraceSink::enabled`] out of their loops, so a sink
/// that reports `false` (the [`NoTrace`] default) costs nothing per round.
pub trait TraceSink: Sync {
    /// Whether this sink wants events at all.  Checked once per run (and
    /// hoisted out of hot loops); `false` skips event construction
    /// entirely.
    fn enabled(&self) -> bool {
        true
    }

    /// Records one event.  May be called concurrently from worker threads;
    /// events from one shard arrive in order, events of different shards
    /// interleave nondeterministically (they are concurrent in reality).
    fn emit(&self, event: &TraceEvent);
}

/// The default sink: tracing disabled, every emission skipped.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoTrace;

impl TraceSink for NoTrace {
    fn enabled(&self) -> bool {
        false
    }

    fn emit(&self, _event: &TraceEvent) {}
}

/// Feeds every event to several sinks (skipping disabled ones).
pub struct Fanout<'a> {
    sinks: &'a [&'a dyn TraceSink],
}

impl std::fmt::Debug for Fanout<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fanout")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl<'a> Fanout<'a> {
    /// A fanout over `sinks`; disabled members are skipped per event.
    pub fn new(sinks: &'a [&'a dyn TraceSink]) -> Self {
        Self { sinks }
    }
}

impl TraceSink for Fanout<'_> {
    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }

    fn emit(&self, event: &TraceEvent) {
        for sink in self.sinks {
            if sink.enabled() {
                sink.emit(event);
            }
        }
    }
}

/// A sink that simply keeps every event — the test instrument.
#[derive(Debug, Default)]
pub struct RecordingSink {
    events: Mutex<Vec<TraceEvent>>,
}

impl RecordingSink {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes the recorded events, leaving the recorder empty.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for RecordingSink {
    fn emit(&self, event: &TraceEvent) {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(*event);
    }
}

/// One row of the per-round time series accumulated by [`RoundSeries`].
///
/// Traffic counters are summed over all shards that reported the round;
/// `wall_nanos` is the engine's round wall-clock (coordinator-measured for
/// threaded executors).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundRow {
    /// The round number (0-based).
    pub round: u64,
    /// Active nodes at the start of the round.
    pub active: u64,
    /// Wall-clock nanoseconds the round took.
    pub wall_nanos: u64,
    /// Messages sent in the round (all shards).
    pub messages: u64,
    /// Bits sent in the round (all shards).
    pub bits: u64,
    /// Messages that crossed a shard boundary.
    pub cross_messages: u64,
    /// Wire bytes flushed by the transport (0 for in-memory backends).
    pub wire_bytes: u64,
}

impl RoundRow {
    /// Renders the row as one JSON object, tagged `"kind":"round_series"`
    /// so consumers can tell it apart from `RunMetrics` rows in a shared
    /// JSONL stream.  Fields are only ever added, matching the JSONL
    /// schema contract in `dcme_bench`.
    pub fn to_json(&self, label: &str) -> String {
        let mut out = String::with_capacity(160);
        out.push_str("{\"kind\":\"round_series\",\"label\":\"");
        json_escape_into(&mut out, label);
        out.push('"');
        out.push_str(&format!(",\"round\":{}", self.round));
        out.push_str(&format!(",\"active\":{}", self.active));
        out.push_str(&format!(",\"wall_nanos\":{}", self.wall_nanos));
        out.push_str(&format!(",\"messages\":{}", self.messages));
        out.push_str(&format!(",\"bits\":{}", self.bits));
        out.push_str(&format!(",\"cross_messages\":{}", self.cross_messages));
        out.push_str(&format!(",\"wire_bytes\":{}", self.wire_bytes));
        out.push('}');
        out
    }

    /// Parses a row emitted by [`RoundRow::to_json`] back into the label
    /// and the row.  Unknown keys are ignored and missing counters default
    /// to 0 (the add-only schema contract); a wrong or missing `kind` tag
    /// is an error.
    pub fn from_json(line: &str) -> Result<(String, RoundRow), String> {
        let v = JsonValue::parse(line).map_err(|e| e.to_string())?;
        if v.get("kind").and_then(JsonValue::as_str) != Some("round_series") {
            return Err("not a round_series row (missing kind tag)".to_string());
        }
        let label = v
            .get("label")
            .and_then(JsonValue::as_str)
            .unwrap_or_default()
            .to_string();
        let u = |key: &str| v.get(key).and_then(JsonValue::as_u64).unwrap_or(0);
        Ok((
            label,
            RoundRow {
                round: u("round"),
                active: u("active"),
                wall_nanos: u("wall_nanos"),
                messages: u("messages"),
                bits: u("bits"),
                cross_messages: u("cross_messages"),
                wire_bytes: u("wire_bytes"),
            },
        ))
    }
}

/// Round-time distribution summary of a [`RoundSeries`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SeriesSummary {
    /// Number of rounds observed.
    pub rounds: u64,
    /// Median round wall-clock, nanoseconds.
    pub p50_nanos: u64,
    /// 95th-percentile round wall-clock, nanoseconds.
    pub p95_nanos: u64,
    /// Slowest round wall-clock, nanoseconds.
    pub max_nanos: u64,
}

/// A sink accumulating the per-round time series: one [`RoundRow`] per
/// round, merged across shards, serializable as JSONL beside
/// [`RunMetrics`](crate::RunMetrics) rows.
#[derive(Debug)]
pub struct RoundSeries {
    rows: Mutex<Vec<RoundRow>>,
}

impl Default for RoundSeries {
    fn default() -> Self {
        Self::new()
    }
}

impl RoundSeries {
    /// An empty series.
    pub fn new() -> Self {
        Self {
            rows: Mutex::new(Vec::new()),
        }
    }

    /// A copy of the accumulated rows, in round order.
    pub fn rows(&self) -> Vec<RoundRow> {
        self.rows.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// p50/p95/max of the round wall-clock times observed so far.
    pub fn summary(&self) -> SeriesSummary {
        let rows = self.rows.lock().unwrap_or_else(|e| e.into_inner());
        let mut nanos: Vec<u64> = rows.iter().map(|r| r.wall_nanos).collect();
        if nanos.is_empty() {
            return SeriesSummary::default();
        }
        nanos.sort_unstable();
        let pick = |p: f64| nanos[((nanos.len() - 1) as f64 * p).round() as usize];
        SeriesSummary {
            rounds: nanos.len() as u64,
            p50_nanos: pick(0.50),
            p95_nanos: pick(0.95),
            max_nanos: *nanos.last().expect("nonempty"),
        }
    }

    /// Appends every row to a JSONL sink, tagged with `label`.
    pub fn write_jsonl<W: std::io::Write>(
        &self,
        label: &str,
        out: &mut JsonLinesWriter<W>,
    ) -> std::io::Result<()> {
        for row in self.rows() {
            out.append_raw(&row.to_json(label))?;
        }
        Ok(())
    }

    fn with_row(&self, round: u64, f: impl FnOnce(&mut RoundRow)) {
        let mut rows = self.rows.lock().unwrap_or_else(|e| e.into_inner());
        let idx = round as usize;
        while rows.len() <= idx {
            let round = rows.len() as u64;
            rows.push(RoundRow {
                round,
                ..RoundRow::default()
            });
        }
        f(&mut rows[idx]);
    }
}

impl TraceSink for RoundSeries {
    fn emit(&self, event: &TraceEvent) {
        match *event {
            TraceEvent::RoundStart { round, active } => {
                self.with_row(round, |r| r.active = active as u64);
            }
            TraceEvent::RoundEnd { round, nanos, .. } => {
                self.with_row(round, |r| r.wall_nanos = nanos);
            }
            TraceEvent::ShardRound {
                round,
                messages,
                bits,
                cross,
                ..
            } => {
                self.with_row(round, |r| {
                    r.messages += messages;
                    r.bits += bits;
                    r.cross_messages += cross;
                });
            }
            TraceEvent::ShardFlush {
                round, wire_bytes, ..
            } => {
                self.with_row(round, |r| r.wire_bytes += wire_bytes);
            }
            _ => {}
        }
    }
}

/// An event stamped with its emission time (µs since the sink's epoch).
#[derive(Debug, Clone, Copy)]
struct Stamped {
    at_us: f64,
    event: TraceEvent,
}

/// A sink recording Chrome trace-event JSON — the format Perfetto and
/// `chrome://tracing` load natively.
///
/// Track layout: pid 0 is the engine (round slices + an `active_nodes`
/// counter track); pid `s + 1` is shard `s` (phase slices, flush/drain
/// slices, per-shard traffic counters, fault instants).  Durations come
/// from the engine's own phase timers; begin timestamps are reconstructed
/// as `emission time − duration`, which is exact because every duration is
/// measured immediately before its event is emitted.
///
/// Write the collected trace with [`ChromeTraceSink::write_json`]; the
/// `exp_trace` binary in `dcme_bench` is the command-line front end.
#[derive(Debug)]
pub struct ChromeTraceSink {
    epoch: Instant,
    inner: Mutex<ChromeInner>,
}

#[derive(Debug)]
struct ChromeInner {
    events: Vec<Stamped>,
    shards: usize,
}

impl Default for ChromeTraceSink {
    fn default() -> Self {
        Self::new()
    }
}

impl ChromeTraceSink {
    /// An empty trace; the epoch (trace time 0) is now.
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
            inner: Mutex::new(ChromeInner {
                events: Vec::new(),
                shards: 0,
            }),
        }
    }

    /// Number of events collected so far.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .events
            .len()
    }

    /// Whether no events have been collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serializes the collected events as a Chrome trace-event JSON object
    /// (`{"displayTimeUnit":"ms","traceEvents":[...]}`), loadable in
    /// Perfetto / `chrome://tracing`.
    pub fn write_json<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        w.write_all(b"{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")?;
        let mut first = true;
        let sep = |w: &mut W, first: &mut bool| -> std::io::Result<()> {
            if *first {
                *first = false;
                Ok(())
            } else {
                w.write_all(b",")
            }
        };
        // Process-name metadata: one named track per pid.
        sep(w, &mut first)?;
        w.write_all(
            b"{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":0,\"tid\":0,\"args\":{\"name\":\"engine\"}}",
        )?;
        for s in 0..inner.shards.max(1) {
            sep(w, &mut first)?;
            write!(
                w,
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":{},\"tid\":0,\"args\":{{\"name\":\"shard {s}\"}}}}",
                s + 1
            )?;
        }
        for st in &inner.events {
            let at = st.at_us;
            match st.event {
                TraceEvent::RunStart { nodes, shards } => {
                    sep(w, &mut first)?;
                    write!(
                        w,
                        "{{\"name\":\"run_start\",\"ph\":\"i\",\"ts\":{at:.3},\"pid\":0,\"tid\":0,\"s\":\"g\",\"args\":{{\"nodes\":{nodes},\"shards\":{shards}}}}}"
                    )?;
                }
                TraceEvent::RunEnd { rounds } => {
                    sep(w, &mut first)?;
                    write!(
                        w,
                        "{{\"name\":\"run_end\",\"ph\":\"i\",\"ts\":{at:.3},\"pid\":0,\"tid\":0,\"s\":\"g\",\"args\":{{\"rounds\":{rounds}}}}}"
                    )?;
                }
                TraceEvent::RoundStart { round, active } => {
                    sep(w, &mut first)?;
                    write!(
                        w,
                        "{{\"name\":\"active_nodes\",\"ph\":\"C\",\"ts\":{at:.3},\"pid\":0,\"tid\":0,\"args\":{{\"active\":{active}}}}}",
                    )?;
                    let _ = round;
                }
                TraceEvent::RoundEnd {
                    round,
                    active,
                    nanos,
                } => {
                    let dur = nanos as f64 / 1000.0;
                    sep(w, &mut first)?;
                    write!(
                        w,
                        "{{\"name\":\"round\",\"cat\":\"round\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{dur:.3},\"pid\":0,\"tid\":0,\"args\":{{\"round\":{round},\"active_after\":{active}}}}}",
                        at - dur
                    )?;
                }
                TraceEvent::PhaseStart { .. } => {}
                TraceEvent::PhaseEnd {
                    round,
                    shard,
                    phase,
                    nanos,
                } => {
                    let dur = nanos as f64 / 1000.0;
                    sep(w, &mut first)?;
                    write!(
                        w,
                        "{{\"name\":\"{}\",\"cat\":\"phase\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{dur:.3},\"pid\":{},\"tid\":0,\"args\":{{\"round\":{round}}}}}",
                        phase.name(),
                        at - dur,
                        shard + 1
                    )?;
                }
                TraceEvent::ShardFlush {
                    round,
                    shard,
                    wire_bytes,
                    nanos,
                } => {
                    let dur = nanos as f64 / 1000.0;
                    sep(w, &mut first)?;
                    write!(
                        w,
                        "{{\"name\":\"flush\",\"cat\":\"transport\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{dur:.3},\"pid\":{},\"tid\":0,\"args\":{{\"round\":{round},\"wire_bytes\":{wire_bytes}}}}}",
                        at - dur,
                        shard + 1
                    )?;
                }
                TraceEvent::ShardDrain {
                    round,
                    shard,
                    nanos,
                } => {
                    let dur = nanos as f64 / 1000.0;
                    sep(w, &mut first)?;
                    write!(
                        w,
                        "{{\"name\":\"drain\",\"cat\":\"transport\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{dur:.3},\"pid\":{},\"tid\":0,\"args\":{{\"round\":{round}}}}}",
                        at - dur,
                        shard + 1
                    )?;
                }
                TraceEvent::ShardRound {
                    round,
                    shard,
                    messages,
                    bits,
                    cross,
                } => {
                    sep(w, &mut first)?;
                    write!(
                        w,
                        "{{\"name\":\"traffic\",\"ph\":\"C\",\"ts\":{at:.3},\"pid\":{},\"tid\":0,\"args\":{{\"messages\":{messages},\"bits\":{bits},\"cross\":{cross}}}}}",
                        shard + 1
                    )?;
                    let _ = round;
                }
                TraceEvent::Fault {
                    round,
                    from,
                    to,
                    kind,
                } => {
                    sep(w, &mut first)?;
                    write!(
                        w,
                        "{{\"name\":\"{}\",\"cat\":\"fault\",\"ph\":\"i\",\"ts\":{at:.3},\"pid\":{},\"tid\":0,\"s\":\"p\",\"args\":{{\"round\":{round},\"to\":{to}}}}}",
                        fault_name(kind),
                        from + 1
                    )?;
                }
                TraceEvent::WorkerStart { shard } => {
                    sep(w, &mut first)?;
                    write!(
                        w,
                        "{{\"name\":\"worker_start\",\"ph\":\"i\",\"ts\":{at:.3},\"pid\":{},\"tid\":0,\"s\":\"p\"}}",
                        shard + 1
                    )?;
                }
                TraceEvent::WorkerEnd { shard } => {
                    sep(w, &mut first)?;
                    write!(
                        w,
                        "{{\"name\":\"worker_end\",\"ph\":\"i\",\"ts\":{at:.3},\"pid\":{},\"tid\":0,\"s\":\"p\"}}",
                        shard + 1
                    )?;
                }
            }
        }
        w.write_all(b"]}")
    }
}

/// The stable trace name of a fault kind.
fn fault_name(kind: FaultKind) -> &'static str {
    match kind {
        FaultKind::Dropped => "fault_dropped",
        FaultKind::Duplicated => "fault_duplicated",
        FaultKind::Delayed { .. } => "fault_delayed",
        FaultKind::Retransmitted => "fault_retransmitted",
        FaultKind::PartitionDropped => "fault_partition_dropped",
        FaultKind::PartitionDeferred { .. } => "fault_partition_deferred",
    }
}

impl TraceSink for ChromeTraceSink {
    fn emit(&self, event: &TraceEvent) {
        let at_us = self.epoch.elapsed().as_nanos() as f64 / 1000.0;
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let TraceEvent::RunStart { shards, .. } = *event {
            inner.shards = inner.shards.max(shards);
        }
        inner.events.push(Stamped {
            at_us,
            event: *event,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_trace_is_disabled() {
        assert!(!NoTrace.enabled());
        NoTrace.emit(&TraceEvent::RunEnd { rounds: 1 }); // must be a no-op
    }

    #[test]
    fn recording_sink_keeps_events_in_order() {
        let rec = RecordingSink::new();
        assert!(rec.is_empty());
        rec.emit(&TraceEvent::RunStart {
            nodes: 3,
            shards: 1,
        });
        rec.emit(&TraceEvent::RunEnd { rounds: 2 });
        assert_eq!(rec.len(), 2);
        let events = rec.take();
        assert_eq!(
            events,
            vec![
                TraceEvent::RunStart {
                    nodes: 3,
                    shards: 1
                },
                TraceEvent::RunEnd { rounds: 2 },
            ]
        );
        assert!(rec.is_empty());
    }

    #[test]
    fn fanout_feeds_enabled_sinks_and_skips_disabled_ones() {
        let a = RecordingSink::new();
        let b = RecordingSink::new();
        let off = NoTrace;
        let sinks: [&dyn TraceSink; 3] = [&a, &off, &b];
        let fan = Fanout::new(&sinks);
        assert!(fan.enabled());
        fan.emit(&TraceEvent::RunEnd { rounds: 7 });
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);

        let only_off: [&dyn TraceSink; 1] = [&off];
        assert!(!Fanout::new(&only_off).enabled());
    }

    #[test]
    fn round_series_accumulates_and_summarizes() {
        let series = RoundSeries::new();
        // Round 1 reported before round 0 ever gets a start — rows grow.
        series.emit(&TraceEvent::RoundStart {
            round: 0,
            active: 5,
        });
        series.emit(&TraceEvent::ShardRound {
            round: 0,
            shard: 0,
            messages: 4,
            bits: 40,
            cross: 1,
        });
        series.emit(&TraceEvent::ShardRound {
            round: 0,
            shard: 1,
            messages: 6,
            bits: 60,
            cross: 2,
        });
        series.emit(&TraceEvent::ShardFlush {
            round: 0,
            shard: 1,
            wire_bytes: 99,
            nanos: 5,
        });
        series.emit(&TraceEvent::RoundEnd {
            round: 0,
            active: 3,
            nanos: 1000,
        });
        series.emit(&TraceEvent::RoundStart {
            round: 1,
            active: 3,
        });
        series.emit(&TraceEvent::RoundEnd {
            round: 1,
            active: 0,
            nanos: 3000,
        });
        let rows = series.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[0],
            RoundRow {
                round: 0,
                active: 5,
                wall_nanos: 1000,
                messages: 10,
                bits: 100,
                cross_messages: 3,
                wire_bytes: 99,
            }
        );
        assert_eq!(rows[1].active, 3);
        let s = series.summary();
        assert_eq!(s.rounds, 2);
        assert_eq!(s.max_nanos, 3000);
        assert!(s.p50_nanos == 1000 || s.p50_nanos == 3000);
        assert_eq!(s.p95_nanos, 3000);
    }

    #[test]
    fn round_row_json_round_trips() {
        let row = RoundRow {
            round: 3,
            active: 17,
            wall_nanos: 12345,
            messages: 99,
            bits: 1980,
            cross_messages: 7,
            wire_bytes: 512,
        };
        let line = row.to_json("trace \"x\"");
        let (label, parsed) = RoundRow::from_json(&line).unwrap();
        assert_eq!(label, "trace \"x\"");
        assert_eq!(parsed, row);
        // A RunMetrics row must be rejected (wrong kind).
        assert!(RoundRow::from_json("{\"label\":\"x\",\"rounds\":1}").is_err());
    }

    #[test]
    fn round_series_jsonl_lines_parse_back() {
        let series = RoundSeries::new();
        series.emit(&TraceEvent::RoundStart {
            round: 0,
            active: 2,
        });
        series.emit(&TraceEvent::RoundEnd {
            round: 0,
            active: 0,
            nanos: 10,
        });
        let mut out = JsonLinesWriter::new(Vec::new());
        series.write_jsonl("lbl", &mut out).unwrap();
        let buf = String::from_utf8(out.into_inner()).unwrap();
        let lines: Vec<&str> = buf.lines().collect();
        assert_eq!(lines.len(), 1);
        let (label, row) = RoundRow::from_json(lines[0]).unwrap();
        assert_eq!(label, "lbl");
        assert_eq!(row.active, 2);
        assert_eq!(row.wall_nanos, 10);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_per_shard_tracks() {
        let sink = ChromeTraceSink::new();
        sink.emit(&TraceEvent::RunStart {
            nodes: 10,
            shards: 2,
        });
        sink.emit(&TraceEvent::RoundStart {
            round: 0,
            active: 10,
        });
        sink.emit(&TraceEvent::PhaseEnd {
            round: 0,
            shard: 0,
            phase: TracePhase::Send,
            nanos: 2500,
        });
        sink.emit(&TraceEvent::ShardFlush {
            round: 0,
            shard: 1,
            wire_bytes: 64,
            nanos: 700,
        });
        sink.emit(&TraceEvent::ShardDrain {
            round: 0,
            shard: 1,
            nanos: 300,
        });
        sink.emit(&TraceEvent::Fault {
            round: 0,
            from: 0,
            to: 1,
            kind: FaultKind::Dropped,
        });
        sink.emit(&TraceEvent::RoundEnd {
            round: 0,
            active: 0,
            nanos: 4000,
        });
        sink.emit(&TraceEvent::RunEnd { rounds: 1 });
        assert_eq!(sink.len(), 8);

        let mut buf = Vec::new();
        sink.write_json(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let v = JsonValue::parse(&text).expect("trace must be valid JSON");
        let events = v
            .get("traceEvents")
            .and_then(JsonValue::as_array)
            .expect("traceEvents array");
        assert!(!events.is_empty());
        let mut pids = std::collections::BTreeSet::new();
        let mut nonzero_slices = 0;
        for e in events {
            assert!(e.get("ph").and_then(JsonValue::as_str).is_some());
            assert!(e.get("ts").and_then(JsonValue::as_f64).is_some());
            let pid = e.get("pid").and_then(JsonValue::as_u64).expect("pid");
            pids.insert(pid);
            if e.get("ph").and_then(JsonValue::as_str) == Some("X")
                && e.get("dur").and_then(JsonValue::as_f64).unwrap_or(0.0) > 0.0
            {
                nonzero_slices += 1;
            }
        }
        // One engine track + one track per shard.
        assert!(pids.contains(&0) && pids.contains(&1) && pids.contains(&2));
        assert!(
            nonzero_slices >= 3,
            "send/flush/drain/round slices expected"
        );
        // Fault instants land on the sending shard's track.
        assert!(text.contains("\"fault_dropped\""));
    }
}
