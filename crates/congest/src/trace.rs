//! Per-round tracing: the out-of-band observability seam of the engine.
//!
//! Every equivalence guarantee in this crate is stated over *outputs and
//! logical counters*; a run's internal shape — how fast the active set
//! drains, which shard's receive phase is the straggler, when the transport
//! flushed — was invisible until now.  This module adds a [`TraceSink`]
//! seam that the executors, the transport layer and the fault injector
//! report into, **strictly out-of-band**: sinks observe the run, they can
//! never influence it, so attaching one leaves every output and metric
//! bit-for-bit unchanged (asserted in `tests/executor_equivalence.rs`).
//!
//! # Cost model
//!
//! The default sink is [`NoTrace`]: [`TraceSink::enabled`] returns `false`
//! and every executor hoists that check out of its round loop, so a
//! disabled run performs **no event construction, no allocation and no
//! synchronization** on behalf of tracing — the per-*message* hot path is
//! never instrumented at all (events are per round × shard, a vanishing
//! fraction of the work).  Enabled sinks pay one mutex lock per event.
//!
//! # Event taxonomy
//!
//! [`TraceEvent`] covers five families, all `Copy` and stack-only:
//!
//! * **run lifecycle** — `RunStart` / `RunEnd`;
//! * **round lifecycle** — `RoundStart` / `RoundEnd` (with the round's
//!   wall-clock nanos and active-set size);
//! * **phases** — `PhaseStart` / `PhaseEnd` per engine phase per shard,
//!   plus the per-shard transport points `ShardFlush` / `ShardDrain` and
//!   the per-shard per-round traffic summary `ShardRound`;
//! * **faults** — one `Fault` per injected event of a
//!   [`FaultyTransport`](crate::faults::FaultyTransport), mirroring its
//!   replayable log;
//! * **workers** — `WorkerStart` / `WorkerEnd` lifecycle of the sharded
//!   executor's per-shard workers.
//!
//! # Shipped sinks
//!
//! * [`RoundSeries`] — accumulates one [`RoundRow`] per round (wall-clock,
//!   active set, message/bit/cross-shard traffic, wire bytes) and
//!   serializes them as JSONL rows beside the existing
//!   [`RunMetrics`](crate::RunMetrics) rows, plus p50/p95/max round-time
//!   summaries.
//! * [`ChromeTraceSink`] — records Chrome trace-event JSON (one process
//!   track per shard, phase slices, counter tracks) loadable directly in
//!   Perfetto or `chrome://tracing`; see the `exp_trace` binary.
//! * [`RecordingSink`] — keeps the raw events for tests.
//! * [`Fanout`] — feeds several sinks at once.

use std::sync::Mutex;
use std::time::Instant;

use crate::faults::FaultKind;
use crate::json::JsonValue;
use crate::metrics::{json_escape_into, JsonLinesWriter};

/// An engine phase, as seen by phase-level trace events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePhase {
    /// Asking active nodes for their outboxes (plus intra-shard routing in
    /// the sharded executor).
    Send,
    /// Clearing last round's slots and writing messages into the arena.
    Deliver,
    /// Handing inboxes to active nodes and compacting the active set.
    Receive,
}

impl TracePhase {
    /// Stable lower-case name, used as the slice name in trace files.
    pub fn name(self) -> &'static str {
        match self {
            TracePhase::Send => "send",
            TracePhase::Deliver => "deliver",
            TracePhase::Receive => "receive",
        }
    }
}

/// One out-of-band observation of a run.  Stack-only (`Copy`), so emitting
/// an event never allocates.
///
/// `shard` is the reporting shard for sharded runs; the sequential and
/// pooled executors report as shard 0.  All durations are nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A run began: node count and shard count (1 for unsharded executors).
    RunStart {
        /// Number of nodes in the topology.
        nodes: usize,
        /// Number of shards (1 for the sequential / pooled executors).
        shards: usize,
    },
    /// A run finished after `rounds` synchronous rounds.
    RunEnd {
        /// Rounds executed.
        rounds: u64,
    },
    /// A round was admitted with `active` nodes still running.
    RoundStart {
        /// The round number (0-based).
        round: u64,
        /// Active nodes at the start of the round.
        active: usize,
    },
    /// A round completed; `active` is the post-compaction count.
    RoundEnd {
        /// The round number (0-based).
        round: u64,
        /// Active nodes remaining after the round.
        active: usize,
        /// Wall-clock nanoseconds the round took.
        nanos: u64,
    },
    /// A phase began on a shard.
    PhaseStart {
        /// The round number.
        round: u64,
        /// The reporting shard.
        shard: usize,
        /// Which phase.
        phase: TracePhase,
    },
    /// A phase completed on a shard, taking `nanos` wall-clock nanoseconds.
    PhaseEnd {
        /// The round number.
        round: u64,
        /// The reporting shard.
        shard: usize,
        /// Which phase.
        phase: TracePhase,
        /// Wall-clock nanoseconds spent in the phase.
        nanos: u64,
    },
    /// A shard flushed its staged cross-shard batches at the send barrier.
    ShardFlush {
        /// The round number.
        round: u64,
        /// The flushing shard.
        shard: usize,
        /// Wire bytes the flush produced (0 for in-memory backends).
        wire_bytes: u64,
        /// Wall-clock nanoseconds the flush took.
        nanos: u64,
    },
    /// A shard drained its incoming cross-shard channels.
    ShardDrain {
        /// The round number.
        round: u64,
        /// The draining shard.
        shard: usize,
        /// Wall-clock nanoseconds the drain took.
        nanos: u64,
        /// Async-delivery slot overwrites during this drain (a stale copy
        /// was replaced by a fresher message; always 0 in strict mode).
        stale: u64,
    },
    /// Per-shard traffic summary of one round (charged at the sender).
    ShardRound {
        /// The round number.
        round: u64,
        /// The sending shard.
        shard: usize,
        /// Messages this shard sent this round.
        messages: u64,
        /// Bits this shard sent this round.
        bits: u64,
        /// How many of those messages crossed a shard boundary.
        cross: u64,
    },
    /// A fault was injected on the `from → to` shard channel; mirrors the
    /// [`FaultLog`](crate::faults::FaultyTransport::log) entry.
    Fault {
        /// The round the fault decision was made in.
        round: u64,
        /// Sending shard of the affected message.
        from: usize,
        /// Receiving shard of the affected message.
        to: usize,
        /// What the fault did.
        kind: FaultKind,
    },
    /// A sharded worker thread started serving its shard.
    WorkerStart {
        /// The shard the worker owns.
        shard: usize,
    },
    /// A sharded worker thread finished (all rounds done or poisoned).
    WorkerEnd {
        /// The shard the worker owned.
        shard: usize,
    },
}

/// A sink for out-of-band trace events.
///
/// Implementations must be `Sync` — the sharded executor's workers emit
/// concurrently — and must treat events as *observations only*: a sink can
/// never feed information back into the run, which is what keeps traced and
/// untraced runs bit-for-bit identical.
///
/// Executors hoist [`TraceSink::enabled`] out of their loops, so a sink
/// that reports `false` (the [`NoTrace`] default) costs nothing per round.
pub trait TraceSink: Sync {
    /// Whether this sink wants events at all.  Checked once per run (and
    /// hoisted out of hot loops); `false` skips event construction
    /// entirely.
    fn enabled(&self) -> bool {
        true
    }

    /// Records one event.  May be called concurrently from worker threads;
    /// events from one shard arrive in order, events of different shards
    /// interleave nondeterministically (they are concurrent in reality).
    fn emit(&self, event: &TraceEvent);
}

/// The default sink: tracing disabled, every emission skipped.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoTrace;

impl TraceSink for NoTrace {
    fn enabled(&self) -> bool {
        false
    }

    fn emit(&self, _event: &TraceEvent) {}
}

/// Feeds every event to several sinks (skipping disabled ones).
pub struct Fanout<'a> {
    sinks: &'a [&'a dyn TraceSink],
}

impl std::fmt::Debug for Fanout<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fanout")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl<'a> Fanout<'a> {
    /// A fanout over `sinks`; disabled members are skipped per event.
    pub fn new(sinks: &'a [&'a dyn TraceSink]) -> Self {
        Self { sinks }
    }
}

impl TraceSink for Fanout<'_> {
    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }

    fn emit(&self, event: &TraceEvent) {
        for sink in self.sinks {
            if sink.enabled() {
                sink.emit(event);
            }
        }
    }
}

/// A sink that simply keeps every event — the test instrument.
#[derive(Debug, Default)]
pub struct RecordingSink {
    events: Mutex<Vec<TraceEvent>>,
}

impl RecordingSink {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes the recorded events, leaving the recorder empty.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for RecordingSink {
    fn emit(&self, event: &TraceEvent) {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(*event);
    }
}

/// A sink that stamps every event with nanoseconds since its own monotonic
/// epoch — the capture half of remote trace shipping.
///
/// The epoch is taken at construction, so a recorder created when a worker
/// starts serving gives the per-worker timeline of the documented
/// clock-alignment rule: timestamps are meaningful *within* the recorder's
/// own track, and the merge ([`ChromeTraceSink::ingest_stamped`]) places
/// every origin at merged time 0.
#[derive(Debug)]
pub struct StampedRecorder {
    epoch: Instant,
    events: Mutex<Vec<(u64, TraceEvent)>>,
}

impl Default for StampedRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl StampedRecorder {
    /// An empty recorder; its epoch (timestamp 0) is now.
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
            events: Mutex::new(Vec::new()),
        }
    }

    /// Takes the stamped events, leaving the recorder empty (the epoch is
    /// kept).
    pub fn take(&self) -> Vec<(u64, TraceEvent)> {
        std::mem::take(&mut self.events.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for StampedRecorder {
    fn emit(&self, event: &TraceEvent) {
        let at_nanos = self.epoch.elapsed().as_nanos() as u64;
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push((at_nanos, *event));
    }
}

// ---------------------------------------------------------------------------
// Stamped-event wire codec: the payload of a `Trace` control frame
// ---------------------------------------------------------------------------

const EV_RUN_START: u8 = 0;
const EV_RUN_END: u8 = 1;
const EV_ROUND_START: u8 = 2;
const EV_ROUND_END: u8 = 3;
const EV_PHASE_START: u8 = 4;
const EV_PHASE_END: u8 = 5;
const EV_SHARD_FLUSH: u8 = 6;
const EV_SHARD_DRAIN: u8 = 7;
const EV_SHARD_ROUND: u8 = 8;
const EV_FAULT: u8 = 9;
const EV_WORKER_START: u8 = 10;
const EV_WORKER_END: u8 = 11;

fn phase_tag(phase: TracePhase) -> u8 {
    match phase {
        TracePhase::Send => 0,
        TracePhase::Deliver => 1,
        TracePhase::Receive => 2,
    }
}

fn phase_from_tag(tag: u8) -> Result<TracePhase, String> {
    match tag {
        0 => Ok(TracePhase::Send),
        1 => Ok(TracePhase::Deliver),
        2 => Ok(TracePhase::Receive),
        other => Err(format!("unknown trace phase tag {other}")),
    }
}

fn fault_tag(kind: FaultKind) -> (u8, u64) {
    match kind {
        FaultKind::Dropped => (0, 0),
        FaultKind::Duplicated => (1, 0),
        FaultKind::Delayed { rounds } => (2, rounds),
        FaultKind::Retransmitted => (3, 0),
        FaultKind::PartitionDropped => (4, 0),
        FaultKind::PartitionDeferred { until_round } => (5, until_round),
    }
}

fn fault_from_tag(tag: u8, arg: u64) -> Result<FaultKind, String> {
    match tag {
        0 => Ok(FaultKind::Dropped),
        1 => Ok(FaultKind::Duplicated),
        2 => Ok(FaultKind::Delayed { rounds: arg }),
        3 => Ok(FaultKind::Retransmitted),
        4 => Ok(FaultKind::PartitionDropped),
        5 => Ok(FaultKind::PartitionDeferred { until_round: arg }),
        other => Err(format!("unknown fault kind tag {other}")),
    }
}

/// Serializes a stamped event stream as the payload of a
/// [`Trace`](crate::wire::FrameKind::Trace) control frame: `[count: u32
/// LE]`, then per event `[at_nanos: u64 LE][tag: u8]` followed by the
/// variant's fields (u64 LE numbers; phases and fault kinds as one tag
/// byte, fault kinds with one u64 argument).
///
/// Timestamps are nanoseconds since the *capturing* process's own
/// monotonic origin (its [`StampedRecorder`] epoch); see
/// [`ChromeTraceSink::ingest_stamped`] for the alignment rule applied on
/// merge.
pub fn encode_stamped(events: &[(u64, TraceEvent)]) -> Vec<u8> {
    use crate::wire::{put_u32, put_u64};
    let mut out = Vec::with_capacity(4 + events.len() * 40);
    put_u32(&mut out, u32::try_from(events.len()).expect("event count"));
    for &(at_nanos, event) in events {
        put_u64(&mut out, at_nanos);
        match event {
            TraceEvent::RunStart { nodes, shards } => {
                out.push(EV_RUN_START);
                put_u64(&mut out, nodes as u64);
                put_u64(&mut out, shards as u64);
            }
            TraceEvent::RunEnd { rounds } => {
                out.push(EV_RUN_END);
                put_u64(&mut out, rounds);
            }
            TraceEvent::RoundStart { round, active } => {
                out.push(EV_ROUND_START);
                put_u64(&mut out, round);
                put_u64(&mut out, active as u64);
            }
            TraceEvent::RoundEnd {
                round,
                active,
                nanos,
            } => {
                out.push(EV_ROUND_END);
                put_u64(&mut out, round);
                put_u64(&mut out, active as u64);
                put_u64(&mut out, nanos);
            }
            TraceEvent::PhaseStart {
                round,
                shard,
                phase,
            } => {
                out.push(EV_PHASE_START);
                put_u64(&mut out, round);
                put_u64(&mut out, shard as u64);
                out.push(phase_tag(phase));
            }
            TraceEvent::PhaseEnd {
                round,
                shard,
                phase,
                nanos,
            } => {
                out.push(EV_PHASE_END);
                put_u64(&mut out, round);
                put_u64(&mut out, shard as u64);
                out.push(phase_tag(phase));
                put_u64(&mut out, nanos);
            }
            TraceEvent::ShardFlush {
                round,
                shard,
                wire_bytes,
                nanos,
            } => {
                out.push(EV_SHARD_FLUSH);
                put_u64(&mut out, round);
                put_u64(&mut out, shard as u64);
                put_u64(&mut out, wire_bytes);
                put_u64(&mut out, nanos);
            }
            TraceEvent::ShardDrain {
                round,
                shard,
                nanos,
                stale,
            } => {
                out.push(EV_SHARD_DRAIN);
                put_u64(&mut out, round);
                put_u64(&mut out, shard as u64);
                put_u64(&mut out, nanos);
                put_u64(&mut out, stale);
            }
            TraceEvent::ShardRound {
                round,
                shard,
                messages,
                bits,
                cross,
            } => {
                out.push(EV_SHARD_ROUND);
                put_u64(&mut out, round);
                put_u64(&mut out, shard as u64);
                put_u64(&mut out, messages);
                put_u64(&mut out, bits);
                put_u64(&mut out, cross);
            }
            TraceEvent::Fault {
                round,
                from,
                to,
                kind,
            } => {
                let (tag, arg) = fault_tag(kind);
                out.push(EV_FAULT);
                put_u64(&mut out, round);
                put_u64(&mut out, from as u64);
                put_u64(&mut out, to as u64);
                out.push(tag);
                put_u64(&mut out, arg);
            }
            TraceEvent::WorkerStart { shard } => {
                out.push(EV_WORKER_START);
                put_u64(&mut out, shard as u64);
            }
            TraceEvent::WorkerEnd { shard } => {
                out.push(EV_WORKER_END);
                put_u64(&mut out, shard as u64);
            }
        }
    }
    out
}

/// Parses a payload produced by [`encode_stamped`] back into the stamped
/// event stream.  Every malformed input — truncation, an unknown event,
/// phase or fault tag, trailing bytes — is reported as an error, never a
/// panic (the payload crosses a process boundary).
pub fn decode_stamped(payload: &[u8]) -> Result<Vec<(u64, TraceEvent)>, String> {
    struct Cursor<'a> {
        buf: &'a [u8],
        at: usize,
    }
    impl Cursor<'_> {
        fn u8(&mut self) -> Result<u8, String> {
            let b = *self
                .buf
                .get(self.at)
                .ok_or_else(|| "truncated trace payload".to_string())?;
            self.at += 1;
            Ok(b)
        }
        fn u64(&mut self) -> Result<u64, String> {
            let bytes = self
                .buf
                .get(self.at..self.at + 8)
                .ok_or_else(|| "truncated trace payload".to_string())?;
            self.at += 8;
            Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
        }
        fn shard(&mut self) -> Result<usize, String> {
            usize::try_from(self.u64()?).map_err(|_| "oversized shard index".to_string())
        }
    }
    let mut c = Cursor {
        buf: payload,
        at: 0,
    };
    let count = {
        let bytes = c
            .buf
            .get(0..4)
            .ok_or_else(|| "truncated trace payload".to_string())?;
        c.at = 4;
        u32::from_le_bytes(bytes.try_into().expect("4 bytes")) as usize
    };
    // Cheap bound: every event costs at least 9 bytes (stamp + tag).
    if count > payload.len() / 9 + 1 {
        return Err(format!("trace event count {count} exceeds the payload"));
    }
    let mut events = Vec::with_capacity(count);
    for _ in 0..count {
        let at_nanos = c.u64()?;
        let tag = c.u8()?;
        let event = match tag {
            EV_RUN_START => TraceEvent::RunStart {
                nodes: c.shard()?,
                shards: c.shard()?,
            },
            EV_RUN_END => TraceEvent::RunEnd { rounds: c.u64()? },
            EV_ROUND_START => TraceEvent::RoundStart {
                round: c.u64()?,
                active: c.shard()?,
            },
            EV_ROUND_END => TraceEvent::RoundEnd {
                round: c.u64()?,
                active: c.shard()?,
                nanos: c.u64()?,
            },
            EV_PHASE_START => TraceEvent::PhaseStart {
                round: c.u64()?,
                shard: c.shard()?,
                phase: phase_from_tag(c.u8()?)?,
            },
            EV_PHASE_END => TraceEvent::PhaseEnd {
                round: c.u64()?,
                shard: c.shard()?,
                phase: phase_from_tag(c.u8()?)?,
                nanos: c.u64()?,
            },
            EV_SHARD_FLUSH => TraceEvent::ShardFlush {
                round: c.u64()?,
                shard: c.shard()?,
                wire_bytes: c.u64()?,
                nanos: c.u64()?,
            },
            EV_SHARD_DRAIN => TraceEvent::ShardDrain {
                round: c.u64()?,
                shard: c.shard()?,
                nanos: c.u64()?,
                stale: c.u64()?,
            },
            EV_SHARD_ROUND => TraceEvent::ShardRound {
                round: c.u64()?,
                shard: c.shard()?,
                messages: c.u64()?,
                bits: c.u64()?,
                cross: c.u64()?,
            },
            EV_FAULT => TraceEvent::Fault {
                round: c.u64()?,
                from: c.shard()?,
                to: c.shard()?,
                kind: {
                    let tag = c.u8()?;
                    let arg = c.u64()?;
                    fault_from_tag(tag, arg)?
                },
            },
            EV_WORKER_START => TraceEvent::WorkerStart { shard: c.shard()? },
            EV_WORKER_END => TraceEvent::WorkerEnd { shard: c.shard()? },
            other => return Err(format!("unknown trace event tag {other}")),
        };
        events.push((at_nanos, event));
    }
    if c.at != payload.len() {
        return Err("trailing bytes after the trace events".to_string());
    }
    Ok(events)
}

/// One row of the per-round time series accumulated by [`RoundSeries`].
///
/// Traffic counters are summed over all shards that reported the round;
/// `wall_nanos` is the engine's round wall-clock (coordinator-measured for
/// threaded executors).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundRow {
    /// The round number (0-based).
    pub round: u64,
    /// Active nodes at the start of the round.
    pub active: u64,
    /// Wall-clock nanoseconds the round took.
    pub wall_nanos: u64,
    /// Messages sent in the round (all shards).
    pub messages: u64,
    /// Bits sent in the round (all shards).
    pub bits: u64,
    /// Messages that crossed a shard boundary.
    pub cross_messages: u64,
    /// Wire bytes flushed by the transport (0 for in-memory backends).
    pub wire_bytes: u64,
    /// Messages dropped by the fault layer this round (including partition
    /// drops), mirroring [`RunMetrics::faults_dropped`](crate::RunMetrics).
    pub dropped: u64,
    /// Messages duplicated by the fault layer this round.
    pub duplicated: u64,
    /// Messages delayed past a round boundary this round (including
    /// partition deferrals).
    pub delayed: u64,
    /// Fault decisions masked by the retransmission overlay this round.
    pub retransmitted: u64,
    /// Async-delivery stale slot overwrites observed this round.
    pub stale_overwrites: u64,
}

impl RoundRow {
    /// Renders the row as one JSON object, tagged `"kind":"round_series"`
    /// so consumers can tell it apart from `RunMetrics` rows in a shared
    /// JSONL stream.  Fields are only ever added, matching the JSONL
    /// schema contract in `dcme_bench`.
    pub fn to_json(&self, label: &str) -> String {
        let mut out = String::with_capacity(160);
        out.push_str("{\"kind\":\"round_series\",\"label\":\"");
        json_escape_into(&mut out, label);
        out.push('"');
        out.push_str(&format!(",\"round\":{}", self.round));
        out.push_str(&format!(",\"active\":{}", self.active));
        out.push_str(&format!(",\"wall_nanos\":{}", self.wall_nanos));
        out.push_str(&format!(",\"messages\":{}", self.messages));
        out.push_str(&format!(",\"bits\":{}", self.bits));
        out.push_str(&format!(",\"cross_messages\":{}", self.cross_messages));
        out.push_str(&format!(",\"wire_bytes\":{}", self.wire_bytes));
        out.push_str(&format!(",\"dropped\":{}", self.dropped));
        out.push_str(&format!(",\"duplicated\":{}", self.duplicated));
        out.push_str(&format!(",\"delayed\":{}", self.delayed));
        out.push_str(&format!(",\"retransmitted\":{}", self.retransmitted));
        out.push_str(&format!(",\"stale_overwrites\":{}", self.stale_overwrites));
        out.push('}');
        out
    }

    /// Parses a row emitted by [`RoundRow::to_json`] back into the label
    /// and the row.  Unknown keys are ignored and missing counters default
    /// to 0 (the add-only schema contract); a wrong or missing `kind` tag
    /// is an error.
    pub fn from_json(line: &str) -> Result<(String, RoundRow), String> {
        let v = JsonValue::parse(line).map_err(|e| e.to_string())?;
        if v.get("kind").and_then(JsonValue::as_str) != Some("round_series") {
            return Err("not a round_series row (missing kind tag)".to_string());
        }
        let label = v
            .get("label")
            .and_then(JsonValue::as_str)
            .unwrap_or_default()
            .to_string();
        let u = |key: &str| v.get(key).and_then(JsonValue::as_u64).unwrap_or(0);
        Ok((
            label,
            RoundRow {
                round: u("round"),
                active: u("active"),
                wall_nanos: u("wall_nanos"),
                messages: u("messages"),
                bits: u("bits"),
                cross_messages: u("cross_messages"),
                wire_bytes: u("wire_bytes"),
                dropped: u("dropped"),
                duplicated: u("duplicated"),
                delayed: u("delayed"),
                retransmitted: u("retransmitted"),
                stale_overwrites: u("stale_overwrites"),
            },
        ))
    }
}

/// Round-time distribution summary of a [`RoundSeries`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SeriesSummary {
    /// Number of rounds observed.
    pub rounds: u64,
    /// Median round wall-clock, nanoseconds.
    pub p50_nanos: u64,
    /// 95th-percentile round wall-clock, nanoseconds.
    pub p95_nanos: u64,
    /// Slowest round wall-clock, nanoseconds.
    pub max_nanos: u64,
}

/// A sink accumulating the per-round time series: one [`RoundRow`] per
/// round, merged across shards, serializable as JSONL beside
/// [`RunMetrics`](crate::RunMetrics) rows.
#[derive(Debug)]
pub struct RoundSeries {
    rows: Mutex<Vec<RoundRow>>,
}

impl Default for RoundSeries {
    fn default() -> Self {
        Self::new()
    }
}

impl RoundSeries {
    /// An empty series.
    pub fn new() -> Self {
        Self {
            rows: Mutex::new(Vec::new()),
        }
    }

    /// A copy of the accumulated rows, in round order.
    pub fn rows(&self) -> Vec<RoundRow> {
        self.rows.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// p50/p95/max of the round wall-clock times observed so far.
    ///
    /// Percentiles use the nearest-rank method (`⌈p·n⌉`-th smallest), so
    /// the degenerate inputs are well defined: an empty series is all
    /// zeros with `rounds == 0`, a single round reports that round's time
    /// for every statistic, and a two-round series reports the *lower*
    /// value as p50 (the median never exceeds the 95th percentile).
    pub fn summary(&self) -> SeriesSummary {
        let rows = self.rows.lock().unwrap_or_else(|e| e.into_inner());
        let mut nanos: Vec<u64> = rows.iter().map(|r| r.wall_nanos).collect();
        if nanos.is_empty() {
            return SeriesSummary::default();
        }
        nanos.sort_unstable();
        // Nearest rank: the ⌈p·n⌉-th smallest sample (1-based), clamped
        // into range — monotone in p, exact at p = 1.0.
        let pick = |p: f64| {
            let rank = (p * nanos.len() as f64).ceil() as usize;
            nanos[rank.clamp(1, nanos.len()) - 1]
        };
        SeriesSummary {
            rounds: nanos.len() as u64,
            p50_nanos: pick(0.50),
            p95_nanos: pick(0.95),
            max_nanos: *nanos.last().expect("nonempty"),
        }
    }

    /// Appends every row to a JSONL sink, tagged with `label`.
    pub fn write_jsonl<W: std::io::Write>(
        &self,
        label: &str,
        out: &mut JsonLinesWriter<W>,
    ) -> std::io::Result<()> {
        for row in self.rows() {
            out.append_raw(&row.to_json(label))?;
        }
        Ok(())
    }

    fn with_row(&self, round: u64, f: impl FnOnce(&mut RoundRow)) {
        let mut rows = self.rows.lock().unwrap_or_else(|e| e.into_inner());
        let idx = round as usize;
        while rows.len() <= idx {
            let round = rows.len() as u64;
            rows.push(RoundRow {
                round,
                ..RoundRow::default()
            });
        }
        f(&mut rows[idx]);
    }
}

impl TraceSink for RoundSeries {
    fn emit(&self, event: &TraceEvent) {
        match *event {
            TraceEvent::RoundStart { round, active } => {
                self.with_row(round, |r| r.active = active as u64);
            }
            TraceEvent::RoundEnd { round, nanos, .. } => {
                self.with_row(round, |r| r.wall_nanos = nanos);
            }
            TraceEvent::ShardRound {
                round,
                messages,
                bits,
                cross,
                ..
            } => {
                self.with_row(round, |r| {
                    r.messages += messages;
                    r.bits += bits;
                    r.cross_messages += cross;
                });
            }
            TraceEvent::ShardFlush {
                round, wire_bytes, ..
            } => {
                self.with_row(round, |r| r.wire_bytes += wire_bytes);
            }
            TraceEvent::ShardDrain { round, stale, .. } => {
                self.with_row(round, |r| r.stale_overwrites += stale);
            }
            TraceEvent::Fault { round, kind, .. } => {
                // Same binning as `RunMetrics::faults_*` (see
                // `faults::run_faulty`): partition drops count as drops,
                // partition deferrals as delays.
                self.with_row(round, |r| match kind {
                    FaultKind::Dropped | FaultKind::PartitionDropped => r.dropped += 1,
                    FaultKind::Duplicated => r.duplicated += 1,
                    FaultKind::Delayed { .. } | FaultKind::PartitionDeferred { .. } => {
                        r.delayed += 1
                    }
                    FaultKind::Retransmitted => r.retransmitted += 1,
                });
            }
            _ => {}
        }
    }
}

/// An event stamped with its emission time (µs since the sink's epoch).
#[derive(Debug, Clone, Copy)]
struct Stamped {
    at_us: f64,
    event: TraceEvent,
}

/// A sink recording Chrome trace-event JSON — the format Perfetto and
/// `chrome://tracing` load natively.
///
/// Track layout: pid 0 is the engine (round slices + an `active_nodes`
/// counter track); pid `s + 1` is shard `s` (phase slices, flush/drain
/// slices, per-shard traffic counters, fault instants).  Durations come
/// from the engine's own phase timers; begin timestamps are reconstructed
/// as `emission time − duration`, which is exact because every duration is
/// measured immediately before its event is emitted.
///
/// Write the collected trace with [`ChromeTraceSink::write_json`]; the
/// `exp_trace` binary in `dcme_bench` is the command-line front end.
///
/// # Merged remote traces and the clock-alignment rule
///
/// A multi-process run has no shared clock.  The merge contract
/// ([`ChromeTraceSink::ingest_stamped`], used by
/// [`coordinate_traced`](crate::transport::coordinate_traced)) is:
/// **every track keeps its own monotonic origin, and every origin is
/// placed at merged time 0.**  The engine track's origin is this sink's
/// construction (the coordinator creates it just before pacing rounds);
/// each worker track's origin is that worker's [`StampedRecorder`] epoch,
/// taken at its `WorkerStart`.  Durations and within-track orderings are
/// therefore exact; cross-track offsets are bounded by connection-setup
/// skew (workers start serving within milliseconds of the coordinator's
/// round 0) and are *not* corrected — the trace shows per-track truth, not
/// a synthesized global order.
#[derive(Debug)]
pub struct ChromeTraceSink {
    epoch: Instant,
    inner: Mutex<ChromeInner>,
}

#[derive(Debug)]
struct ChromeInner {
    events: Vec<Stamped>,
    shards: usize,
}

impl Default for ChromeTraceSink {
    fn default() -> Self {
        Self::new()
    }
}

impl ChromeTraceSink {
    /// An empty trace; the epoch (trace time 0) is now.
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
            inner: Mutex::new(ChromeInner {
                events: Vec::new(),
                shards: 0,
            }),
        }
    }

    /// Number of events collected so far.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .events
            .len()
    }

    /// Whether no events have been collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Merges an externally captured stamped event stream — a remote
    /// worker's [`Trace`](crate::wire::FrameKind::Trace) blob, or a
    /// [`StampedRecorder`] take — into this trace.
    ///
    /// Timestamps are nanoseconds since the *source's* own monotonic
    /// origin and are used as-is: per the clock-alignment rule (see the
    /// [type docs](ChromeTraceSink)), every origin lands at merged time 0.
    /// Shard-bearing events grow the named per-shard track set, so a
    /// merged trace names one track per worker even when this sink never
    /// saw an engine `RunStart`.
    pub fn ingest_stamped(&self, events: &[(u64, TraceEvent)]) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        for &(at_nanos, event) in events {
            match event {
                TraceEvent::RunStart { shards, .. } => {
                    inner.shards = inner.shards.max(shards);
                }
                TraceEvent::WorkerStart { shard }
                | TraceEvent::WorkerEnd { shard }
                | TraceEvent::PhaseStart { shard, .. }
                | TraceEvent::PhaseEnd { shard, .. }
                | TraceEvent::ShardFlush { shard, .. }
                | TraceEvent::ShardDrain { shard, .. }
                | TraceEvent::ShardRound { shard, .. } => {
                    inner.shards = inner.shards.max(shard + 1);
                }
                _ => {}
            }
            inner.events.push(Stamped {
                at_us: at_nanos as f64 / 1000.0,
                event,
            });
        }
    }

    /// Re-emits every collected event, in collection order, into another
    /// sink — e.g. to derive a [`RoundSeries`] from an already-merged
    /// trace.  Stamps are not carried over ([`TraceSink::emit`] has no
    /// time parameter); sinks that re-stamp will see replay time.
    pub fn replay_into(&self, sink: &dyn TraceSink) {
        if !sink.enabled() {
            return;
        }
        let events: Vec<TraceEvent> = {
            let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.events.iter().map(|st| st.event).collect()
        };
        for event in &events {
            sink.emit(event);
        }
    }

    /// Serializes the collected events as a Chrome trace-event JSON object
    /// (`{"displayTimeUnit":"ms","traceEvents":[...]}`), loadable in
    /// Perfetto / `chrome://tracing`.
    pub fn write_json<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        w.write_all(b"{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")?;
        let mut first = true;
        let sep = |w: &mut W, first: &mut bool| -> std::io::Result<()> {
            if *first {
                *first = false;
                Ok(())
            } else {
                w.write_all(b",")
            }
        };
        // Process-name metadata: one named track per pid.
        sep(w, &mut first)?;
        w.write_all(
            b"{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":0,\"tid\":0,\"args\":{\"name\":\"engine\"}}",
        )?;
        for s in 0..inner.shards.max(1) {
            sep(w, &mut first)?;
            write!(
                w,
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":{},\"tid\":0,\"args\":{{\"name\":\"shard {s}\"}}}}",
                s + 1
            )?;
        }
        for st in &inner.events {
            let at = st.at_us;
            match st.event {
                TraceEvent::RunStart { nodes, shards } => {
                    sep(w, &mut first)?;
                    write!(
                        w,
                        "{{\"name\":\"run_start\",\"ph\":\"i\",\"ts\":{at:.3},\"pid\":0,\"tid\":0,\"s\":\"g\",\"args\":{{\"nodes\":{nodes},\"shards\":{shards}}}}}"
                    )?;
                }
                TraceEvent::RunEnd { rounds } => {
                    sep(w, &mut first)?;
                    write!(
                        w,
                        "{{\"name\":\"run_end\",\"ph\":\"i\",\"ts\":{at:.3},\"pid\":0,\"tid\":0,\"s\":\"g\",\"args\":{{\"rounds\":{rounds}}}}}"
                    )?;
                }
                TraceEvent::RoundStart { round, active } => {
                    sep(w, &mut first)?;
                    write!(
                        w,
                        "{{\"name\":\"active_nodes\",\"ph\":\"C\",\"ts\":{at:.3},\"pid\":0,\"tid\":0,\"args\":{{\"active\":{active}}}}}",
                    )?;
                    let _ = round;
                }
                TraceEvent::RoundEnd {
                    round,
                    active,
                    nanos,
                } => {
                    let dur = nanos as f64 / 1000.0;
                    sep(w, &mut first)?;
                    write!(
                        w,
                        "{{\"name\":\"round\",\"cat\":\"round\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{dur:.3},\"pid\":0,\"tid\":0,\"args\":{{\"round\":{round},\"active_after\":{active}}}}}",
                        at - dur
                    )?;
                }
                TraceEvent::PhaseStart { .. } => {}
                TraceEvent::PhaseEnd {
                    round,
                    shard,
                    phase,
                    nanos,
                } => {
                    let dur = nanos as f64 / 1000.0;
                    sep(w, &mut first)?;
                    write!(
                        w,
                        "{{\"name\":\"{}\",\"cat\":\"phase\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{dur:.3},\"pid\":{},\"tid\":0,\"args\":{{\"round\":{round}}}}}",
                        phase.name(),
                        at - dur,
                        shard + 1
                    )?;
                }
                TraceEvent::ShardFlush {
                    round,
                    shard,
                    wire_bytes,
                    nanos,
                } => {
                    let dur = nanos as f64 / 1000.0;
                    sep(w, &mut first)?;
                    write!(
                        w,
                        "{{\"name\":\"flush\",\"cat\":\"transport\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{dur:.3},\"pid\":{},\"tid\":0,\"args\":{{\"round\":{round},\"wire_bytes\":{wire_bytes}}}}}",
                        at - dur,
                        shard + 1
                    )?;
                }
                TraceEvent::ShardDrain {
                    round,
                    shard,
                    nanos,
                    stale,
                } => {
                    let dur = nanos as f64 / 1000.0;
                    sep(w, &mut first)?;
                    write!(
                        w,
                        "{{\"name\":\"drain\",\"cat\":\"transport\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{dur:.3},\"pid\":{},\"tid\":0,\"args\":{{\"round\":{round},\"stale\":{stale}}}}}",
                        at - dur,
                        shard + 1
                    )?;
                }
                TraceEvent::ShardRound {
                    round,
                    shard,
                    messages,
                    bits,
                    cross,
                } => {
                    sep(w, &mut first)?;
                    write!(
                        w,
                        "{{\"name\":\"traffic\",\"ph\":\"C\",\"ts\":{at:.3},\"pid\":{},\"tid\":0,\"args\":{{\"messages\":{messages},\"bits\":{bits},\"cross\":{cross}}}}}",
                        shard + 1
                    )?;
                    let _ = round;
                }
                TraceEvent::Fault {
                    round,
                    from,
                    to,
                    kind,
                } => {
                    sep(w, &mut first)?;
                    write!(
                        w,
                        "{{\"name\":\"{}\",\"cat\":\"fault\",\"ph\":\"i\",\"ts\":{at:.3},\"pid\":{},\"tid\":0,\"s\":\"p\",\"args\":{{\"round\":{round},\"to\":{to}}}}}",
                        fault_name(kind),
                        from + 1
                    )?;
                }
                TraceEvent::WorkerStart { shard } => {
                    sep(w, &mut first)?;
                    write!(
                        w,
                        "{{\"name\":\"worker_start\",\"ph\":\"i\",\"ts\":{at:.3},\"pid\":{},\"tid\":0,\"s\":\"p\"}}",
                        shard + 1
                    )?;
                }
                TraceEvent::WorkerEnd { shard } => {
                    sep(w, &mut first)?;
                    write!(
                        w,
                        "{{\"name\":\"worker_end\",\"ph\":\"i\",\"ts\":{at:.3},\"pid\":{},\"tid\":0,\"s\":\"p\"}}",
                        shard + 1
                    )?;
                }
            }
        }
        w.write_all(b"]}")
    }
}

/// The stable trace name of a fault kind.
fn fault_name(kind: FaultKind) -> &'static str {
    match kind {
        FaultKind::Dropped => "fault_dropped",
        FaultKind::Duplicated => "fault_duplicated",
        FaultKind::Delayed { .. } => "fault_delayed",
        FaultKind::Retransmitted => "fault_retransmitted",
        FaultKind::PartitionDropped => "fault_partition_dropped",
        FaultKind::PartitionDeferred { .. } => "fault_partition_deferred",
    }
}

impl TraceSink for ChromeTraceSink {
    fn emit(&self, event: &TraceEvent) {
        let at_us = self.epoch.elapsed().as_nanos() as f64 / 1000.0;
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let TraceEvent::RunStart { shards, .. } = *event {
            inner.shards = inner.shards.max(shards);
        }
        inner.events.push(Stamped {
            at_us,
            event: *event,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_trace_is_disabled() {
        assert!(!NoTrace.enabled());
        NoTrace.emit(&TraceEvent::RunEnd { rounds: 1 }); // must be a no-op
    }

    #[test]
    fn recording_sink_keeps_events_in_order() {
        let rec = RecordingSink::new();
        assert!(rec.is_empty());
        rec.emit(&TraceEvent::RunStart {
            nodes: 3,
            shards: 1,
        });
        rec.emit(&TraceEvent::RunEnd { rounds: 2 });
        assert_eq!(rec.len(), 2);
        let events = rec.take();
        assert_eq!(
            events,
            vec![
                TraceEvent::RunStart {
                    nodes: 3,
                    shards: 1
                },
                TraceEvent::RunEnd { rounds: 2 },
            ]
        );
        assert!(rec.is_empty());
    }

    #[test]
    fn fanout_feeds_enabled_sinks_and_skips_disabled_ones() {
        let a = RecordingSink::new();
        let b = RecordingSink::new();
        let off = NoTrace;
        let sinks: [&dyn TraceSink; 3] = [&a, &off, &b];
        let fan = Fanout::new(&sinks);
        assert!(fan.enabled());
        fan.emit(&TraceEvent::RunEnd { rounds: 7 });
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);

        let only_off: [&dyn TraceSink; 1] = [&off];
        assert!(!Fanout::new(&only_off).enabled());
    }

    #[test]
    fn round_series_accumulates_and_summarizes() {
        let series = RoundSeries::new();
        // Round 1 reported before round 0 ever gets a start — rows grow.
        series.emit(&TraceEvent::RoundStart {
            round: 0,
            active: 5,
        });
        series.emit(&TraceEvent::ShardRound {
            round: 0,
            shard: 0,
            messages: 4,
            bits: 40,
            cross: 1,
        });
        series.emit(&TraceEvent::ShardRound {
            round: 0,
            shard: 1,
            messages: 6,
            bits: 60,
            cross: 2,
        });
        series.emit(&TraceEvent::ShardFlush {
            round: 0,
            shard: 1,
            wire_bytes: 99,
            nanos: 5,
        });
        series.emit(&TraceEvent::RoundEnd {
            round: 0,
            active: 3,
            nanos: 1000,
        });
        series.emit(&TraceEvent::RoundStart {
            round: 1,
            active: 3,
        });
        series.emit(&TraceEvent::RoundEnd {
            round: 1,
            active: 0,
            nanos: 3000,
        });
        let rows = series.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[0],
            RoundRow {
                round: 0,
                active: 5,
                wall_nanos: 1000,
                messages: 10,
                bits: 100,
                cross_messages: 3,
                wire_bytes: 99,
                ..RoundRow::default()
            }
        );
        assert_eq!(rows[1].active, 3);
        let s = series.summary();
        assert_eq!(s.rounds, 2);
        assert_eq!(s.max_nanos, 3000);
        assert!(s.p50_nanos == 1000 || s.p50_nanos == 3000);
        assert_eq!(s.p95_nanos, 3000);
    }

    #[test]
    fn round_row_json_round_trips() {
        // A complete literal on purpose: a new field breaks this test
        // until the JSON round trip carries it.
        let row = RoundRow {
            round: 3,
            active: 17,
            wall_nanos: 12345,
            messages: 99,
            bits: 1980,
            cross_messages: 7,
            wire_bytes: 512,
            dropped: 2,
            duplicated: 1,
            delayed: 4,
            retransmitted: 3,
            stale_overwrites: 5,
        };
        let line = row.to_json("trace \"x\"");
        let (label, parsed) = RoundRow::from_json(&line).unwrap();
        assert_eq!(label, "trace \"x\"");
        assert_eq!(parsed, row);
        // A RunMetrics row must be rejected (wrong kind).
        assert!(RoundRow::from_json("{\"label\":\"x\",\"rounds\":1}").is_err());
    }

    #[test]
    fn round_series_jsonl_lines_parse_back() {
        let series = RoundSeries::new();
        series.emit(&TraceEvent::RoundStart {
            round: 0,
            active: 2,
        });
        series.emit(&TraceEvent::RoundEnd {
            round: 0,
            active: 0,
            nanos: 10,
        });
        let mut out = JsonLinesWriter::new(Vec::new());
        series.write_jsonl("lbl", &mut out).unwrap();
        let buf = String::from_utf8(out.into_inner()).unwrap();
        let lines: Vec<&str> = buf.lines().collect();
        assert_eq!(lines.len(), 1);
        let (label, row) = RoundRow::from_json(lines[0]).unwrap();
        assert_eq!(label, "lbl");
        assert_eq!(row.active, 2);
        assert_eq!(row.wall_nanos, 10);
    }

    #[test]
    fn summary_percentiles_are_pinned_on_tiny_series() {
        let end = |round: u64, nanos: u64| TraceEvent::RoundEnd {
            round,
            active: 0,
            nanos,
        };
        // 0 rows: all zeros, rounds == 0.
        let series = RoundSeries::new();
        assert_eq!(series.summary(), SeriesSummary::default());
        // 1 row: every statistic is that round's time.
        series.emit(&end(0, 700));
        assert_eq!(
            series.summary(),
            SeriesSummary {
                rounds: 1,
                p50_nanos: 700,
                p95_nanos: 700,
                max_nanos: 700,
            }
        );
        // 2 rows: p50 is the *lower* value (nearest rank), p95/max the
        // higher — the median never exceeds the tail.
        series.emit(&end(1, 300));
        assert_eq!(
            series.summary(),
            SeriesSummary {
                rounds: 2,
                p50_nanos: 300,
                p95_nanos: 700,
                max_nanos: 700,
            }
        );
    }

    #[test]
    fn round_series_bins_faults_and_stale_overwrites() {
        let series = RoundSeries::new();
        let fault = |round, kind| TraceEvent::Fault {
            round,
            from: 0,
            to: 1,
            kind,
        };
        series.emit(&fault(0, FaultKind::Dropped));
        series.emit(&fault(0, FaultKind::PartitionDropped));
        series.emit(&fault(0, FaultKind::Duplicated));
        series.emit(&fault(1, FaultKind::Delayed { rounds: 2 }));
        series.emit(&fault(1, FaultKind::PartitionDeferred { until_round: 9 }));
        series.emit(&fault(1, FaultKind::Retransmitted));
        series.emit(&TraceEvent::ShardDrain {
            round: 1,
            shard: 0,
            nanos: 10,
            stale: 3,
        });
        let rows = series.rows();
        assert_eq!(rows[0].dropped, 2);
        assert_eq!(rows[0].duplicated, 1);
        assert_eq!(rows[1].delayed, 2);
        assert_eq!(rows[1].retransmitted, 1);
        assert_eq!(rows[1].stale_overwrites, 3);
        // The counters survive the JSONL round trip.
        let (_, parsed) = RoundRow::from_json(&rows[1].to_json("x")).unwrap();
        assert_eq!(parsed, rows[1]);
    }

    #[test]
    fn stamped_codec_round_trips_every_event_kind() {
        let events: Vec<(u64, TraceEvent)> = vec![
            (
                0,
                TraceEvent::RunStart {
                    nodes: 10,
                    shards: 3,
                },
            ),
            (5, TraceEvent::WorkerStart { shard: 2 }),
            (
                10,
                TraceEvent::RoundStart {
                    round: 0,
                    active: 10,
                },
            ),
            (
                15,
                TraceEvent::PhaseStart {
                    round: 0,
                    shard: 1,
                    phase: TracePhase::Send,
                },
            ),
            (
                20,
                TraceEvent::PhaseEnd {
                    round: 0,
                    shard: 1,
                    phase: TracePhase::Receive,
                    nanos: 5,
                },
            ),
            (
                25,
                TraceEvent::ShardFlush {
                    round: 0,
                    shard: 1,
                    wire_bytes: 64,
                    nanos: 7,
                },
            ),
            (
                30,
                TraceEvent::ShardDrain {
                    round: 0,
                    shard: 1,
                    nanos: 3,
                    stale: 1,
                },
            ),
            (
                35,
                TraceEvent::ShardRound {
                    round: 0,
                    shard: 1,
                    messages: 9,
                    bits: 90,
                    cross: 4,
                },
            ),
            (
                40,
                TraceEvent::Fault {
                    round: 0,
                    from: 1,
                    to: 2,
                    kind: FaultKind::Delayed { rounds: 3 },
                },
            ),
            (
                41,
                TraceEvent::Fault {
                    round: 0,
                    from: 2,
                    to: 1,
                    kind: FaultKind::PartitionDeferred { until_round: 8 },
                },
            ),
            (
                45,
                TraceEvent::RoundEnd {
                    round: 0,
                    active: 4,
                    nanos: 50,
                },
            ),
            (50, TraceEvent::WorkerEnd { shard: 2 }),
            (55, TraceEvent::RunEnd { rounds: 1 }),
        ];
        let payload = encode_stamped(&events);
        assert_eq!(decode_stamped(&payload).unwrap(), events);
    }

    #[test]
    fn stamped_codec_rejects_malformed_payloads() {
        // Truncated at every prefix length: error, never a panic.
        let events = vec![(7u64, TraceEvent::WorkerStart { shard: 1 })];
        let payload = encode_stamped(&events);
        for len in 0..payload.len() {
            assert!(decode_stamped(&payload[..len]).is_err(), "prefix {len}");
        }
        // Trailing garbage.
        let mut padded = payload.clone();
        padded.push(0);
        assert!(decode_stamped(&padded).is_err());
        // Unknown event tag.
        let mut bad = payload.clone();
        bad[12] = 200;
        assert!(decode_stamped(&bad).is_err());
        // Absurd count.
        let mut huge = payload;
        huge[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_stamped(&huge).is_err());
    }

    #[test]
    fn ingest_stamped_names_worker_tracks_and_keeps_origins() {
        let sink = ChromeTraceSink::new();
        // A worker blob whose own origin is its WorkerStart: merged
        // timestamps come out exactly as stamped.
        sink.ingest_stamped(&[
            (0, TraceEvent::WorkerStart { shard: 2 }),
            (
                4_000,
                TraceEvent::PhaseEnd {
                    round: 0,
                    shard: 2,
                    phase: TracePhase::Send,
                    nanos: 1_000,
                },
            ),
            (9_000, TraceEvent::WorkerEnd { shard: 2 }),
        ]);
        let mut buf = Vec::new();
        sink.write_json(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let v = JsonValue::parse(&text).expect("valid JSON");
        let events = v.get("traceEvents").and_then(JsonValue::as_array).unwrap();
        // Tracks 0..=2 are named even though no engine RunStart was seen.
        assert!(text.contains("\"name\":\"shard 2\""));
        let slice = events
            .iter()
            .find(|e| e.get("ph").and_then(JsonValue::as_str) == Some("X"))
            .expect("the ingested phase slice");
        // ts = stamp − duration = 4µs − 1µs.
        assert_eq!(slice.get("ts").and_then(JsonValue::as_f64), Some(3.0));
        assert_eq!(slice.get("pid").and_then(JsonValue::as_u64), Some(3));

        // Replay feeds a derived sink the same events, minus stamps.
        let rec = RecordingSink::new();
        sink.replay_into(&rec);
        assert_eq!(rec.len(), 3);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_per_shard_tracks() {
        let sink = ChromeTraceSink::new();
        sink.emit(&TraceEvent::RunStart {
            nodes: 10,
            shards: 2,
        });
        sink.emit(&TraceEvent::RoundStart {
            round: 0,
            active: 10,
        });
        sink.emit(&TraceEvent::PhaseEnd {
            round: 0,
            shard: 0,
            phase: TracePhase::Send,
            nanos: 2500,
        });
        sink.emit(&TraceEvent::ShardFlush {
            round: 0,
            shard: 1,
            wire_bytes: 64,
            nanos: 700,
        });
        sink.emit(&TraceEvent::ShardDrain {
            round: 0,
            shard: 1,
            nanos: 300,
            stale: 0,
        });
        sink.emit(&TraceEvent::Fault {
            round: 0,
            from: 0,
            to: 1,
            kind: FaultKind::Dropped,
        });
        sink.emit(&TraceEvent::RoundEnd {
            round: 0,
            active: 0,
            nanos: 4000,
        });
        sink.emit(&TraceEvent::RunEnd { rounds: 1 });
        assert_eq!(sink.len(), 8);

        let mut buf = Vec::new();
        sink.write_json(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let v = JsonValue::parse(&text).expect("trace must be valid JSON");
        let events = v
            .get("traceEvents")
            .and_then(JsonValue::as_array)
            .expect("traceEvents array");
        assert!(!events.is_empty());
        let mut pids = std::collections::BTreeSet::new();
        let mut nonzero_slices = 0;
        for e in events {
            assert!(e.get("ph").and_then(JsonValue::as_str).is_some());
            assert!(e.get("ts").and_then(JsonValue::as_f64).is_some());
            let pid = e.get("pid").and_then(JsonValue::as_u64).expect("pid");
            pids.insert(pid);
            if e.get("ph").and_then(JsonValue::as_str) == Some("X")
                && e.get("dur").and_then(JsonValue::as_f64).unwrap_or(0.0) > 0.0
            {
                nonzero_slices += 1;
            }
        }
        // One engine track + one track per shard.
        assert!(pids.contains(&0) && pids.contains(&1) && pids.contains(&2));
        assert!(
            nonzero_slices >= 3,
            "send/flush/drain/round slices expected"
        );
        // Fault instants land on the sending shard's track.
        assert!(text.contains("\"fault_dropped\""));
    }
}
