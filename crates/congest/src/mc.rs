//! A bounded model checker for CONGEST algorithms under message faults.
//!
//! Randomized fault injection ([`crate::faults`]) samples the schedule
//! space; this module **exhausts** it on tiny instances, dslab-mp-style:
//! every way of placing up to `max_faults` message faults (drop, duplicate,
//! one-round delay) into every round of an execution is explored, depth
//! first, and the coloring invariants are checked after every round —
//!
//! * **properness**: no two adjacent nodes ever hold the same committed
//!   color ([`Violation::ImproperEdge`]), which subsumes "no node halts
//!   with a conflicting neighbor" since committed colors are checked the
//!   round they appear;
//! * **bounded termination**: every node halts within `max_rounds`
//!   ([`Violation::NoTermination`], when the configuration requires it).
//!
//! # State-space bounds
//!
//! The explorer is exhaustive only because the instances are tiny:
//! [`check`] enforces `n ≤ `[`MC_MAX_NODES`]` = 8` nodes and
//! `max_rounds ≤ `[`MC_MAX_ROUNDS`]` = 6` rounds.  With `m` directed
//! messages per round the branching factor is `(1 + faults) ^ m` per round,
//! tamed by the fault budget: exploration proceeds by **iterative
//! deepening** over the number of faults (budget `0`, then `1`, …, up to
//! `max_faults`), so the first counterexample found uses the *minimum*
//! number of faults that can violate an invariant — a minimal trace.  An
//! execution ceiling ([`McConfig::max_executions`]) converts runaway spaces
//! into an explicit [`McVerdict::ExecutionBudgetExhausted`] instead of a
//! hung test.
//!
//! # Determinism and replay
//!
//! The explorer injects faults directly at the delivery step of a
//! single-threaded round loop — no transport, no threads — so a
//! counterexample trace (a list of [`FaultAction`]s) replays exactly with
//! [`replay`]: same graph, same algorithm constructor, same trace, same
//! violation.
//!
//! Delayed and duplicated messages arrive exactly **one round late**
//! (`max_delay = 1` in the fault-plan vocabulary); longer delays add
//! nothing on instances this small and would square the branching factor.
//!
//! The [`fixtures`] module ships a pair of tiny greedy coloring algorithms
//! — one intentionally unprotected, one hardened — that pin the explorer's
//! soundness in both directions: it must find the seeded violation and
//! must pass the hardened variant under the same budget.

use crate::algorithm::{Inbox, NodeAlgorithm, NodeContext, Outbox};
use crate::topology::TopologyView;

/// Hard ceiling on instance size: exhaustive exploration is only honest on
/// graphs at most this large.
pub const MC_MAX_NODES: usize = 8;

/// Hard ceiling on explored rounds.
pub const MC_MAX_ROUNDS: u64 = 6;

/// An algorithm the model checker can interrogate mid-run: a cloneable
/// [`NodeAlgorithm`] that exposes the color it has irrevocably committed
/// to (as opposed to [`NodeAlgorithm::output`], which is only meaningful
/// at termination).
pub trait CheckableAlgorithm: NodeAlgorithm + Clone {
    /// The color this node has committed to, if any.  Once `Some`, it must
    /// never change — the properness invariant is checked against it after
    /// every round.
    fn committed_color(&self) -> Option<u64>;
}

/// A fault the explorer can inject into one message delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum McFault {
    /// The message is not delivered.
    Drop,
    /// The message is delivered now *and* a stale copy arrives next round.
    Duplicate,
    /// The message is withheld and arrives one round late instead.
    Delay,
}

/// One injected fault, fully located: enough to replay the execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultAction {
    /// The round in which the faulted message was sent.
    pub round: u64,
    /// The destination inbox slot (a directed edge's receiving port).
    pub slot: u32,
    /// The sending node.
    pub sender: u32,
    /// The receiving node (the owner of `slot`).
    pub receiver: u32,
    /// The injected fault.
    pub kind: McFault,
}

impl std::fmt::Display for FaultAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "r{}: {:?} message {}→{} (slot {})",
            self.round, self.kind, self.sender, self.receiver, self.slot
        )
    }
}

/// A violated invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Violation {
    /// Two adjacent nodes committed the same color.
    ImproperEdge {
        /// One endpoint.
        u: usize,
        /// The other endpoint.
        v: usize,
        /// The shared committed color.
        color: u64,
    },
    /// Some node had not halted when the round bound was reached.
    NoTermination {
        /// The bound that was hit.
        rounds: u64,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::ImproperEdge { u, v, color } => {
                write!(f, "adjacent nodes {u} and {v} committed color {color}")
            }
            Violation::NoTermination { rounds } => {
                write!(f, "not all nodes halted within {rounds} rounds")
            }
        }
    }
}

/// A minimal counterexample: the violation plus the fault trace that
/// produces it (deliveries not listed are fault-free).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// What broke.
    pub violation: Violation,
    /// The minimal fault placement that breaks it, in injection order.
    pub trace: Vec<FaultAction>,
}

impl std::fmt::Display for Counterexample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "violation: {}", self.violation)?;
        writeln!(f, "minimal fault trace ({} fault(s)):", self.trace.len())?;
        for a in &self.trace {
            writeln!(f, "  {a}")?;
        }
        Ok(())
    }
}

/// The explorer's answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum McVerdict {
    /// Every explored execution kept every invariant.
    Pass {
        /// Number of complete executions explored.
        executions: u64,
    },
    /// An invariant broke; the counterexample uses the minimum number of
    /// faults that can break it (iterative deepening over the budget).
    Violated(Counterexample),
    /// The execution ceiling was hit before the space was exhausted — the
    /// verdict is inconclusive and the instance should be shrunk.
    ExecutionBudgetExhausted {
        /// Executions completed before giving up.
        executions: u64,
    },
}

/// Exploration bounds and the fault classes the adversary may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McConfig {
    /// Round bound (≤ [`MC_MAX_ROUNDS`]); executions still running at this
    /// bound are checked for [`Violation::NoTermination`].
    pub max_rounds: u64,
    /// Fault budget per execution; iterative deepening explores budgets
    /// `0..=max_faults` in order.
    pub max_faults: u32,
    /// Whether the adversary may drop messages.
    pub allow_drop: bool,
    /// Whether the adversary may duplicate messages.
    pub allow_duplicate: bool,
    /// Whether the adversary may delay messages (by one round).
    pub allow_delay: bool,
    /// Whether failing to halt within `max_rounds` is a violation.
    pub require_termination: bool,
    /// Ceiling on complete executions before the search gives up.
    pub max_executions: u64,
}

impl Default for McConfig {
    fn default() -> Self {
        Self {
            max_rounds: MC_MAX_ROUNDS,
            max_faults: 1,
            allow_drop: true,
            allow_duplicate: true,
            allow_delay: true,
            require_termination: true,
            max_executions: 200_000,
        }
    }
}

/// One branch's mutable execution state.
struct World<A: CheckableAlgorithm> {
    nodes: Vec<A>,
    /// Stale copies in flight: `(delivery round, slot, sender, message)`.
    carry: Vec<(u64, usize, u32, A::Message)>,
    trace: Vec<FaultAction>,
}

impl<A: CheckableAlgorithm> Clone for World<A> {
    fn clone(&self) -> Self {
        Self {
            nodes: self.nodes.clone(),
            carry: self.carry.clone(),
            trace: self.trace.clone(),
        }
    }
}

enum Flow {
    Clean,
    Found(Counterexample),
    Exhausted,
}

struct Search<'a, T: TopologyView> {
    topology: &'a T,
    config: &'a McConfig,
    contexts: Vec<NodeContext>,
    /// `slot_owner[s]` is the node whose port range contains slot `s`.
    slot_owner: Vec<u32>,
    executions: u64,
}

impl<T: TopologyView> Search<'_, T> {
    /// Counts one complete execution against the ceiling.
    fn leaf(&mut self) -> Flow {
        self.executions += 1;
        if self.executions > self.config.max_executions {
            Flow::Exhausted
        } else {
            Flow::Clean
        }
    }

    fn committed_violation<A: CheckableAlgorithm>(&self, nodes: &[A]) -> Option<Violation> {
        for v in 0..nodes.len() {
            if let Some(c) = nodes[v].committed_color() {
                for p in 0..self.topology.degree(v) {
                    let u = self.topology.neighbor_at(v, p);
                    if u > v && nodes[u].committed_color() == Some(c) {
                        return Some(Violation::ImproperEdge {
                            u: v,
                            v: u,
                            color: c,
                        });
                    }
                }
            }
        }
        None
    }

    fn explore_round<A: CheckableAlgorithm>(
        &mut self,
        mut world: World<A>,
        round: u64,
        budget_left: u32,
    ) -> Flow {
        if world.nodes.iter().all(|n| n.is_halted()) {
            return self.leaf();
        }
        if round >= self.config.max_rounds {
            let flow = self.leaf();
            if !matches!(flow, Flow::Clean) {
                return flow;
            }
            if self.config.require_termination {
                return Flow::Found(Counterexample {
                    violation: Violation::NoTermination { rounds: round },
                    trace: std::mem::take(&mut world.trace),
                });
            }
            return Flow::Clean;
        }
        let active: Vec<usize> = (0..world.nodes.len())
            .filter(|&v| !world.nodes[v].is_halted())
            .collect();
        // The send phase is fault-independent, so it runs once, before the
        // branch point; only delivery decisions are explored.
        let mut msgs: Vec<(usize, u32, A::Message)> = Vec::new();
        for &v in &active {
            let ctx = NodeContext {
                round,
                ..self.contexts[v]
            };
            let mut stage = |p: usize, m: A::Message| {
                let u = self.topology.neighbor_at(v, p);
                let slot = self.topology.port_range(u).start + self.topology.reverse_port(v, p);
                msgs.push((slot, v as u32, m));
            };
            match world.nodes[v].send(&ctx) {
                Outbox::Silent => {}
                Outbox::Broadcast(m) => {
                    for p in 0..self.topology.degree(v) {
                        stage(p, m.clone());
                    }
                }
                Outbox::PerPort(list) => {
                    for (p, m) in list {
                        stage(p, m);
                    }
                }
            }
        }
        let mut chosen: Vec<Option<McFault>> = Vec::with_capacity(msgs.len());
        self.explore_decisions(&world, round, &active, &msgs, &mut chosen, budget_left)
    }

    /// Enumerates the fault assignment for this round's messages, depth
    /// first, fault-free deliveries before faulted ones.
    fn explore_decisions<A: CheckableAlgorithm>(
        &mut self,
        world: &World<A>,
        round: u64,
        active: &[usize],
        msgs: &[(usize, u32, A::Message)],
        chosen: &mut Vec<Option<McFault>>,
        budget_left: u32,
    ) -> Flow {
        if chosen.len() == msgs.len() {
            return self.apply_and_continue(world, round, active, msgs, chosen, budget_left);
        }
        chosen.push(None);
        let flow = self.explore_decisions(world, round, active, msgs, chosen, budget_left);
        chosen.pop();
        if !matches!(flow, Flow::Clean) {
            return flow;
        }
        if budget_left > 0 {
            for (kind, allowed) in [
                (McFault::Drop, self.config.allow_drop),
                (McFault::Duplicate, self.config.allow_duplicate),
                (McFault::Delay, self.config.allow_delay),
            ] {
                if !allowed {
                    continue;
                }
                chosen.push(Some(kind));
                let flow =
                    self.explore_decisions(world, round, active, msgs, chosen, budget_left - 1);
                chosen.pop();
                if !matches!(flow, Flow::Clean) {
                    return flow;
                }
            }
        }
        Flow::Clean
    }

    fn apply_and_continue<A: CheckableAlgorithm>(
        &mut self,
        world: &World<A>,
        round: u64,
        active: &[usize],
        msgs: &[(usize, u32, A::Message)],
        chosen: &[Option<McFault>],
        budget_left: u32,
    ) -> Flow {
        let mut child = world.clone();
        let mut slots: Vec<Option<A::Message>> = (0..self.topology.num_directed_edges())
            .map(|_| None)
            .collect();
        // Stale copies scheduled for this round land first, so a fresh
        // message over the same edge wins the slot (newest-wins, matching
        // the async delivery mode of the executors).
        let mut rest = Vec::new();
        for (r, slot, sender, msg) in child.carry.drain(..) {
            if r == round {
                slots[slot] = Some(msg);
            } else {
                rest.push((r, slot, sender, msg));
            }
        }
        child.carry = rest;
        for (i, (slot, sender, msg)) in msgs.iter().enumerate() {
            let action = |kind| FaultAction {
                round,
                slot: *slot as u32,
                sender: *sender,
                receiver: self.slot_owner[*slot],
                kind,
            };
            match chosen[i] {
                None => slots[*slot] = Some(msg.clone()),
                Some(McFault::Drop) => child.trace.push(action(McFault::Drop)),
                Some(McFault::Duplicate) => {
                    slots[*slot] = Some(msg.clone());
                    child.carry.push((round + 1, *slot, *sender, msg.clone()));
                    child.trace.push(action(McFault::Duplicate));
                }
                Some(McFault::Delay) => {
                    child.carry.push((round + 1, *slot, *sender, msg.clone()));
                    child.trace.push(action(McFault::Delay));
                }
            }
        }
        for &v in active {
            let ctx = NodeContext {
                round,
                ..self.contexts[v]
            };
            let r = self.topology.port_range(v);
            let inbox = Inbox::from_slots(&slots[r]);
            child.nodes[v].receive(&ctx, &inbox);
        }
        if let Some(violation) = self.committed_violation(&child.nodes) {
            return Flow::Found(Counterexample {
                violation,
                trace: std::mem::take(&mut child.trace),
            });
        }
        self.explore_round(child, round + 1, budget_left)
    }
}

fn make_search<'a, T: TopologyView>(topology: &'a T, config: &'a McConfig) -> Search<'a, T> {
    let n = topology.num_nodes();
    assert!(
        n <= MC_MAX_NODES,
        "the model checker is exhaustive only up to {MC_MAX_NODES} nodes, got {n}"
    );
    assert!(
        config.max_rounds <= MC_MAX_ROUNDS,
        "the model checker explores at most {MC_MAX_ROUNDS} rounds, got {}",
        config.max_rounds
    );
    let contexts: Vec<NodeContext> = (0..n)
        .map(|v| NodeContext {
            node: v,
            degree: topology.degree(v),
            n,
            max_degree: topology.max_degree(),
            round: 0,
        })
        .collect();
    let mut slot_owner = vec![0u32; topology.num_directed_edges()];
    for v in 0..n {
        for s in topology.port_range(v) {
            slot_owner[s] = v as u32;
        }
    }
    Search {
        topology,
        config,
        contexts,
        slot_owner,
        executions: 0,
    }
}

/// Exhaustively explores every placement of up to `config.max_faults`
/// faults on executions of the algorithm built by `mk`, on `topology`
/// (`n ≤ `[`MC_MAX_NODES`], `max_rounds ≤ `[`MC_MAX_ROUNDS`] — enforced by
/// panic, since violating the bounds silently would fake exhaustiveness).
///
/// Iterative deepening over the fault budget guarantees that a
/// [`McVerdict::Violated`] counterexample uses the minimum number of
/// faults able to break an invariant.
pub fn check<T: TopologyView, A: CheckableAlgorithm, F: Fn() -> Vec<A>>(
    topology: &T,
    mk: F,
    config: &McConfig,
) -> McVerdict {
    let mut search = make_search(topology, config);
    for budget in 0..=config.max_faults {
        let mut nodes = mk();
        assert_eq!(
            nodes.len(),
            topology.num_nodes(),
            "need exactly one algorithm instance per node"
        );
        for (v, node) in nodes.iter_mut().enumerate() {
            node.init(&search.contexts[v]);
        }
        let world = World {
            nodes,
            carry: Vec::new(),
            trace: Vec::new(),
        };
        match search.explore_round(world, 0, budget) {
            Flow::Clean => {}
            Flow::Found(ce) => return McVerdict::Violated(ce),
            Flow::Exhausted => {
                return McVerdict::ExecutionBudgetExhausted {
                    executions: search.executions,
                }
            }
        }
    }
    McVerdict::Pass {
        executions: search.executions,
    }
}

/// Re-executes one run deterministically, injecting exactly the faults of
/// `trace` (matched by `(round, slot, kind)`), and returns the first
/// violation — [`check`]'s counterexamples reproduce under `replay` with
/// the same violation, which the determinism tests pin.
pub fn replay<T: TopologyView, A: CheckableAlgorithm, F: Fn() -> Vec<A>>(
    topology: &T,
    mk: F,
    trace: &[FaultAction],
    config: &McConfig,
) -> Option<Violation> {
    let mut search = make_search(topology, config);
    let mut nodes = mk();
    assert_eq!(nodes.len(), topology.num_nodes());
    for (v, node) in nodes.iter_mut().enumerate() {
        node.init(&search.contexts[v]);
    }
    let mut world = World {
        nodes,
        carry: Vec::new(),
        trace: Vec::new(),
    };
    for round in 0..config.max_rounds {
        if world.nodes.iter().all(|n| n.is_halted()) {
            return None;
        }
        let active: Vec<usize> = (0..world.nodes.len())
            .filter(|&v| !world.nodes[v].is_halted())
            .collect();
        let mut msgs: Vec<(usize, u32, A::Message)> = Vec::new();
        for &v in &active {
            let ctx = NodeContext {
                round,
                ..search.contexts[v]
            };
            let mut stage = |p: usize, m: A::Message| {
                let u = topology.neighbor_at(v, p);
                let slot = topology.port_range(u).start + topology.reverse_port(v, p);
                msgs.push((slot, v as u32, m));
            };
            match world.nodes[v].send(&ctx) {
                Outbox::Silent => {}
                Outbox::Broadcast(m) => {
                    for p in 0..topology.degree(v) {
                        stage(p, m.clone());
                    }
                }
                Outbox::PerPort(list) => {
                    for (p, m) in list {
                        stage(p, m);
                    }
                }
            }
        }
        let chosen: Vec<Option<McFault>> = msgs
            .iter()
            .map(|(slot, _, _)| {
                trace
                    .iter()
                    .find(|a| a.round == round && a.slot == *slot as u32)
                    .map(|a| a.kind)
            })
            .collect();
        if let Some(v) =
            search.apply_and_continue_replay(&mut world, round, &active, &msgs, &chosen)
        {
            return Some(v);
        }
    }
    if world.nodes.iter().any(|n| !n.is_halted()) {
        return Some(Violation::NoTermination {
            rounds: config.max_rounds,
        });
    }
    None
}

impl<T: TopologyView> Search<'_, T> {
    /// The delivery/receive/check step of [`replay`]: like
    /// `apply_and_continue` but mutating in place, no branching.
    fn apply_and_continue_replay<A: CheckableAlgorithm>(
        &mut self,
        world: &mut World<A>,
        round: u64,
        active: &[usize],
        msgs: &[(usize, u32, A::Message)],
        chosen: &[Option<McFault>],
    ) -> Option<Violation> {
        let mut slots: Vec<Option<A::Message>> = (0..self.topology.num_directed_edges())
            .map(|_| None)
            .collect();
        let mut rest = Vec::new();
        for (r, slot, sender, msg) in world.carry.drain(..) {
            if r == round {
                slots[slot] = Some(msg);
            } else {
                rest.push((r, slot, sender, msg));
            }
        }
        world.carry = rest;
        for (i, (slot, sender, msg)) in msgs.iter().enumerate() {
            match chosen[i] {
                None => slots[*slot] = Some(msg.clone()),
                Some(McFault::Drop) => {}
                Some(McFault::Duplicate) => {
                    slots[*slot] = Some(msg.clone());
                    world.carry.push((round + 1, *slot, *sender, msg.clone()));
                }
                Some(McFault::Delay) => {
                    world.carry.push((round + 1, *slot, *sender, msg.clone()));
                }
            }
        }
        for &v in active {
            let ctx = NodeContext {
                round,
                ..self.contexts[v]
            };
            let r = self.topology.port_range(v);
            let inbox = Inbox::from_slots(&slots[r]);
            world.nodes[v].receive(&ctx, &inbox);
        }
        self.committed_violation(&world.nodes)
    }
}

pub mod fixtures {
    //! Tiny greedy coloring algorithms that pin the explorer's soundness.
    //!
    //! [`GreedyUnprotected`] is fault-free correct but **intentionally
    //! unprotected**: a single dropped message makes two adjacent nodes
    //! commit the same color, so the explorer must find a one-fault
    //! counterexample.  [`GreedyRobust`] hardens the same algorithm with
    //! persistent per-port knowledge, idempotent re-announcement and a
    //! halting grace period, and must pass under the same budget.

    use super::CheckableAlgorithm;
    use crate::algorithm::{Inbox, MessageSize, NodeAlgorithm, NodeContext, Outbox};
    use crate::wire::{color_width, read_color, write_color, BitReader, BitWriter, WireError};

    /// The two-message vocabulary of the greedy fixtures.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum GreedyMessage {
        /// "I have not decided yet; my identifier is `id`."
        Undecided {
            /// The sender's unique identifier.
            id: u64,
        },
        /// "I have committed to `color`."
        Decided {
            /// The committed color.
            color: u64,
        },
    }

    impl MessageSize for GreedyMessage {
        fn bit_size(&self) -> u64 {
            1 + match self {
                GreedyMessage::Undecided { id } => color_width(*id) as u64,
                GreedyMessage::Decided { color } => color_width(*color) as u64,
            }
        }
    }

    impl crate::wire::WireMessage for GreedyMessage {
        fn encode(&self, w: &mut BitWriter) -> u8 {
            match self {
                GreedyMessage::Undecided { id } => {
                    w.write_bits(0, 1);
                    write_color(w, *id);
                }
                GreedyMessage::Decided { color } => {
                    w.write_bits(1, 1);
                    write_color(w, *color);
                }
            }
            0
        }

        fn decode(r: &mut BitReader<'_>, bits: u16, _aux: u8) -> Result<Self, WireError> {
            let tag = r.read_bits(1)?;
            let value = read_color(r, bits as u32 - 1)?;
            Ok(if tag == 0 {
                GreedyMessage::Undecided { id: value }
            } else {
                GreedyMessage::Decided { color: value }
            })
        }
    }

    /// Greedy coloring by local identifier order, with **single-shot**
    /// announcements: correct when every message arrives, broken by one
    /// drop.  An undecided node broadcasts its identifier; it commits to
    /// the smallest free color in any round where it hears no smaller
    /// undecided identifier; it announces the color once and halts.
    ///
    /// Two failure modes, both reachable with one fault:
    /// a dropped `Undecided` unblocks a larger neighbor into deciding in
    /// the same round with the same free-color view, and a dropped
    /// `Decided` leaves the neighborhood unaware a color is taken.
    #[derive(Debug, Clone, Default)]
    pub struct GreedyUnprotected {
        id: u64,
        decided: Option<u64>,
        announced: bool,
        taken: u64,
    }

    impl GreedyUnprotected {
        /// One undecided, unannounced node.
        pub fn new() -> Self {
            Self::default()
        }
    }

    fn first_free(taken: u64) -> u64 {
        (0..64).find(|c| taken & (1 << c) == 0).expect("free color") as u64
    }

    impl NodeAlgorithm for GreedyUnprotected {
        type Message = GreedyMessage;
        type Output = Option<u64>;

        fn init(&mut self, ctx: &NodeContext) {
            self.id = ctx.node as u64;
        }

        fn send(&mut self, _ctx: &NodeContext) -> Outbox<GreedyMessage> {
            match self.decided {
                None => Outbox::Broadcast(GreedyMessage::Undecided { id: self.id }),
                Some(color) if !self.announced => {
                    self.announced = true;
                    Outbox::Broadcast(GreedyMessage::Decided { color })
                }
                Some(_) => Outbox::Silent,
            }
        }

        fn receive(&mut self, _ctx: &NodeContext, inbox: &Inbox<'_, GreedyMessage>) {
            let mut blocked = false;
            for (_, m) in inbox.iter() {
                match m {
                    GreedyMessage::Undecided { id } if *id < self.id => blocked = true,
                    GreedyMessage::Undecided { .. } => {}
                    GreedyMessage::Decided { color } => self.taken |= 1 << color,
                }
            }
            if self.decided.is_none() && !blocked {
                self.decided = Some(first_free(self.taken));
            }
        }

        fn is_halted(&self) -> bool {
            self.announced
        }

        fn output(&self) -> Option<u64> {
            self.decided
        }
    }

    impl CheckableAlgorithm for GreedyUnprotected {
        fn committed_color(&self) -> Option<u64> {
            self.decided
        }
    }

    /// What a [`GreedyRobust`] node knows about one port's neighbor.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum PortKnowledge {
        Unknown,
        Active(u64),
        Done(u64),
    }

    /// The hardened greedy coloring: same identifier-order rule as
    /// [`GreedyUnprotected`], made fault- and reorder-tolerant by
    ///
    /// * **persistent per-port knowledge** — a port is `Unknown` until its
    ///   neighbor is heard, so a dropped message blocks (delays) instead
    ///   of unblocking;
    /// * **idempotent re-announcement** — every round re-broadcasts the
    ///   current state, and `Done` knowledge is sticky, so duplicates and
    ///   stale copies change nothing;
    /// * **a halting grace period** — a node does not halt until it has
    ///   broadcast its `Decided` color at least `grace + 1` times *and*
    ///   all its ports are `Done`, so up to `grace` dropped announcements
    ///   per edge cannot strand a neighbor: at least one announcement gets
    ///   through before the sender goes silent.
    ///
    /// Declares [`NodeAlgorithm::tolerates_async_delivery`], and must pass
    /// the explorer whenever the fault budget is at most `grace`.
    #[derive(Debug, Clone)]
    pub struct GreedyRobust {
        id: u64,
        grace: u64,
        decided: Option<u64>,
        ports: Vec<PortKnowledge>,
        announcements: u64,
        halted: bool,
    }

    impl GreedyRobust {
        /// A node that makes `grace` extra announcements before halting;
        /// pick `grace ≥` the adversary's fault budget.
        pub fn new(grace: u64) -> Self {
            Self {
                id: 0,
                grace,
                decided: None,
                ports: Vec::new(),
                announcements: 0,
                halted: false,
            }
        }
    }

    impl NodeAlgorithm for GreedyRobust {
        type Message = GreedyMessage;
        type Output = Option<u64>;

        fn init(&mut self, ctx: &NodeContext) {
            self.id = ctx.node as u64;
            self.ports = vec![PortKnowledge::Unknown; ctx.degree];
        }

        fn send(&mut self, _ctx: &NodeContext) -> Outbox<GreedyMessage> {
            match self.decided {
                None => Outbox::Broadcast(GreedyMessage::Undecided { id: self.id }),
                Some(color) => {
                    self.announcements += 1;
                    Outbox::Broadcast(GreedyMessage::Decided { color })
                }
            }
        }

        fn receive(&mut self, _ctx: &NodeContext, inbox: &Inbox<'_, GreedyMessage>) {
            for (p, m) in inbox.iter() {
                match m {
                    // Done is sticky: a stale Undecided arriving after the
                    // neighbor's color is known must not reopen the port.
                    GreedyMessage::Undecided { id } => {
                        if !matches!(self.ports[p], PortKnowledge::Done(_)) {
                            self.ports[p] = PortKnowledge::Active(*id);
                        }
                    }
                    GreedyMessage::Decided { color } => {
                        self.ports[p] = PortKnowledge::Done(*color);
                    }
                }
            }
            if self.decided.is_none() {
                let blocked = self.ports.iter().any(|k| match k {
                    PortKnowledge::Unknown => true,
                    PortKnowledge::Active(id) => *id < self.id,
                    PortKnowledge::Done(_) => false,
                });
                if !blocked {
                    let taken = self.ports.iter().fold(0u64, |acc, k| match k {
                        PortKnowledge::Done(c) => acc | (1 << c),
                        _ => acc,
                    });
                    self.decided = Some(first_free(taken));
                }
            }
            let all_done = self
                .ports
                .iter()
                .all(|k| matches!(k, PortKnowledge::Done(_)));
            if self.decided.is_some() && all_done && self.announcements > self.grace {
                self.halted = true;
            }
        }

        fn is_halted(&self) -> bool {
            self.halted
        }

        fn output(&self) -> Option<u64> {
            self.decided
        }

        fn tolerates_async_delivery(&self) -> bool {
            true
        }
    }

    impl CheckableAlgorithm for GreedyRobust {
        fn committed_color(&self) -> Option<u64> {
            self.decided
        }
    }
}

#[cfg(test)]
mod tests {
    use super::fixtures::{GreedyRobust, GreedyUnprotected};
    use super::*;
    use crate::topology::Topology;

    fn path2() -> Topology {
        Topology::from_edges(2, &[(0, 1)]).unwrap()
    }

    fn triangle() -> Topology {
        Topology::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap()
    }

    #[test]
    fn mc_fault_free_greedy_passes_at_budget_zero() {
        let config = McConfig {
            max_faults: 0,
            ..McConfig::default()
        };
        for g in [path2(), triangle()] {
            let n = g.num_nodes();
            let verdict = check(&g, || vec![GreedyUnprotected::new(); n], &config);
            assert!(matches!(verdict, McVerdict::Pass { executions: 1 }));
        }
    }

    #[test]
    fn mc_unprotected_greedy_breaks_with_one_fault_and_replays() {
        let g = path2();
        let config = McConfig::default();
        let mk = || vec![GreedyUnprotected::new(); 2];
        let verdict = check(&g, mk, &config);
        let McVerdict::Violated(ce) = verdict else {
            panic!("expected a violation, got {verdict:?}");
        };
        assert_eq!(
            ce.trace.len(),
            1,
            "one fault suffices, so the minimal trace has one action"
        );
        assert!(matches!(
            ce.violation,
            Violation::ImproperEdge { u: 0, v: 1, .. }
        ));
        // The trace replays to the identical violation.
        assert_eq!(replay(&g, mk, &ce.trace, &config), Some(ce.violation));
        // And the zero-fault replay is clean.
        assert_eq!(replay(&g, mk, &[], &config), None);
    }

    #[test]
    fn mc_unprotected_greedy_breaks_on_the_triangle_too() {
        let g = triangle();
        let mk = || vec![GreedyUnprotected::new(); 3];
        let verdict = check(&g, mk, &McConfig::default());
        let McVerdict::Violated(ce) = verdict else {
            panic!("expected a violation, got {verdict:?}");
        };
        assert_eq!(ce.trace.len(), 1);
        assert_eq!(
            replay(&g, mk, &ce.trace, &McConfig::default()),
            Some(ce.violation)
        );
    }

    #[test]
    fn mc_robust_greedy_passes_under_the_same_budget() {
        for g in [path2(), triangle()] {
            let n = g.num_nodes();
            let verdict = check(&g, || vec![GreedyRobust::new(1); n], &McConfig::default());
            assert!(
                matches!(verdict, McVerdict::Pass { .. }),
                "robust greedy must survive one fault on {n} nodes, got {verdict:?}"
            );
        }
    }

    #[test]
    fn mc_execution_ceiling_is_an_explicit_verdict() {
        let config = McConfig {
            max_executions: 3,
            max_faults: 2,
            ..McConfig::default()
        };
        let verdict = check(&triangle(), || vec![GreedyRobust::new(2); 3], &config);
        assert!(matches!(
            verdict,
            McVerdict::ExecutionBudgetExhausted { executions: 4 }
        ));
    }

    #[test]
    #[should_panic(expected = "exhaustive only up to")]
    fn mc_rejects_oversized_instances() {
        let g = Topology::from_edges(9, &[(0, 1)]).unwrap();
        let _ = check(
            &g,
            || vec![GreedyUnprotected::new(); 9],
            &McConfig::default(),
        );
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn mc_rejects_oversized_round_bounds() {
        let config = McConfig {
            max_rounds: 7,
            ..McConfig::default()
        };
        let _ = check(&path2(), || vec![GreedyUnprotected::new(); 2], &config);
    }
}
