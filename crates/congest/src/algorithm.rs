//! The per-node algorithm interface.
//!
//! A distributed algorithm is a state machine replicated at every node.  Per
//! synchronous round the simulator
//!
//! 1. asks every *active* node for its outgoing messages ([`NodeAlgorithm::send`]),
//! 2. delivers all messages along the edges,
//! 3. hands every active node its inbox ([`NodeAlgorithm::receive`]).
//!
//! A node signals termination through [`NodeAlgorithm::is_halted`]; a halted
//! node neither sends nor receives (its last messages of the round in which
//! it halted are still delivered).  When all nodes have halted, the round in
//! which the last node halted is the measured round complexity.
//!
//! # Accounting for messages sent to halted nodes
//!
//! Neighbours of a halted node generally cannot know it has halted, so they
//! may keep transmitting to it.  The engine charges **every transmitted
//! message** to [`RunMetrics`](crate::RunMetrics) — including messages
//! addressed to halted receivers, which occupy the wire exactly like any
//! other CONGEST message — but a halted receiver simply discards them: its
//! `receive` is never invoked again, so its state and output are unaffected.
//! This "charge the sender, discard at the sleeping receiver" semantics is a
//! deliberate, documented choice (pinned by a regression test): round and
//! bandwidth complexity measure what the *network* carries, not what
//! receivers choose to read.
//!
//! Nodes address neighbours exclusively through *ports* — they never learn
//! neighbour identifiers unless a neighbour announces its own, which mirrors
//! the LOCAL/CONGEST assumption that nodes "are unaware of the IDs of their
//! neighbors" (Section 1.1 of the paper).

use crate::topology::Port;

/// Bit-size accounting for CONGEST bandwidth checks.
///
/// Every message type used with the simulator reports how many bits it would
/// occupy on the wire.  The simulator records the maximum over all messages
/// of a run so experiments can assert the `O(log n)` CONGEST bound.
pub trait MessageSize {
    /// The number of bits this message occupies on the wire.
    fn bit_size(&self) -> u64;
}

impl MessageSize for u64 {
    fn bit_size(&self) -> u64 {
        64 - self.leading_zeros() as u64
    }
}

impl MessageSize for () {
    fn bit_size(&self) -> u64 {
        1
    }
}

/// Read-only per-node information available in every round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeContext {
    /// The node's own identifier (usable as an input color / unique ID).
    pub node: usize,
    /// The node's degree (number of ports).
    pub degree: usize,
    /// The global number of nodes `n` (global knowledge, as in the paper).
    pub n: usize,
    /// The global maximum degree `Δ` (global knowledge).
    pub max_degree: u32,
    /// The current round, starting at 0 for the first send/receive exchange.
    pub round: u64,
}

/// What a node wants to transmit in one round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outbox<M> {
    /// Send nothing this round.
    Silent,
    /// Send the same message over every port (the common case for the
    /// paper's algorithms: announce your input color / your adopted color).
    Broadcast(M),
    /// Send distinct messages over selected ports.
    PerPort(Vec<(Port, M)>),
}

impl<M> Outbox<M> {
    /// True if nothing is sent.
    pub fn is_silent(&self) -> bool {
        matches!(self, Outbox::Silent) || matches!(self, Outbox::PerPort(v) if v.is_empty())
    }
}

/// The messages a node received in one round, indexed by the port on which
/// they arrived.
///
/// An inbox is a zero-copy *view* into the engine's per-run [`RoundState`]
/// arena: one slot per port, `Some(msg)` if a message arrived on that port
/// this round.  Because the CONGEST model allows at most one message per
/// edge per round, a slot per port is always enough (the engine rejects
/// algorithms that try to send twice over the same port in one round).
///
/// [`RoundState`]: crate::executor::RoundState
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Inbox<'a, M> {
    slots: &'a [Option<M>],
}

impl<'a, M> Inbox<'a, M> {
    /// Creates an inbox viewing one slot per port (`slots[p]` holds the
    /// message that arrived on port `p`, if any).
    pub fn from_slots(slots: &'a [Option<M>]) -> Self {
        Self { slots }
    }

    /// An empty inbox.
    pub fn empty() -> Self {
        Self { slots: &[] }
    }

    /// Iterator over `(port, message)` pairs in port order.
    pub fn iter(&self) -> impl Iterator<Item = (Port, &'a M)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(p, m)| m.as_ref().map(|m| (p, m)))
    }

    /// The contiguous per-port slot slice backing this inbox (`slots[p]`
    /// holds port `p`'s message, if any) — straight out of the executor's
    /// CSR slot arena.  Batched receive loops scan this directly (e.g.
    /// `inbox.slots().iter().flatten()` when ports don't matter): one
    /// linear pass over adjacent memory the compiler can unroll and
    /// vectorise, where [`iter`](Self::iter)'s filter-map chain would
    /// re-branch per slot.
    pub fn slots(&self) -> &'a [Option<M>] {
        self.slots
    }

    /// The message that arrived on `port`, if any.
    pub fn from_port(&self, port: Port) -> Option<&'a M> {
        self.slots.get(port)?.as_ref()
    }

    /// Number of messages received.
    ///
    /// This scans the node's port slots, so it costs `O(deg(v))`; prefer a
    /// single [`Inbox::iter`] pass over repeated `len()` calls.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|m| m.is_some()).count()
    }

    /// Whether no message was received.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(|m| m.is_none())
    }
}

/// The per-node state machine of a distributed algorithm.
///
/// Implementations must be deterministic functions of their explicit state
/// for runs to be reproducible and executor-independent (the parallel and
/// sequential executors are required to produce identical outputs).
pub trait NodeAlgorithm: Send {
    /// The message type exchanged over edges.
    ///
    /// `Sync` is required because the pooled executor's workers read their
    /// nodes' inbox slots concurrently from the shared round arena; message
    /// types are plain data in practice, so the bound is automatic.
    ///
    /// [`WireMessage`](crate::wire::WireMessage) is required because in
    /// CONGEST a message is, by definition, a bounded bit string on a wire:
    /// every message type must say how it is encoded, which is what lets
    /// the socket transports run any algorithm across real sockets and
    /// lets the bandwidth tests check the recorded
    /// [`MessageSize::bit_size`] against actual encoded bits.
    type Message: Clone + Send + Sync + MessageSize + crate::wire::WireMessage;
    /// The node's final output (e.g. its color).
    type Output: Clone + Send;

    /// Called once before round 0 with the node's static context.
    fn init(&mut self, ctx: &NodeContext);

    /// Produces this round's outgoing messages.
    fn send(&mut self, ctx: &NodeContext) -> Outbox<Self::Message>;

    /// Consumes this round's incoming messages and updates local state.
    fn receive(&mut self, ctx: &NodeContext, inbox: &Inbox<'_, Self::Message>);

    /// Whether this node has terminated (produced its final output).
    fn is_halted(&self) -> bool;

    /// The node's output.  Only meaningful once [`Self::is_halted`] is true,
    /// or when the simulator stops the run at its round cap.
    fn output(&self) -> Self::Output;

    /// Whether this algorithm's invariants survive **stale or reordered**
    /// message delivery — the async-round execution mode used by
    /// fault-injected runs
    /// ([`DeliveryMode::Async`](crate::executor::DeliveryMode)), where a
    /// message may cross a round boundary and a port slot keeps the most
    /// recently arrived message instead of panicking on a second write.
    ///
    /// The default is `false`: synchronous CONGEST algorithms are allowed to
    /// assume every round-`r` message arrives at the round-`r` barrier, and
    /// the fault harness uses this declaration to classify an invariant
    /// violation as *expected under the declared model* rather than a bug.
    /// Override to `true` only for algorithms that are explicitly
    /// self-stabilizing against reordering (e.g. ones that re-announce
    /// state every round and treat messages idempotently).
    fn tolerates_async_delivery(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inbox_views_slots_in_port_order() {
        let slots = [Some("a"), None, Some("c"), Some("d")];
        let inbox = Inbox::from_slots(&slots);
        let collected: Vec<_> = inbox.iter().map(|(p, m)| (p, *m)).collect();
        assert_eq!(collected, vec![(0, "a"), (2, "c"), (3, "d")]);
        assert_eq!(inbox.from_port(2), Some(&"c"));
        assert_eq!(inbox.from_port(1), None);
        assert_eq!(inbox.from_port(7), None);
        assert_eq!(inbox.len(), 3);
        assert!(!inbox.is_empty());
        assert!(Inbox::<u64>::empty().is_empty());
        assert_eq!(Inbox::<u64>::empty().len(), 0);
    }

    #[test]
    fn outbox_silence() {
        assert!(Outbox::<u64>::Silent.is_silent());
        assert!(Outbox::<u64>::PerPort(vec![]).is_silent());
        assert!(!Outbox::Broadcast(3u64).is_silent());
        assert!(!Outbox::PerPort(vec![(0, 1u64)]).is_silent());
    }

    #[test]
    fn u64_message_size_is_bit_length() {
        assert_eq!(0u64.bit_size(), 0);
        assert_eq!(1u64.bit_size(), 1);
        assert_eq!(255u64.bit_size(), 8);
        assert_eq!(256u64.bit_size(), 9);
        assert_eq!(().bit_size(), 1);
    }
}
