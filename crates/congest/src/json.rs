//! A minimal, dependency-free JSON parser.
//!
//! The workspace's vendored `serde` is a marker-only stub (see
//! `crates/compat/`), so every JSON emitter here is hand-rolled — and until
//! now nothing could *read* those emissions back.  This module is the
//! missing reading half: a strict recursive-descent parser used by the
//! JSONL round-trip tests for [`RunMetrics`](crate::RunMetrics) rows, the
//! round-series rows of [`crate::trace::RoundSeries`], and the CI
//! validation of Chrome trace files produced by
//! [`crate::trace::ChromeTraceSink`].
//!
//! Numbers keep their raw lexeme ([`JsonValue::Number`]) so `u64` counters
//! round-trip losslessly — an `f64` intermediate would corrupt values above
//! 2^53 (a plausible `total_bits` at `n = 10^9`).

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` or `false`.
    Bool(bool),
    /// A number, kept as its raw lexeme for lossless integer round-trips;
    /// convert with [`JsonValue::as_u64`] / [`JsonValue::as_f64`].
    Number(String),
    /// A string, with escape sequences already decoded.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, members in source order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses a complete JSON document; trailing non-whitespace is an error.
    pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the JSON value"));
        }
        Ok(v)
    }

    /// Member lookup on an object (first match); `None` on other variants.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an integral number in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(lexeme) => lexeme.parse().ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(lexeme) => lexeme.parse().ok(),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object members in source order, if the value is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(members) => Some(members),
            _ => None,
        }
    }
}

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub pos: usize,
    /// Human-readable description of the failure.
    pub msg: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Nesting depth cap; the workspace's own emissions nest 3 levels deep, so
/// this only guards against stack exhaustion on hostile input.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { pos: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, word: &str, msg: &'static str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("value nested too deeply"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self
                .literal("true", "expected `true`")
                .map(|()| JsonValue::Bool(true)),
            Some(b'f') => self
                .literal("false", "expected `false`")
                .map(|()| JsonValue::Bool(false)),
            Some(b'n') => self
                .literal("null", "expected `null`")
                .map(|()| JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'{', "expected `{`")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected `:` after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'[', "expected `[`")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected `\"`")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy the longest escape-free, ASCII-or-UTF-8 run in one go.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            // The input is a &str, so slicing on these boundaries is valid
            // UTF-8 (we only stop on ASCII bytes, never mid-codepoint).
            out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).expect("input is str"));
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape_into(&mut out)?;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape_into(&mut self, out: &mut String) -> Result<(), JsonError> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let cp = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: `\uXXXX\uXXXX`.
                    self.literal("\\u", "expected low surrogate")?;
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                } else {
                    hi
                };
                out.push(char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?);
            }
            _ => return Err(self.err("invalid escape character")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v: u32 = 0;
        for _ in 0..4 {
            let d = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = match d {
                b'0'..=b'9' => u32::from(d - b'0'),
                b'a'..=b'f' => u32::from(d - b'a') + 10,
                b'A'..=b'F' => u32::from(d - b'A') + 10,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            v = (v << 4) | digit;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_digits = self.digits();
        if int_digits == 0 {
            return Err(self.err("expected digits in number"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if self.digits() == 0 {
                return Err(self.err("expected digits after decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if self.digits() == 0 {
                return Err(self.err("expected digits in exponent"));
            }
        }
        let lexeme = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII lexeme");
        Ok(JsonValue::Number(lexeme.to_string()))
    }

    fn digits(&mut self) -> usize {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        self.pos - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse(" false ").unwrap(), JsonValue::Bool(false));
        assert_eq!(JsonValue::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(JsonValue::parse("-1.5e3").unwrap().as_f64(), Some(-1500.0));
        assert_eq!(JsonValue::parse("\"hi\"").unwrap().as_str(), Some("hi"));
    }

    #[test]
    fn u64_counters_round_trip_losslessly() {
        let big = u64::MAX.to_string();
        assert_eq!(JsonValue::parse(&big).unwrap().as_u64(), Some(u64::MAX));
        // 2^53 + 1 is exactly where an f64 intermediate would corrupt.
        let v = JsonValue::parse("9007199254740993").unwrap();
        assert_eq!(v.as_u64(), Some(9_007_199_254_740_993));
    }

    #[test]
    fn parses_nested_structures_and_lookup() {
        let v = JsonValue::parse(
            r#"{"label":"ring","rounds":3,"phase_nanos":{"send":1,"deliver":2,"receive":3},"active":[5,3,1],"flag":false}"#,
        )
        .unwrap();
        assert_eq!(v.get("label").and_then(JsonValue::as_str), Some("ring"));
        assert_eq!(v.get("rounds").and_then(JsonValue::as_u64), Some(3));
        assert_eq!(
            v.get("phase_nanos")
                .and_then(|p| p.get("deliver"))
                .and_then(JsonValue::as_u64),
            Some(2)
        );
        let active: Vec<u64> = v
            .get("active")
            .and_then(JsonValue::as_array)
            .unwrap()
            .iter()
            .map(|x| x.as_u64().unwrap())
            .collect();
        assert_eq!(active, vec![5, 3, 1]);
        assert_eq!(v.get("flag").and_then(JsonValue::as_bool), Some(false));
        assert!(v.get("missing").is_none());
        assert_eq!(v.as_object().unwrap().len(), 5);
    }

    #[test]
    fn decodes_every_escape_form() {
        let v = JsonValue::parse(r#""a\"b\\c\/d\b\f\n\r\t\u0041\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c/d\u{8}\u{c}\n\r\tAé😀"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "01x",
            "1.",
            "{\"a\":1,}",
            "[1 2]",
            "\"bad \\q escape\"",
            "\"\\u12\"",
            "nulltrail",
            "{} {}",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn errors_carry_positions() {
        let e = JsonValue::parse("[1, x]").unwrap_err();
        assert_eq!(e.pos, 4);
        assert!(e.to_string().contains("byte 4"));
    }
}
