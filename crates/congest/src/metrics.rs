//! Round, message and bandwidth accounting for simulator runs.
//!
//! # Accounting semantics
//!
//! Every *transmitted* message is charged, at the moment of delivery, with
//! its [`MessageSize::bit_size`](crate::MessageSize::bit_size) — including
//! messages addressed to nodes that have already halted.  A halted receiver
//! discards such messages unread (its state and output are unaffected), but
//! the wire was used, so round/bandwidth complexity counts them.  See the
//! [`crate::algorithm`] docs for the rationale; a simulator regression test
//! pins this behaviour.

use serde::{Deserialize, Serialize};

/// Cumulative wall-clock time spent in each engine phase over a whole run,
/// in nanoseconds.
///
/// Filled in by every [`Executor`](crate::executor::Executor); for the
/// pooled executor the phases are measured by the coordinator between
/// barrier crossings, so they include the (small, constant) barrier
/// overhead.  Timings are *measurements*, not semantics: the equivalence
/// guarantee between executors covers every other metric field but not
/// these.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseTimings {
    /// Time spent asking active nodes for their outboxes.
    pub send: u64,
    /// Time spent clearing last round's slots and routing messages into the
    /// inbox arena.
    pub deliver: u64,
    /// Time spent handing inboxes to active nodes (plus active-set
    /// compaction).
    pub receive: u64,
}

impl PhaseTimings {
    /// Total engine time across all phases, in nanoseconds.
    pub fn total(&self) -> u64 {
        self.send + self.deliver + self.receive
    }
}

/// Aggregate metrics of one simulator run.
///
/// `rounds` is the number of synchronous rounds that were executed before
/// every node had halted (or the cap was reached); this is the quantity every
/// theorem of the paper bounds.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Number of synchronous rounds executed.
    pub rounds: u64,
    /// Total number of point-to-point messages delivered.
    pub messages: u64,
    /// Total number of bits transmitted (sum of message sizes).
    pub total_bits: u64,
    /// The largest single message observed, in bits.
    pub max_message_bits: u64,
    /// Whether the run stopped because the round cap was hit rather than
    /// because every node halted.
    pub hit_round_cap: bool,
    /// Per-round count of nodes that were still active at the start of the
    /// round (useful to see how fast the algorithm "drains").
    pub active_per_round: Vec<usize>,
    /// Cumulative wall-clock time per engine phase (send / deliver /
    /// receive), in nanoseconds.
    pub phase_nanos: PhaseTimings,
    /// Messages delivered within the sender's shard.  Attributed only by the
    /// sharded executor; zero elsewhere (`intra + cross == messages` there).
    pub intra_shard_messages: u64,
    /// Messages that crossed a shard boundary through a staging queue.
    /// Attributed only by the sharded executor; zero elsewhere.
    pub cross_shard_messages: u64,
    /// Per-shard cumulative phase times, indexed by shard.  Filled only by
    /// the sharded executor (empty elsewhere); like
    /// [`RunMetrics::phase_nanos`] these are measurements, exempt from the
    /// executor-equivalence guarantee.
    pub shard_phase_nanos: Vec<PhaseTimings>,
    /// Total bytes of sealed wire frames the cross-shard transport produced
    /// (length prefixes and frame headers included).  Zero for in-memory
    /// backends, which move messages as Rust values; deterministic for a
    /// given socket backend, but backend-specific — so, like the wall-clock
    /// timings, exempt from the executor-equivalence guarantee.
    pub wire_bytes_sent: u64,
    /// Cumulative wall-clock time the transport spent sealing and flushing
    /// frames at the send barrier, in nanoseconds (summed across shards).
    pub transport_flush_nanos: u64,
    /// Number of kernel write batches the cross-shard transport issued — one
    /// per successful `write(2)` syscall, summed across shards.  Many small
    /// messages sealed into one frame and handed to the kernel together
    /// count as **one** batch, so this is the observable for frame
    /// coalescing.  Zero for in-memory backends; scheduling-dependent for
    /// socket backends (a full socket buffer splits a write), so — like the
    /// timing counters — exempt from the executor-equivalence guarantee.
    pub syscall_batches: u64,
    /// Cross-shard messages dropped by an injected fault (including
    /// partition drops).  Zero unless the run used a
    /// [`FaultyTransport`](crate::faults::FaultyTransport).
    pub faults_dropped: u64,
    /// Cross-shard messages duplicated by an injected fault (the extra,
    /// stale copy crosses the next round boundary).
    pub faults_duplicated: u64,
    /// Cross-shard messages delayed across a round boundary by an injected
    /// fault (including partition-deferred deliveries).
    pub faults_delayed: u64,
    /// Injected losses or delays masked by the retransmission layer: the
    /// message was still delivered in its own round, as a reliable
    /// transport's retries would before the round barrier closes.
    pub faults_retransmitted: u64,
    /// Inbox slots overwritten during async-round delivery
    /// ([`DeliveryMode::Async`](crate::executor::DeliveryMode)): a stale or
    /// duplicate message arrived on a port that already held this round's
    /// message (newest-wins semantics).  Zero in strict lock-step runs.
    pub stale_overwrites: u64,
    /// Peak resident-set size of the run, in bytes: the largest `VmHWM` any
    /// participating worker process reported (see
    /// [`process_peak_rss_bytes`]).  A high-water mark, so [`RunMetrics::merge`]
    /// takes the **max**, not the sum.  Filled by the remote worker
    /// protocol (each worker's Output frame carries its own high-water
    /// mark) and the experiment harness; the in-process executors leave it
    /// 0, since threads sharing one address space have no per-shard RSS and
    /// the process-wide value would break byte-identical metric replays.
    /// Zero also on platforms without `/proc/self/status`.  A measurement,
    /// exempt from the executor-equivalence guarantee.
    pub peak_rss_bytes: u64,
    /// Bytes of data frames the remote coordinator relayed between workers
    /// (length prefixes and frame headers included).  Nonzero only for the
    /// star-relay data plane of [`coordinate`](crate::transport::coordinate);
    /// the direct worker↔worker mesh keeps this at 0 — the observable for
    /// the control-vs-data plane split.
    pub relayed_data_bytes: u64,
}

impl RunMetrics {
    /// Records one delivered message of the given size.
    pub fn record_message(&mut self, bits: u64) {
        self.messages += 1;
        self.total_bits += bits;
        if bits > self.max_message_bits {
            self.max_message_bits = bits;
        }
    }

    /// Merges another metrics object into this one (used by multi-phase
    /// pipelines to combine per-stage counters).
    pub fn merge(&mut self, other: &RunMetrics) {
        self.messages += other.messages;
        self.total_bits += other.total_bits;
        self.max_message_bits = self.max_message_bits.max(other.max_message_bits);
        self.phase_nanos.send += other.phase_nanos.send;
        self.phase_nanos.deliver += other.phase_nanos.deliver;
        self.phase_nanos.receive += other.phase_nanos.receive;
        self.intra_shard_messages += other.intra_shard_messages;
        self.cross_shard_messages += other.cross_shard_messages;
        self.wire_bytes_sent += other.wire_bytes_sent;
        self.transport_flush_nanos += other.transport_flush_nanos;
        self.syscall_batches += other.syscall_batches;
        self.faults_dropped += other.faults_dropped;
        self.faults_duplicated += other.faults_duplicated;
        self.faults_delayed += other.faults_delayed;
        self.faults_retransmitted += other.faults_retransmitted;
        self.stale_overwrites += other.stale_overwrites;
        self.peak_rss_bytes = self.peak_rss_bytes.max(other.peak_rss_bytes);
        self.relayed_data_bytes += other.relayed_data_bytes;
        if self.shard_phase_nanos.len() < other.shard_phase_nanos.len() {
            self.shard_phase_nanos
                .resize(other.shard_phase_nanos.len(), PhaseTimings::default());
        }
        for (mine, theirs) in self
            .shard_phase_nanos
            .iter_mut()
            .zip(&other.shard_phase_nanos)
        {
            mine.send += theirs.send;
            mine.deliver += theirs.deliver;
            mine.receive += theirs.receive;
        }
    }

    /// Total engine time *including* the transport flush, in nanoseconds.
    ///
    /// [`PhaseTimings::total`] covers only the three engine phases (send /
    /// deliver / receive); the time the cross-shard transport spends sealing
    /// and flushing frames at the send barrier is accounted separately in
    /// [`RunMetrics::transport_flush_nanos`] — it is measured *inside* the
    /// transport, not inside any phase window, both for the in-process
    /// socket backends and for remote workers (whose Output frames carry
    /// flush time in its own counter).  Socket-run totals that only look at
    /// `phase_nanos.total()` therefore under-report; this accessor is the
    /// documented sum to quote instead.
    pub fn total_with_transport(&self) -> u64 {
        self.phase_nanos.total() + self.transport_flush_nanos
    }

    /// Average message size in bits (0 if no messages were sent).
    pub fn mean_message_bits(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.total_bits as f64 / self.messages as f64
        }
    }

    /// Renders the metrics as one JSON object tagged with `label`.
    ///
    /// This is the first concrete serialization format of the workspace (the
    /// vendored `serde` is a marker-only stub, so the encoding is written
    /// out by hand; when real `serde` lands this becomes a derive).  The
    /// field names match the struct fields one-to-one, so rows stay parseable
    /// across versions that only add fields.
    pub fn to_json(&self, label: &str) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"label\":\"");
        json_escape_into(&mut out, label);
        out.push('"');
        out.push_str(&format!(",\"rounds\":{}", self.rounds));
        out.push_str(&format!(",\"messages\":{}", self.messages));
        out.push_str(&format!(",\"total_bits\":{}", self.total_bits));
        out.push_str(&format!(",\"max_message_bits\":{}", self.max_message_bits));
        out.push_str(&format!(",\"hit_round_cap\":{}", self.hit_round_cap));
        out.push_str(&format!(
            ",\"intra_shard_messages\":{}",
            self.intra_shard_messages
        ));
        out.push_str(&format!(
            ",\"cross_shard_messages\":{}",
            self.cross_shard_messages
        ));
        out.push_str(&format!(",\"wire_bytes_sent\":{}", self.wire_bytes_sent));
        out.push_str(&format!(
            ",\"transport_flush_nanos\":{}",
            self.transport_flush_nanos
        ));
        out.push_str(&format!(",\"syscall_batches\":{}", self.syscall_batches));
        out.push_str(&format!(",\"faults_dropped\":{}", self.faults_dropped));
        out.push_str(&format!(
            ",\"faults_duplicated\":{}",
            self.faults_duplicated
        ));
        out.push_str(&format!(",\"faults_delayed\":{}", self.faults_delayed));
        out.push_str(&format!(
            ",\"faults_retransmitted\":{}",
            self.faults_retransmitted
        ));
        out.push_str(&format!(",\"stale_overwrites\":{}", self.stale_overwrites));
        out.push_str(&format!(",\"peak_rss_bytes\":{}", self.peak_rss_bytes));
        out.push_str(&format!(
            ",\"relayed_data_bytes\":{}",
            self.relayed_data_bytes
        ));
        out.push_str(",\"active_per_round\":[");
        for (i, a) in self.active_per_round.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&a.to_string());
        }
        out.push(']');
        out.push_str(",\"phase_nanos\":");
        self.phase_nanos.json_into(&mut out);
        out.push_str(",\"shard_phase_nanos\":[");
        for (i, t) in self.shard_phase_nanos.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            t.json_into(&mut out);
        }
        out.push_str("]}");
        out
    }

    /// Parses one JSONL row produced by [`RunMetrics::to_json`] back into
    /// `(label, metrics)`.
    ///
    /// The inverse of the hand-rolled encoder, so schema drift between the
    /// two fails a round-trip test instead of silently corrupting analyses.
    /// Missing numeric/boolean fields default to zero/false (rows stay
    /// parseable across versions that only add fields); a missing `label`
    /// or a line that is not a JSON object is an error.
    pub fn from_json(line: &str) -> Result<(String, RunMetrics), String> {
        let v = crate::json::JsonValue::parse(line).map_err(|e| e.to_string())?;
        if v.as_object().is_none() {
            return Err("metrics row is not a JSON object".into());
        }
        let label = v
            .get("label")
            .and_then(|l| l.as_str())
            .ok_or("metrics row has no \"label\" string")?
            .to_string();
        let u = |key: &str| v.get(key).and_then(|x| x.as_u64()).unwrap_or(0);
        let timings = |x: &crate::json::JsonValue| PhaseTimings {
            send: x.get("send").and_then(|n| n.as_u64()).unwrap_or(0),
            deliver: x.get("deliver").and_then(|n| n.as_u64()).unwrap_or(0),
            receive: x.get("receive").and_then(|n| n.as_u64()).unwrap_or(0),
        };
        let metrics = RunMetrics {
            rounds: u("rounds"),
            messages: u("messages"),
            total_bits: u("total_bits"),
            max_message_bits: u("max_message_bits"),
            hit_round_cap: v
                .get("hit_round_cap")
                .and_then(|x| x.as_bool())
                .unwrap_or(false),
            active_per_round: v
                .get("active_per_round")
                .and_then(|x| x.as_array())
                .map(|xs| {
                    xs.iter()
                        .map(|x| x.as_u64().unwrap_or(0) as usize)
                        .collect()
                })
                .unwrap_or_default(),
            phase_nanos: v.get("phase_nanos").map(&timings).unwrap_or_default(),
            intra_shard_messages: u("intra_shard_messages"),
            cross_shard_messages: u("cross_shard_messages"),
            shard_phase_nanos: v
                .get("shard_phase_nanos")
                .and_then(|x| x.as_array())
                .map(|xs| xs.iter().map(&timings).collect())
                .unwrap_or_default(),
            wire_bytes_sent: u("wire_bytes_sent"),
            transport_flush_nanos: u("transport_flush_nanos"),
            syscall_batches: u("syscall_batches"),
            faults_dropped: u("faults_dropped"),
            faults_duplicated: u("faults_duplicated"),
            faults_delayed: u("faults_delayed"),
            faults_retransmitted: u("faults_retransmitted"),
            stale_overwrites: u("stale_overwrites"),
            peak_rss_bytes: u("peak_rss_bytes"),
            relayed_data_bytes: u("relayed_data_bytes"),
        };
        Ok((label, metrics))
    }
}

impl PhaseTimings {
    fn json_into(&self, out: &mut String) {
        out.push_str(&format!(
            "{{\"send\":{},\"deliver\":{},\"receive\":{}}}",
            self.send, self.deliver, self.receive
        ));
    }
}

/// Peak resident-set size (high-water mark) of the **current process**, in
/// bytes.
///
/// Reads the `VmHWM` line of `/proc/self/status` (reported in kB).  Returns
/// 0 when the file or the line is unavailable (non-Linux platforms), so
/// callers can store the value unconditionally — a zero simply means "not
/// measured", never "no memory used".  This feeds
/// [`RunMetrics::peak_rss_bytes`], the observable behind the scale-out
/// claim that a mesh worker never materializes shards it does not own.
pub fn process_peak_rss_bytes() -> u64 {
    let status = match std::fs::read_to_string("/proc/self/status") {
        Ok(s) => s,
        Err(_) => return 0,
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb.saturating_mul(1024);
        }
    }
    0
}

/// Appends `s` to `out` with JSON string escaping applied (quotes,
/// backslashes, control characters) — **without** the surrounding quotes.
///
/// Shared by every hand-rolled JSON emitter in the workspace (this module,
/// `dcme_bench`'s table rows) so the escaping rules live in one place until
/// real `serde` replaces them.
pub fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Appends [`RunMetrics`] rows to any `Write` sink as [JSON
/// lines](https://jsonlines.org) — one self-contained JSON object per line,
/// so experiment binaries can accumulate machine-readable results across
/// runs (`exp_* --jsonl out.jsonl`, or `DCME_METRICS_JSONL=out.jsonl` for
/// the benches) and post-process them with standard tooling.
#[derive(Debug)]
pub struct JsonLinesWriter<W: std::io::Write> {
    inner: W,
}

impl<W: std::io::Write> JsonLinesWriter<W> {
    /// Wraps a sink; rows are appended with [`JsonLinesWriter::append`].
    pub fn new(inner: W) -> Self {
        Self { inner }
    }

    /// Writes one `label`-tagged metrics row, newline-terminated.
    pub fn append(&mut self, label: &str, metrics: &RunMetrics) -> std::io::Result<()> {
        self.inner.write_all(metrics.to_json(label).as_bytes())?;
        self.inner.write_all(b"\n")
    }

    /// Writes one pre-rendered JSON object (for callers with their own row
    /// shape, e.g. table rows), newline-terminated.
    pub fn append_raw(&mut self, json_object: &str) -> std::io::Result<()> {
        self.inner.write_all(json_object.as_bytes())?;
        self.inner.write_all(b"\n")
    }

    /// Unwraps the sink (flushing is the sink's business).
    pub fn into_inner(self) -> W {
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_merge() {
        let mut a = RunMetrics::default();
        a.record_message(10);
        a.record_message(20);
        assert_eq!(a.messages, 2);
        assert_eq!(a.total_bits, 30);
        assert_eq!(a.max_message_bits, 20);
        assert!((a.mean_message_bits() - 15.0).abs() < 1e-9);

        let mut b = RunMetrics::default();
        b.record_message(40);
        b.phase_nanos = PhaseTimings {
            send: 5,
            deliver: 7,
            receive: 11,
        };
        a.merge(&b);
        assert_eq!(a.messages, 3);
        assert_eq!(a.total_bits, 70);
        assert_eq!(a.max_message_bits, 40);
        assert_eq!(a.phase_nanos, b.phase_nanos);
        assert_eq!(a.phase_nanos.total(), 23);
    }

    #[test]
    fn empty_metrics_mean_is_zero() {
        assert_eq!(RunMetrics::default().mean_message_bits(), 0.0);
    }

    #[test]
    fn merge_combines_shard_attribution() {
        let mut a = RunMetrics {
            intra_shard_messages: 3,
            cross_shard_messages: 1,
            shard_phase_nanos: vec![PhaseTimings {
                send: 1,
                deliver: 2,
                receive: 3,
            }],
            ..RunMetrics::default()
        };
        let b = RunMetrics {
            intra_shard_messages: 5,
            cross_shard_messages: 7,
            shard_phase_nanos: vec![
                PhaseTimings {
                    send: 10,
                    deliver: 20,
                    receive: 30,
                },
                PhaseTimings {
                    send: 100,
                    deliver: 200,
                    receive: 300,
                },
            ],
            ..RunMetrics::default()
        };
        a.merge(&b);
        assert_eq!(a.intra_shard_messages, 8);
        assert_eq!(a.cross_shard_messages, 8);
        assert_eq!(a.shard_phase_nanos.len(), 2);
        assert_eq!(a.shard_phase_nanos[0].send, 11);
        assert_eq!(a.shard_phase_nanos[1].receive, 300);
    }

    /// Exhaustiveness regression for [`RunMetrics::merge`]: every field is
    /// nonzero on both sides and the expected result is spelled out as a
    /// **complete struct literal** (no `..Default::default()`), so adding a
    /// field to `RunMetrics` without deciding its merge semantics fails to
    /// compile here, and forgetting the `merge` line fails the assertion.
    #[test]
    fn merge_handles_every_field() {
        let mk = |scale: u64| RunMetrics {
            rounds: 11 * scale,
            messages: 2 * scale,
            total_bits: 30 * scale,
            max_message_bits: 20 * scale,
            hit_round_cap: scale > 1,
            active_per_round: vec![scale as usize],
            phase_nanos: PhaseTimings {
                send: 5 * scale,
                deliver: 7 * scale,
                receive: 9 * scale,
            },
            intra_shard_messages: 3 * scale,
            cross_shard_messages: 4 * scale,
            shard_phase_nanos: vec![PhaseTimings {
                send: scale,
                deliver: 2 * scale,
                receive: 3 * scale,
            }],
            wire_bytes_sent: 100 * scale,
            transport_flush_nanos: 200 * scale,
            syscall_batches: 300 * scale,
            faults_dropped: 13 * scale,
            faults_duplicated: 17 * scale,
            faults_delayed: 19 * scale,
            faults_retransmitted: 23 * scale,
            stale_overwrites: 29 * scale,
            peak_rss_bytes: 31 * scale,
            relayed_data_bytes: 37 * scale,
        };
        let mut a = mk(1);
        a.merge(&mk(10));
        let expected = RunMetrics {
            // Deliberately untouched by merge: rounds, the cap flag and the
            // per-round drain profile belong to a single run, not a
            // multi-phase pipeline sum (pipelines account rounds themselves).
            rounds: 11,
            hit_round_cap: false,
            active_per_round: vec![1],
            // Summed.
            messages: 22,
            total_bits: 330,
            phase_nanos: PhaseTimings {
                send: 55,
                deliver: 77,
                receive: 99,
            },
            intra_shard_messages: 33,
            cross_shard_messages: 44,
            wire_bytes_sent: 1100,
            transport_flush_nanos: 2200,
            syscall_batches: 3300,
            faults_dropped: 143,
            faults_duplicated: 187,
            faults_delayed: 209,
            faults_retransmitted: 253,
            stale_overwrites: 319,
            relayed_data_bytes: 407,
            // Maxed.
            max_message_bits: 200,
            peak_rss_bytes: 310,
            // Summed per shard index.
            shard_phase_nanos: vec![PhaseTimings {
                send: 11,
                deliver: 22,
                receive: 33,
            }],
        };
        assert_eq!(a, expected);
    }

    #[test]
    fn json_line_is_complete_and_escaped() {
        let mut m = RunMetrics::default();
        m.record_message(10);
        m.rounds = 2;
        m.active_per_round = vec![3, 1];
        m.intra_shard_messages = 1;
        m.wire_bytes_sent = 77;
        m.transport_flush_nanos = 88;
        m.syscall_batches = 99;
        m.shard_phase_nanos = vec![PhaseTimings {
            send: 4,
            deliver: 5,
            receive: 6,
        }];
        let line = m.to_json("ring \"q\"\\n=3");
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"label\":\"ring \\\"q\\\"\\\\n=3\""));
        assert!(line.contains("\"rounds\":2"));
        assert!(line.contains("\"messages\":1"));
        assert!(line.contains("\"total_bits\":10"));
        assert!(line.contains("\"hit_round_cap\":false"));
        assert!(line.contains("\"active_per_round\":[3,1]"));
        assert!(line.contains("\"intra_shard_messages\":1"));
        assert!(line.contains("\"cross_shard_messages\":0"));
        assert!(line.contains("\"wire_bytes_sent\":77"));
        assert!(line.contains("\"transport_flush_nanos\":88"));
        assert!(line.contains("\"syscall_batches\":99"));
        assert!(line.contains("\"faults_dropped\":0"));
        assert!(line.contains("\"faults_duplicated\":0"));
        assert!(line.contains("\"faults_delayed\":0"));
        assert!(line.contains("\"faults_retransmitted\":0"));
        assert!(line.contains("\"stale_overwrites\":0"));
        assert!(line.contains("\"peak_rss_bytes\":0"));
        assert!(line.contains("\"relayed_data_bytes\":0"));
        assert!(line.contains("\"shard_phase_nanos\":[{\"send\":4,\"deliver\":5,\"receive\":6}]"));
        // Balanced braces/brackets — a cheap well-formedness check given the
        // workspace has no JSON parser to round-trip with.
        assert_eq!(line.matches('{').count(), line.matches('}').count(),);
        assert_eq!(line.matches('[').count(), line.matches(']').count());
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn peak_rss_probe_reports_a_plausible_high_water_mark() {
        let rss = process_peak_rss_bytes();
        assert!(rss > 0, "VmHWM should be readable on Linux");
        assert_eq!(rss % 1024, 0, "VmHWM is reported in whole kilobytes");
    }

    /// Round-trip regression: a row in which **every** field is nonzero
    /// (complete struct literal, so new fields must join the round-trip or
    /// fail to compile here) must come back field-for-field identical.
    #[test]
    fn json_round_trip_preserves_every_field() {
        let m = RunMetrics {
            rounds: 11,
            messages: 2,
            total_bits: 30,
            max_message_bits: 20,
            hit_round_cap: true,
            active_per_round: vec![3, 1],
            phase_nanos: PhaseTimings {
                send: 5,
                deliver: 7,
                receive: 9,
            },
            intra_shard_messages: 3,
            cross_shard_messages: 4,
            shard_phase_nanos: vec![
                PhaseTimings {
                    send: 1,
                    deliver: 2,
                    receive: 3,
                },
                PhaseTimings {
                    send: 4,
                    deliver: 5,
                    receive: 6,
                },
            ],
            wire_bytes_sent: 100,
            transport_flush_nanos: 200,
            syscall_batches: 300,
            faults_dropped: 13,
            faults_duplicated: 17,
            faults_delayed: 19,
            faults_retransmitted: 23,
            stale_overwrites: 29,
            peak_rss_bytes: u64::MAX, // survives the lossless u64 path
            relayed_data_bytes: 37,
        };
        let label = "ring \"q\"\\n=3";
        let (back_label, back) = RunMetrics::from_json(&m.to_json(label)).unwrap();
        assert_eq!(back_label, label);
        assert_eq!(back, m);
    }

    #[test]
    fn from_json_rejects_garbage_and_defaults_missing_fields() {
        assert!(RunMetrics::from_json("not json").is_err());
        assert!(RunMetrics::from_json("[1,2]").is_err());
        assert!(RunMetrics::from_json("{\"rounds\":1}").is_err(), "no label");
        let (label, m) = RunMetrics::from_json("{\"label\":\"x\",\"rounds\":4}").unwrap();
        assert_eq!(label, "x");
        assert_eq!(m.rounds, 4);
        assert_eq!(m.messages, 0);
        assert!(!m.hit_round_cap);
    }

    #[test]
    fn total_with_transport_adds_flush_time() {
        let m = RunMetrics {
            phase_nanos: PhaseTimings {
                send: 5,
                deliver: 7,
                receive: 11,
            },
            transport_flush_nanos: 100,
            ..RunMetrics::default()
        };
        assert_eq!(m.phase_nanos.total(), 23);
        assert_eq!(m.total_with_transport(), 123);
    }

    #[test]
    fn jsonl_writer_appends_newline_terminated_rows() {
        let mut w = JsonLinesWriter::new(Vec::new());
        w.append("a", &RunMetrics::default()).unwrap();
        w.append("b", &RunMetrics::default()).unwrap();
        w.append_raw("{\"custom\":true}").unwrap();
        let buf = String::from_utf8(w.into_inner()).unwrap();
        let lines: Vec<&str> = buf.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"label\":\"a\""));
        assert!(lines[1].contains("\"label\":\"b\""));
        assert_eq!(lines[2], "{\"custom\":true}");
        assert!(buf.ends_with('\n'));
    }
}
