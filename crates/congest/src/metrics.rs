//! Round, message and bandwidth accounting for simulator runs.
//!
//! # Accounting semantics
//!
//! Every *transmitted* message is charged, at the moment of delivery, with
//! its [`MessageSize::bit_size`](crate::MessageSize::bit_size) — including
//! messages addressed to nodes that have already halted.  A halted receiver
//! discards such messages unread (its state and output are unaffected), but
//! the wire was used, so round/bandwidth complexity counts them.  See the
//! [`crate::algorithm`] docs for the rationale; a simulator regression test
//! pins this behaviour.

use serde::{Deserialize, Serialize};

/// Cumulative wall-clock time spent in each engine phase over a whole run,
/// in nanoseconds.
///
/// Filled in by every [`Executor`](crate::executor::Executor); for the
/// pooled executor the phases are measured by the coordinator between
/// barrier crossings, so they include the (small, constant) barrier
/// overhead.  Timings are *measurements*, not semantics: the equivalence
/// guarantee between executors covers every other metric field but not
/// these.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseTimings {
    /// Time spent asking active nodes for their outboxes.
    pub send: u64,
    /// Time spent clearing last round's slots and routing messages into the
    /// inbox arena.
    pub deliver: u64,
    /// Time spent handing inboxes to active nodes (plus active-set
    /// compaction).
    pub receive: u64,
}

impl PhaseTimings {
    /// Total engine time across all phases, in nanoseconds.
    pub fn total(&self) -> u64 {
        self.send + self.deliver + self.receive
    }
}

/// Aggregate metrics of one simulator run.
///
/// `rounds` is the number of synchronous rounds that were executed before
/// every node had halted (or the cap was reached); this is the quantity every
/// theorem of the paper bounds.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Number of synchronous rounds executed.
    pub rounds: u64,
    /// Total number of point-to-point messages delivered.
    pub messages: u64,
    /// Total number of bits transmitted (sum of message sizes).
    pub total_bits: u64,
    /// The largest single message observed, in bits.
    pub max_message_bits: u64,
    /// Whether the run stopped because the round cap was hit rather than
    /// because every node halted.
    pub hit_round_cap: bool,
    /// Per-round count of nodes that were still active at the start of the
    /// round (useful to see how fast the algorithm "drains").
    pub active_per_round: Vec<usize>,
    /// Cumulative wall-clock time per engine phase (send / deliver /
    /// receive), in nanoseconds.
    pub phase_nanos: PhaseTimings,
}

impl RunMetrics {
    /// Records one delivered message of the given size.
    pub fn record_message(&mut self, bits: u64) {
        self.messages += 1;
        self.total_bits += bits;
        if bits > self.max_message_bits {
            self.max_message_bits = bits;
        }
    }

    /// Merges another metrics object into this one (used by multi-phase
    /// pipelines to combine per-stage counters).
    pub fn merge(&mut self, other: &RunMetrics) {
        self.messages += other.messages;
        self.total_bits += other.total_bits;
        self.max_message_bits = self.max_message_bits.max(other.max_message_bits);
        self.phase_nanos.send += other.phase_nanos.send;
        self.phase_nanos.deliver += other.phase_nanos.deliver;
        self.phase_nanos.receive += other.phase_nanos.receive;
    }

    /// Average message size in bits (0 if no messages were sent).
    pub fn mean_message_bits(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.total_bits as f64 / self.messages as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_merge() {
        let mut a = RunMetrics::default();
        a.record_message(10);
        a.record_message(20);
        assert_eq!(a.messages, 2);
        assert_eq!(a.total_bits, 30);
        assert_eq!(a.max_message_bits, 20);
        assert!((a.mean_message_bits() - 15.0).abs() < 1e-9);

        let mut b = RunMetrics::default();
        b.record_message(40);
        b.phase_nanos = PhaseTimings {
            send: 5,
            deliver: 7,
            receive: 11,
        };
        a.merge(&b);
        assert_eq!(a.messages, 3);
        assert_eq!(a.total_bits, 70);
        assert_eq!(a.max_message_bits, 40);
        assert_eq!(a.phase_nanos, b.phase_nanos);
        assert_eq!(a.phase_nanos.total(), 23);
    }

    #[test]
    fn empty_metrics_mean_is_zero() {
        assert_eq!(RunMetrics::default().mean_message_bits(), 0.0);
    }
}
