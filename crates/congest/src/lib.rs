//! A synchronous message-passing simulator for the LOCAL and CONGEST models.
//!
//! The algorithms of *Distributed Graph Coloring Made Easy* are stated in the
//! classical synchronous models of distributed computing [Lin92, Pel00]:
//!
//! * the network is an undirected graph `G = (V, E)` with maximum degree `Δ`;
//! * computation proceeds in synchronous rounds; per round every node may
//!   send one message over each incident edge, receive the messages of its
//!   neighbours, and perform arbitrary local computation;
//! * in the **LOCAL** model messages are unbounded, in the **CONGEST** model
//!   they carry at most `O(log n)` bits;
//! * nodes initially know only their own identifier / input color, the
//!   global parameters (`n`, `Δ`, `m`, …), and the *ports* to their
//!   neighbours — not the neighbours' identifiers.
//!
//! This crate is that model, made executable:
//!
//! * [`topology::Topology`] — the immutable communication graph with port
//!   numbering,
//! * [`algorithm::NodeAlgorithm`] — the per-node state machine interface
//!   (init / send / receive / output),
//! * [`simulator::Simulator`] — the synchronous round engine, generic over
//!   the topology representation via [`topology::TopologyView`],
//! * [`sharded::ShardedTopology`] — the same graph, edge-partitioned into
//!   contiguous node-range shards with streaming construction, for
//!   `n ≥ 10^7` workloads,
//! * [`executor::Executor`] — the round-loop strategy seam: a sequential
//!   reference executor, a persistent-pool parallel executor, and a
//!   shard-owning [`executor::ShardedExecutor`], all sharing the
//!   zero-allocation [`executor::RoundState`] arena and producing identical
//!   results,
//! * [`metrics::RunMetrics`] and [`bandwidth`] — round, message and bit
//!   accounting so experiments can check the CONGEST `O(log n)`-bit bound,
//!   plus a JSON-lines writer ([`metrics::JsonLinesWriter`]) for
//!   machine-readable experiment rows,
//! * [`wire`] — the binary wire codec: bit-exact message payloads
//!   ([`wire::WireMessage`]) in length-prefixed, round-sequenced frames,
//! * [`transport`] — the cross-shard transport seam behind the
//!   [`executor::ShardedExecutor`]: in-process staging queues
//!   ([`transport::InProcess`]), a wire-encoded socket mesh
//!   ([`transport::SocketLoopback`]), and the multi-process
//!   coordinator/worker protocol ([`transport::coordinate`] /
//!   [`transport::serve_shard`]),
//! * [`faults`] — deterministic fault injection at the transport seam
//!   ([`faults::FaultyTransport`]): seed-driven drop, duplication, delay
//!   and partition windows with a replayable event log, plus the
//!   async-delivery execution mode ([`executor::DeliveryMode`]) faulted
//!   runs require,
//! * [`mc`] — a bounded model checker that exhaustively explores message
//!   fault placements on tiny instances and reports minimal counterexample
//!   traces against the coloring invariants,
//! * [`trace`] — the out-of-band observability seam ([`trace::TraceSink`]):
//!   per-round / per-phase / per-shard trace events emitted by every
//!   executor and the fault injector, with a Chrome-trace sink
//!   ([`trace::ChromeTraceSink`], loadable in Perfetto) and a per-round
//!   time-series sink ([`trace::RoundSeries`]); attaching a sink never
//!   changes outputs or metrics,
//! * [`json`] — a minimal JSON parser ([`json::JsonValue`]) so the
//!   hand-rolled JSONL rows and trace files can be read back and validated
//!   without real `serde`.
//!
//! The simulator is deterministic: given the same topology and the same
//! (deterministic) node algorithms it always produces the same outputs,
//! regardless of which executor is used.  Fault-injected runs stay
//! deterministic: every fault decision is a pure function of the
//! `(seed, fault-plan)` pair.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithm;
pub mod bandwidth;
pub mod executor;
pub mod faults;
pub mod json;
pub mod mc;
pub mod metrics;
pub mod sharded;
pub mod simulator;
pub mod topology;
pub mod trace;
pub mod transport;
pub mod wire;

pub use algorithm::{Inbox, MessageSize, NodeAlgorithm, NodeContext, Outbox};
pub use bandwidth::BandwidthReport;
pub use executor::{
    DeliveryMode, Executor, PooledExecutor, RoundState, SequentialExecutor, ShardedExecutor,
};
pub use faults::{
    run_faulty, FaultEvent, FaultKind, FaultPlan, FaultyRun, FaultyTransport, InvariantViolation,
};
pub use json::{JsonError, JsonValue};
pub use mc::{CheckableAlgorithm, Counterexample, McConfig, McFault, McVerdict, Violation};
pub use metrics::{process_peak_rss_bytes, JsonLinesWriter, PhaseTimings, RunMetrics};
pub use sharded::{ShardPlan, ShardSliceTopology, ShardTopologyView, ShardedTopology};
pub use simulator::{ExecutionMode, RunOutcome, Simulator, SimulatorConfig};
pub use topology::{BallScratch, NodeId, Port, Topology, TopologyError, TopologyView};
pub use trace::{
    decode_stamped, encode_stamped, ChromeTraceSink, Fanout, NoTrace, RecordingSink, RoundRow,
    RoundSeries, SeriesSummary, StampedRecorder, TraceEvent, TracePhase, TraceSink,
};
pub use transport::{
    coordinate, coordinate_traced, serve_shard, serve_shard_on, serve_shard_with, CoordinateSpec,
    DataPlane, InProcess, ServeOptions, SocketLoopback, Transport, TransportBuilder,
    TransportError, TransportMessage, WorkerMesh, WorkerStats,
};
pub use wire::{BitReader, BitWriter, WireError, WireMessage};
