//! Round-loop execution strategies behind the [`Executor`] seam.
//!
//! The [`Simulator`](crate::Simulator) owns the *what* of a run (topology,
//! node state machines, metrics); an [`Executor`] owns the *how* of driving
//! the synchronous send → deliver → receive loop.  Three strategies ship
//! today:
//!
//! * [`SequentialExecutor`] — the reference implementation: one thread, one
//!   pass over the active set per phase.
//! * [`PooledExecutor`] — a persistent worker pool: scoped threads are
//!   spawned **once per run** and coordinate the per-round phases through a
//!   poison-aware phase barrier, instead of re-chunking and re-spawning
//!   threads twice per round.
//! * [`ShardedExecutor`] — runs a [`ShardedTopology`]: one worker per
//!   shard, each owning its shard's inbox slots outright (no shared arena
//!   lock); only cross-shard messages travel, through per-shard-pair
//!   staging queues.  See the protocol below.
//!
//! All strategies are generic over [`TopologyView`] (sequential and pooled
//! run on either representation; sharded requires the shard structure),
//! share the per-run [`RoundState`] arena and are required to be
//! *bit-for-bit equivalent*: same outputs, same metrics (up to wall-clock
//! phase timings), regardless of thread or shard count.  Tests assert this.
//!
//! # The zero-allocation round loop
//!
//! All per-round buffers live in [`RoundState`], allocated once per run and
//! recycled every round:
//!
//! * **Inbox slots** — a flat, CSR-indexed arena with one slot per directed
//!   edge, pre-sized from the [`Topology`] offsets.  A message from `v`
//!   over port `p` lands in the slot of the reverse port at the receiving
//!   endpoint; a node's inbox is a zero-copy [`Inbox`] view of its slot
//!   range.  Only the slots actually filled in a round (tracked in a
//!   `touched` list) are cleared afterwards, so quiet rounds cost `O(active)`
//!   rather than `O(n + m)`.
//! * **Active-set compaction** — the engine iterates a compact list of
//!   still-active node ids and shrinks it as nodes halt, so halted nodes
//!   stop costing even an `is_halted()` check per round.
//! * **Outbox staging** — send results are staged in reusable buffers
//!   (per-worker mailboxes in the pooled executor) whose capacity persists
//!   across rounds.
//!
//! # Pooled barrier protocol
//!
//! Each worker owns a contiguous chunk of nodes for the whole run.  Per
//! round the pool crosses four barriers: **A** (the coordinator has published
//! the round number / stop flag) → workers run the send phase into their
//! mailboxes → **B** → the coordinator clears last round's slots and
//! delivers all staged outboxes into the arena → **C** → workers run the
//! receive phase against read-locked slot views, compact their local active
//! lists and publish the new counts → **D** → the coordinator sums the
//! counts and decides the next round.  A panic in any phase (user algorithm
//! code or delivery validation) poisons the pool at the next barrier so all
//! parties unwind together and the original panic is re-thrown — never a
//! deadlocked barrier.
//!
//! # Sharded delivery protocol
//!
//! The [`ShardedExecutor`] spawns one worker per shard of a
//! [`ShardedTopology`].  Worker `w` owns, exclusively and lock-free, the
//! slice of inbox slots belonging to shard `w`'s nodes (the arena's flat
//! slot vector is split by the shard slot ranges), so **every write to a
//! slot is performed by the worker that owns it**.  Cross-shard messages
//! travel through a pluggable [`Transport`] (see [`crate::transport`]):
//!
//! 1. **Send + route + flush** (barrier A → B): worker `w` clears its
//!    slots touched last round, runs the send phase for its active nodes,
//!    and routes each message via the topology's precomputed
//!    [`dest_slot`](ShardedTopology::dest_slot) remap table — intra-shard
//!    messages are written straight into `w`'s own slots, cross-shard
//!    messages are staged on the transport (`Transport::stage`).  At the
//!    send barrier the worker flushes its staged batches
//!    (`Transport::flush`): the in-process backend is a no-op, socket
//!    backends seal one wire frame per destination shard.  Message and
//!    bit accounting is charged here, split into intra-/cross-shard
//!    counters; flushed wire bytes and flush time are recorded in
//!    `RunMetrics::{wire_bytes_sent,transport_flush_nanos}`.
//! 2. **Cross-shard drain** (B → C): worker `w` drains every `x → w`
//!    channel into its own slots (`Transport::drain`).  For the
//!    in-process backend the channels are `Mutex`-guarded queues,
//!    uncontended by construction: `x → w` is written only by `x` in
//!    phase 1 and read only by `w` in phase 2, with a barrier in between.
//!    Under [`DeliveryMode::Strict`] (the default) a second write to a
//!    slot is a CONGEST violation and panics; under
//!    [`DeliveryMode::Async`] — used by fault-injected runs whose
//!    transport may deliver stale, duplicated or delayed copies — the
//!    slot keeps the **most recently drained** message and the overwrite
//!    is counted in `RunMetrics::stale_overwrites`.
//! 3. **Receive** (C → D): worker `w` hands its nodes their inbox views
//!    (plain slices of its own slots), compacts its active list and
//!    publishes the count; the coordinator sums counts and decides the
//!    next round, exactly like the pooled protocol.
//!
//! Per-worker message/bit/phase-time counters are merged into
//! [`RunMetrics`] in shard order when the run ends, so the totals are
//! deterministic; `RunMetrics::shard_phase_nanos` additionally keeps the
//! per-shard phase times, and the intra/cross split is reported in
//! `RunMetrics::{intra,cross}_shard_messages`.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, RwLock};
use std::time::Instant;

use crate::algorithm::{Inbox, MessageSize, NodeAlgorithm, NodeContext, Outbox};
use crate::metrics::{PhaseTimings, RunMetrics};
use crate::sharded::{ShardTopologyView, ShardedTopology};
use crate::topology::{NodeId, Port, Topology, TopologyView};
use crate::trace::{TraceEvent, TracePhase, TraceSink};
use crate::transport::{InProcess, Transport, TransportBuilder};

/// The reusable per-run arena of the round engine.
///
/// Holds every buffer the round loop needs — inbox slots, the touched-slot
/// list, the compact active set and the outbox staging buffer — so that a
/// run performs no per-round allocations after the first few rounds.  See
/// the [module docs](self) for the layout.
#[derive(Debug)]
pub struct RoundState<M> {
    /// One inbox slot per directed edge, CSR-indexed: node `v`'s ports
    /// occupy `topology.port_range(v)`.
    slots: Vec<Option<M>>,
    /// Indices of slots filled during the current round's delivery; cleared
    /// (and only these are cleared) before the next delivery.
    touched: Vec<usize>,
    /// Compact list of currently-active node ids (sequential executor).
    active: Vec<NodeId>,
    /// Staged `(sender, outbox)` pairs of the current round (sequential
    /// executor; the pooled executor stages in per-worker mailboxes).
    staged: Vec<(NodeId, Outbox<M>)>,
}

impl<M> Default for RoundState<M> {
    fn default() -> Self {
        Self {
            slots: Vec::new(),
            touched: Vec::new(),
            active: Vec::new(),
            staged: Vec::new(),
        }
    }
}

impl<M: MessageSize + Clone> RoundState<M> {
    /// Creates an arena pre-sized for `topology`: one inbox slot per
    /// directed edge.
    pub fn new(topology: &impl TopologyView) -> Self {
        Self {
            slots: (0..topology.num_directed_edges()).map(|_| None).collect(),
            touched: Vec::new(),
            active: Vec::new(),
            staged: Vec::new(),
        }
    }

    /// The inbox view of node `v`: one slot per port, in port order.
    pub fn inbox<'a>(&'a self, topology: &impl TopologyView, v: NodeId) -> Inbox<'a, M> {
        Inbox::from_slots(&self.slots[topology.port_range(v)])
    }

    /// Clears the slots filled by the previous round's delivery.
    fn clear_round(&mut self) {
        for i in self.touched.drain(..) {
            self.slots[i] = None;
        }
    }

    /// Delivers one node's outbox into the arena, charging every transmitted
    /// message to `metrics` (including messages addressed to halted
    /// receivers — see the accounting semantics in [`crate::algorithm`]).
    ///
    /// # Panics
    ///
    /// Panics if the outbox names a nonexistent port or sends two messages
    /// over the same port in one round (the CONGEST model allows one message
    /// per edge per round).
    fn deliver(
        &mut self,
        topology: &impl TopologyView,
        v: NodeId,
        outbox: Outbox<M>,
        metrics: &mut RunMetrics,
    ) {
        match outbox {
            Outbox::Silent => {}
            Outbox::Broadcast(msg) => {
                for p in 0..topology.degree(v) {
                    let u = topology.neighbor_at(v, p);
                    let rp = topology.reverse_port(v, p);
                    metrics.record_message(msg.bit_size());
                    self.fill(topology.port_range(u).start + rp, msg.clone(), v);
                }
            }
            Outbox::PerPort(list) => {
                for (p, msg) in list {
                    assert!(
                        p < topology.degree(v),
                        "node {v} sent on nonexistent port {p}"
                    );
                    let u = topology.neighbor_at(v, p);
                    let rp = topology.reverse_port(v, p);
                    metrics.record_message(msg.bit_size());
                    self.fill(topology.port_range(u).start + rp, msg, v);
                }
            }
        }
    }

    fn fill(&mut self, slot: usize, msg: M, sender: NodeId) {
        let entry = &mut self.slots[slot];
        assert!(
            entry.is_none(),
            "node {sender} sent two messages over the same port in one round"
        );
        *entry = Some(msg);
        self.touched.push(slot);
    }
}

/// A strategy for driving the synchronous round loop on a topology
/// representation `T`.
///
/// The trait is generic over [`TopologyView`] so a strategy can either work
/// with any representation ([`SequentialExecutor`] and [`PooledExecutor`]
/// implement `Executor<T>` for every `T: TopologyView`) or demand a specific
/// one ([`ShardedExecutor`] implements only `Executor<ShardedTopology>`,
/// because it needs the shard layout).
///
/// Implementations must uphold the engine contract:
///
/// * rounds are globally synchronous — all sends of round `r` complete
///   before any delivery, all deliveries before any receive;
/// * the result is bit-for-bit identical to [`SequentialExecutor`] (outputs
///   and all metrics except wall-clock [`PhaseTimings`]);
/// * on return, `metrics.rounds`, `metrics.hit_round_cap`,
///   `metrics.active_per_round` and `metrics.phase_nanos` are filled in;
/// * `tracer` is observed **out-of-band** (see [`crate::trace`]): the
///   executor reports run / round / phase / shard events into it but must
///   never let the sink influence the run — attaching any sink leaves
///   outputs and metrics bit-for-bit unchanged.  When
///   [`TraceSink::enabled`] is `false` (the [`crate::trace::NoTrace`]
///   default) no events are constructed at all.
pub trait Executor<T: TopologyView = Topology> {
    /// Drives `nodes` (already initialised) to completion or to `max_rounds`.
    #[allow(clippy::too_many_arguments)]
    fn drive<A: NodeAlgorithm>(
        &self,
        topology: &T,
        nodes: &mut [A],
        contexts: &[NodeContext],
        state: &mut RoundState<A::Message>,
        max_rounds: u64,
        metrics: &mut RunMetrics,
        tracer: &dyn TraceSink,
    );
}

/// The reference executor: one thread, one pass over the active set per
/// phase.  Trivially deterministic; every other executor is tested against
/// it.
#[derive(Debug, Clone, Copy, Default)]
pub struct SequentialExecutor;

impl<T: TopologyView> Executor<T> for SequentialExecutor {
    fn drive<A: NodeAlgorithm>(
        &self,
        topology: &T,
        nodes: &mut [A],
        contexts: &[NodeContext],
        state: &mut RoundState<A::Message>,
        max_rounds: u64,
        metrics: &mut RunMetrics,
        tracer: &dyn TraceSink,
    ) {
        // Hoisted once: with the no-op sink every `if traced` below is a
        // never-taken branch on a local — no event is ever constructed.
        let traced = tracer.enabled();
        if traced {
            tracer.emit(&TraceEvent::RunStart {
                nodes: nodes.len(),
                shards: 1,
            });
        }
        let mut active = std::mem::take(&mut state.active);
        active.clear();
        active.extend((0..nodes.len()).filter(|&v| !nodes[v].is_halted()));

        let mut round: u64 = 0;
        loop {
            if active.is_empty() {
                break;
            }
            if round >= max_rounds {
                metrics.hit_round_cap = true;
                break;
            }
            metrics.active_per_round.push(active.len());
            if traced {
                tracer.emit(&TraceEvent::RoundStart {
                    round,
                    active: active.len(),
                });
                tracer.emit(&TraceEvent::PhaseStart {
                    round,
                    shard: 0,
                    phase: TracePhase::Send,
                });
            }

            // --- Send phase ---------------------------------------------
            let t = Instant::now();
            let mut staged = std::mem::take(&mut state.staged);
            for &v in &active {
                let ctx = NodeContext {
                    round,
                    ..contexts[v]
                };
                let outbox = nodes[v].send(&ctx);
                if !outbox.is_silent() {
                    staged.push((v, outbox));
                }
            }
            let send_d = t.elapsed().as_nanos() as u64;
            metrics.phase_nanos.send += send_d;
            if traced {
                tracer.emit(&TraceEvent::PhaseEnd {
                    round,
                    shard: 0,
                    phase: TracePhase::Send,
                    nanos: send_d,
                });
                tracer.emit(&TraceEvent::PhaseStart {
                    round,
                    shard: 0,
                    phase: TracePhase::Deliver,
                });
            }

            // --- Delivery -----------------------------------------------
            let t = Instant::now();
            let (m0, b0) = (metrics.messages, metrics.total_bits);
            state.clear_round();
            for (v, outbox) in staged.drain(..) {
                state.deliver(topology, v, outbox, metrics);
            }
            state.staged = staged;
            let deliver_d = t.elapsed().as_nanos() as u64;
            metrics.phase_nanos.deliver += deliver_d;
            if traced {
                tracer.emit(&TraceEvent::PhaseEnd {
                    round,
                    shard: 0,
                    phase: TracePhase::Deliver,
                    nanos: deliver_d,
                });
                tracer.emit(&TraceEvent::ShardRound {
                    round,
                    shard: 0,
                    messages: metrics.messages - m0,
                    bits: metrics.total_bits - b0,
                    cross: 0,
                });
                tracer.emit(&TraceEvent::PhaseStart {
                    round,
                    shard: 0,
                    phase: TracePhase::Receive,
                });
            }

            // --- Receive phase ------------------------------------------
            let t = Instant::now();
            for &v in &active {
                let ctx = NodeContext {
                    round,
                    ..contexts[v]
                };
                let inbox = state.inbox(topology, v);
                nodes[v].receive(&ctx, &inbox);
            }
            active.retain(|&v| !nodes[v].is_halted());
            let receive_d = t.elapsed().as_nanos() as u64;
            metrics.phase_nanos.receive += receive_d;
            if traced {
                tracer.emit(&TraceEvent::PhaseEnd {
                    round,
                    shard: 0,
                    phase: TracePhase::Receive,
                    nanos: receive_d,
                });
                tracer.emit(&TraceEvent::RoundEnd {
                    round,
                    active: active.len(),
                    nanos: send_d + deliver_d + receive_d,
                });
            }

            round += 1;
        }

        if traced {
            tracer.emit(&TraceEvent::RunEnd { rounds: round });
        }
        metrics.rounds = round;
        state.active = active;
    }
}

/// The persistent-pool executor: `threads` scoped workers are spawned once
/// per run, each owning a contiguous chunk of nodes, and the per-round
/// phases are coordinated through barriers (see the [module docs](self) for
/// the protocol).  Bit-for-bit equivalent to [`SequentialExecutor`].
#[derive(Debug, Clone, Copy)]
pub struct PooledExecutor {
    threads: usize,
}

impl PooledExecutor {
    /// Creates a pool of `threads` workers (at least 1).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// The number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

/// Per-worker staging shared with the coordinator: the worker fills it
/// during the send phase and publishes its active count after the receive
/// phase; the coordinator drains it during delivery.
struct Mailbox<M> {
    outboxes: Vec<(NodeId, Outbox<M>)>,
    active: usize,
}

/// Per-round signals published by the coordinator before barrier A.
struct RoundSignal {
    round: AtomicU64,
    stop: AtomicBool,
}

/// Barrier synchronisation with panic poisoning.
///
/// Every phase body runs inside [`PhaseSync::guard`]; a panic is captured,
/// the pool is flagged as poisoned, and the panicking party still reaches
/// its next barrier.  The first captured payload is re-thrown to the caller
/// by [`PhaseSync::rethrow`].
///
/// The barrier is hand-rolled (generation-counted mutex + condvar) rather
/// than [`std::sync::Barrier`] because the poison verdict must be decided
/// **at the instant a crossing completes** and stamped into that
/// generation.  Reading an atomic flag *after* a standard barrier crossing
/// is racy: a descheduled party could perform its read only after a later
/// phase has already poisoned the pool, see a different verdict than its
/// peers, and exit early — leaving the remaining parties deadlocked at the
/// next crossing.  With a per-generation verdict every party of a crossing
/// observes the same decision no matter when it wakes, so all parties
/// always exit at the same crossing.
struct PhaseSync {
    state: Mutex<SyncState>,
    cvar: Condvar,
    parties: usize,
    poisoned: AtomicBool,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

struct SyncState {
    /// Parties that have arrived at the current crossing.
    arrived: usize,
    /// Completed-crossings counter.
    generation: u64,
    /// Poison verdict of the most recently completed crossing.
    verdict_poisoned: bool,
}

impl PhaseSync {
    fn new(parties: usize) -> Self {
        Self {
            state: Mutex::new(SyncState {
                arrived: 0,
                generation: 0,
                verdict_poisoned: false,
            }),
            cvar: Condvar::new(),
            parties,
            poisoned: AtomicBool::new(false),
            panic: Mutex::new(None),
        }
    }

    /// Runs one phase body, capturing a panic instead of unwinding through
    /// the pool.  `AssertUnwindSafe` is sound here because after a poisoning
    /// panic the possibly-inconsistent node/arena state is never touched
    /// again: every party exits at the next barrier and the panic is
    /// re-thrown.
    fn guard(&self, body: impl FnOnce()) {
        if self.poisoned.load(Ordering::SeqCst) {
            return;
        }
        if let Err(payload) = catch_unwind(AssertUnwindSafe(body)) {
            let mut slot = self.panic.lock().unwrap_or_else(|e| e.into_inner());
            if slot.is_none() {
                *slot = Some(payload);
            }
            self.poisoned.store(true, Ordering::SeqCst);
        }
    }

    /// Crosses the barrier; returns `false` if the pool was poisoned when
    /// the crossing completed.  The verdict is stamped per generation, so
    /// every party of one crossing gets the same answer and all parties
    /// exit the protocol at the same crossing.
    fn sync(&self) -> bool {
        // No user code runs under this lock, so it cannot be poisoned; the
        // `unwrap_or_else` is belt and braces.
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let generation = st.generation;
        st.arrived += 1;
        if st.arrived == self.parties {
            st.arrived = 0;
            st.generation += 1;
            st.verdict_poisoned = self.poisoned.load(Ordering::SeqCst);
            let verdict = st.verdict_poisoned;
            drop(st);
            self.cvar.notify_all();
            !verdict
        } else {
            while st.generation == generation {
                st = self.cvar.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            // `verdict_poisoned` still belongs to our generation: the next
            // crossing cannot complete (and overwrite it) before this party
            // calls `sync` again.
            !st.verdict_poisoned
        }
    }

    /// Re-throws the first captured panic, if any.
    fn rethrow(&self) {
        let payload = self.panic.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

impl<T: TopologyView> Executor<T> for PooledExecutor {
    fn drive<A: NodeAlgorithm>(
        &self,
        topology: &T,
        nodes: &mut [A],
        contexts: &[NodeContext],
        state: &mut RoundState<A::Message>,
        max_rounds: u64,
        metrics: &mut RunMetrics,
        tracer: &dyn TraceSink,
    ) {
        let n = nodes.len();
        let chunk = n.div_ceil(self.threads).max(1);
        let workers = n.div_ceil(chunk); // number of nonempty chunks (0 if n == 0)
        if tracer.enabled() {
            tracer.emit(&TraceEvent::RunStart {
                nodes: n,
                shards: 1,
            });
        }

        let arena = RwLock::new(std::mem::take(state));
        let signal = RoundSignal {
            round: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        };
        let sync = PhaseSync::new(workers + 1);
        let mailboxes: Vec<Mutex<Mailbox<A::Message>>> = (0..workers)
            .map(|_| {
                Mutex::new(Mailbox {
                    outboxes: Vec::new(),
                    active: 0,
                })
            })
            .collect();

        std::thread::scope(|scope| {
            for (w, (node_chunk, ctx_chunk)) in nodes
                .chunks_mut(chunk)
                .zip(contexts.chunks(chunk))
                .enumerate()
            {
                let base = w * chunk;
                let (arena, signal, sync, mailbox) = (&arena, &signal, &sync, &mailboxes[w]);
                scope.spawn(move || {
                    worker_loop(
                        topology, node_chunk, ctx_chunk, base, arena, signal, sync, mailbox,
                    );
                });
            }
            coordinate(
                topology, &arena, &signal, &sync, &mailboxes, max_rounds, metrics, tracer,
            );
        });

        if tracer.enabled() {
            tracer.emit(&TraceEvent::RunEnd {
                rounds: metrics.rounds,
            });
        }
        *state = arena.into_inner().unwrap_or_else(|e| e.into_inner());
        sync.rethrow();
    }
}

/// The per-worker half of the pooled barrier protocol.
#[allow(clippy::too_many_arguments)]
fn worker_loop<A: NodeAlgorithm, T: TopologyView>(
    topology: &T,
    nodes: &mut [A],
    contexts: &[NodeContext],
    base: NodeId,
    arena: &RwLock<RoundState<A::Message>>,
    signal: &RoundSignal,
    sync: &PhaseSync,
    mailbox: &Mutex<Mailbox<A::Message>>,
) {
    // Local compact active set (global node ids); compaction never leaves
    // this worker, only the count is published.
    let mut active: Vec<NodeId> = Vec::new();
    sync.guard(|| {
        active.extend(
            (0..nodes.len())
                .filter(|&i| !nodes[i].is_halted())
                .map(|i| base + i),
        );
        mailbox.lock().expect("mailbox lock").active = active.len();
    });
    if !sync.sync() {
        return; // ready barrier
    }

    loop {
        if !sync.sync() {
            return; // A: round decision published
        }
        if signal.stop.load(Ordering::SeqCst) {
            return;
        }
        let round = signal.round.load(Ordering::SeqCst);

        // --- Send phase: stage outboxes in the worker's mailbox ---------
        sync.guard(|| {
            let mut mb = mailbox.lock().expect("mailbox lock");
            for &v in &active {
                let ctx = NodeContext {
                    round,
                    ..contexts[v - base]
                };
                let outbox = nodes[v - base].send(&ctx);
                if !outbox.is_silent() {
                    mb.outboxes.push((v, outbox));
                }
            }
        });
        if !sync.sync() {
            return; // B: all sends staged — coordinator delivers
        }
        if !sync.sync() {
            return; // C: delivery done — slots are readable
        }

        // --- Receive phase: read slot views, compact, publish count -----
        sync.guard(|| {
            {
                let st = arena.read().expect("arena read lock");
                for &v in &active {
                    let ctx = NodeContext {
                        round,
                        ..contexts[v - base]
                    };
                    let inbox = st.inbox(topology, v);
                    nodes[v - base].receive(&ctx, &inbox);
                }
            }
            active.retain(|&v| !nodes[v - base].is_halted());
            mailbox.lock().expect("mailbox lock").active = active.len();
        });
        if !sync.sync() {
            return; // D: all receives done — coordinator decides
        }
    }
}

/// The coordinator half of the pooled barrier protocol (runs on the calling
/// thread inside the worker scope).  Trace events are emitted coordinator-
/// side only (as shard 0): phase windows are coordinator-measured anyway,
/// and per-round traffic comes from the metrics deltas of the delivery
/// phase, so workers stay uninstrumented.
#[allow(clippy::too_many_arguments)]
fn coordinate<M: MessageSize + Clone, T: TopologyView>(
    topology: &T,
    arena: &RwLock<RoundState<M>>,
    signal: &RoundSignal,
    sync: &PhaseSync,
    mailboxes: &[Mutex<Mailbox<M>>],
    max_rounds: u64,
    metrics: &mut RunMetrics,
    tracer: &dyn TraceSink,
) {
    let traced = tracer.enabled();
    let mut round: u64 = 0;
    if sync.sync() {
        // ready: initial active counts are published
        loop {
            let mut proceed = false;
            sync.guard(|| {
                let total: usize = mailboxes
                    .iter()
                    .map(|m| m.lock().expect("mailbox lock").active)
                    .sum();
                if total == 0 {
                    signal.stop.store(true, Ordering::SeqCst);
                } else if round >= max_rounds {
                    metrics.hit_round_cap = true;
                    signal.stop.store(true, Ordering::SeqCst);
                } else {
                    metrics.active_per_round.push(total);
                    if traced {
                        tracer.emit(&TraceEvent::RoundStart {
                            round,
                            active: total,
                        });
                    }
                    signal.round.store(round, Ordering::SeqCst);
                    proceed = true;
                }
            });
            if !sync.sync() {
                break; // A
            }
            if !proceed {
                break;
            }

            if traced {
                tracer.emit(&TraceEvent::PhaseStart {
                    round,
                    shard: 0,
                    phase: TracePhase::Send,
                });
            }
            let t = Instant::now();
            if !sync.sync() {
                break; // B: workers ran the send phase in this window
            }
            let send_d = t.elapsed().as_nanos() as u64;
            metrics.phase_nanos.send += send_d;
            if traced {
                tracer.emit(&TraceEvent::PhaseEnd {
                    round,
                    shard: 0,
                    phase: TracePhase::Send,
                    nanos: send_d,
                });
                tracer.emit(&TraceEvent::PhaseStart {
                    round,
                    shard: 0,
                    phase: TracePhase::Deliver,
                });
            }

            let t = Instant::now();
            let (m0, b0) = (metrics.messages, metrics.total_bits);
            sync.guard(|| {
                let mut st = arena.write().expect("arena write lock");
                st.clear_round();
                for mb in mailboxes {
                    let mut mb = mb.lock().expect("mailbox lock");
                    for (v, outbox) in mb.outboxes.drain(..) {
                        st.deliver(topology, v, outbox, metrics);
                    }
                }
            });
            if !sync.sync() {
                break; // C
            }
            let deliver_d = t.elapsed().as_nanos() as u64;
            metrics.phase_nanos.deliver += deliver_d;
            if traced {
                tracer.emit(&TraceEvent::PhaseEnd {
                    round,
                    shard: 0,
                    phase: TracePhase::Deliver,
                    nanos: deliver_d,
                });
                tracer.emit(&TraceEvent::ShardRound {
                    round,
                    shard: 0,
                    messages: metrics.messages - m0,
                    bits: metrics.total_bits - b0,
                    cross: 0,
                });
                tracer.emit(&TraceEvent::PhaseStart {
                    round,
                    shard: 0,
                    phase: TracePhase::Receive,
                });
            }

            let t = Instant::now();
            if !sync.sync() {
                break; // D: workers ran the receive phase in this window
            }
            let receive_d = t.elapsed().as_nanos() as u64;
            metrics.phase_nanos.receive += receive_d;
            if traced {
                tracer.emit(&TraceEvent::PhaseEnd {
                    round,
                    shard: 0,
                    phase: TracePhase::Receive,
                    nanos: receive_d,
                });
                // Workers published their post-compaction counts before D,
                // and won't touch them again until after the next A guard —
                // so this traced-only read is race-free.
                let remaining: usize = mailboxes
                    .iter()
                    .map(|m| m.lock().expect("mailbox lock").active)
                    .sum();
                tracer.emit(&TraceEvent::RoundEnd {
                    round,
                    active: remaining,
                    nanos: send_d + deliver_d + receive_d,
                });
            }

            round += 1;
        }
    }
    metrics.rounds = round;
}

/// The shard-owning executor: one worker per shard of a [`ShardedTopology`],
/// each with exclusive, lock-free ownership of its shard's inbox slots;
/// cross-shard messages travel through a pluggable [`Transport`] backend.
/// See the [module docs](self) for the delivery protocol.  Bit-for-bit
/// equivalent to [`SequentialExecutor`] on the same topology (outputs and
/// all logical counters; `wire_bytes_sent` / `transport_flush_nanos`
/// describe the backend and are exempt, like wall-clock timings).
///
/// The default backend is [`InProcess`] (shared-memory staging queues);
/// [`ShardedExecutor::with_transport`] selects another, e.g.
/// [`SocketLoopback`](crate::transport::SocketLoopback) to push every
/// cross-shard message through a wire-encoded kernel socket.
///
/// Unlike the other executors this one is tied to `ShardedTopology` (it
/// implements only `Executor<ShardedTopology>`): the shard layout *is* its
/// parallelisation strategy, so it takes no thread-count parameter — the
/// topology's shard count decides.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardedExecutor<B: TransportBuilder = InProcess> {
    builder: B,
    delivery: DeliveryMode,
}

/// How the sharded delivery phase treats a message arriving at an
/// already-occupied inbox slot.
///
/// In the fault-free CONGEST model at most one message crosses an edge per
/// round, so an occupied slot can only mean an algorithm bug —
/// [`DeliveryMode::Strict`] therefore panics.  A fault-injecting transport
/// (see [`crate::faults`]) deliberately breaks that assumption: it may
/// deliver a stale copy carried across a round boundary *and* the fresh
/// message of the current round over the same edge.  [`DeliveryMode::Async`]
/// models an asynchronous link for exactly that case: the slot keeps the
/// most recently drained message (transports drain stale copies before
/// fresh ones, so "newest wins") and every overwrite is counted in
/// [`RunMetrics::stale_overwrites`](crate::RunMetrics::stale_overwrites).
/// Algorithms declare whether they tolerate this regime via
/// [`NodeAlgorithm::tolerates_async_delivery`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum DeliveryMode {
    /// Barrier-synchronous delivery: a second write to a slot panics
    /// (the fault-free CONGEST contract).
    #[default]
    Strict,
    /// Asynchronous delivery: a second write replaces the slot's message
    /// and is counted as a stale overwrite.
    Async,
}

impl ShardedExecutor<InProcess> {
    /// Creates the executor with the in-process (shared-memory) transport.
    pub fn new() -> Self {
        Self {
            builder: InProcess,
            delivery: DeliveryMode::Strict,
        }
    }
}

impl<B: TransportBuilder> ShardedExecutor<B> {
    /// Creates the executor over an explicit transport backend.
    pub fn with_transport(builder: B) -> Self {
        Self {
            builder,
            delivery: DeliveryMode::Strict,
        }
    }

    /// Selects the delivery mode (strict by default); see [`DeliveryMode`].
    pub fn with_delivery(mut self, delivery: DeliveryMode) -> Self {
        self.delivery = delivery;
        self
    }
}

/// Per-worker accounting of a sharded run.  Workers fill a local copy and
/// publish it when they exit; the coordinator merges the reports **in shard
/// order**, so every total in [`RunMetrics`] is deterministic.  Also reused
/// by the remote worker protocol in [`crate::transport`].
#[derive(Debug, Default)]
pub(crate) struct ShardReport {
    pub(crate) messages: u64,
    pub(crate) total_bits: u64,
    pub(crate) max_message_bits: u64,
    pub(crate) intra: u64,
    pub(crate) cross: u64,
    pub(crate) wire_bytes: u64,
    pub(crate) flush_nanos: u64,
    pub(crate) syscall_batches: u64,
    pub(crate) stale_overwrites: u64,
    pub(crate) timings: PhaseTimings,
}

impl ShardReport {
    fn record(&mut self, bits: u64) {
        self.messages += 1;
        self.total_bits += bits;
        self.max_message_bits = self.max_message_bits.max(bits);
    }
}

impl<B: TransportBuilder> Executor<ShardedTopology> for ShardedExecutor<B> {
    fn drive<A: NodeAlgorithm>(
        &self,
        topology: &ShardedTopology,
        nodes: &mut [A],
        contexts: &[NodeContext],
        state: &mut RoundState<A::Message>,
        max_rounds: u64,
        metrics: &mut RunMetrics,
        tracer: &dyn TraceSink,
    ) {
        let shard_count = topology.num_shards();
        assert_eq!(
            state.slots.len(),
            topology.num_directed_edges(),
            "arena must be pre-sized for this topology"
        );
        if tracer.enabled() {
            tracer.emit(&TraceEvent::RunStart {
                nodes: nodes.len(),
                shards: shard_count,
            });
        }
        // Workers track touched slots locally (in shard-local indices), so
        // any global bookkeeping left in a reused arena is retired first.
        state.clear_round();

        let signal = RoundSignal {
            round: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        };
        let sync = PhaseSync::new(shard_count + 1);
        let transport = self
            .builder
            .build::<A::Message>(topology)
            .unwrap_or_else(|e| panic!("failed to build the cross-shard transport: {e}"));
        let active_counts: Vec<AtomicUsize> =
            (0..shard_count).map(|_| AtomicUsize::new(0)).collect();
        let reports: Vec<Mutex<ShardReport>> = (0..shard_count)
            .map(|_| Mutex::new(ShardReport::default()))
            .collect();

        std::thread::scope(|scope| {
            // Hand each worker the exclusive slices it owns: its shard's
            // nodes, contexts and inbox slots (consecutive by the flat slot
            // contract, so a split_at_mut chain suffices).
            let mut rest_slots: &mut [Option<A::Message>] = &mut state.slots;
            let mut rest_nodes: &mut [A] = nodes;
            let mut rest_ctxs: &[NodeContext] = contexts;
            for s in 0..shard_count {
                let node_range = topology.shard_nodes(s);
                let slot_range = topology.shard_slots(s);
                let (my_slots, tail) = rest_slots.split_at_mut(slot_range.len());
                rest_slots = tail;
                let (my_nodes, tail) = rest_nodes.split_at_mut(node_range.len());
                rest_nodes = tail;
                let (my_ctxs, tail) = rest_ctxs.split_at(node_range.len());
                rest_ctxs = tail;
                let (signal, sync, transport) = (&signal, &sync, &transport);
                let (active_count, report) = (&active_counts[s], &reports[s]);
                let delivery = self.delivery;
                scope.spawn(move || {
                    sharded_worker_loop(
                        topology,
                        s,
                        my_nodes,
                        my_ctxs,
                        node_range.start,
                        my_slots,
                        slot_range.start,
                        signal,
                        sync,
                        transport,
                        delivery,
                        active_count,
                        report,
                        tracer,
                    );
                });
            }
            sharded_coordinate(&signal, &sync, &active_counts, max_rounds, metrics, tracer);
        });

        for report in &reports {
            let r = report.lock().unwrap_or_else(|e| e.into_inner());
            metrics.messages += r.messages;
            metrics.total_bits += r.total_bits;
            metrics.max_message_bits = metrics.max_message_bits.max(r.max_message_bits);
            metrics.intra_shard_messages += r.intra;
            metrics.cross_shard_messages += r.cross;
            metrics.wire_bytes_sent += r.wire_bytes;
            metrics.transport_flush_nanos += r.flush_nanos;
            metrics.syscall_batches += r.syscall_batches;
            metrics.stale_overwrites += r.stale_overwrites;
            metrics.shard_phase_nanos.push(r.timings);
        }
        if tracer.enabled() {
            tracer.emit(&TraceEvent::RunEnd {
                rounds: metrics.rounds,
            });
        }
        sync.rethrow();
    }
}

/// Writes `msg` into the worker-owned slot `local`, enforcing the one
/// message per edge per round CONGEST contract.
pub(crate) fn fill_shard_slot<M>(
    slots: &mut [Option<M>],
    local: usize,
    msg: M,
    sender: NodeId,
    touched: &mut Vec<usize>,
) {
    let entry = &mut slots[local];
    assert!(
        entry.is_none(),
        "node {sender} sent two messages over the same port in one round"
    );
    *entry = Some(msg);
    touched.push(local);
}

/// Routes one node's outbox: intra-shard messages go straight into the
/// worker's own slots, cross-shard ones to the `cross` sink (the transport's
/// staging in the executor, a wire-frame batch in the remote worker).
#[allow(clippy::too_many_arguments)]
pub(crate) fn route_outbox<M: MessageSize + Clone>(
    topology: &impl ShardTopologyView,
    shard: usize,
    v: NodeId,
    outbox: Outbox<M>,
    slots: &mut [Option<M>],
    slot_base: usize,
    touched: &mut Vec<usize>,
    report: &mut ShardReport,
    cross: &mut impl FnMut(u32, u32, M),
) {
    let slot_end = slot_base + slots.len();
    // The sender's shard is the calling worker's own, so every per-message
    // lookup below skips the `shard_of` search; only cross-shard messages
    // still resolve the receiving shard (over `S` entries).
    let degree = topology.degree_from(shard, v);
    let mut route_one = |p: Port, msg: M, report: &mut ShardReport| {
        let dest = topology.dest_slot_from(shard, v, p);
        report.record(msg.bit_size());
        if (slot_base..slot_end).contains(&dest) {
            report.intra += 1;
            fill_shard_slot(slots, dest - slot_base, msg, v, touched);
        } else {
            report.cross += 1;
            cross(dest as u32, v as u32, msg);
        }
    };
    match outbox {
        Outbox::Silent => {}
        Outbox::Broadcast(msg) => {
            for p in 0..degree {
                route_one(p, msg.clone(), report);
            }
        }
        Outbox::PerPort(list) => {
            for (p, msg) in list {
                assert!(p < degree, "node {v} sent on nonexistent port {p}");
                route_one(p, msg, report);
            }
        }
    }
}

/// The per-worker half of the sharded protocol (see the [module
/// docs](self)): owns shard `shard`'s nodes and inbox slots for the whole
/// run.
#[allow(clippy::too_many_arguments)]
fn sharded_worker_loop<A: NodeAlgorithm, X: Transport<A::Message>>(
    topology: &ShardedTopology,
    shard: usize,
    nodes: &mut [A],
    contexts: &[NodeContext],
    node_base: NodeId,
    slots: &mut [Option<A::Message>],
    slot_base: usize,
    signal: &RoundSignal,
    sync: &PhaseSync,
    transport: &X,
    delivery: DeliveryMode,
    active_count: &AtomicUsize,
    report: &Mutex<ShardReport>,
    tracer: &dyn TraceSink,
) {
    let traced = tracer.enabled();
    if traced {
        tracer.emit(&TraceEvent::WorkerStart { shard });
    }
    let mut active: Vec<NodeId> = Vec::new();
    let mut touched: Vec<usize> = Vec::new(); // shard-local slot indices
    let mut local = ShardReport::default();

    sync.guard(|| {
        active.extend(
            (0..nodes.len())
                .filter(|&i| !nodes[i].is_halted())
                .map(|i| node_base + i),
        );
        active_count.store(active.len(), Ordering::SeqCst);
    });
    if sync.sync() {
        // ready barrier crossed: initial active counts are published
        loop {
            if !sync.sync() {
                break; // A: round decision published
            }
            if signal.stop.load(Ordering::SeqCst) {
                break;
            }
            let round = signal.round.load(Ordering::SeqCst);

            // --- Send + route: clear own slots, stage this round's
            // messages, flush the transport at the send barrier ---------------
            sync.guard(|| {
                if traced {
                    tracer.emit(&TraceEvent::PhaseStart {
                        round,
                        shard,
                        phase: TracePhase::Send,
                    });
                }
                let (m0, b0, c0) = (local.messages, local.total_bits, local.cross);
                let t = Instant::now();
                for i in touched.drain(..) {
                    slots[i] = None;
                }
                for &v in &active {
                    let ctx = NodeContext {
                        round,
                        ..contexts[v - node_base]
                    };
                    let outbox = nodes[v - node_base].send(&ctx);
                    route_outbox(
                        topology,
                        shard,
                        v,
                        outbox,
                        slots,
                        slot_base,
                        &mut touched,
                        &mut local,
                        &mut |slot, sender, msg| {
                            let target = topology.shard_of_slot(slot as usize);
                            transport.stage(shard, target, slot, sender, msg);
                        },
                    );
                }
                let send_d = t.elapsed().as_nanos() as u64;
                local.timings.send += send_d;
                let w0 = local.wire_bytes;
                let t = Instant::now();
                local.wire_bytes += transport.flush(shard, round);
                let flush_d = t.elapsed().as_nanos() as u64;
                local.flush_nanos += flush_d;
                if traced {
                    tracer.emit(&TraceEvent::PhaseEnd {
                        round,
                        shard,
                        phase: TracePhase::Send,
                        nanos: send_d,
                    });
                    tracer.emit(&TraceEvent::ShardRound {
                        round,
                        shard,
                        messages: local.messages - m0,
                        bits: local.total_bits - b0,
                        cross: local.cross - c0,
                    });
                    tracer.emit(&TraceEvent::ShardFlush {
                        round,
                        shard,
                        wire_bytes: local.wire_bytes - w0,
                        nanos: flush_d,
                    });
                }
            });
            if !sync.sync() {
                break; // B: all routing staged and flushed
            }

            // --- Drain the incoming cross-shard channels into own slots ------
            sync.guard(|| {
                if traced {
                    tracer.emit(&TraceEvent::PhaseStart {
                        round,
                        shard,
                        phase: TracePhase::Deliver,
                    });
                }
                let t = Instant::now();
                let s0 = local.stale_overwrites;
                transport
                    .drain(shard, round, &mut |slot, sender, msg| {
                        let li = slot as usize - slot_base;
                        match delivery {
                            DeliveryMode::Strict => {
                                fill_shard_slot(slots, li, msg, sender as usize, &mut touched)
                            }
                            DeliveryMode::Async => {
                                // Newest wins: transports drain stale copies
                                // before the current round's messages.
                                if slots[li].replace(msg).is_some() {
                                    local.stale_overwrites += 1;
                                } else {
                                    touched.push(li);
                                }
                            }
                        }
                    })
                    .unwrap_or_else(|e| panic!("cross-shard transport failed: {e}"));
                let drain_d = t.elapsed().as_nanos() as u64;
                local.timings.deliver += drain_d;
                if traced {
                    tracer.emit(&TraceEvent::ShardDrain {
                        round,
                        shard,
                        nanos: drain_d,
                        stale: local.stale_overwrites - s0,
                    });
                    tracer.emit(&TraceEvent::PhaseEnd {
                        round,
                        shard,
                        phase: TracePhase::Deliver,
                        nanos: drain_d,
                    });
                }
            });
            if !sync.sync() {
                break; // C: every slot of this round is in place
            }

            // --- Receive + compact -------------------------------------------
            sync.guard(|| {
                if traced {
                    tracer.emit(&TraceEvent::PhaseStart {
                        round,
                        shard,
                        phase: TracePhase::Receive,
                    });
                }
                let t = Instant::now();
                for &v in &active {
                    let ctx = NodeContext {
                        round,
                        ..contexts[v - node_base]
                    };
                    let r = topology.port_range(v);
                    let inbox = Inbox::from_slots(&slots[r.start - slot_base..r.end - slot_base]);
                    nodes[v - node_base].receive(&ctx, &inbox);
                }
                active.retain(|&v| !nodes[v - node_base].is_halted());
                active_count.store(active.len(), Ordering::SeqCst);
                let receive_d = t.elapsed().as_nanos() as u64;
                local.timings.receive += receive_d;
                if traced {
                    tracer.emit(&TraceEvent::PhaseEnd {
                        round,
                        shard,
                        phase: TracePhase::Receive,
                        nanos: receive_d,
                    });
                }
            });
            if !sync.sync() {
                break; // D: all receives done — coordinator decides
            }
        }
    }

    // Retire this worker's final-round slots before exiting: the touched
    // list is thread-local, so anything left filled here would be invisible
    // to `RoundState::clear_round` and leak into a reused arena as phantom
    // messages.
    for i in touched.drain(..) {
        slots[i] = None;
    }
    local.syscall_batches = transport.syscall_batches(shard);
    *report.lock().unwrap_or_else(|e| e.into_inner()) = local;
    if traced {
        tracer.emit(&TraceEvent::WorkerEnd { shard });
    }
}

/// The coordinator half of the sharded protocol: decides rounds from the
/// published active counts and attributes the barrier-to-barrier windows to
/// the engine phases (A→B send + intra-shard delivery, B→C cross-shard
/// drain, C→D receive).
fn sharded_coordinate(
    signal: &RoundSignal,
    sync: &PhaseSync,
    active_counts: &[AtomicUsize],
    max_rounds: u64,
    metrics: &mut RunMetrics,
    tracer: &dyn TraceSink,
) {
    let traced = tracer.enabled();
    let mut round: u64 = 0;
    if sync.sync() {
        // ready: initial active counts are published
        loop {
            let mut proceed = false;
            sync.guard(|| {
                let total: usize = active_counts.iter().map(|c| c.load(Ordering::SeqCst)).sum();
                if total == 0 {
                    signal.stop.store(true, Ordering::SeqCst);
                } else if round >= max_rounds {
                    metrics.hit_round_cap = true;
                    signal.stop.store(true, Ordering::SeqCst);
                } else {
                    metrics.active_per_round.push(total);
                    if traced {
                        tracer.emit(&TraceEvent::RoundStart {
                            round,
                            active: total,
                        });
                    }
                    signal.round.store(round, Ordering::SeqCst);
                    proceed = true;
                }
            });
            if !sync.sync() {
                break; // A
            }
            if !proceed {
                break;
            }

            let t = Instant::now();
            if !sync.sync() {
                break; // B: send + intra-shard delivery window
            }
            let send_d = t.elapsed().as_nanos() as u64;
            metrics.phase_nanos.send += send_d;

            let t = Instant::now();
            if !sync.sync() {
                break; // C: cross-shard drain window
            }
            let deliver_d = t.elapsed().as_nanos() as u64;
            metrics.phase_nanos.deliver += deliver_d;

            let t = Instant::now();
            if !sync.sync() {
                break; // D: receive window
            }
            let receive_d = t.elapsed().as_nanos() as u64;
            metrics.phase_nanos.receive += receive_d;
            if traced {
                // Workers stored their post-compaction counts before D and
                // won't store again until the next round's receive guard
                // (which needs this coordinator at A first) — race-free.
                let remaining: usize = active_counts.iter().map(|c| c.load(Ordering::SeqCst)).sum();
                tracer.emit(&TraceEvent::RoundEnd {
                    round,
                    active: remaining,
                    nanos: send_d + deliver_d + receive_d,
                });
            }

            round += 1;
        }
    }
    metrics.rounds = round;
}
