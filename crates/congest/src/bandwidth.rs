//! CONGEST bandwidth verification.
//!
//! The CONGEST model allows messages of at most `O(log n)` bits.  The
//! simulator records the largest message of a run; this module turns that
//! into a pass/fail report against a configurable constant `c` in the bound
//! `c · max(1, log₂ n)` so experiments (E12) can assert CONGEST feasibility.

use serde::{Deserialize, Serialize};

use crate::metrics::RunMetrics;

/// The outcome of checking a run against the CONGEST bandwidth bound.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BandwidthReport {
    /// Number of nodes of the network the run was executed on.
    pub n: usize,
    /// The largest message observed, in bits.
    pub max_message_bits: u64,
    /// The bound `c · max(1, ⌈log₂ n⌉)` the run was checked against.
    pub allowed_bits: u64,
    /// The constant `c` used.
    pub constant: u64,
    /// Whether every message respected the bound.
    pub within_congest: bool,
}

impl BandwidthReport {
    /// Checks the metrics of a run on an `n`-node network against the bound
    /// `c · max(1, ⌈log₂ n⌉)` bits per message.
    pub fn check(n: usize, metrics: &RunMetrics, constant: u64) -> Self {
        let log_n = if n <= 1 {
            1
        } else {
            (usize::BITS - (n - 1).leading_zeros()) as u64
        };
        let allowed = constant * log_n.max(1);
        Self {
            n,
            max_message_bits: metrics.max_message_bits,
            allowed_bits: allowed,
            constant,
            within_congest: metrics.max_message_bits <= allowed,
        }
    }
}

impl core::fmt::Display for BandwidthReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "max message {} bits vs allowed {} bits (c={} on n={}): {}",
            self.max_message_bits,
            self.allowed_bits,
            self.constant,
            self.n,
            if self.within_congest {
                "OK"
            } else {
                "VIOLATION"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn within_and_over_bound() {
        let mut m = RunMetrics::default();
        m.record_message(12);
        let ok = BandwidthReport::check(1024, &m, 2);
        assert_eq!(ok.allowed_bits, 20);
        assert!(ok.within_congest);

        m.record_message(64);
        let bad = BandwidthReport::check(1024, &m, 2);
        assert!(!bad.within_congest);
        assert_eq!(bad.max_message_bits, 64);
    }

    #[test]
    fn tiny_networks_get_a_floor_of_one_logn() {
        let m = RunMetrics::default();
        let r = BandwidthReport::check(1, &m, 3);
        assert_eq!(r.allowed_bits, 3);
        assert!(r.within_congest);
    }

    #[test]
    fn display_mentions_verdict() {
        let mut m = RunMetrics::default();
        m.record_message(5);
        let r = BandwidthReport::check(64, &m, 4);
        let s = format!("{r}");
        assert!(s.contains("OK"));
    }
}
