//! Integration-test and example host crate.
//!
//! This crate exists so that the workspace-level `tests/` directory and the
//! `examples/` directory (both at the repository root, as laid out in
//! DESIGN.md) have a Cargo package to belong to.  It re-exports the public
//! crates for convenience; the actual content lives in `/tests/*.rs` and
//! `/examples/*.rs`.

#![forbid(unsafe_code)]

pub use dcme_algebra as algebra;
pub use dcme_baselines as baselines;
pub use dcme_bench as bench;
pub use dcme_coloring as coloring;
pub use dcme_congest as congest;
pub use dcme_graphs as graphs;
