//! Graph statistics reported alongside experiment results.

use serde::{Deserialize, Serialize};

use dcme_congest::Topology;

/// Summary statistics of a workload graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Number of nodes.
    pub n: usize,
    /// Number of undirected edges.
    pub m: usize,
    /// Maximum degree Δ.
    pub max_degree: u32,
    /// Minimum degree.
    pub min_degree: u32,
    /// Average degree `2m / n`.
    pub avg_degree: f64,
    /// Number of connected components.
    pub components: usize,
}

impl GraphStats {
    /// Computes statistics for a topology.
    pub fn compute(topology: &Topology) -> Self {
        let n = topology.num_nodes();
        let m = topology.num_edges();
        let degrees: Vec<usize> = (0..n).map(|v| topology.degree(v)).collect();
        let max_degree = degrees.iter().copied().max().unwrap_or(0) as u32;
        let min_degree = degrees.iter().copied().min().unwrap_or(0) as u32;
        let avg_degree = if n == 0 {
            0.0
        } else {
            2.0 * m as f64 / n as f64
        };
        Self {
            n,
            m,
            max_degree,
            min_degree,
            avg_degree,
            components: count_components(topology),
        }
    }
}

/// Counts connected components by repeated BFS.
pub fn count_components(topology: &Topology) -> usize {
    let n = topology.num_nodes();
    let mut visited = vec![false; n];
    let mut components = 0;
    for start in 0..n {
        if visited[start] {
            continue;
        }
        components += 1;
        let mut queue = std::collections::VecDeque::new();
        visited[start] = true;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &w in topology.neighbors(u) {
                if !visited[w] {
                    visited[w] = true;
                    queue.push_back(w);
                }
            }
        }
    }
    components
}

/// The degree histogram: `hist[d]` = number of nodes of degree `d`.
pub fn degree_histogram(topology: &Topology) -> Vec<usize> {
    let mut hist = vec![0usize; topology.max_degree() as usize + 1];
    for v in topology.nodes() {
        hist[topology.degree(v)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn stats_on_ring() {
        let g = generators::ring(10);
        let s = GraphStats::compute(&g);
        assert_eq!(s.n, 10);
        assert_eq!(s.m, 10);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.min_degree, 2);
        assert!((s.avg_degree - 2.0).abs() < 1e-12);
        assert_eq!(s.components, 1);
    }

    #[test]
    fn stats_on_disjoint_cliques() {
        let g = generators::disjoint_cliques(4, 3);
        let s = GraphStats::compute(&g);
        assert_eq!(s.components, 4);
        assert_eq!(s.max_degree, 2);
    }

    #[test]
    fn degree_histogram_on_star() {
        let g = generators::star(5);
        let hist = degree_histogram(&g);
        assert_eq!(hist[1], 5);
        assert_eq!(hist[5], 1);
        assert_eq!(hist.iter().sum::<usize>(), 6);
    }

    #[test]
    fn empty_graph_stats() {
        let g = generators::empty(3);
        let s = GraphStats::compute(&g);
        assert_eq!(s.components, 3);
        assert_eq!(s.avg_degree, 0.0);
        assert_eq!(s.max_degree, 0);
    }
}
