//! Induced subgraphs with node re-indexing.
//!
//! Several algorithms of the paper run "on each color class in parallel"
//! (Theorem 1.3) or "on the graph induced by V_i" (the MT20-style schedule).
//! In a real network those are the same nodes physically; in the simulator we
//! extract the induced subgraph, run on it, and map the results back.

use dcme_congest::{NodeId, Topology};

/// An induced subgraph together with the mapping back to the host graph.
#[derive(Debug, Clone)]
pub struct InducedSubgraph {
    /// The subgraph topology over re-indexed nodes `0..k`.
    pub topology: Topology,
    /// `original[i]` is the host-graph node that subgraph node `i` represents.
    pub original: Vec<NodeId>,
}

impl InducedSubgraph {
    /// Extracts the subgraph of `host` induced by `nodes`.
    ///
    /// Duplicate entries in `nodes` are ignored; the subgraph nodes are
    /// numbered in ascending order of their original ids.
    pub fn extract(host: &Topology, nodes: &[NodeId]) -> Self {
        let mut original: Vec<NodeId> = nodes.to_vec();
        original.sort_unstable();
        original.dedup();
        let mut index_of = vec![usize::MAX; host.num_nodes()];
        for (i, &v) in original.iter().enumerate() {
            index_of[v] = i;
        }
        let mut edges = Vec::new();
        for (i, &v) in original.iter().enumerate() {
            for &u in host.neighbors(v) {
                let j = index_of[u];
                if j != usize::MAX && i < j {
                    edges.push((i, j));
                }
            }
        }
        let topology =
            Topology::from_edges(original.len(), &edges).expect("induced edges are valid");
        Self { topology, original }
    }

    /// Number of nodes in the subgraph.
    pub fn len(&self) -> usize {
        self.original.len()
    }

    /// Whether the subgraph is empty.
    pub fn is_empty(&self) -> bool {
        self.original.is_empty()
    }

    /// Maps a subgraph node back to the host graph.
    pub fn to_host(&self, sub_node: NodeId) -> NodeId {
        self.original[sub_node]
    }

    /// Scatters per-subgraph-node values into a host-sized vector, leaving
    /// other positions untouched.
    pub fn scatter<T: Clone>(&self, values: &[T], host_values: &mut [T]) {
        assert_eq!(values.len(), self.original.len());
        for (i, &v) in self.original.iter().enumerate() {
            host_values[v] = values[i].clone();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn extract_from_ring() {
        let g = generators::ring(6);
        let sub = InducedSubgraph::extract(&g, &[0, 1, 2, 4]);
        assert_eq!(sub.len(), 4);
        // Edges 0-1, 1-2 survive; 4 is isolated within the subgraph.
        assert_eq!(sub.topology.num_edges(), 2);
        assert_eq!(sub.to_host(3), 4);
        assert!(sub.topology.are_adjacent(0, 1));
        assert!(!sub.topology.are_adjacent(2, 3));
    }

    #[test]
    fn duplicates_are_ignored_and_scatter_works() {
        let g = generators::path(5);
        let sub = InducedSubgraph::extract(&g, &[3, 1, 3, 1]);
        assert_eq!(sub.len(), 2);
        assert!(!sub.is_empty());
        let mut host = vec![0u64; 5];
        sub.scatter(&[7, 9], &mut host);
        assert_eq!(host, vec![0, 7, 0, 9, 0]);
    }

    #[test]
    fn empty_selection() {
        let g = generators::path(3);
        let sub = InducedSubgraph::extract(&g, &[]);
        assert!(sub.is_empty());
        assert_eq!(sub.topology.num_nodes(), 0);
    }
}
