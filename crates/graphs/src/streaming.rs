//! Streaming builders for [`ShardedTopology`]: graph families that are
//! emitted edge-by-edge, shard-by-shard, **never materializing a global
//! `Vec<(NodeId, NodeId)>`**.
//!
//! The dense constructors in [`generators`](crate::generators) collect an
//! edge list and hand it to `Topology::from_edges`; at `n ≥ 10^7` that
//! transient list (plus the duplicate-detection hash set) dwarfs the final
//! CSR.  The builders here instead describe each family as a *replayable
//! edge stream* consumed twice by
//! [`ShardedTopology::from_edge_stream`] (degree pass + fill pass), so peak
//! memory is the compact sharded CSR itself.  Randomized families re-seed
//! their RNG inside the stream closure, making the two passes — and any two
//! builds with the same seed — emit identical edges.
//!
//! Two families deviate deliberately from their dense counterparts:
//!
//! * [`random_regular`] samples a **random circulant** graph (each node `i`
//!   is joined to `i ± s` for `d/2` distinct random shifts `s`) rather than
//!   the pairing model, which needs an `O(n·d)` stub permutation and
//!   edge dedup.  The result is exactly `d`-regular, which is what the
//!   experiments need from the family (a given `Δ`), and it streams in
//!   `O(d)` state.
//! * [`gnp`] draws the same `G(n, p)` distribution as the dense generator
//!   but enumerates present edges directly by geometric skips, costing
//!   `O(m)` draws instead of `O(n²)` Bernoulli trials (it produces a
//!   different — equally distributed — sample for a given seed).

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use dcme_congest::{ShardedTopology, TopologyError};

/// The replayable edge stream of a cycle on `n >= 3` nodes.
///
/// Every `*_stream` builder here returns a closure that emits the family's
/// full edge list on each call, always in the same order — the contract
/// [`ShardedTopology::from_edge_stream`] (two passes) and
/// [`ShardSliceTopology::build`](dcme_congest::ShardSliceTopology::build)
/// (a worker replaying a coordinator's
/// [`ShardPlan`](dcme_congest::ShardPlan)) both rely on.
pub fn ring_stream(n: usize) -> impl FnMut(&mut dyn FnMut(usize, usize)) + Clone {
    assert!(n >= 3, "a ring needs at least 3 nodes");
    move |emit| {
        for i in 0..n {
            emit(i, (i + 1) % n);
        }
    }
}

/// A cycle on `n >= 3` nodes, in `shards` shards.
///
/// Streaming counterpart of [`generators::ring`](crate::generators::ring):
/// identical structure, identical port numbering.
pub fn ring(n: usize, shards: usize) -> Result<ShardedTopology, TopologyError> {
    ShardedTopology::from_edge_stream(n, shards, ring_stream(n))
}

/// A `w × h` grid (torus with `wrap = true`), in `shards` shards.
///
/// Streaming counterpart of [`generators::grid`](crate::generators::grid):
/// identical structure, identical port numbering.
pub fn grid(
    w: usize,
    h: usize,
    wrap: bool,
    shards: usize,
) -> Result<ShardedTopology, TopologyError> {
    ShardedTopology::from_edge_stream(w * h, shards, grid_stream(w, h, wrap))
}

/// The replayable edge stream of [`grid`] (see [`ring_stream`] for the
/// replay contract).
pub fn grid_stream(
    w: usize,
    h: usize,
    wrap: bool,
) -> impl FnMut(&mut dyn FnMut(usize, usize)) + Clone {
    assert!(w >= 1 && h >= 1);
    let id = move |x: usize, y: usize| y * w + x;
    move |emit| {
        for y in 0..h {
            for x in 0..w {
                if x + 1 < w {
                    emit(id(x, y), id(x + 1, y));
                } else if wrap && w > 2 {
                    emit(id(x, y), id(0, y));
                }
                if y + 1 < h {
                    emit(id(x, y), id(x, y + 1));
                } else if wrap && h > 2 {
                    emit(id(x, y), id(x, 0));
                }
            }
        }
    }
}

/// A random `d`-regular circulant graph on `n` nodes, in `shards` shards:
/// node `i` is adjacent to `(i ± s) mod n` for `d/2` distinct shifts drawn
/// uniformly from `1..=(n-1)/2`.
///
/// Exactly `d`-regular (`d` must be even, `d/2 ≤ (n-1)/2`), deterministic
/// per seed, and streamed in `O(d)` generator state — see the
/// [module docs](self) for why this replaces the pairing model at scale.
pub fn random_regular(
    n: usize,
    d: usize,
    seed: u64,
    shards: usize,
) -> Result<ShardedTopology, TopologyError> {
    ShardedTopology::from_edge_stream(n, shards, random_regular_stream(n, d, seed))
}

/// The replayable edge stream of [`random_regular`] (see [`ring_stream`]
/// for the replay contract): the shifts are drawn once, up front, so every
/// replay emits the identical circulant.
pub fn random_regular_stream(
    n: usize,
    d: usize,
    seed: u64,
) -> impl FnMut(&mut dyn FnMut(usize, usize)) + Clone {
    assert!(
        d >= 2 && d % 2 == 0,
        "circulant degree must be even and >= 2"
    );
    let half = d / 2;
    let max_shift = (n.saturating_sub(1)) / 2;
    assert!(
        half <= max_shift,
        "need d/2 <= (n-1)/2 distinct shifts (n={n}, d={d})"
    );
    // Draw d/2 distinct shifts; d is tiny compared to n, so rejection
    // converges immediately.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut shifts: Vec<usize> = Vec::with_capacity(half);
    while shifts.len() < half {
        let s = 1 + (rng.next_u64() as usize) % max_shift;
        if !shifts.contains(&s) {
            shifts.push(s);
        }
    }
    move |emit| {
        for i in 0..n {
            for &s in &shifts {
                emit(i, (i + s) % n);
            }
        }
    }
}

/// Erdős–Rényi `G(n, p)` on `n` nodes, in `shards` shards, via geometric
/// skip-sampling over the lexicographic pair order (`O(m)` RNG draws).
///
/// Same distribution as [`generators::gnp`](crate::generators::gnp) but a
/// different sample per seed (see the [module docs](self)).
pub fn gnp(n: usize, p: f64, seed: u64, shards: usize) -> Result<ShardedTopology, TopologyError> {
    ShardedTopology::from_edge_stream(n, shards, gnp_stream(n, p, seed))
}

/// The replayable edge stream of [`gnp`] (see [`ring_stream`] for the
/// replay contract): the RNG is re-seeded inside the closure, so every
/// replay draws the identical sample.
pub fn gnp_stream(n: usize, p: f64, seed: u64) -> impl FnMut(&mut dyn FnMut(usize, usize)) + Clone {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    move |emit| {
        if n < 2 || p <= 0.0 {
            return;
        }
        // Walk the pairs (u, v), u < v, in lexicographic order; between
        // consecutive present edges the number of absent pairs is
        // geometric with parameter p.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut u = 0usize;
        // Offset of the next candidate pair within u's row (v = u + 1 + col).
        let mut col = 0usize;
        let advance = |u: &mut usize, col: &mut usize, by: usize| {
            *col += by;
            while *u + 1 < n && *col >= n - 1 - *u {
                *col -= n - 1 - *u;
                *u += 1;
            }
        };
        if p >= 1.0 {
            // Every pair is present; no skipping (and ln(1-p) is -inf).
            while u + 1 < n {
                emit(u, u + 1 + col);
                advance(&mut u, &mut col, 1);
            }
            return;
        }
        let denom = (1.0 - p).ln();
        let skip = |rng: &mut StdRng| -> usize {
            // Uniform in (0, 1]: never ln(0).
            let x = ((rng.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64);
            (x.ln() / denom) as usize
        };
        let first = skip(&mut rng);
        advance(&mut u, &mut col, first);
        while u + 1 < n {
            emit(u, u + 1 + col);
            let gap = skip(&mut rng);
            advance(&mut u, &mut col, 1 + gap);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use dcme_congest::{Topology, TopologyView};

    /// Asserts the streamed sharded graph has the exact port-numbered
    /// structure of a dense topology.
    fn assert_same_structure(dense: &Topology, sharded: &ShardedTopology) {
        assert_eq!(sharded.num_nodes(), dense.num_nodes());
        assert_eq!(sharded.num_directed_edges(), dense.num_directed_edges());
        assert_eq!(TopologyView::max_degree(sharded), dense.max_degree());
        for v in dense.nodes() {
            assert_eq!(TopologyView::degree(sharded, v), dense.degree(v));
            assert_eq!(TopologyView::port_range(sharded, v), dense.port_range(v));
            for p in 0..dense.degree(v) {
                assert_eq!(
                    TopologyView::neighbor_at(sharded, v, p),
                    dense.neighbor_at(v, p)
                );
                assert_eq!(
                    TopologyView::reverse_port(sharded, v, p),
                    dense.reverse_port(v, p)
                );
            }
        }
    }

    #[test]
    fn streamed_ring_matches_dense_ring() {
        for shards in [1, 2, 5] {
            let sharded = ring(23, shards).unwrap();
            assert_same_structure(&generators::ring(23), &sharded);
        }
    }

    #[test]
    fn streamed_grid_matches_dense_grid() {
        for wrap in [false, true] {
            let sharded = grid(5, 4, wrap, 3).unwrap();
            assert_same_structure(&generators::grid(5, 4, wrap), &sharded);
        }
    }

    #[test]
    fn circulant_is_exactly_d_regular_and_deterministic() {
        let a = random_regular(101, 6, 9, 4).unwrap();
        let b = random_regular(101, 6, 9, 4).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.num_edges(), 101 * 6 / 2);
        assert_eq!(TopologyView::max_degree(&a), 6);
        for v in 0..101 {
            assert_eq!(TopologyView::degree(&a, v), 6);
        }
        // Port symmetry holds (the structural invariant every topology
        // representation must satisfy).
        for v in 0..101 {
            for p in 0..6 {
                let u = TopologyView::neighbor_at(&a, v, p);
                let rp = TopologyView::reverse_port(&a, v, p);
                assert_eq!(TopologyView::neighbor_at(&a, u, rp), v);
            }
        }
        assert_ne!(random_regular(101, 6, 10, 4).unwrap(), a, "seed matters");
    }

    #[test]
    fn gnp_extremes_and_determinism() {
        assert_eq!(gnp(20, 0.0, 1, 2).unwrap().num_edges(), 0);
        let complete = gnp(12, 1.0, 1, 3).unwrap();
        assert_eq!(complete.num_edges(), 12 * 11 / 2);
        assert_same_structure(&generators::complete(12), &complete);
        let a = gnp(60, 0.1, 5, 2).unwrap();
        assert_eq!(a, gnp(60, 0.1, 5, 2).unwrap());
        // Edge count lands in a generous band around p · n(n-1)/2 = 177.
        assert!((60..350).contains(&a.num_edges()), "{}", a.num_edges());
    }

    /// Every `*_stream` closure must emit the identical edge sequence on
    /// every call — the replay contract a remote worker depends on when it
    /// rebuilds its shard slice from the coordinator's plan.
    #[test]
    fn stream_builders_replay_identically() {
        fn edges_of(mut stream: impl FnMut(&mut dyn FnMut(usize, usize))) -> Vec<(usize, usize)> {
            let mut edges = Vec::new();
            stream(&mut |u, v| edges.push((u, v)));
            edges
        }
        type BoxedStream = Box<dyn FnMut(&mut dyn FnMut(usize, usize))>;
        let mut streams: Vec<BoxedStream> = vec![
            Box::new(ring_stream(17)),
            Box::new(grid_stream(4, 5, true)),
            Box::new(random_regular_stream(41, 4, 7)),
            Box::new(gnp_stream(40, 0.15, 3)),
        ];
        for stream in &mut streams {
            let first = edges_of(&mut *stream);
            let second = edges_of(&mut *stream);
            assert!(!first.is_empty());
            assert_eq!(first, second);
        }
    }

    #[test]
    fn tiny_graphs_do_not_panic() {
        assert_eq!(gnp(1, 0.5, 0, 1).unwrap().num_edges(), 0);
        assert_eq!(gnp(0, 0.5, 0, 1).unwrap().num_nodes(), 0);
        let g = ring(3, 8).unwrap();
        assert_eq!(g.num_shards(), 8);
        assert_eq!(g.num_edges(), 3);
    }
}
