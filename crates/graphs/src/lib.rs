//! Graph workloads and verifiers for the distributed coloring experiments.
//!
//! The paper's theorems hold for *every* graph of maximum degree `Δ`; the
//! reproduction exercises them on synthetic families with controlled `n` and
//! `Δ` ([`generators`]) and machine-checks the postconditions of every run
//! ([`verify`]):
//!
//! * proper colorings (no monochromatic edge),
//! * `d`-defective colorings (every node has at most `d` same-colored
//!   neighbours),
//! * `β`-outdegree colorings (monochromatic edges oriented with outdegree ≤ β),
//! * partitions into low-degree induced subgraphs (Theorem 1.1 (2)),
//! * independent sets and `(2, r)`-ruling sets.
//!
//! [`coloring`] holds the output types shared by the algorithm crates,
//! [`stats`] provides the degree statistics the experiment tables report,
//! and [`streaming`] builds edge-partitioned
//! [`ShardedTopology`](dcme_congest::ShardedTopology) graphs shard-by-shard
//! without ever materializing a global edge list (the `n ≥ 10^7` path).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coloring;
pub mod generators;
pub mod stats;
pub mod streaming;
pub mod subgraph;
pub mod verify;

pub use coloring::{Coloring, OrientedColoring, PartitionedColoring};
pub use generators::GraphFamily;
pub use stats::GraphStats;
pub use subgraph::InducedSubgraph;
