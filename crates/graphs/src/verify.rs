//! Machine-checked postconditions for every algorithm output.
//!
//! The paper proves its guarantees; the reproduction *checks* them after
//! every run.  Each checker returns a `Result<(), Violation>` whose error
//! pinpoints the offending vertex/edge so test failures are actionable.

use dcme_congest::{NodeId, Topology};

use crate::coloring::{defect_vector, Coloring, OrientedColoring, PartitionedColoring};

/// A violated postcondition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Two adjacent nodes share a color in a supposedly proper coloring.
    MonochromaticEdge {
        /// first endpoint
        u: NodeId,
        /// second endpoint
        v: NodeId,
        /// the shared color
        color: u64,
    },
    /// A node exceeds the allowed defect.
    DefectExceeded {
        /// the node
        node: NodeId,
        /// its measured defect
        defect: usize,
        /// the allowed defect
        allowed: usize,
    },
    /// A node exceeds the allowed outdegree.
    OutdegreeExceeded {
        /// the node
        node: NodeId,
        /// its measured outdegree
        outdegree: usize,
        /// the allowed outdegree
        allowed: usize,
    },
    /// A monochromatic edge is not oriented (or oriented twice).
    BadOrientation {
        /// first endpoint
        u: NodeId,
        /// second endpoint
        v: NodeId,
        /// how many orientations this edge received
        times_oriented: usize,
    },
    /// An oriented edge is not actually monochromatic or not an edge at all.
    SpuriousOrientation {
        /// claimed source
        u: NodeId,
        /// claimed target
        v: NodeId,
    },
    /// Inside one color class, one part of the partition induces a subgraph
    /// of too-high degree.
    PartDegreeExceeded {
        /// the node
        node: NodeId,
        /// its color
        color: u64,
        /// its part
        part: u64,
        /// measured degree within (color, part)
        degree: usize,
        /// allowed degree
        allowed: usize,
    },
    /// Two adjacent nodes are both in a supposedly independent set.
    NotIndependent {
        /// first endpoint
        u: NodeId,
        /// second endpoint
        v: NodeId,
    },
    /// A node has no ruling-set member within the promised radius.
    NotDominated {
        /// the undominated node
        node: NodeId,
        /// the promised radius
        radius: usize,
    },
    /// The number of colors exceeds the promised palette.
    PaletteExceeded {
        /// colors actually used / maximum color + 1
        used: u64,
        /// promised bound
        allowed: u64,
    },
    /// A node's color is not in its list (for list-coloring checks).
    ColorNotInList {
        /// the node
        node: NodeId,
        /// the offending color
        color: u64,
    },
}

impl core::fmt::Display for Violation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Violation::MonochromaticEdge { u, v, color } => {
                write!(f, "edge ({u},{v}) is monochromatic with color {color}")
            }
            Violation::DefectExceeded {
                node,
                defect,
                allowed,
            } => write!(f, "node {node} has defect {defect} > {allowed}"),
            Violation::OutdegreeExceeded {
                node,
                outdegree,
                allowed,
            } => write!(f, "node {node} has outdegree {outdegree} > {allowed}"),
            Violation::BadOrientation {
                u,
                v,
                times_oriented,
            } => write!(
                f,
                "monochromatic edge ({u},{v}) oriented {times_oriented} times (expected 1)"
            ),
            Violation::SpuriousOrientation { u, v } => {
                write!(f, "orientation ({u},{v}) is not a monochromatic edge")
            }
            Violation::PartDegreeExceeded {
                node,
                color,
                part,
                degree,
                allowed,
            } => write!(
                f,
                "node {node} (color {color}, part {part}) has within-part degree {degree} > {allowed}"
            ),
            Violation::NotIndependent { u, v } => {
                write!(f, "adjacent nodes {u} and {v} are both in the set")
            }
            Violation::NotDominated { node, radius } => {
                write!(f, "node {node} has no set member within distance {radius}")
            }
            Violation::PaletteExceeded { used, allowed } => {
                write!(f, "coloring uses color values up to {used} > allowed {allowed}")
            }
            Violation::ColorNotInList { node, color } => {
                write!(f, "node {node} output color {color} not in its list")
            }
        }
    }
}

impl std::error::Error for Violation {}

/// Checks that a coloring is proper: no edge is monochromatic.
pub fn check_proper(topology: &Topology, coloring: &Coloring) -> Result<(), Violation> {
    for (u, v) in topology.edges() {
        if coloring.color(u) == coloring.color(v) {
            return Err(Violation::MonochromaticEdge {
                u,
                v,
                color: coloring.color(u),
            });
        }
    }
    Ok(())
}

/// Checks that a coloring is `d`-defective: every node has at most `d`
/// neighbours of its own color.
pub fn check_defective(
    topology: &Topology,
    coloring: &Coloring,
    d: usize,
) -> Result<(), Violation> {
    for (node, defect) in defect_vector(topology, coloring).into_iter().enumerate() {
        if defect > d {
            return Err(Violation::DefectExceeded {
                node,
                defect,
                allowed: d,
            });
        }
    }
    Ok(())
}

/// Checks that the coloring uses colors strictly below `allowed`.
pub fn check_palette(coloring: &Coloring, allowed: u64) -> Result<(), Violation> {
    match coloring.max_color() {
        Some(max) if max >= allowed => Err(Violation::PaletteExceeded {
            used: max + 1,
            allowed,
        }),
        _ => Ok(()),
    }
}

/// Checks a β-outdegree coloring: every monochromatic edge is oriented in
/// exactly one direction, no spurious orientations exist, and every node's
/// outdegree is at most `beta`.
pub fn check_outdegree_orientation(
    topology: &Topology,
    oriented: &OrientedColoring,
    beta: usize,
) -> Result<(), Violation> {
    let coloring = &oriented.coloring;
    // Outdegree bound + spurious orientations.
    for (v, outs) in oriented.out_neighbors.iter().enumerate() {
        if outs.len() > beta {
            return Err(Violation::OutdegreeExceeded {
                node: v,
                outdegree: outs.len(),
                allowed: beta,
            });
        }
        for &u in outs {
            if !topology.are_adjacent(u, v) || coloring.color(u) != coloring.color(v) {
                return Err(Violation::SpuriousOrientation { u: v, v: u });
            }
        }
    }
    // Every monochromatic edge oriented exactly once.
    for (u, v) in topology.edges() {
        if coloring.color(u) != coloring.color(v) {
            continue;
        }
        let forward = oriented.out_neighbors[u]
            .iter()
            .filter(|&&w| w == v)
            .count();
        let backward = oriented.out_neighbors[v]
            .iter()
            .filter(|&&w| w == u)
            .count();
        if forward + backward != 1 {
            return Err(Violation::BadOrientation {
                u,
                v,
                times_oriented: forward + backward,
            });
        }
    }
    Ok(())
}

/// Checks Theorem 1.1 (2): within each color class, each part `P_j` induces a
/// subgraph of maximum degree at most `d`.
pub fn check_partition_degree(
    topology: &Topology,
    partitioned: &PartitionedColoring,
    d: usize,
) -> Result<(), Violation> {
    let coloring = &partitioned.oriented.coloring;
    for v in topology.nodes() {
        let degree = topology
            .neighbors(v)
            .iter()
            .filter(|&&u| {
                coloring.color(u) == coloring.color(v)
                    && partitioned.partition[u] == partitioned.partition[v]
            })
            .count();
        if degree > d {
            return Err(Violation::PartDegreeExceeded {
                node: v,
                color: coloring.color(v),
                part: partitioned.partition[v],
                degree,
                allowed: d,
            });
        }
    }
    Ok(())
}

/// Checks that `set` is an independent set of the topology.
pub fn check_independent(topology: &Topology, set: &[bool]) -> Result<(), Violation> {
    assert_eq!(set.len(), topology.num_nodes());
    for (u, v) in topology.edges() {
        if set[u] && set[v] {
            return Err(Violation::NotIndependent { u, v });
        }
    }
    Ok(())
}

/// Checks that `set` is a `(2, r)`-ruling set: independent, and every node
/// has a set member within hop distance `r`.
pub fn check_ruling_set(topology: &Topology, set: &[bool], r: usize) -> Result<(), Violation> {
    check_independent(topology, set)?;
    // Multi-source BFS from all set members.
    let n = topology.num_nodes();
    let mut dist = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    for v in 0..n {
        if set[v] {
            dist[v] = 0;
            queue.push_back(v);
        }
    }
    while let Some(u) = queue.pop_front() {
        for &w in topology.neighbors(u) {
            if dist[w] == usize::MAX {
                dist[w] = dist[u] + 1;
                queue.push_back(w);
            }
        }
    }
    for (v, &d) in dist.iter().enumerate() {
        if d > r {
            return Err(Violation::NotDominated { node: v, radius: r });
        }
    }
    Ok(())
}

/// Checks a list coloring: the coloring is proper and every node's color is a
/// member of its list.
pub fn check_list_coloring(
    topology: &Topology,
    coloring: &Coloring,
    lists: &[Vec<u64>],
) -> Result<(), Violation> {
    check_proper(topology, coloring)?;
    for v in topology.nodes() {
        if !lists[v].contains(&coloring.color(v)) {
            return Err(Violation::ColorNotInList {
                node: v,
                color: coloring.color(v),
            });
        }
    }
    Ok(())
}

/// Computes the maximum defect of a coloring (0 for proper colorings).
pub fn max_defect(topology: &Topology, coloring: &Coloring) -> usize {
    defect_vector(topology, coloring)
        .into_iter()
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn path4() -> Topology {
        generators::path(4)
    }

    #[test]
    fn proper_check_detects_conflicts() {
        let g = path4();
        let good = Coloring::new(vec![0, 1, 0, 1], 2);
        assert!(check_proper(&g, &good).is_ok());
        let bad = Coloring::new(vec![0, 0, 1, 0], 2);
        assert_eq!(
            check_proper(&g, &bad),
            Err(Violation::MonochromaticEdge {
                u: 0,
                v: 1,
                color: 0
            })
        );
    }

    #[test]
    fn defective_check_threshold() {
        let g = generators::star(4);
        // Centre and all leaves share color 0: centre defect = 4, leaves 1.
        let c = Coloring::new(vec![0; 5], 1);
        assert!(check_defective(&g, &c, 4).is_ok());
        assert!(matches!(
            check_defective(&g, &c, 3),
            Err(Violation::DefectExceeded {
                node: 0,
                defect: 4,
                allowed: 3
            })
        ));
        assert_eq!(max_defect(&g, &c), 4);
    }

    #[test]
    fn palette_check() {
        let c = Coloring::new(vec![0, 7], 8);
        assert!(check_palette(&c, 8).is_ok());
        assert!(check_palette(&c, 7).is_err());
    }

    #[test]
    fn orientation_check_accepts_valid_and_rejects_invalid() {
        let g = generators::path(3); // 0-1-2
        let coloring = Coloring::new(vec![0, 0, 0], 1);
        let valid = OrientedColoring {
            coloring: coloring.clone(),
            out_neighbors: vec![vec![1], vec![2], vec![]],
        };
        assert!(check_outdegree_orientation(&g, &valid, 1).is_ok());
        // Outdegree bound violated with beta = 0.
        assert!(matches!(
            check_outdegree_orientation(&g, &valid, 0),
            Err(Violation::OutdegreeExceeded { .. })
        ));
        // Missing orientation for edge (1, 2).
        let missing = OrientedColoring {
            coloring: coloring.clone(),
            out_neighbors: vec![vec![1], vec![], vec![]],
        };
        assert!(matches!(
            check_outdegree_orientation(&g, &missing, 2),
            Err(Violation::BadOrientation {
                u: 1,
                v: 2,
                times_oriented: 0
            })
        ));
        // Orientation of a non-monochromatic edge is spurious.
        let spurious = OrientedColoring {
            coloring: Coloring::new(vec![0, 1, 0], 2),
            out_neighbors: vec![vec![1], vec![], vec![]],
        };
        assert!(matches!(
            check_outdegree_orientation(&g, &spurious, 2),
            Err(Violation::SpuriousOrientation { .. })
        ));
    }

    #[test]
    fn partition_degree_check() {
        let g = generators::complete(4);
        let coloring = Coloring::new(vec![0, 0, 0, 0], 1);
        let oriented = OrientedColoring {
            coloring,
            out_neighbors: vec![vec![1, 2, 3], vec![2, 3], vec![3], vec![]],
        };
        // Two parts of two nodes each: within-part degree is 1.
        let pc = PartitionedColoring {
            oriented,
            partition: vec![0, 0, 1, 1],
        };
        assert!(check_partition_degree(&g, &pc, 1).is_ok());
        assert!(matches!(
            check_partition_degree(&g, &pc, 0),
            Err(Violation::PartDegreeExceeded { .. })
        ));
    }

    #[test]
    fn independent_and_ruling_set_checks() {
        let g = generators::ring(6);
        let mis = vec![true, false, true, false, true, false];
        assert!(check_independent(&g, &mis).is_ok());
        assert!(check_ruling_set(&g, &mis, 1).is_ok());

        let sparse = vec![true, false, false, false, false, false];
        assert!(check_independent(&g, &sparse).is_ok());
        assert!(check_ruling_set(&g, &sparse, 3).is_ok());
        assert_eq!(
            check_ruling_set(&g, &sparse, 2),
            Err(Violation::NotDominated { node: 3, radius: 2 })
        );

        let clash = vec![true, true, false, false, false, false];
        assert!(matches!(
            check_ruling_set(&g, &clash, 3),
            Err(Violation::NotIndependent { u: 0, v: 1 })
        ));
    }

    #[test]
    fn list_coloring_check() {
        let g = path4();
        let lists = vec![vec![0, 1], vec![1, 2], vec![0, 3], vec![1]];
        let ok = Coloring::new(vec![0, 2, 3, 1], 4);
        assert!(check_list_coloring(&g, &ok, &lists).is_ok());
        let not_in_list = Coloring::new(vec![1, 2, 3, 0], 4);
        assert!(matches!(
            check_list_coloring(&g, &not_in_list, &lists),
            Err(Violation::ColorNotInList { node: 3, color: 0 })
        ));
    }

    #[test]
    fn violation_display_is_informative() {
        let v = Violation::MonochromaticEdge {
            u: 1,
            v: 2,
            color: 7,
        };
        assert!(format!("{v}").contains("monochromatic"));
        let v = Violation::NotDominated { node: 3, radius: 2 };
        assert!(format!("{v}").contains("distance 2"));
    }
}
