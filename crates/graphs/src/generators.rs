//! Synthetic graph families with controlled size and maximum degree.
//!
//! The paper's guarantees are worst-case over all graphs of maximum degree
//! `Δ`; the experiment harness exercises them on the families below.  All
//! randomized constructions take an explicit seed so runs are reproducible.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use dcme_congest::{NodeId, Topology};

/// A cycle on `n >= 3` nodes (Δ = 2) — the classical hard instance for
/// Linial's lower bound.
pub fn ring(n: usize) -> Topology {
    assert!(n >= 3, "a ring needs at least 3 nodes");
    let edges: Vec<(NodeId, NodeId)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    Topology::from_edges(n, &edges).expect("ring edges are valid")
}

/// A path on `n >= 1` nodes.
pub fn path(n: usize) -> Topology {
    let edges: Vec<(NodeId, NodeId)> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
    Topology::from_edges(n, &edges).expect("path edges are valid")
}

/// The empty graph on `n` nodes (no edges).
pub fn empty(n: usize) -> Topology {
    Topology::from_edges(n, &[]).expect("empty graph is valid")
}

/// The complete graph `K_n` (Δ = n-1) — forces a (Δ+1)-coloring to use every
/// color.
pub fn complete(n: usize) -> Topology {
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            edges.push((u, v));
        }
    }
    Topology::from_edges(n, &edges).expect("complete graph edges are valid")
}

/// The complete bipartite graph `K_{a,b}`.
pub fn complete_bipartite(a: usize, b: usize) -> Topology {
    let mut edges = Vec::with_capacity(a * b);
    for u in 0..a {
        for v in 0..b {
            edges.push((u, a + v));
        }
    }
    Topology::from_edges(a + b, &edges).expect("bipartite edges are valid")
}

/// A star with one centre and `leaves` leaves (Δ = leaves).
pub fn star(leaves: usize) -> Topology {
    let edges: Vec<(NodeId, NodeId)> = (1..=leaves).map(|v| (0, v)).collect();
    Topology::from_edges(leaves + 1, &edges).expect("star edges are valid")
}

/// A `w × h` grid; with `wrap = true` it becomes a torus (Δ = 4).
pub fn grid(w: usize, h: usize, wrap: bool) -> Topology {
    assert!(w >= 1 && h >= 1);
    let id = |x: usize, y: usize| y * w + x;
    let mut edges = Vec::new();
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                edges.push((id(x, y), id(x + 1, y)));
            } else if wrap && w > 2 {
                edges.push((id(x, y), id(0, y)));
            }
            if y + 1 < h {
                edges.push((id(x, y), id(x, y + 1)));
            } else if wrap && h > 2 {
                edges.push((id(x, y), id(x, 0)));
            }
        }
    }
    Topology::from_edges(w * h, &edges).expect("grid edges are valid")
}

/// `count` disjoint cliques of `size` nodes each.
pub fn disjoint_cliques(count: usize, size: usize) -> Topology {
    let mut edges = Vec::new();
    for c in 0..count {
        let base = c * size;
        for u in 0..size {
            for v in (u + 1)..size {
                edges.push((base + u, base + v));
            }
        }
    }
    Topology::from_edges(count * size, &edges).expect("clique edges are valid")
}

/// A caterpillar: a spine path of `spine` nodes, each with `legs` pendant
/// leaves (Δ = legs + 2).
pub fn caterpillar(spine: usize, legs: usize) -> Topology {
    assert!(spine >= 1);
    let n = spine + spine * legs;
    let mut edges = Vec::new();
    for s in 0..spine.saturating_sub(1) {
        edges.push((s, s + 1));
    }
    for s in 0..spine {
        for l in 0..legs {
            edges.push((s, spine + s * legs + l));
        }
    }
    Topology::from_edges(n, &edges).expect("caterpillar edges are valid")
}

/// Erdős–Rényi `G(n, p)`: every pair is an edge independently with
/// probability `p`.
pub fn gnp(n: usize, p: f64, seed: u64) -> Topology {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.random_bool(p) {
                edges.push((u, v));
            }
        }
    }
    Topology::from_edges(n, &edges).expect("gnp edges are valid")
}

/// A random `d`-regular-ish graph via the configuration/pairing model.
///
/// Every node gets `d` stubs; stubs are matched uniformly at random, and
/// self-loops / multi-edges are discarded, so the result has maximum degree
/// at most `d` and most nodes have degree exactly `d`.  (True uniform
/// `d`-regular sampling is not needed: the experiments only need graphs of
/// a given maximum degree.)
pub fn random_regular(n: usize, d: usize, seed: u64) -> Topology {
    assert!(d < n, "degree must be smaller than n");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stubs: Vec<NodeId> = (0..n).flat_map(|v| std::iter::repeat(v).take(d)).collect();
    stubs.shuffle(&mut rng);
    let mut seen = std::collections::HashSet::new();
    let mut edges = Vec::new();
    for pair in stubs.chunks_exact(2) {
        let (u, v) = (pair[0], pair[1]);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if seen.insert(key) {
            edges.push(key);
        }
    }
    Topology::from_edges(n, &edges).expect("pairing-model edges are valid")
}

/// A uniformly random labelled tree on `n` nodes via random attachment.
pub fn random_tree(n: usize, seed: u64) -> Topology {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    for v in 1..n {
        let parent = rng.random_range(0..v);
        edges.push((parent, v));
    }
    Topology::from_edges(n, &edges).expect("tree edges are valid")
}

/// A Barabási–Albert preferential-attachment graph: each new node attaches
/// to `m` existing nodes chosen proportionally to degree.  Produces a
/// heavy-tailed degree distribution (useful to stress the dependence on Δ
/// rather than on the average degree).
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Topology {
    assert!(m >= 1 && n > m, "need n > m >= 1");
    let mut rng = StdRng::seed_from_u64(seed);
    // Target list: every endpoint of every edge appears once, so sampling a
    // uniform element of `targets` is degree-proportional sampling.
    let mut targets: Vec<NodeId> = (0..=m).collect();
    let mut edges: Vec<(NodeId, NodeId)> = (0..m).map(|v| (v, m)).collect();
    for (u, v) in &edges {
        targets.push(*u);
        targets.push(*v);
    }
    for v in (m + 1)..n {
        let mut chosen = std::collections::HashSet::new();
        while chosen.len() < m {
            let t = targets[rng.random_range(0..targets.len())];
            if t != v {
                chosen.insert(t);
            }
        }
        // Iterate in sorted order: HashSet order is randomized per process,
        // and the order feeds back into `targets` (and hence into every
        // later degree-proportional draw), which silently broke the
        // seed-determinism contract every other generator upholds.
        let mut chosen: Vec<NodeId> = chosen.into_iter().collect();
        chosen.sort_unstable();
        for &t in &chosen {
            edges.push((t, v));
            targets.push(t);
            targets.push(v);
        }
    }
    // Deduplicate (the initial seed edges can coincide for small m).
    let mut seen = std::collections::HashSet::new();
    let edges: Vec<(NodeId, NodeId)> = edges
        .into_iter()
        .map(|(u, v)| (u.min(v), u.max(v)))
        .filter(|&(u, v)| u != v && seen.insert((u, v)))
        .collect();
    Topology::from_edges(n, &edges).expect("BA edges are valid")
}

/// A declarative description of a workload graph, used by the experiment
/// harness so configurations can be serialized and reported in tables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GraphFamily {
    /// Cycle on `n` nodes.
    Ring {
        /// number of nodes
        n: usize,
    },
    /// Path on `n` nodes.
    Path {
        /// number of nodes
        n: usize,
    },
    /// Complete graph on `n` nodes.
    Complete {
        /// number of nodes
        n: usize,
    },
    /// Complete bipartite graph.
    CompleteBipartite {
        /// left side size
        a: usize,
        /// right side size
        b: usize,
    },
    /// 2D grid or torus.
    Grid {
        /// width
        w: usize,
        /// height
        h: usize,
        /// whether to wrap around (torus)
        wrap: bool,
    },
    /// Disjoint cliques.
    DisjointCliques {
        /// number of cliques
        count: usize,
        /// clique size
        size: usize,
    },
    /// Caterpillar tree.
    Caterpillar {
        /// spine length
        spine: usize,
        /// pendant leaves per spine node
        legs: usize,
    },
    /// Erdős–Rényi random graph.
    Gnp {
        /// number of nodes
        n: usize,
        /// edge probability
        p: f64,
        /// RNG seed
        seed: u64,
    },
    /// Pairing-model random regular graph.
    RandomRegular {
        /// number of nodes
        n: usize,
        /// target degree
        d: usize,
        /// RNG seed
        seed: u64,
    },
    /// Uniform random tree.
    RandomTree {
        /// number of nodes
        n: usize,
        /// RNG seed
        seed: u64,
    },
    /// Barabási–Albert preferential attachment.
    BarabasiAlbert {
        /// number of nodes
        n: usize,
        /// edges per new node
        m: usize,
        /// RNG seed
        seed: u64,
    },
}

impl GraphFamily {
    /// Builds the topology described by this family.
    pub fn build(&self) -> Topology {
        match *self {
            GraphFamily::Ring { n } => ring(n),
            GraphFamily::Path { n } => path(n),
            GraphFamily::Complete { n } => complete(n),
            GraphFamily::CompleteBipartite { a, b } => complete_bipartite(a, b),
            GraphFamily::Grid { w, h, wrap } => grid(w, h, wrap),
            GraphFamily::DisjointCliques { count, size } => disjoint_cliques(count, size),
            GraphFamily::Caterpillar { spine, legs } => caterpillar(spine, legs),
            GraphFamily::Gnp { n, p, seed } => gnp(n, p, seed),
            GraphFamily::RandomRegular { n, d, seed } => random_regular(n, d, seed),
            GraphFamily::RandomTree { n, seed } => random_tree(n, seed),
            GraphFamily::BarabasiAlbert { n, m, seed } => barabasi_albert(n, m, seed),
        }
    }

    /// A short human-readable name for tables.
    pub fn name(&self) -> String {
        match *self {
            GraphFamily::Ring { n } => format!("ring(n={n})"),
            GraphFamily::Path { n } => format!("path(n={n})"),
            GraphFamily::Complete { n } => format!("K_{n}"),
            GraphFamily::CompleteBipartite { a, b } => format!("K_{{{a},{b}}}"),
            GraphFamily::Grid { w, h, wrap } => {
                format!("{}grid({w}x{h})", if wrap { "torus-" } else { "" })
            }
            GraphFamily::DisjointCliques { count, size } => {
                format!("cliques({count}x{size})")
            }
            GraphFamily::Caterpillar { spine, legs } => format!("caterpillar({spine},{legs})"),
            GraphFamily::Gnp { n, p, .. } => format!("gnp(n={n},p={p})"),
            GraphFamily::RandomRegular { n, d, .. } => format!("regular(n={n},d={d})"),
            GraphFamily::RandomTree { n, .. } => format!("tree(n={n})"),
            GraphFamily::BarabasiAlbert { n, m, .. } => format!("ba(n={n},m={m})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_degrees() {
        let g = ring(10);
        assert_eq!(g.num_nodes(), 10);
        assert_eq!(g.num_edges(), 10);
        assert_eq!(g.max_degree(), 2);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    fn path_and_empty() {
        let g = path(5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(path(1).num_edges(), 0);
        assert_eq!(empty(7).max_degree(), 0);
    }

    #[test]
    fn complete_graph_properties() {
        let g = complete(6);
        assert_eq!(g.num_edges(), 15);
        assert_eq!(g.max_degree(), 5);
        for u in 0..6 {
            for v in 0..6 {
                assert_eq!(g.are_adjacent(u, v), u != v);
            }
        }
    }

    #[test]
    fn bipartite_and_star() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.num_edges(), 12);
        assert_eq!(g.max_degree(), 4);
        let s = star(9);
        assert_eq!(s.max_degree(), 9);
        assert_eq!(s.degree(5), 1);
    }

    #[test]
    fn grid_and_torus_degrees() {
        let g = grid(4, 5, false);
        assert_eq!(g.num_nodes(), 20);
        assert_eq!(g.max_degree(), 4);
        let t = grid(4, 5, true);
        for v in t.nodes() {
            assert_eq!(t.degree(v), 4);
        }
    }

    #[test]
    fn disjoint_cliques_have_no_cross_edges() {
        let g = disjoint_cliques(3, 4);
        assert_eq!(g.num_nodes(), 12);
        assert_eq!(g.num_edges(), 3 * 6);
        assert!(!g.are_adjacent(0, 4));
        assert!(g.are_adjacent(0, 3));
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn caterpillar_degrees() {
        let g = caterpillar(5, 3);
        assert_eq!(g.num_nodes(), 5 + 15);
        // Interior spine nodes: 2 spine neighbours + 3 legs.
        assert_eq!(g.max_degree(), 5);
    }

    #[test]
    fn gnp_is_reproducible_and_respects_probability_extremes() {
        let a = gnp(30, 0.2, 42);
        let b = gnp(30, 0.2, 42);
        assert_eq!(a, b);
        assert_eq!(gnp(20, 0.0, 1).num_edges(), 0);
        assert_eq!(gnp(20, 1.0, 1).num_edges(), 190);
    }

    #[test]
    fn random_regular_respects_max_degree() {
        for seed in 0..5 {
            let g = random_regular(100, 8, seed);
            assert!(g.max_degree() <= 8);
            // The pairing model loses only a few edges to collisions.
            assert!(g.num_edges() >= 100 * 8 / 2 - 40);
        }
    }

    #[test]
    fn random_tree_is_a_tree() {
        let g = random_tree(50, 7);
        assert_eq!(g.num_edges(), 49);
        // Connectivity: BFS from 0 reaches everything.
        assert_eq!(g.ball(0, 50).len(), 50);
    }

    #[test]
    fn barabasi_albert_builds_connected_heavy_tail() {
        let g = barabasi_albert(200, 3, 11);
        assert_eq!(g.num_nodes(), 200);
        assert!(g.num_edges() >= 3 * 196);
        assert_eq!(g.ball(0, 200).len(), 200);
        assert!(g.max_degree() as usize > 6);
    }

    #[test]
    fn family_build_matches_direct_constructors() {
        let fam = GraphFamily::Ring { n: 12 };
        assert_eq!(fam.build(), ring(12));
        assert!(fam.name().contains("ring"));
        let fam = GraphFamily::RandomRegular {
            n: 40,
            d: 5,
            seed: 3,
        };
        assert_eq!(fam.build(), random_regular(40, 5, 3));
    }
}
