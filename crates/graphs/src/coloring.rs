//! Output types shared by all coloring algorithms.
//!
//! * [`Coloring`] — a plain color assignment `V → [palette]`.
//! * [`OrientedColoring`] — a (possibly improper) coloring together with an
//!   orientation of the monochromatic edges, as produced by Theorem 1.1 (1)
//!   and required for β-outdegree / arbdefective colorings.
//! * [`PartitionedColoring`] — a coloring together with the partition index
//!   `P_j` of Theorem 1.1 (2) (the iteration in which each node committed).

use serde::{Deserialize, Serialize};

use dcme_congest::{NodeId, Topology};

/// A color assignment for every node, with an explicit palette size.
///
/// Colors are `u64` values in `[0, palette)`.  The palette records the bound
/// the producing algorithm *guarantees*, which may be larger than the number
/// of colors actually used (e.g. Theorem 1.1 guarantees `k·X` but typically
/// uses fewer).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Coloring {
    colors: Vec<u64>,
    palette: u64,
}

impl Coloring {
    /// Creates a coloring from per-node colors and a palette bound.
    ///
    /// # Panics
    ///
    /// Panics if any color is `>= palette`.
    pub fn new(colors: Vec<u64>, palette: u64) -> Self {
        for (v, &c) in colors.iter().enumerate() {
            assert!(c < palette, "node {v} has color {c} >= palette {palette}");
        }
        Self { colors, palette }
    }

    /// The identity coloring in which node `v` has color `v` — the "unique
    /// IDs as input coloring" starting point of Linial's algorithm.
    pub fn from_ids(n: usize) -> Self {
        Self {
            colors: (0..n as u64).collect(),
            palette: n as u64,
        }
    }

    /// Builds an input coloring from arbitrary (not necessarily dense)
    /// identifiers from a universe of size `universe`.
    pub fn from_identifiers(ids: &[u64], universe: u64) -> Self {
        Self::new(ids.to_vec(), universe)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.colors.len()
    }

    /// Whether the coloring is empty (zero nodes).
    pub fn is_empty(&self) -> bool {
        self.colors.is_empty()
    }

    /// The color of node `v`.
    #[inline]
    pub fn color(&self, v: NodeId) -> u64 {
        self.colors[v]
    }

    /// The palette bound.
    pub fn palette(&self) -> u64 {
        self.palette
    }

    /// All per-node colors, indexed by node.
    pub fn colors(&self) -> &[u64] {
        &self.colors
    }

    /// The number of *distinct* colors actually used.
    pub fn distinct_colors(&self) -> usize {
        let mut seen: Vec<u64> = self.colors.clone();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// The largest color value used (None for an empty graph).
    pub fn max_color(&self) -> Option<u64> {
        self.colors.iter().copied().max()
    }

    /// Replaces the palette bound with a smaller one.
    ///
    /// # Panics
    ///
    /// Panics if some node's color exceeds the new bound.
    pub fn with_palette(self, palette: u64) -> Self {
        Self::new(self.colors, palette)
    }

    /// Renames colors to a dense range `0..distinct_colors()`, preserving
    /// color classes.  Useful before feeding a coloring to an algorithm whose
    /// round/color bounds depend on the palette size `m`.
    pub fn compacted(&self) -> Self {
        let mut sorted: Vec<u64> = self.colors.clone();
        sorted.sort_unstable();
        sorted.dedup();
        let remap = |c: u64| sorted.binary_search(&c).unwrap() as u64;
        let colors: Vec<u64> = self.colors.iter().map(|&c| remap(c)).collect();
        let palette = sorted.len() as u64;
        Self { colors, palette }
    }

    /// Groups nodes by color: returns, for each distinct color in ascending
    /// order, the list of nodes having it.
    pub fn color_classes(&self) -> Vec<(u64, Vec<NodeId>)> {
        let mut map: std::collections::BTreeMap<u64, Vec<NodeId>> =
            std::collections::BTreeMap::new();
        for (v, &c) in self.colors.iter().enumerate() {
            map.entry(c).or_default().push(v);
        }
        map.into_iter().collect()
    }
}

/// A coloring together with an orientation of its monochromatic edges.
///
/// `out_neighbors[v]` lists the endpoints of monochromatic edges oriented
/// *away from* `v`.  Every monochromatic edge must be oriented in exactly one
/// direction; [`crate::verify::check_outdegree_orientation`] checks this.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OrientedColoring {
    /// The underlying (possibly improper) coloring.
    pub coloring: Coloring,
    /// Monochromatic out-neighbours per node.
    pub out_neighbors: Vec<Vec<NodeId>>,
}

impl OrientedColoring {
    /// The maximum outdegree over all nodes (the β of a β-outdegree coloring).
    pub fn max_outdegree(&self) -> usize {
        self.out_neighbors
            .iter()
            .map(|o| o.len())
            .max()
            .unwrap_or(0)
    }

    /// Collects all oriented (monochromatic) edges as `(from, to)` pairs.
    pub fn oriented_edges(&self) -> Vec<(NodeId, NodeId)> {
        self.out_neighbors
            .iter()
            .enumerate()
            .flat_map(|(v, outs)| outs.iter().map(move |&u| (v, u)))
            .collect()
    }
}

/// A coloring with the Theorem 1.1 partition information.
///
/// `partition[v]` is the index `j` of the batch/iteration in which `v`
/// committed to its color; Theorem 1.1 (2) guarantees that inside one color
/// class, each part `P_j` induces a subgraph of maximum degree at most `d`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionedColoring {
    /// The underlying coloring plus orientation (Theorem 1.1 outputs both).
    pub oriented: OrientedColoring,
    /// Iteration index in which each node committed.
    pub partition: Vec<u64>,
}

impl PartitionedColoring {
    /// The number of nonempty parts.
    pub fn num_parts(&self) -> usize {
        let mut parts: Vec<u64> = self.partition.clone();
        parts.sort_unstable();
        parts.dedup();
        parts.len()
    }

    /// The largest partition index used.
    pub fn max_part(&self) -> u64 {
        self.partition.iter().copied().max().unwrap_or(0)
    }

    /// Derives the `d`-defective coloring of Corollary 1.2 (6): each node is
    /// recolored with the pair `(color, partition index)` encoded as a single
    /// color `color · (max_part+1) + part`.
    pub fn pair_coloring(&self) -> Coloring {
        let parts = self.max_part() + 1;
        let palette = self.oriented.coloring.palette() * parts;
        let colors = self
            .oriented
            .coloring
            .colors()
            .iter()
            .zip(&self.partition)
            .map(|(&c, &p)| c * parts + p)
            .collect();
        Coloring::new(colors, palette.max(1))
    }
}

/// Computes the *defect* of a coloring on a topology: for each node, the
/// number of neighbours sharing its color; returns the per-node vector.
pub fn defect_vector(topology: &Topology, coloring: &Coloring) -> Vec<usize> {
    (0..topology.num_nodes())
        .map(|v| {
            topology
                .neighbors(v)
                .iter()
                .filter(|&&u| coloring.color(u) == coloring.color(v))
                .count()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Topology {
        Topology::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap()
    }

    #[test]
    #[should_panic(expected = "palette")]
    fn rejects_color_out_of_palette() {
        let _ = Coloring::new(vec![0, 5], 3);
    }

    #[test]
    fn ids_coloring() {
        let c = Coloring::from_ids(5);
        assert_eq!(c.palette(), 5);
        assert_eq!(c.distinct_colors(), 5);
        assert_eq!(c.color(3), 3);
    }

    #[test]
    fn compaction_preserves_classes() {
        let c = Coloring::new(vec![10, 40, 10, 99], 100);
        let d = c.compacted();
        assert_eq!(d.palette(), 3);
        assert_eq!(d.color(0), d.color(2));
        assert_ne!(d.color(0), d.color(1));
        assert_eq!(d.distinct_colors(), 3);
        assert_eq!(d.max_color(), Some(2));
    }

    #[test]
    fn color_classes_grouping() {
        let c = Coloring::new(vec![1, 0, 1, 2], 3);
        let classes = c.color_classes();
        assert_eq!(classes, vec![(0, vec![1]), (1, vec![0, 2]), (2, vec![3])]);
    }

    #[test]
    fn defect_vector_counts_same_colored_neighbors() {
        let g = path4();
        let c = Coloring::new(vec![0, 0, 1, 1], 2);
        assert_eq!(defect_vector(&g, &c), vec![1, 1, 1, 1]);
        let proper = Coloring::new(vec![0, 1, 0, 1], 2);
        assert_eq!(defect_vector(&g, &proper), vec![0, 0, 0, 0]);
    }

    #[test]
    fn oriented_coloring_outdegree() {
        let oriented = OrientedColoring {
            coloring: Coloring::new(vec![0, 0, 0], 1),
            out_neighbors: vec![vec![1, 2], vec![], vec![1]],
        };
        assert_eq!(oriented.max_outdegree(), 2);
        let mut edges = oriented.oriented_edges();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (0, 2), (2, 1)]);
    }

    #[test]
    fn pair_coloring_combines_color_and_part() {
        let oriented = OrientedColoring {
            coloring: Coloring::new(vec![0, 1, 0, 1], 2),
            out_neighbors: vec![vec![], vec![], vec![], vec![]],
        };
        let pc = PartitionedColoring {
            oriented,
            partition: vec![0, 0, 1, 1],
        };
        assert_eq!(pc.num_parts(), 2);
        assert_eq!(pc.max_part(), 1);
        let pair = pc.pair_coloring();
        assert_eq!(pair.palette(), 4);
        // Distinct (color, part) pairs must stay distinct.
        assert_eq!(pair.distinct_colors(), 4);
    }
}
