//! End-to-end coloring pipelines: from unique identifiers to the final
//! palette, with per-phase round accounting.
//!
//! The full deterministic `(Δ+1)`-coloring story of the paper is a
//! composition:
//!
//! 1. **Linial** (`O(log* n)` rounds): unique IDs → `O(Δ²)` colors,
//! 2. **mother algorithm** with `k = 1` (`O(Δ)` rounds): → `O(Δ)` colors,
//! 3. **class elimination** (`O(Δ)` rounds): → `Δ+1` colors;
//!
//! or, for the sublinear-in-Δ route of Section 3.1,
//!
//! 1. **Linial**, then
//! 2. **β-outdegree schedule + per-class list coloring**: → `Δ+1` colors.
//!
//! Both drivers return a [`PipelineResult`] with a per-phase breakdown that
//! the experiment binaries print.

use dcme_congest::{ExecutionMode, RunMetrics, Topology};
use dcme_graphs::coloring::Coloring;

use crate::elimination;
use crate::error::ColoringError;
use crate::linial;
use crate::schedule;
use crate::trial::{self, TrialConfig};

/// One phase of a pipeline run.
#[derive(Debug, Clone)]
pub struct PhaseReport {
    /// Human-readable phase name.
    pub name: &'static str,
    /// Rounds spent in this phase.
    pub rounds: u64,
    /// Messages sent in this phase.
    pub messages: u64,
    /// Palette size after this phase.
    pub palette_after: u64,
}

/// The result of an end-to-end pipeline.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// The final proper coloring.
    pub coloring: Coloring,
    /// Per-phase breakdown.
    pub phases: Vec<PhaseReport>,
    /// Merged message accounting over all phases.
    pub metrics: RunMetrics,
}

impl PipelineResult {
    /// Total rounds over all phases.
    pub fn total_rounds(&self) -> u64 {
        self.phases.iter().map(|p| p.rounds).sum()
    }
}

/// The simple `(Δ+1)`-coloring pipeline:
/// Linial → `k = 1` mother algorithm → color-class elimination.
///
/// Runs in `O(Δ) + log* n` rounds in total.
pub fn delta_plus_one(topology: &Topology) -> Result<PipelineResult, ColoringError> {
    delta_plus_one_with_mode(topology, ExecutionMode::Sequential)
}

/// Like [`delta_plus_one`] but with an explicit executor.
pub fn delta_plus_one_with_mode(
    topology: &Topology,
    mode: ExecutionMode,
) -> Result<PipelineResult, ColoringError> {
    let mut phases = Vec::new();
    let mut metrics = RunMetrics::default();

    // Phase 1: Linial.
    let lin = linial::delta_squared_from_ids(topology, None)?;
    metrics.merge(&lin.metrics);
    phases.push(PhaseReport {
        name: "linial",
        rounds: lin.total_rounds,
        messages: lin.metrics.messages,
        palette_after: lin.coloring.palette(),
    });

    // Phase 2: k = 1 mother algorithm → O(Δ) colors.
    let trial_out = trial::run(topology, &lin.coloring, TrialConfig { d: 0, k: 1, mode })?;
    metrics.merge(&trial_out.metrics);
    phases.push(PhaseReport {
        name: "trial-k1",
        rounds: trial_out.metrics.rounds,
        messages: trial_out.metrics.messages,
        palette_after: trial_out.coloring().palette(),
    });

    // Phase 3: eliminate color classes down to Δ+1.
    let compact = trial_out.coloring().compacted();
    let (final_coloring, elim_metrics) =
        elimination::delta_plus_one_by_elimination(topology, &compact, mode)?;
    metrics.merge(&elim_metrics);
    phases.push(PhaseReport {
        name: "class-elimination",
        rounds: elim_metrics.rounds,
        messages: elim_metrics.messages,
        palette_after: final_coloring.palette(),
    });

    metrics.rounds = phases.iter().map(|p| p.rounds).sum();
    Ok(PipelineResult {
        coloring: final_coloring,
        phases,
        metrics,
    })
}

/// The scheduled `(Δ+1)`-coloring pipeline (Section 3.1 structure):
/// Linial → β-outdegree schedule → per-class list coloring.
///
/// `beta = None` selects `β = Θ(√Δ)`.
pub fn delta_plus_one_scheduled(
    topology: &Topology,
    beta: Option<u32>,
    mode: ExecutionMode,
) -> Result<PipelineResult, ColoringError> {
    let mut phases = Vec::new();
    let mut metrics = RunMetrics::default();

    let lin = linial::delta_squared_from_ids(topology, None)?;
    metrics.merge(&lin.metrics);
    phases.push(PhaseReport {
        name: "linial",
        rounds: lin.total_rounds,
        messages: lin.metrics.messages,
        palette_after: lin.coloring.palette(),
    });

    let sched = schedule::scheduled_delta_plus_one(topology, &lin.coloring, beta, mode)?;
    metrics.merge(&sched.metrics);
    phases.push(PhaseReport {
        name: "outdegree-schedule",
        rounds: sched.schedule_rounds,
        messages: 0,
        palette_after: sched.num_classes as u64,
    });
    phases.push(PhaseReport {
        name: "scheduled-list-coloring",
        rounds: sched.class_rounds,
        messages: sched.metrics.messages,
        palette_after: sched.coloring.palette(),
    });

    metrics.rounds = phases.iter().map(|p| p.rounds).sum();
    Ok(PipelineResult {
        coloring: sched.coloring,
        phases,
        metrics,
    })
}

/// An `O(kΔ)`-coloring from unique identifiers: Linial followed by the
/// mother algorithm with the requested batch size.
pub fn kdelta_from_ids(
    topology: &Topology,
    k: u64,
    mode: ExecutionMode,
) -> Result<PipelineResult, ColoringError> {
    let mut phases = Vec::new();
    let mut metrics = RunMetrics::default();

    let lin = linial::delta_squared_from_ids(topology, None)?;
    metrics.merge(&lin.metrics);
    phases.push(PhaseReport {
        name: "linial",
        rounds: lin.total_rounds,
        messages: lin.metrics.messages,
        palette_after: lin.coloring.palette(),
    });

    let trial_out = trial::run(topology, &lin.coloring, TrialConfig { d: 0, k, mode })?;
    metrics.merge(&trial_out.metrics);
    phases.push(PhaseReport {
        name: "trial",
        rounds: trial_out.metrics.rounds,
        messages: trial_out.metrics.messages,
        palette_after: trial_out.coloring().palette(),
    });

    metrics.rounds = phases.iter().map(|p| p.rounds).sum();
    Ok(PipelineResult {
        coloring: trial_out.coloring().clone(),
        phases,
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcme_graphs::generators;
    use dcme_graphs::verify;

    #[test]
    fn simple_pipeline_reaches_delta_plus_one() {
        let g = generators::random_regular(150, 8, 21);
        let out = delta_plus_one(&g).unwrap();
        verify::check_proper(&g, &out.coloring).unwrap();
        assert_eq!(out.coloring.palette(), g.max_degree() as u64 + 1);
        assert_eq!(out.phases.len(), 3);
        assert_eq!(out.total_rounds(), out.metrics.rounds);
    }

    #[test]
    fn scheduled_pipeline_reaches_delta_plus_one() {
        let g = generators::random_regular(150, 12, 22);
        let out = delta_plus_one_scheduled(&g, None, ExecutionMode::Sequential).unwrap();
        verify::check_proper(&g, &out.coloring).unwrap();
        assert!(out.coloring.palette() <= g.max_degree() as u64 + 1);
    }

    #[test]
    fn pipelines_work_on_many_families() {
        for g in [
            generators::ring(64),
            generators::complete(8),
            generators::grid(8, 8, true),
            generators::caterpillar(10, 3),
            generators::random_tree(80, 4),
            generators::gnp(80, 0.08, 12),
        ] {
            let out = delta_plus_one(&g).unwrap();
            verify::check_proper(&g, &out.coloring).unwrap();
            assert!(out.coloring.palette() <= g.max_degree() as u64 + 1);
        }
    }

    #[test]
    fn kdelta_pipeline_tracks_phase_rounds() {
        let g = generators::random_regular(200, 16, 23);
        let out = kdelta_from_ids(&g, 8, ExecutionMode::Sequential).unwrap();
        verify::check_proper(&g, &out.coloring).unwrap();
        assert_eq!(out.phases.len(), 2);
        assert!(out.phases[1].rounds < out.phases[1].palette_after);
    }

    #[test]
    fn parallel_mode_gives_identical_coloring() {
        let g = generators::gnp(100, 0.08, 31);
        let a = delta_plus_one_with_mode(&g, ExecutionMode::Sequential).unwrap();
        let b = delta_plus_one_with_mode(&g, ExecutionMode::Parallel { threads: 4 }).unwrap();
        assert_eq!(a.coloring, b.coloring);
    }
}
