//! Error types for the coloring library.

use dcme_algebra::sequence::ParamError;
use dcme_graphs::verify::Violation;

/// Errors returned by the coloring algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum ColoringError {
    /// The Theorem 1.1 parameters are invalid for this graph / input coloring.
    Params(ParamError),
    /// The supplied input coloring does not cover every node.
    InputSizeMismatch {
        /// nodes in the graph
        nodes: usize,
        /// entries in the coloring
        colors: usize,
    },
    /// The supplied input coloring is not proper, but the algorithm requires
    /// a proper input coloring.
    ImproperInput(Violation),
    /// The algorithm did not terminate within its round cap (indicates a bug
    /// or a violated precondition; the paper's algorithms always terminate).
    DidNotTerminate {
        /// the cap that was hit
        round_cap: u64,
    },
    /// A postcondition check failed (only produced by debug-checked drivers).
    PostconditionFailed(Violation),
    /// A parameter outside its allowed range was supplied.
    InvalidParameter {
        /// human-readable description of the violated constraint
        reason: String,
    },
}

impl From<ParamError> for ColoringError {
    fn from(e: ParamError) -> Self {
        ColoringError::Params(e)
    }
}

impl core::fmt::Display for ColoringError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ColoringError::Params(e) => write!(f, "invalid Theorem 1.1 parameters: {e}"),
            ColoringError::InputSizeMismatch { nodes, colors } => write!(
                f,
                "input coloring has {colors} entries for a graph with {nodes} nodes"
            ),
            ColoringError::ImproperInput(v) => write!(f, "input coloring is not proper: {v}"),
            ColoringError::DidNotTerminate { round_cap } => {
                write!(f, "algorithm did not terminate within {round_cap} rounds")
            }
            ColoringError::PostconditionFailed(v) => write!(f, "postcondition failed: {v}"),
            ColoringError::InvalidParameter { reason } => write!(f, "invalid parameter: {reason}"),
        }
    }
}

impl std::error::Error for ColoringError {}

#[cfg(test)]
mod tests {
    use super::*;
    use dcme_algebra::sequence::ParamError;

    #[test]
    fn display_variants() {
        let e: ColoringError = ParamError::ZeroBatch.into();
        assert!(format!("{e}").contains("Theorem 1.1"));
        let e = ColoringError::InputSizeMismatch {
            nodes: 3,
            colors: 2,
        };
        assert!(format!("{e}").contains("3 nodes"));
        let e = ColoringError::DidNotTerminate { round_cap: 9 };
        assert!(format!("{e}").contains("9"));
        let e = ColoringError::InvalidParameter {
            reason: "k too large".into(),
        };
        assert!(format!("{e}").contains("k too large"));
    }
}
