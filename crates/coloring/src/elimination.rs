//! Color-class elimination: from `C` colors down to `Δ+1`, one class per round.
//!
//! The paper observes (Section 1.1) that the `k = 1` run of the mother
//! algorithm produces an `O(Δ)`-coloring in `O(Δ)` rounds, and that "we can
//! use an additional `O(Δ)` rounds in each of which we remove a single color
//! class to transform it into a `(Δ+1)`-coloring".  This module is that
//! standard color-class elimination, implemented as a CONGEST algorithm:
//!
//! * in round `t`, nodes whose current color is `Δ+1+t` (an independent set,
//!   because the coloring is proper) recolor to the smallest color in
//!   `[Δ+1]` not used by any neighbour;
//! * every node broadcasts its current color every round, so the nodes being
//!   recolored always see up-to-date neighbourhoods;
//! * after `C - (Δ+1)` rounds no color `≥ Δ+1` remains and everybody halts.

use dcme_algebra::logstar::bits_for;
use dcme_congest::{
    ExecutionMode, Inbox, MessageSize, NodeAlgorithm, NodeContext, Outbox, RunMetrics, Simulator,
    SimulatorConfig, Topology,
};
use dcme_graphs::coloring::Coloring;
use dcme_graphs::verify;

use crate::error::ColoringError;

/// Message: the sender's current color.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CurrentColor(pub u64);

impl MessageSize for CurrentColor {
    fn bit_size(&self) -> u64 {
        bits_for(self.0 + 1) as u64
    }
}

impl dcme_congest::WireMessage for CurrentColor {
    fn encode(&self, w: &mut dcme_congest::BitWriter) -> u8 {
        dcme_congest::wire::write_color(w, self.0);
        0
    }

    fn decode(
        r: &mut dcme_congest::BitReader<'_>,
        bits: u16,
        _aux: u8,
    ) -> Result<Self, dcme_congest::WireError> {
        dcme_congest::wire::read_color(r, bits as u32).map(CurrentColor)
    }
}

/// Per-node state machine of the elimination schedule.
struct EliminationNode {
    color: u64,
    /// Target palette size (usually `Δ+1`).
    target: u64,
    /// Number of rounds to run: `max(0, C - target)`.
    total_rounds: u64,
    rounds_done: u64,
}

impl NodeAlgorithm for EliminationNode {
    type Message = CurrentColor;
    type Output = u64;

    fn init(&mut self, _ctx: &NodeContext) {}

    fn send(&mut self, _ctx: &NodeContext) -> Outbox<CurrentColor> {
        Outbox::Broadcast(CurrentColor(self.color))
    }

    fn receive(&mut self, ctx: &NodeContext, inbox: &Inbox<'_, CurrentColor>) {
        // Round t eliminates color class `target + t`.
        let eliminated = self.target + ctx.round;
        if self.color == eliminated {
            let used: std::collections::HashSet<u64> = inbox.iter().map(|(_, m)| m.0).collect();
            let free = (0..self.target)
                .find(|c| !used.contains(c))
                .expect("a node has at most Δ neighbours, so [Δ+1] has a free color");
            self.color = free;
        }
        self.rounds_done += 1;
    }

    fn is_halted(&self) -> bool {
        self.rounds_done >= self.total_rounds
    }

    fn output(&self) -> u64 {
        self.color
    }
}

/// Reduces a proper `C`-coloring to a proper `target`-coloring in
/// `max(0, C - target)` rounds by eliminating one color class per round.
///
/// `target` must be at least `Δ+1`.
pub fn reduce_to_target(
    topology: &Topology,
    input: &Coloring,
    target: u64,
    mode: ExecutionMode,
) -> Result<(Coloring, RunMetrics), ColoringError> {
    if input.len() != topology.num_nodes() {
        return Err(ColoringError::InputSizeMismatch {
            nodes: topology.num_nodes(),
            colors: input.len(),
        });
    }
    if target < topology.max_degree() as u64 + 1 {
        return Err(ColoringError::InvalidParameter {
            reason: format!(
                "elimination target {target} is below Δ+1 = {}",
                topology.max_degree() + 1
            ),
        });
    }
    verify::check_proper(topology, input).map_err(ColoringError::ImproperInput)?;

    let total_rounds = input.palette().saturating_sub(target);
    if total_rounds == 0 {
        return Ok((input.clone(), RunMetrics::default()));
    }

    let nodes: Vec<EliminationNode> = (0..topology.num_nodes())
        .map(|v| EliminationNode {
            color: input.color(v),
            target,
            total_rounds,
            rounds_done: 0,
        })
        .collect();

    let sim = Simulator::with_config(
        topology,
        SimulatorConfig {
            max_rounds: total_rounds + 1,
            mode,
        },
    );
    let outcome = sim.run(nodes);
    let coloring = Coloring::new(outcome.outputs, target);
    Ok((coloring, outcome.metrics))
}

/// Reduces a proper coloring to a `(Δ+1)`-coloring by class elimination.
pub fn delta_plus_one_by_elimination(
    topology: &Topology,
    input: &Coloring,
    mode: ExecutionMode,
) -> Result<(Coloring, RunMetrics), ColoringError> {
    reduce_to_target(topology, input, topology.max_degree() as u64 + 1, mode)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcme_graphs::generators;

    #[test]
    fn eliminates_down_to_delta_plus_one() {
        let g = generators::random_regular(100, 6, 1);
        let input = Coloring::from_ids(100);
        let (out, metrics) =
            delta_plus_one_by_elimination(&g, &input, ExecutionMode::Sequential).unwrap();
        verify::check_proper(&g, &out).unwrap();
        assert_eq!(out.palette(), g.max_degree() as u64 + 1);
        assert_eq!(metrics.rounds, 100 - (g.max_degree() as u64 + 1));
    }

    #[test]
    fn already_small_palette_is_a_noop() {
        let g = generators::ring(10);
        let input = Coloring::new(vec![0, 1, 0, 1, 0, 1, 0, 1, 0, 2], 3);
        let (out, metrics) =
            delta_plus_one_by_elimination(&g, &input, ExecutionMode::Sequential).unwrap();
        assert_eq!(out, input);
        assert_eq!(metrics.rounds, 0);
    }

    #[test]
    fn rejects_target_below_delta_plus_one() {
        let g = generators::complete(5);
        let input = Coloring::from_ids(5);
        assert!(matches!(
            reduce_to_target(&g, &input, 3, ExecutionMode::Sequential),
            Err(ColoringError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn rejects_improper_input() {
        let g = generators::ring(4);
        let bad = Coloring::new(vec![5, 5, 6, 7], 8);
        assert!(matches!(
            delta_plus_one_by_elimination(&g, &bad, ExecutionMode::Sequential),
            Err(ColoringError::ImproperInput(_))
        ));
    }

    #[test]
    fn complete_graph_keeps_all_colors() {
        // K_5 needs 5 = Δ+1 colors; elimination from IDs is a no-op palette-wise.
        let g = generators::complete(5);
        let input = Coloring::from_ids(5);
        let (out, _) =
            delta_plus_one_by_elimination(&g, &input, ExecutionMode::Sequential).unwrap();
        verify::check_proper(&g, &out).unwrap();
        assert_eq!(out.distinct_colors(), 5);
    }

    #[test]
    fn custom_target_above_delta_plus_one() {
        let g = generators::random_regular(80, 4, 9);
        let input = Coloring::from_ids(80);
        let (out, metrics) = reduce_to_target(&g, &input, 10, ExecutionMode::Sequential).unwrap();
        verify::check_proper(&g, &out).unwrap();
        assert!(out.palette() == 10);
        assert_eq!(metrics.rounds, 70);
    }

    #[test]
    fn parallel_mode_matches_sequential() {
        let g = generators::gnp(60, 0.1, 4);
        let input = Coloring::from_ids(60);
        let (a, _) = delta_plus_one_by_elimination(&g, &input, ExecutionMode::Sequential).unwrap();
        let (b, _) =
            delta_plus_one_by_elimination(&g, &input, ExecutionMode::Parallel { threads: 4 })
                .unwrap();
        assert_eq!(a, b);
    }
}
