//! Theorem 1.3 / Corollary 1.4: `O(Δ^{1+ε})` colors in `O(Δ^{1/2-ε/2}) + log* n`
//! rounds.
//!
//! The proof composes two instances of the paper's own machinery:
//!
//! 1. set `d = Δ^{1-ε}` and compute a `d`-defective coloring `ψ` with
//!    `O((Δ/d)²)` colors in `O(Δ/d) = O(Δ^ε)` rounds (Corollary 1.2 (6));
//! 2. every color class of `ψ` induces a subgraph of maximum degree at most
//!    `d`; on each class **in parallel** compute an `O(d)`-coloring `φ` in
//!    `O(√d) = O(Δ^{1/2-ε/2})` rounds using the Theorem 3.1 substrate (built
//!    here from the β-outdegree schedule of [`crate::schedule`] with
//!    `β = √d`);
//! 3. output the pair `(ψ(v), φ(v))`, encoded into a single color — a proper
//!    coloring with `O((Δ/d)² · d) = O(Δ^{1+ε})` colors.
//!
//! Because the `ψ`-classes are vertex disjoint, their inner colorings run
//! concurrently in a real network; the simulator therefore charges the
//! *maximum* of the per-class round counts, and sums their messages.

use dcme_congest::{ExecutionMode, RunMetrics, Topology};
use dcme_graphs::coloring::Coloring;
use dcme_graphs::subgraph::InducedSubgraph;
use dcme_graphs::verify;

use crate::corollary;
use crate::error::ColoringError;
use crate::schedule;

/// Result of the Theorem 1.3 coloring.
#[derive(Debug, Clone)]
pub struct FastOutcome {
    /// The final proper coloring with `O(Δ^{1+ε})` colors.
    pub coloring: Coloring,
    /// Rounds spent on the defective coloring ψ (step 1).
    pub defective_rounds: u64,
    /// Rounds of the slowest per-class coloring (step 2, classes run in
    /// parallel).
    pub class_rounds: u64,
    /// Number of ψ color classes.
    pub num_classes: usize,
    /// The defect parameter `d = Δ^{1-ε}` that was used.
    pub d: u32,
    /// Merged message accounting.
    pub metrics: RunMetrics,
}

impl FastOutcome {
    /// Total rounds: defective phase plus the (parallel) class phase.
    pub fn total_rounds(&self) -> u64 {
        self.defective_rounds + self.class_rounds
    }
}

/// Theorem 1.3: computes an `O(Δ^{1+ε})`-coloring in `O(Δ^{1/2-ε/2})` rounds
/// from a proper `poly Δ` input coloring (e.g. the output of
/// [`crate::linial::delta_squared_from_ids`]).
pub fn fast_coloring(
    topology: &Topology,
    input: &Coloring,
    epsilon: f64,
    mode: ExecutionMode,
) -> Result<FastOutcome, ColoringError> {
    if !(0.0..=1.0).contains(&epsilon) {
        return Err(ColoringError::InvalidParameter {
            reason: format!("epsilon = {epsilon} must lie in [0, 1]"),
        });
    }
    let delta = topology.max_degree();
    // d = Δ^{1-ε}, clamped into the legal range 0..=Δ-1 of Theorem 1.1.
    let d = if delta <= 1 {
        0
    } else {
        (f64::from(delta).powf(1.0 - epsilon).floor() as u32).clamp(1, delta - 1)
    };

    // Step 1: d-defective coloring ψ (Corollary 1.2 (6)).
    let (psi, psi_outcome) = corollary::defective_multi_round(topology, input, d)?;
    let defective_rounds = psi_outcome.metrics.rounds;
    let mut metrics = RunMetrics::default();
    metrics.merge(&psi_outcome.metrics);

    // Step 2: color every ψ-class in parallel with ≤ d+1 colors.
    let classes = psi.color_classes();
    let num_classes = classes.len();
    let mut phi: Vec<u64> = vec![0; topology.num_nodes()];
    let mut phi_palette = 1u64;
    let mut class_rounds = 0u64;

    for (_, class_nodes) in &classes {
        let sub = InducedSubgraph::extract(topology, class_nodes);
        let sub_delta = sub.topology.max_degree();
        let sub_input = Coloring::new(
            sub.original.iter().map(|&v| input.color(v)).collect(),
            input.palette(),
        );
        let beta = (f64::from(sub_delta).sqrt().ceil() as u32).max(1);
        let target = sub_delta as u64 + 1;
        let out = schedule::scheduled_coloring(&sub.topology, &sub_input, beta, target, mode)?;
        class_rounds = class_rounds.max(out.total_rounds());
        metrics.merge(&out.metrics);
        phi_palette = phi_palette.max(target);
        for (i, &v) in sub.original.iter().enumerate() {
            phi[v] = out.coloring.color(i);
        }
    }

    // Step 3: the pair (ψ, φ) as a single color.
    let colors: Vec<u64> = (0..topology.num_nodes())
        .map(|v| psi.color(v) * phi_palette + phi[v])
        .collect();
    let coloring = Coloring::new(colors, psi.palette() * phi_palette);
    verify::check_proper(topology, &coloring).map_err(ColoringError::PostconditionFailed)?;
    metrics.rounds = defective_rounds + class_rounds;

    Ok(FastOutcome {
        coloring,
        defective_rounds,
        class_rounds,
        num_classes,
        d,
        metrics,
    })
}

/// Corollary 1.4: an `O(kΔ)`-coloring in `O(√(Δ/k)) + log* n` rounds, by
/// instantiating Theorem 1.3 with `ε = log_Δ k`.
pub fn kdelta_coloring_fast(
    topology: &Topology,
    input: &Coloring,
    k: u64,
    mode: ExecutionMode,
) -> Result<FastOutcome, ColoringError> {
    if k == 0 {
        return Err(ColoringError::InvalidParameter {
            reason: "k must be at least 1".into(),
        });
    }
    let delta = topology.max_degree().max(2) as f64;
    let epsilon = ((k as f64).ln() / delta.ln()).clamp(0.0, 1.0);
    fast_coloring(topology, input, epsilon, mode)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcme_graphs::generators;

    fn poly_delta_input(g: &Topology) -> Coloring {
        // The Δ⁴-style input coloring required by Corollary 1.2: use the
        // identifiers but declare a poly-Δ palette when that is larger.
        let n = g.num_nodes() as u64;
        let delta = g.max_degree() as u64;
        Coloring::from_identifiers(&(0..n).collect::<Vec<_>>(), n.max(delta.pow(4)))
    }

    #[test]
    fn fast_coloring_is_proper_and_uses_d_plus_epsilon_palette() {
        let g = generators::random_regular(300, 16, 7);
        let input = poly_delta_input(&g);
        let out = fast_coloring(&g, &input, 0.5, ExecutionMode::Sequential).unwrap();
        verify::check_proper(&g, &out.coloring).unwrap();
        assert!(out.num_classes >= 1);
        assert!(out.d >= 1);
        assert_eq!(out.total_rounds(), out.defective_rounds + out.class_rounds);
    }

    #[test]
    fn larger_epsilon_means_fewer_rounds_more_colors() {
        let g = generators::random_regular(400, 32, 13);
        let input = poly_delta_input(&g);
        let slow = fast_coloring(&g, &input, 0.1, ExecutionMode::Sequential).unwrap();
        let fast = fast_coloring(&g, &input, 0.9, ExecutionMode::Sequential).unwrap();
        verify::check_proper(&g, &slow.coloring).unwrap();
        verify::check_proper(&g, &fast.coloring).unwrap();
        // ε close to 1 → d close to 1 → the class phase is near-trivial, but
        // the defective phase dominates... the crossover claim is about the
        // *class* phase, which must not grow with ε.
        assert!(fast.class_rounds <= slow.class_rounds + 2);
    }

    #[test]
    fn epsilon_bounds_are_validated() {
        let g = generators::ring(8);
        let input = Coloring::from_ids(8);
        assert!(matches!(
            fast_coloring(&g, &input, -0.1, ExecutionMode::Sequential),
            Err(ColoringError::InvalidParameter { .. })
        ));
        assert!(matches!(
            fast_coloring(&g, &input, 1.5, ExecutionMode::Sequential),
            Err(ColoringError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn corollary_1_4_wrapper() {
        let g = generators::random_regular(200, 16, 3);
        let input = poly_delta_input(&g);
        let out = kdelta_coloring_fast(&g, &input, 4, ExecutionMode::Sequential).unwrap();
        verify::check_proper(&g, &out.coloring).unwrap();
        assert!(matches!(
            kdelta_coloring_fast(&g, &input, 0, ExecutionMode::Sequential),
            Err(ColoringError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn works_on_small_and_degenerate_graphs() {
        for g in [
            generators::ring(12),
            generators::star(5),
            generators::path(6),
        ] {
            let input = Coloring::from_ids(g.num_nodes());
            let out = fast_coloring(&g, &input, 0.5, ExecutionMode::Sequential).unwrap();
            verify::check_proper(&g, &out.coloring).unwrap();
        }
    }
}
