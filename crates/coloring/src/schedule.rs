//! The outdegree-coloring schedule (Section 3.1 of the paper).
//!
//! All sublinear-in-Δ `(Δ+1)`-coloring algorithms [Bar16, FHK16, BEG18, MT20]
//! follow the same high-level scheme, and the paper's contribution is a
//! simpler algorithm for its first step:
//!
//! 1. compute a `β`-outdegree `z`-coloring with `z = O(Δ/β)` colors — here
//!    via Corollary 1.2 (4), i.e. the mother algorithm with `d = β`, `k = 1`;
//! 2. use its color classes `V_1, …, V_z` as a *schedule*: process the
//!    classes one after the other, and when class `V_i` is processed every
//!    node of `V_i` picks a final color from `[Δ+1]` that none of its
//!    already-finalised neighbours holds (a list-coloring problem on
//!    `G[V_i]`).
//!
//! [`scheduled_delta_plus_one`] implements the full scheme; the inner list
//! coloring is the priority routine of [`crate::list`] (see DESIGN.md for the
//! substitution of MT20's 2-round list step).

use dcme_congest::{ExecutionMode, RunMetrics, Topology};
use dcme_graphs::coloring::Coloring;
use dcme_graphs::subgraph::InducedSubgraph;
use dcme_graphs::verify;

use crate::corollary;
use crate::error::ColoringError;
use crate::list;

/// Result of the scheduled `(Δ+1)`-coloring.
#[derive(Debug, Clone)]
pub struct ScheduleOutcome {
    /// The final proper coloring with at most `Δ+1` colors.
    pub coloring: Coloring,
    /// Number of schedule classes `z = O(Δ/β)`.
    pub num_classes: usize,
    /// Rounds spent computing the β-outdegree schedule.
    pub schedule_rounds: u64,
    /// Rounds spent in the per-class list-coloring steps (summed over the
    /// sequentially processed classes).
    pub class_rounds: u64,
    /// Merged message accounting (schedule + all classes).
    pub metrics: RunMetrics,
}

impl ScheduleOutcome {
    /// Total rounds: schedule + class processing.
    pub fn total_rounds(&self) -> u64 {
        self.schedule_rounds + self.class_rounds
    }
}

/// Computes a proper coloring with palette `target ≥ Δ+1` using the
/// β-outdegree schedule.
///
/// `input` must be a proper coloring (it doubles as the tie-break priority
/// inside a class).  With `β = Θ(√Δ)` and an `O(Δ²)`-color input this is the
/// structure of the `O(√Δ)`-round `O(Δ)`-coloring of Theorem 3.1.
pub fn scheduled_coloring(
    topology: &Topology,
    input: &Coloring,
    beta: u32,
    target: u64,
    mode: ExecutionMode,
) -> Result<ScheduleOutcome, ColoringError> {
    let delta = topology.max_degree() as u64;
    if target < delta + 1 {
        return Err(ColoringError::InvalidParameter {
            reason: format!("schedule target {target} is below Δ+1 = {}", delta + 1),
        });
    }
    if topology.num_nodes() == 0 {
        return Ok(ScheduleOutcome {
            coloring: Coloring::new(Vec::new(), target),
            num_classes: 0,
            schedule_rounds: 0,
            class_rounds: 0,
            metrics: RunMetrics::default(),
        });
    }
    // Degenerate graphs (Δ = 0 or 1): the defect parameter β must satisfy
    // β ≤ Δ-1, so fall back to a direct greedy (a single trivial class).
    let beta = beta.min(topology.max_degree().saturating_sub(1));

    // Step 1: the schedule.
    let schedule = corollary::outdegree_coloring(topology, input, beta)?;
    let schedule_classes = schedule.coloring().color_classes();
    let mut metrics = RunMetrics::default();
    metrics.merge(&schedule.metrics);
    let schedule_rounds = schedule.metrics.rounds;

    // Step 2: process classes in order; each node picks a color from
    // `[target]` avoiding its already-finalised neighbours.
    let n = topology.num_nodes();
    let mut final_color: Vec<Option<u64>> = vec![None; n];
    let mut class_rounds = 0u64;

    for (_, class_nodes) in &schedule_classes {
        let sub = InducedSubgraph::extract(topology, class_nodes);
        // Build lists: allowed = [target] minus already-finalised neighbours.
        let lists: Vec<Vec<u64>> = sub
            .original
            .iter()
            .map(|&v| {
                let forbidden: std::collections::HashSet<u64> = topology
                    .neighbors(v)
                    .iter()
                    .filter_map(|&u| final_color[u])
                    .collect();
                (0..target).filter(|c| !forbidden.contains(c)).collect()
            })
            .collect();
        let priorities: Vec<u64> = sub.original.iter().map(|&v| input.color(v)).collect();
        let out = list::list_coloring(&sub.topology, &lists, &priorities, mode)?;
        class_rounds += out.metrics.rounds;
        metrics.merge(&out.metrics);
        for (i, &v) in sub.original.iter().enumerate() {
            final_color[v] = Some(out.coloring.color(i));
        }
    }

    let colors: Vec<u64> = final_color
        .into_iter()
        .map(|c| c.expect("every node belongs to exactly one schedule class"))
        .collect();
    let coloring = Coloring::new(colors, target);
    verify::check_proper(topology, &coloring).map_err(ColoringError::PostconditionFailed)?;
    metrics.rounds = schedule_rounds + class_rounds;

    Ok(ScheduleOutcome {
        coloring,
        num_classes: schedule_classes.len(),
        schedule_rounds,
        class_rounds,
        metrics,
    })
}

/// The `(Δ+1)`-coloring via the β-outdegree schedule (`target = Δ+1`).
///
/// `beta = None` selects the paper's `β = Θ(√Δ)` choice.
pub fn scheduled_delta_plus_one(
    topology: &Topology,
    input: &Coloring,
    beta: Option<u32>,
    mode: ExecutionMode,
) -> Result<ScheduleOutcome, ColoringError> {
    let delta = topology.max_degree();
    let beta = beta.unwrap_or_else(|| (f64::from(delta).sqrt().ceil() as u32).max(1));
    scheduled_coloring(topology, input, beta, delta as u64 + 1, mode)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcme_graphs::generators;

    #[test]
    fn schedule_produces_delta_plus_one_coloring() {
        let g = generators::random_regular(150, 12, 3);
        let input = Coloring::from_ids(150);
        let out = scheduled_delta_plus_one(&g, &input, None, ExecutionMode::Sequential).unwrap();
        verify::check_proper(&g, &out.coloring).unwrap();
        assert!(out.coloring.palette() <= g.max_degree() as u64 + 1);
        assert!(out.num_classes >= 1);
        assert_eq!(out.total_rounds(), out.schedule_rounds + out.class_rounds);
    }

    #[test]
    fn larger_beta_means_fewer_classes() {
        let g = generators::random_regular(200, 16, 5);
        let input = Coloring::from_ids(200);
        let small =
            scheduled_delta_plus_one(&g, &input, Some(1), ExecutionMode::Sequential).unwrap();
        let large =
            scheduled_delta_plus_one(&g, &input, Some(8), ExecutionMode::Sequential).unwrap();
        assert!(large.num_classes <= small.num_classes);
        assert!(large.schedule_rounds <= small.schedule_rounds);
    }

    #[test]
    fn works_on_complete_graph() {
        let g = generators::complete(9);
        let input = Coloring::from_ids(9);
        let out = scheduled_delta_plus_one(&g, &input, None, ExecutionMode::Sequential).unwrap();
        verify::check_proper(&g, &out.coloring).unwrap();
        assert_eq!(out.coloring.distinct_colors(), 9);
    }

    #[test]
    fn works_on_low_degree_graphs() {
        for g in [
            generators::ring(20),
            generators::path(20),
            generators::star(6),
        ] {
            let input = Coloring::from_ids(g.num_nodes());
            let out =
                scheduled_delta_plus_one(&g, &input, None, ExecutionMode::Sequential).unwrap();
            verify::check_proper(&g, &out.coloring).unwrap();
            assert!(out.coloring.palette() <= g.max_degree() as u64 + 1);
        }
    }

    #[test]
    fn custom_target_palette() {
        let g = generators::random_regular(100, 8, 2);
        let input = Coloring::from_ids(100);
        let out = scheduled_coloring(&g, &input, 2, 20, ExecutionMode::Sequential).unwrap();
        assert_eq!(out.coloring.palette(), 20);
        verify::check_proper(&g, &out.coloring).unwrap();
        assert!(matches!(
            scheduled_coloring(&g, &input, 2, 3, ExecutionMode::Sequential),
            Err(ColoringError::InvalidParameter { .. })
        ));
    }
}
