//! One-round color reduction: Lemma 4.1, Theorem 1.6 and the exhaustive
//! lower-bound search of Lemma 4.3.
//!
//! * [`max_reducible`] — the tight threshold of Theorem 1.6: given `m` input
//!   colors and maximum degree `Δ`, the largest `k` with `m ≥ k(Δ - k + 3)`
//!   (and `k ≤ min{Δ-1, Δ/2 + 3/2}`) colors can be removed in one round, and
//!   not one more.
//! * [`one_round_reduction`] — Algorithm 2: the 1-round CONGEST algorithm
//!   that removes exactly those `k` colors.
//! * [`lower_bound`] — the impossibility half, checked *exhaustively* for
//!   small `(Δ, m)` by deciding whether the "neighbourhood conflict graph"
//!   (one vertex per possible 1-round view, edges between views that can be
//!   adjacent) is colorable with the target number of output colors.  A
//!   1-round deterministic, id-less algorithm is exactly a proper coloring of
//!   that conflict graph, so unsatisfiability certifies the lower bound.

use dcme_algebra::logstar::bits_for;
use dcme_congest::{
    ExecutionMode, Inbox, MessageSize, NodeAlgorithm, NodeContext, Outbox, RunMetrics, Simulator,
    SimulatorConfig, Topology,
};
use dcme_graphs::coloring::Coloring;
use dcme_graphs::verify;

use crate::error::ColoringError;

/// Theorem 1.6 threshold: the largest number of colors removable in one round
/// from an `m`-coloring on graphs of maximum degree `delta` (0 if none).
pub fn max_reducible(m: u64, delta: u32) -> u64 {
    if delta == 0 {
        // Isolated vertices: everything can collapse to one color, but the
        // theorem's regime starts at Δ >= 1; report m - 1.
        return m.saturating_sub(1);
    }
    let delta = delta as u64;
    let k_cap = (delta.saturating_sub(1)).min(delta / 2 + 1 + (delta % 2));
    // k ≤ Δ/2 + 3/2 means k ≤ floor(Δ/2 + 1.5); for even Δ that is Δ/2 + 1,
    // for odd Δ it is (Δ+3)/2 = Δ/2 + 2 in integer terms — recompute exactly:
    let k_cap = k_cap.min(((delta as f64) / 2.0 + 1.5).floor() as u64);
    let mut best = 0u64;
    for k in 1..=k_cap {
        if m >= k * (delta - k + 3) {
            best = k;
        }
    }
    best
}

/// The number of input colors required to remove `k` colors in one round
/// (the right-hand side of Theorem 1.6).
pub fn required_input_colors(k: u64, delta: u32) -> u64 {
    k * (delta as u64 - k + 3)
}

/// Message of Algorithm 2: the sender's input color.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InputColor(pub u64);

impl MessageSize for InputColor {
    fn bit_size(&self) -> u64 {
        bits_for(self.0 + 1) as u64
    }
}

impl dcme_congest::WireMessage for InputColor {
    fn encode(&self, w: &mut dcme_congest::BitWriter) -> u8 {
        dcme_congest::wire::write_color(w, self.0);
        0
    }

    fn decode(
        r: &mut dcme_congest::BitReader<'_>,
        bits: u16,
        _aux: u8,
    ) -> Result<Self, dcme_congest::WireError> {
        dcme_congest::wire::read_color(r, bits as u32).map(InputColor)
    }
}

/// Shared, locally computable constants of Algorithm 2 for a given `(m, Δ, k)`.
#[derive(Debug, Clone, Copy)]
struct ReductionPlan {
    /// Number of input colors the algorithm is applied to (`k(Δ-k+3)`).
    mm: u64,
    /// Number of output colors for the recolored range (`ℓ = k(Δ-k+2)`).
    ell: u64,
    /// Number of colors removed.
    k: u64,
    /// Regime size `Δ - k + 2`.
    regime: u64,
    /// Maximum degree.
    delta: u64,
}

impl ReductionPlan {
    fn new(m: u64, delta: u32, k: u64) -> Self {
        let delta = delta as u64;
        let mm = (k * (delta - k + 3)).min(m);
        let ell = k * (delta - k + 2);
        Self {
            mm,
            ell,
            k,
            regime: delta - k + 2,
            delta,
        }
    }

    /// `r_i(j) = i (Δ-k+2) + j`, the `j`-th color of regime `i`.
    fn regime_color(&self, i: u64, j: u64) -> u64 {
        i * self.regime + j
    }

    /// `f_j(ℓ + i)`: the hard-coded "stolen" color that regime `j` reserves
    /// for the recoloring color `ℓ + i` (`i ≠ j`).  A node whose neighbourhood
    /// misses the recoloring color `ℓ + j` may steal this color from regime
    /// `R_j`.  Injective in `i` because the dense index (skipping `j`) is
    /// `< k - 1 ≤ |R_j|`.
    fn steal_color(&self, regime_j: u64, my_i: u64) -> u64 {
        debug_assert!(regime_j != my_i && my_i < self.k);
        let dense = if my_i < regime_j { my_i } else { my_i - 1 };
        self.regime_color(regime_j, dense)
    }
}

struct ReductionNode {
    input: u64,
    plan: ReductionPlan,
    output: Option<u64>,
    done: bool,
}

impl NodeAlgorithm for ReductionNode {
    type Message = InputColor;
    type Output = u64;

    fn init(&mut self, _ctx: &NodeContext) {}

    fn send(&mut self, _ctx: &NodeContext) -> Outbox<InputColor> {
        Outbox::Broadcast(InputColor(self.input))
    }

    fn receive(&mut self, _ctx: &NodeContext, inbox: &Inbox<'_, InputColor>) {
        let plan = self.plan;
        let neighbor_colors: std::collections::HashSet<u64> =
            inbox.iter().map(|(_, m)| m.0).collect();
        let phi = self.input;

        let out = if phi < plan.ell || phi >= plan.mm {
            // Case 1 (and the m' > m extension): keep the color; colors >= mm
            // are shifted down by k afterwards to keep the palette dense.
            if phi >= plan.mm {
                phi - plan.k
            } else {
                phi
            }
        } else if neighbor_colors
            .iter()
            .all(|&c| c < plan.ell || c >= plan.mm)
        {
            // Case 2: no neighbour recolors itself; pick the smallest color
            // in [Δ+1] unused by the neighbours.
            (0..=plan.delta)
                .find(|c| !neighbor_colors.contains(c))
                .expect("at most Δ neighbours, so [Δ+1] has a free color")
        } else {
            // Case 3: build F(v) = R_i ∪ {stolen colors of absent recoloring
            // colors} and pick the smallest member not used by a neighbour
            // that keeps its color.
            let i = phi - plan.ell;
            let mut pool: Vec<u64> = (0..plan.regime).map(|j| plan.regime_color(i, j)).collect();
            for j in 0..plan.k {
                if j != i && !neighbor_colors.contains(&(plan.ell + j)) {
                    // The recoloring color ℓ+j is absent from the
                    // neighbourhood: steal the color regime R_j reserves for
                    // this node's own recoloring color.
                    pool.push(plan.steal_color(j, i));
                }
            }
            pool.sort_unstable();
            pool.dedup();
            pool.into_iter()
                .find(|c| !neighbor_colors.contains(c))
                .expect("Lemma 4.1: |F(v)| >= d(v) + 1, so a free color exists")
        };
        self.output = Some(out);
        self.done = true;
    }

    fn is_halted(&self) -> bool {
        self.done
    }

    fn output(&self) -> u64 {
        self.output.unwrap_or(self.input)
    }
}

/// Result of one application of Algorithm 2.
#[derive(Debug, Clone)]
pub struct ReductionOutcome {
    /// The new proper coloring with `m - k` colors.
    pub coloring: Coloring,
    /// How many colors were removed.
    pub removed: u64,
    /// Round/message accounting (always 1 round).
    pub metrics: RunMetrics,
}

/// Lemma 4.1 / Algorithm 2: removes [`max_reducible`]`(m, Δ)` colors from a
/// proper `m`-coloring in a single round.
///
/// Returns the input unchanged (with `removed = 0`) when the threshold says
/// nothing can be removed (i.e. `m ≤ Δ + 1`).
pub fn one_round_reduction(
    topology: &Topology,
    input: &Coloring,
    mode: ExecutionMode,
) -> Result<ReductionOutcome, ColoringError> {
    if input.len() != topology.num_nodes() {
        return Err(ColoringError::InputSizeMismatch {
            nodes: topology.num_nodes(),
            colors: input.len(),
        });
    }
    verify::check_proper(topology, input).map_err(ColoringError::ImproperInput)?;

    let m = input.palette();
    let delta = topology.max_degree();
    let k = max_reducible(m, delta);
    if k == 0 || delta == 0 {
        return Ok(ReductionOutcome {
            coloring: input.clone(),
            removed: 0,
            metrics: RunMetrics::default(),
        });
    }
    let plan = ReductionPlan::new(m, delta, k);

    let nodes: Vec<ReductionNode> = (0..topology.num_nodes())
        .map(|v| ReductionNode {
            input: input.color(v),
            plan,
            output: None,
            done: false,
        })
        .collect();
    let sim = Simulator::with_config(
        topology,
        SimulatorConfig {
            max_rounds: 2,
            mode,
        },
    );
    let run = sim.run(nodes);
    let coloring = Coloring::new(run.outputs, m - k);
    verify::check_proper(topology, &coloring).map_err(ColoringError::PostconditionFailed)?;
    Ok(ReductionOutcome {
        coloring,
        removed: k,
        metrics: run.metrics,
    })
}

/// Iterates [`one_round_reduction`] until no more colors can be removed,
/// i.e. until the palette reaches `Δ + 1`.  Returns the final coloring and
/// the number of rounds (= iterations) spent.
///
/// This is the classical "iterate the best 1-round algorithm" strategy whose
/// `Ω(Δ)`-round behaviour the paper contrasts with the `O(1)`-round
/// Corollary 1.2 (3); experiment E9 reports both.
pub fn iterate_to_delta_plus_one(
    topology: &Topology,
    input: &Coloring,
    mode: ExecutionMode,
) -> Result<(Coloring, u64), ColoringError> {
    let mut current = input.clone();
    let mut rounds = 0u64;
    loop {
        let step = one_round_reduction(topology, &current, mode)?;
        if step.removed == 0 {
            return Ok((current, rounds));
        }
        rounds += 1;
        current = step.coloring;
    }
}

/// A vertex of the neighbourhood conflict graph: a possible 1-round view.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct View {
    /// The centre's input color.
    pub center: u64,
    /// The set of neighbour input colors (sorted, without the centre).
    pub neighbors: Vec<u64>,
}

/// Builds all views for graphs of maximum degree `delta` under proper
/// `m`-colorings, and the conflict relation "these two views can belong to
/// adjacent nodes".
///
/// A deterministic, id-less 1-round algorithm with `q` output colors exists
/// **iff** this conflict graph is `q`-colorable (each view must be assigned
/// an output color, and views that can be adjacent must get distinct ones).
pub fn conflict_graph(delta: u32, m: u64) -> (Vec<View>, Vec<Vec<usize>>) {
    let mut views = Vec::new();
    let colors: Vec<u64> = (0..m).collect();
    for &center in &colors {
        let others: Vec<u64> = colors.iter().copied().filter(|&c| c != center).collect();
        // All subsets of size 0..=delta of the other colors.
        let mut stack: Vec<(usize, Vec<u64>)> = vec![(0, Vec::new())];
        while let Some((start, subset)) = stack.pop() {
            views.push(View {
                center,
                neighbors: subset.clone(),
            });
            if subset.len() == delta as usize {
                continue;
            }
            for (idx, &other) in others.iter().enumerate().skip(start) {
                let mut next = subset.clone();
                next.push(other);
                stack.push((idx + 1, next));
            }
        }
    }
    // Deduplicate (the stack construction can revisit the empty prefix).
    views.sort_by(|a, b| (a.center, &a.neighbors).cmp(&(b.center, &b.neighbors)));
    views.dedup();

    let n = views.len();
    let mut adj = vec![Vec::new(); n];
    for i in 0..n {
        for j in (i + 1)..n {
            let a = &views[i];
            let b = &views[j];
            if a.neighbors.contains(&b.center) && b.neighbors.contains(&a.center) {
                adj[i].push(j);
                adj[j].push(i);
            }
        }
    }
    (views, adj)
}

/// Decides whether the conflict graph for `(delta, m)` is colorable with `q`
/// colors, i.e. whether a 1-round algorithm from `m` to `q` colors exists.
///
/// Returns `None` if the backtracking search exceeds `step_budget` steps
/// (only relevant for parameters well beyond the tiny cases the lower-bound
/// experiment uses).
pub fn one_round_algorithm_exists(delta: u32, m: u64, q: u64, step_budget: u64) -> Option<bool> {
    let (_views, adj) = conflict_graph(delta, m);
    let n = adj.len();
    // Order vertices by degree (descending) for better pruning.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(adj[v].len()));
    let mut assignment: Vec<Option<u64>> = vec![None; n];
    let mut steps = 0u64;

    fn backtrack(
        pos: usize,
        order: &[usize],
        adj: &[Vec<usize>],
        q: u64,
        assignment: &mut Vec<Option<u64>>,
        steps: &mut u64,
        budget: u64,
    ) -> Option<bool> {
        if pos == order.len() {
            return Some(true);
        }
        *steps += 1;
        if *steps > budget {
            return None;
        }
        let v = order[pos];
        let forbidden: std::collections::HashSet<u64> =
            adj[v].iter().filter_map(|&u| assignment[u]).collect();
        // Symmetry breaking: only try colors up to (max used so far) + 1.
        let max_used = assignment.iter().flatten().copied().max();
        let cap = match max_used {
            Some(c) => (c + 1).min(q - 1),
            None => 0,
        };
        for color in 0..=cap {
            if forbidden.contains(&color) {
                continue;
            }
            assignment[v] = Some(color);
            match backtrack(pos + 1, order, adj, q, assignment, steps, budget) {
                Some(true) => return Some(true),
                Some(false) => {}
                None => return None,
            }
            assignment[v] = None;
        }
        Some(false)
    }

    if q == 0 {
        return Some(n == 0);
    }
    backtrack(0, &order, &adj, q, &mut assignment, &mut steps, step_budget)
}

/// The lower-bound statement of Theorem 1.6 for small parameters: verifies
/// exhaustively that no 1-round algorithm can output `m - k - 1` colors when
/// `m ≤ k(Δ - k + 3) - 1`, and that `m - k` colors are achievable.
///
/// Returns `(achievable, impossible)` where both should be `Some(true)` when
/// the search completes within the budget.
pub fn lower_bound(delta: u32, m: u64, step_budget: u64) -> (Option<bool>, Option<bool>) {
    let k = max_reducible(m, delta);
    let achievable = one_round_algorithm_exists(delta, m, m - k, step_budget);
    let impossible = if m > delta as u64 + 1 {
        one_round_algorithm_exists(delta, m, m - k - 1, step_budget).map(|exists| !exists)
    } else {
        // With m <= Δ+1 nothing can be reduced; the "impossible" half is that
        // even removing a single color is impossible.
        one_round_algorithm_exists(delta, m, m - 1, step_budget).map(|exists| !exists)
    };
    (achievable, impossible)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcme_graphs::generators;

    #[test]
    fn threshold_matches_paper_examples() {
        // "to reduce 1 color one needs at least Δ+2 input colors, to reduce 2
        //  colors one needs 2Δ+2, 3 colors -> 3Δ, 4 colors -> 4Δ-4, ..."
        for delta in [8u32, 16, 31] {
            let d = delta as u64;
            assert_eq!(required_input_colors(1, delta), d + 2);
            assert_eq!(required_input_colors(2, delta), 2 * d + 2);
            assert_eq!(required_input_colors(3, delta), 3 * d);
            assert_eq!(required_input_colors(4, delta), 4 * d - 4);
            assert_eq!(required_input_colors(5, delta), 5 * d - 10);
            assert_eq!(required_input_colors(6, delta), 6 * d - 18);
        }
        assert_eq!(max_reducible(10, 8), 1);
        assert_eq!(max_reducible(9, 8), 0);
        assert_eq!(max_reducible(18, 8), 2);
        assert_eq!(max_reducible(24, 8), 3);
    }

    #[test]
    fn one_round_reduction_removes_exactly_k_colors() {
        let g = generators::random_regular(200, 8, 4);
        let delta = g.max_degree();
        // Give the graph an input coloring with exactly the threshold size.
        let m = required_input_colors(3, delta);
        let input = {
            // A proper coloring with m colors: start from ids and fold.
            let base = crate::linial::delta_squared_from_ids(&g, None)
                .unwrap()
                .coloring;
            // Ensure palette >= m by padding, or reduce to exactly m with the
            // elimination routine if it is larger.
            if base.palette() > m {
                crate::elimination::reduce_to_target(&g, &base, m, ExecutionMode::Sequential)
                    .unwrap()
                    .0
            } else {
                base.with_palette(m)
            }
        };
        let out = one_round_reduction(&g, &input, ExecutionMode::Sequential).unwrap();
        assert_eq!(out.removed, max_reducible(m, delta));
        verify::check_proper(&g, &out.coloring).unwrap();
        assert_eq!(out.coloring.palette(), m - out.removed);
        assert_eq!(out.metrics.rounds, 1);
    }

    #[test]
    fn reduction_below_threshold_is_a_noop() {
        let g = generators::complete(5); // Δ = 4, threshold needs >= Δ+2 = 6 colors
        let input = Coloring::from_ids(5);
        let out = one_round_reduction(&g, &input, ExecutionMode::Sequential).unwrap();
        assert_eq!(out.removed, 0);
        assert_eq!(out.coloring, input);
    }

    #[test]
    fn iterated_reduction_reaches_delta_plus_one_on_small_palettes() {
        let g = generators::random_regular(100, 6, 2);
        let delta = g.max_degree() as u64;
        let start = crate::linial::delta_squared_from_ids(&g, None)
            .unwrap()
            .coloring;
        let small =
            crate::elimination::reduce_to_target(&g, &start, 3 * delta, ExecutionMode::Sequential)
                .unwrap()
                .0;
        let (final_coloring, rounds) =
            iterate_to_delta_plus_one(&g, &small, ExecutionMode::Sequential).unwrap();
        verify::check_proper(&g, &final_coloring).unwrap();
        assert_eq!(final_coloring.palette(), delta + 1);
        // Each round removes at most ~Δ/2 colors, so at least a few rounds.
        assert!(rounds >= 2, "rounds = {rounds}");
    }

    #[test]
    fn conflict_graph_small_counts() {
        // Δ = 2, m = 3: views = 3 centres × (1 + 2 + 1) subsets = 12.
        let (views, adj) = conflict_graph(2, 3);
        assert_eq!(views.len(), 12);
        assert_eq!(adj.len(), 12);
        // Conflict relation is symmetric.
        for (v, neigh) in adj.iter().enumerate() {
            for &u in neigh {
                assert!(adj[u].contains(&v));
            }
        }
    }

    #[test]
    fn one_round_characterization_delta_2() {
        // Δ = 2: reducing 1 color needs m >= Δ+2 = 4 input colors.
        // m = 4 -> 3 colors achievable, 2 impossible.
        assert_eq!(one_round_algorithm_exists(2, 4, 3, 2_000_000), Some(true));
        assert_eq!(one_round_algorithm_exists(2, 4, 2, 2_000_000), Some(false));
        // m = 5 -> threshold still k = 1 (need 6 for k = 2): 4 achievable, 3 not.
        assert_eq!(one_round_algorithm_exists(2, 5, 4, 2_000_000), Some(true));
        assert_eq!(one_round_algorithm_exists(2, 5, 3, 2_000_000), Some(false));
        // m = 3 = Δ+1: no reduction possible.
        assert_eq!(one_round_algorithm_exists(2, 3, 2, 2_000_000), Some(false));
    }

    #[test]
    fn lower_bound_helper_combines_both_halves() {
        let (achievable, impossible) = lower_bound(2, 4, 2_000_000);
        assert_eq!(achievable, Some(true));
        assert_eq!(impossible, Some(true));
    }

    #[test]
    fn reduction_bandwidth_is_congest() {
        let g = generators::random_regular(128, 8, 1);
        let start = crate::linial::delta_squared_from_ids(&g, None)
            .unwrap()
            .coloring;
        let out = one_round_reduction(&g, &start, ExecutionMode::Sequential).unwrap();
        let report = dcme_congest::BandwidthReport::check(128, &out.metrics, 4);
        assert!(report.within_congest, "{report}");
    }
}
