//! Linial's `O(Δ²)`-coloring in `O(log* n)` rounds.
//!
//! Linial's algorithm treats the unique identifiers as an input coloring with
//! `m = n` colors and repeatedly applies the one-round color reduction
//! (Corollary 1.2 (1), i.e. the mother algorithm with `k = X`, `d = 0`),
//! shrinking the palette from `m` to `O(Δ² poly log m)` per step.  After
//! `O(log* n)` steps the palette stabilises at `O(Δ²)` and further steps make
//! no progress.
//!
//! [`delta_squared_from_ids`] iterates the reduction until it stops making
//! progress (or a target palette is reached) and reports the number of
//! iterations, which the experiments compare against `log* n`.

use dcme_algebra::logstar::log_star;
use dcme_congest::{RunMetrics, Topology};
use dcme_graphs::coloring::Coloring;

use crate::corollary;
use crate::error::ColoringError;

/// The result of the iterated Linial reduction.
#[derive(Debug, Clone)]
pub struct LinialOutcome {
    /// The final proper coloring with `O(Δ²)` colors.
    pub coloring: Coloring,
    /// Number of one-round reduction steps executed.
    pub iterations: u64,
    /// Sum of the simulator rounds over all steps (≈ 2 · iterations because
    /// each one-batch run spends one extra announce round).
    pub total_rounds: u64,
    /// Merged message accounting over all steps.
    pub metrics: RunMetrics,
    /// `log* n` of the starting palette, for comparison in experiment tables.
    pub log_star_n: u32,
    /// The palette after every step (starting with the input palette).
    pub palette_trace: Vec<u64>,
}

/// Iterates Corollary 1.2 (1) starting from unique identifiers until the
/// palette stops shrinking (or drops below `target`, if given).
///
/// The returned coloring is proper with `O(Δ²)` colors; the number of
/// iterations is `O(log* n)`.
pub fn delta_squared_from_ids(
    topology: &Topology,
    target: Option<u64>,
) -> Result<LinialOutcome, ColoringError> {
    let ids = Coloring::from_ids(topology.num_nodes());
    reduce_iteratively(topology, &ids, target)
}

/// Iterates Corollary 1.2 (1) starting from an arbitrary proper input
/// coloring until the palette stops shrinking (or drops below `target`).
pub fn reduce_iteratively(
    topology: &Topology,
    input: &Coloring,
    target: Option<u64>,
) -> Result<LinialOutcome, ColoringError> {
    let mut current = input.clone();
    let mut iterations = 0u64;
    let mut total_rounds = 0u64;
    let mut metrics = RunMetrics::default();
    let mut palette_trace = vec![current.palette()];
    let log_star_n = log_star(input.palette());

    loop {
        if let Some(t) = target {
            if current.palette() <= t {
                break;
            }
        }
        let step = corollary::linial_color_reduction(topology, &current)?;
        let next_palette = step.params.encoded_colors();
        if next_palette >= current.palette() {
            // No further progress: we have reached the O(Δ²) fixed point.
            break;
        }
        iterations += 1;
        total_rounds += step.metrics.rounds;
        metrics.merge(&step.metrics);
        current = step.coloring().clone();
        palette_trace.push(current.palette());

        // Defensive cap: the palette shrinks at least geometrically above the
        // fixed point, so log* n + a few iterations always suffice.
        if iterations > 64 {
            return Err(ColoringError::DidNotTerminate {
                round_cap: iterations,
            });
        }
    }
    metrics.rounds = total_rounds;

    Ok(LinialOutcome {
        coloring: current,
        iterations,
        total_rounds,
        metrics,
        log_star_n,
        palette_trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcme_graphs::generators;
    use dcme_graphs::verify;

    #[test]
    fn ring_reaches_small_palette_in_logstar_like_iterations() {
        let g = generators::ring(1 << 12);
        let out = delta_squared_from_ids(&g, None).unwrap();
        verify::check_proper(&g, &out.coloring).unwrap();
        // Δ = 2: the fixed point is a constant-size palette, far below n.
        assert!(out.coloring.palette() < 200);
        // Iterations are log*-ish: single digits even for n = 4096.
        assert!(out.iterations <= 6, "iterations = {}", out.iterations);
        assert!(out.palette_trace.windows(2).all(|w| w[1] < w[0]));
    }

    #[test]
    fn regular_graph_reaches_delta_squared_ballpark() {
        let g = generators::random_regular(2000, 8, 11);
        let out = delta_squared_from_ids(&g, None).unwrap();
        verify::check_proper(&g, &out.coloring).unwrap();
        let delta = g.max_degree() as u64;
        // O(Δ²) with the paper's constants (≤ 256 Δ² after the last step,
        // usually ~(12Δ)² here).
        assert!(out.coloring.palette() <= 256 * delta * delta);
        assert!(out.iterations >= 1);
        assert!(out.total_rounds <= 2 * out.iterations + 2);
    }

    #[test]
    fn target_stops_early() {
        let g = generators::random_regular(500, 6, 3);
        let loose = delta_squared_from_ids(&g, Some(u64::MAX)).unwrap();
        assert_eq!(loose.iterations, 0);
        assert_eq!(loose.coloring.palette(), 500);

        let strict = delta_squared_from_ids(&g, None).unwrap();
        assert!(strict.coloring.palette() < 500);
    }

    #[test]
    fn iterating_from_existing_coloring() {
        let g = generators::gnp(300, 0.05, 5);
        let start = Coloring::from_ids(300);
        let out = reduce_iteratively(&g, &start, None).unwrap();
        verify::check_proper(&g, &out.coloring).unwrap();
        assert_eq!(out.palette_trace[0], 300);
        assert_eq!(
            out.palette_trace.last().copied().unwrap(),
            out.coloring.palette()
        );
    }
}
