//! The mother algorithm — Theorem 1.1 / Algorithm 1 of the paper.
//!
//! Every node `v` with input color `i` locally derives the trial sequence
//! `s_i(x) = (x mod k, p_i(x))`, `x = 0..q-1`, from the shared
//! [`SequenceFamily`] and consumes it in batches of `k` trials, one batch per
//! round:
//!
//! * an *active* (not yet colored) node broadcasts its input color — that is
//!   all a neighbour needs to reconstruct the node's entire current batch,
//!   which is what makes the algorithm a CONGEST algorithm;
//! * a trial is *d-proper* in a round if at most `d` neighbours try the same
//!   pair in that round or are already permanently colored with it;
//! * the node adopts the first d-proper trial of its batch, announces the
//!   adopted color in the next round, orients the monochromatic edges as
//!   prescribed by the paper (towards already-colored neighbours; ties within
//!   a round broken from smaller to larger input color), records the batch
//!   index as its partition part, and halts.
//!
//! The proof of Theorem 1.1 guarantees that at most `2·f·Δ/(d+1) < q` trials
//! can ever be blocked, so every node terminates within `R = ⌈q/k⌉` batches.
//! The driver [`run`] enforces this with a round cap and verifies nothing
//! silently: parameter errors, improper inputs and non-termination are
//! reported as [`ColoringError`]s.

use std::sync::Arc;

use dcme_algebra::logstar::bits_for;
use dcme_algebra::sequence::{SequenceFamily, SequenceParams, Trial};
use dcme_congest::{
    ExecutionMode, Inbox, MessageSize, NodeAlgorithm, NodeContext, Outbox, RunMetrics, Simulator,
    SimulatorConfig, Topology,
};
use dcme_graphs::coloring::{Coloring, OrientedColoring, PartitionedColoring};
use dcme_graphs::verify;

use crate::error::ColoringError;

/// Configuration of one run of the mother algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialConfig {
    /// Defect tolerance `d` (0 for proper colorings).
    pub d: u32,
    /// Batch size `k >= 1`: the number of colors tried per round.
    pub k: u64,
    /// Executor selection for the simulator.
    pub mode: ExecutionMode,
}

impl TrialConfig {
    /// A proper-coloring configuration (`d = 0`) with batch size `k`.
    pub fn proper(k: u64) -> Self {
        Self {
            d: 0,
            k,
            mode: ExecutionMode::Sequential,
        }
    }

    /// A defective/outdegree configuration with tolerance `d` and batch size `k`.
    pub fn defective(d: u32, k: u64) -> Self {
        Self {
            d,
            k,
            mode: ExecutionMode::Sequential,
        }
    }

    /// Selects the parallel executor with the given number of threads.
    pub fn parallel(mut self, threads: usize) -> Self {
        self.mode = ExecutionMode::Parallel { threads };
        self
    }
}

/// The result of one run of the mother algorithm.
#[derive(Debug, Clone)]
pub struct TrialOutcome {
    /// Coloring, orientation of monochromatic edges, and partition parts.
    pub result: PartitionedColoring,
    /// Round / message / bandwidth accounting of the run.
    pub metrics: RunMetrics,
    /// The derived Theorem 1.1 parameters (`Z`, `f`, `q`, `X`, `R`).
    pub params: SequenceParams,
}

impl TrialOutcome {
    /// Convenience accessor for the produced coloring.
    pub fn coloring(&self) -> &Coloring {
        &self.result.oriented.coloring
    }
}

/// Messages exchanged by Algorithm 1.
///
/// An active node announces its input color; a freshly colored node announces
/// the adopted (encoded) color once.  Both fit in `O(log m + log kΔ) =
/// O(log n)` bits, respecting CONGEST.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrialMessage {
    /// "I am still uncolored and my input color is `input_color`."
    Active {
        /// the sender's input color
        input_color: u64,
    },
    /// "I permanently adopted the encoded color `color`."
    Adopted {
        /// the sender's encoded output color
        color: u64,
    },
}

impl MessageSize for TrialMessage {
    fn bit_size(&self) -> u64 {
        1 + match self {
            TrialMessage::Active { input_color } => bits_for(input_color + 1) as u64,
            TrialMessage::Adopted { color } => bits_for(color + 1) as u64,
        }
    }
}

impl dcme_congest::WireMessage for TrialMessage {
    fn encode(&self, w: &mut dcme_congest::BitWriter) -> u8 {
        match self {
            TrialMessage::Active { input_color } => {
                w.write_bits(0, 1);
                dcme_congest::wire::write_color(w, *input_color);
            }
            TrialMessage::Adopted { color } => {
                w.write_bits(1, 1);
                dcme_congest::wire::write_color(w, *color);
            }
        }
        0
    }

    fn decode(
        r: &mut dcme_congest::BitReader<'_>,
        bits: u16,
        _aux: u8,
    ) -> Result<Self, dcme_congest::WireError> {
        let tag = r.read_bits(1)?;
        let value = dcme_congest::wire::read_color(r, bits as u32 - 1)?;
        Ok(if tag == 0 {
            TrialMessage::Active { input_color: value }
        } else {
            TrialMessage::Adopted { color: value }
        })
    }
}

/// Per-node output of the algorithm.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrialNodeOutput {
    /// Encoded adopted color (`slot * q + value`), or `None` if the node did
    /// not finish (only possible if the round cap was hit).
    pub color: Option<u64>,
    /// The batch index in which the color was adopted.
    pub iteration: u64,
    /// Ports towards which monochromatic edges are oriented (outgoing).
    pub out_ports: Vec<usize>,
}

/// The per-node state machine implementing Algorithm 1.
#[derive(Clone)]
pub struct TrialNode {
    family: Arc<SequenceFamily>,
    input_color: u64,
    /// Ports of neighbours that are already permanently colored, with their
    /// adopted trial, in announcement order (each port announces once).
    colored_neighbors: Vec<(usize, Trial)>,
    /// Reusable flat pool of every active neighbour's current batch — the
    /// per-round scratch of the batched conflict scan in `receive`.
    trial_pool: Vec<Trial>,
    /// The adopted trial and the iteration in which it was adopted.
    adopted: Option<(Trial, u64)>,
    /// Whether the adopted color has been announced (the node halts right
    /// after processing the announce round).
    announced: bool,
    /// Outgoing orientation ports.
    out_ports: Vec<usize>,
    /// Ports of neighbours that announced the *same* color in the same
    /// announce round (same-iteration ties); the driver keeps only the
    /// orientation from the smaller to the larger input color.
    pending_tie_ports: Vec<usize>,
    halted: bool,
}

impl TrialNode {
    /// Creates the state machine for a node with the given input color.
    pub fn new(family: Arc<SequenceFamily>, input_color: u64) -> Self {
        Self {
            family,
            input_color,
            colored_neighbors: Vec::new(),
            trial_pool: Vec::new(),
            adopted: None,
            announced: false,
            out_ports: Vec::new(),
            pending_tie_ports: Vec::new(),
            halted: false,
        }
    }

    fn q(&self) -> u64 {
        self.family.params().q
    }

    fn defect(&self) -> usize {
        self.family.params().d as usize
    }
}

impl NodeAlgorithm for TrialNode {
    type Message = TrialMessage;
    type Output = TrialNodeOutput;

    fn init(&mut self, _ctx: &NodeContext) {}

    fn send(&mut self, _ctx: &NodeContext) -> Outbox<TrialMessage> {
        if let Some((trial, _)) = self.adopted {
            if !self.announced {
                self.announced = true;
                return Outbox::Broadcast(TrialMessage::Adopted {
                    color: trial.encode(self.q()),
                });
            }
            // Unreachable: the node halts at the end of its announce round.
            return Outbox::Silent;
        }
        Outbox::Broadcast(TrialMessage::Active {
            input_color: self.input_color,
        })
    }

    fn receive(&mut self, ctx: &NodeContext, inbox: &Inbox<'_, TrialMessage>) {
        let q = self.q();

        // Record neighbours that announced a permanent color this round —
        // one contiguous pass over the CSR slot arena.  A port announces
        // at most once over the whole run, so appending never duplicates.
        for (port, slot) in inbox.slots().iter().enumerate() {
            if let Some(TrialMessage::Adopted { color }) = slot {
                self.colored_neighbors
                    .push((port, Trial::decode(*color, q)));
            }
        }

        if self.announced {
            // Announce round: record same-iteration ties.  A neighbour that
            // announces the same color in this very round adopted it in the
            // same iteration; the paper orients such an edge from the smaller
            // to the larger input color.  Both endpoints record the tie here
            // and the driver keeps only the orientation out of the smaller
            // input color.
            let (my_trial, _) = self.adopted.expect("announced implies adopted");
            for (port, msg) in inbox.iter() {
                if let TrialMessage::Adopted { color } = msg {
                    if Trial::decode(*color, q) == my_trial {
                        self.pending_tie_ports.push(port);
                    }
                }
            }
            self.halted = true;
            return;
        }

        // Active round: the current iteration is the simulator round.
        let iteration = ctx.round;
        let params = self.family.params();
        if iteration >= params.rounds {
            // Theory guarantees this cannot happen; if it does, stay active
            // so the driver's round cap reports non-termination.
            return;
        }

        // Pool every active neighbour's current batch into one flat,
        // reusable buffer.  Within a batch the trial slots `x mod k` are
        // pairwise distinct, so a neighbour's batch contains a given pair
        // at most once — counting equality matches over the flat pool is
        // exactly the old per-batch `contains` count, as one branchless
        // linear scan instead of nested early-exit loops.
        self.trial_pool.clear();
        for slot in inbox.slots().iter().flatten() {
            if let TrialMessage::Active { input_color } = slot {
                self.family
                    .batch_into(*input_color, iteration, &mut self.trial_pool);
            }
        }

        let my_batch = self.family.batch(self.input_color, iteration);
        let d = self.defect();

        for trial in my_batch {
            let same_round_conflicts: usize = self
                .trial_pool
                .iter()
                .map(|&t| usize::from(t == trial))
                .sum();
            let colored_conflicts: usize = self
                .colored_neighbors
                .iter()
                .map(|&(_, t)| usize::from(t == trial))
                .sum();
            if same_round_conflicts + colored_conflicts <= d {
                // Adopt.  Orient edges towards neighbours already colored
                // with the same pair.
                self.adopted = Some((trial, iteration));
                self.out_ports = self
                    .colored_neighbors
                    .iter()
                    .filter(|&&(_, t)| t == trial)
                    .map(|&(port, _)| port)
                    .collect();
                break;
            }
        }
    }

    fn is_halted(&self) -> bool {
        self.halted
    }

    fn output(&self) -> TrialNodeOutput {
        match self.adopted {
            Some((trial, iteration)) => TrialNodeOutput {
                color: Some(trial.encode(self.q())),
                iteration,
                out_ports: self
                    .out_ports
                    .iter()
                    .copied()
                    .chain(self.pending_tie_ports.iter().copied())
                    .collect(),
            },
            None => TrialNodeOutput::default(),
        }
    }
}

impl dcme_congest::mc::CheckableAlgorithm for TrialNode {
    fn committed_color(&self) -> Option<u64> {
        self.adopted.map(|(trial, _)| trial.encode(self.q()))
    }
}

/// Runs Algorithm 1 on `topology` with the given proper input coloring.
///
/// Returns the coloring, the orientation of monochromatic edges, the
/// partition into parts `P_j`, the run metrics, and the derived parameters.
///
/// # Errors
///
/// * [`ColoringError::InputSizeMismatch`] if the coloring does not cover the
///   graph,
/// * [`ColoringError::ImproperInput`] if the input coloring is not proper,
/// * [`ColoringError::Params`] if `(Δ, m, d, k)` violate Theorem 1.1's
///   preconditions,
/// * [`ColoringError::DidNotTerminate`] if some node failed to adopt a color
///   within the theoretical round bound (would indicate an implementation
///   bug — the accompanying tests assert this never happens).
pub fn run(
    topology: &Topology,
    input: &Coloring,
    config: TrialConfig,
) -> Result<TrialOutcome, ColoringError> {
    let params =
        SequenceParams::derive(topology.max_degree(), input.palette(), config.d, config.k)?;
    run_with_params(topology, input, params, config.mode)
}

/// Runs Algorithm 1 with explicitly supplied [`SequenceParams`].
///
/// This is the entry point for parameterizations that do not come from
/// [`SequenceParams::derive`], most notably the tight single-round Linial
/// step of Remark 2.2 ([`SequenceParams::derive_one_shot`]).  The parameters'
/// `m` must equal the input coloring's palette.
pub fn run_with_params(
    topology: &Topology,
    input: &Coloring,
    params: SequenceParams,
    mode: ExecutionMode,
) -> Result<TrialOutcome, ColoringError> {
    if input.len() != topology.num_nodes() {
        return Err(ColoringError::InputSizeMismatch {
            nodes: topology.num_nodes(),
            colors: input.len(),
        });
    }
    if params.m != input.palette() {
        return Err(ColoringError::InvalidParameter {
            reason: format!(
                "parameters were derived for m = {} but the input palette is {}",
                params.m,
                input.palette()
            ),
        });
    }
    verify::check_proper(topology, input).map_err(ColoringError::ImproperInput)?;

    let family = Arc::new(SequenceFamily::new(params));

    let nodes: Vec<TrialNode> = (0..topology.num_nodes())
        .map(|v| TrialNode::new(Arc::clone(&family), input.color(v)))
        .collect();

    // Every node adopts within `R` batches and needs one extra round to
    // announce; add a tiny slack for the simulator's termination check.
    let round_cap = params.rounds + 2;
    let sim = Simulator::with_config(
        topology,
        SimulatorConfig {
            max_rounds: round_cap,
            mode,
        },
    );
    let outcome = sim.run(nodes);

    let mut colors = Vec::with_capacity(topology.num_nodes());
    let mut partition = Vec::with_capacity(topology.num_nodes());
    let mut out_neighbors: Vec<Vec<usize>> = vec![Vec::new(); topology.num_nodes()];

    for (v, out) in outcome.outputs.iter().enumerate() {
        let Some(color) = out.color else {
            return Err(ColoringError::DidNotTerminate { round_cap });
        };
        colors.push(color);
        partition.push(out.iteration);
        for &port in &out.out_ports {
            out_neighbors[v].push(topology.neighbor_at(v, port));
        }
    }

    // Same-iteration ties were recorded by *both* endpoints (each saw the
    // other's announcement); keep only the orientation from the smaller to
    // the larger input color, as prescribed by the paper.
    for v in 0..topology.num_nodes() {
        out_neighbors[v].retain(|&u| {
            // An out-edge to an already-colored neighbour (different
            // iteration) is always kept; a same-iteration tie is kept only by
            // the endpoint with the smaller input color.
            if partition[u] == partition[v] && colors[u] == colors[v] {
                input.color(v) < input.color(u)
            } else {
                true
            }
        });
        out_neighbors[v].sort_unstable();
        out_neighbors[v].dedup();
    }

    let coloring = Coloring::new(colors, params.encoded_colors());
    let result = PartitionedColoring {
        oriented: OrientedColoring {
            coloring,
            out_neighbors,
        },
        partition,
    };

    Ok(TrialOutcome {
        result,
        metrics: outcome.metrics,
        params,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcme_graphs::generators;
    use dcme_graphs::verify::{
        check_defective, check_outdegree_orientation, check_palette, check_partition_degree,
        check_proper,
    };

    fn ids(n: usize) -> Coloring {
        Coloring::from_ids(n)
    }

    #[test]
    fn proper_coloring_on_ring_with_k1() {
        let g = generators::ring(32);
        let input = ids(32);
        let out = run(&g, &input, TrialConfig::proper(1)).unwrap();
        check_proper(&g, out.coloring()).unwrap();
        check_palette(out.coloring(), out.params.color_bound()).unwrap();
        // Round bound: R batches + 1 announce round.
        assert!(out.metrics.rounds <= out.params.rounds + 1);
    }

    #[test]
    fn proper_coloring_on_regular_graph_for_various_k() {
        let g = generators::random_regular(120, 8, 3);
        let m = 120u64;
        let input = ids(120);
        for k in [1u64, 2, 4, 8, 16, 64] {
            let out = run(&g, &input, TrialConfig::proper(k)).unwrap();
            check_proper(&g, out.coloring()).unwrap();
            assert!(
                out.metrics.rounds <= out.params.rounds + 1,
                "k={k}: rounds {} > bound {}",
                out.metrics.rounds,
                out.params.rounds + 1
            );
            assert!(out.coloring().palette() <= out.params.color_bound());
            let _ = m;
        }
    }

    #[test]
    fn rounds_shrink_as_k_grows() {
        let g = generators::random_regular(200, 16, 5);
        let input = ids(200);
        let slow = run(&g, &input, TrialConfig::proper(1)).unwrap();
        let fast = run(&g, &input, TrialConfig::proper(64)).unwrap();
        assert!(fast.metrics.rounds < slow.metrics.rounds);
        assert!(fast.params.color_bound() > slow.params.color_bound());
    }

    #[test]
    fn defective_coloring_respects_defect_and_partition() {
        let g = generators::random_regular(150, 12, 9);
        let input = ids(150);
        let d = 3u32;
        let out = run(&g, &input, TrialConfig::defective(d, 1)).unwrap();
        // Theorem 1.1 (1): orientation with outdegree at most d.
        check_outdegree_orientation(&g, &out.result.oriented, d as usize).unwrap();
        // Theorem 1.1 (2): each part induces degree at most d within a class.
        check_partition_degree(&g, &out.result, d as usize).unwrap();
        // One-round variant (k = X) has a single part, so the coloring itself
        // is d-defective.
        let one_round = run(&g, &input, TrialConfig::defective(d, out.params.x)).unwrap();
        assert!(one_round.metrics.rounds <= 2);
        check_defective(&g, one_round.coloring(), d as usize).unwrap();
    }

    #[test]
    fn single_batch_equals_linial_one_round() {
        let g = generators::random_regular(100, 6, 1);
        let input = ids(100);
        // First derive params to learn X, then run with k = X.
        let params = SequenceParams::derive(g.max_degree(), 100, 0, 1).unwrap();
        let out = run(&g, &input, TrialConfig::proper(params.x)).unwrap();
        // One batch plus the announce round.
        assert!(out.metrics.rounds <= 2);
        check_proper(&g, out.coloring()).unwrap();
    }

    #[test]
    fn improper_input_is_rejected() {
        let g = generators::ring(4);
        let bad = Coloring::new(vec![0, 0, 1, 2], 4);
        let err = run(&g, &bad, TrialConfig::proper(1)).unwrap_err();
        assert!(matches!(err, ColoringError::ImproperInput(_)));
    }

    #[test]
    fn size_mismatch_is_rejected() {
        let g = generators::ring(4);
        let short = Coloring::new(vec![0, 1], 4);
        assert!(matches!(
            run(&g, &short, TrialConfig::proper(1)),
            Err(ColoringError::InputSizeMismatch { .. })
        ));
    }

    #[test]
    fn parallel_executor_matches_sequential() {
        let g = generators::gnp(80, 0.1, 17);
        let input = ids(80);
        let seq = run(&g, &input, TrialConfig::proper(4)).unwrap();
        let par = run(&g, &input, TrialConfig::proper(4).parallel(4)).unwrap();
        assert_eq!(seq.result, par.result);
        assert_eq!(seq.metrics.rounds, par.metrics.rounds);
    }

    #[test]
    fn message_sizes_respect_congest() {
        let g = generators::random_regular(256, 8, 2);
        let input = ids(256);
        let out = run(&g, &input, TrialConfig::proper(8)).unwrap();
        let report = dcme_congest::BandwidthReport::check(256, &out.metrics, 4);
        assert!(report.within_congest, "{report}");
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let g = generators::empty(5);
        let out = run(&g, &ids(5), TrialConfig::proper(1)).unwrap();
        check_proper(&g, out.coloring()).unwrap();

        let g = generators::complete(2);
        let out = run(&g, &ids(2), TrialConfig::proper(1)).unwrap();
        check_proper(&g, out.coloring()).unwrap();
    }

    #[test]
    fn message_size_accounting() {
        let m = TrialMessage::Active { input_color: 255 };
        assert_eq!(m.bit_size(), 1 + 8);
        let m = TrialMessage::Adopted { color: 0 };
        assert_eq!(m.bit_size(), 2);
    }
}
