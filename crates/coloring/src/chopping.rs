//! Observation 5.1: color-space chopping.
//!
//! The paper closes with the observation that, modulo a `log Δ` factor, the
//! difficult part of `(Δ+1)`-coloring is reducing a `(1+ε)Δ`-coloring to a
//! `(Δ+1)`-coloring: given any algorithm `A` that performs that last step,
//! an `m ≫ (1+ε)Δ` coloring can be chopped into `≈ m / ((1+ε)(Δ+1))` disjoint
//! color blocks of size `(1+ε)(Δ+1)` each, `A` can be run on all blocks in
//! parallel with disjoint output spaces, and the number of colors drops by a
//! `(1+ε)` factor per iteration — so `O(log_{1+ε} Δ)` iterations reduce an
//! `O(Δ²)`-coloring to `Δ+1`.
//!
//! [`reduce_by_chopping`] implements the driver for an arbitrary reducer and
//! reports the measured overhead (number of iterations and the parallel
//! round cost per iteration), which experiment E10 compares against
//! `log_{1+ε}(m / (Δ+1))`.

use dcme_congest::{ExecutionMode, Topology};
use dcme_graphs::coloring::Coloring;
use dcme_graphs::subgraph::InducedSubgraph;
use dcme_graphs::verify;

use crate::elimination;
use crate::error::ColoringError;
use crate::trial::{self, TrialConfig};

/// A reducer: given a (sub)graph and a proper coloring of it with at most
/// `(1+ε)(Δ_G+1)` colors (where `Δ_G` is the *host* maximum degree), produce
/// a proper coloring with at most `target` colors and report the rounds it
/// spent.
pub type Reducer<'a> =
    dyn Fn(&Topology, &Coloring, u64) -> Result<(Coloring, u64), ColoringError> + 'a;

/// Result of the chopping driver.
#[derive(Debug, Clone)]
pub struct ChoppingOutcome {
    /// The final `(Δ+1)`-coloring.
    pub coloring: Coloring,
    /// Number of chopping iterations (the multiplicative overhead of
    /// Observation 5.1).
    pub iterations: u64,
    /// Total rounds, where each iteration contributes the *maximum* round
    /// count over its blocks (they run in parallel on disjoint vertex sets).
    pub parallel_rounds: u64,
    /// Palette after every iteration, starting with the input palette.
    pub palette_trace: Vec<u64>,
}

/// The default reducer: the paper's own pipeline restricted to the block —
/// the `k = 1` mother algorithm to `O(Δ)` colors followed by color-class
/// elimination down to `target`.
pub fn default_reducer(
    topology: &Topology,
    input: &Coloring,
    target: u64,
) -> Result<(Coloring, u64), ColoringError> {
    if topology.num_nodes() == 0 {
        return Ok((input.clone(), 0));
    }
    if input.palette() <= target {
        return Ok((input.clone(), 0));
    }
    let trial_out = trial::run(topology, &input.compacted(), TrialConfig::proper(1))?;
    let (reduced, elim_metrics) = elimination::reduce_to_target(
        topology,
        &trial_out.coloring().compacted(),
        target.max(topology.max_degree() as u64 + 1),
        ExecutionMode::Sequential,
    )?;
    Ok((reduced, trial_out.metrics.rounds + elim_metrics.rounds))
}

/// Observation 5.1: reduces an arbitrary proper coloring to a
/// `(Δ+1)`-coloring by repeatedly chopping the color space into blocks of
/// size `⌈(1+ε)(Δ+1)⌉` and running `reducer` on every block in parallel.
pub fn reduce_by_chopping(
    topology: &Topology,
    input: &Coloring,
    epsilon: f64,
    reducer: &Reducer<'_>,
) -> Result<ChoppingOutcome, ColoringError> {
    if epsilon <= 0.0 {
        return Err(ColoringError::InvalidParameter {
            reason: format!("epsilon = {epsilon} must be positive"),
        });
    }
    if input.len() != topology.num_nodes() {
        return Err(ColoringError::InputSizeMismatch {
            nodes: topology.num_nodes(),
            colors: input.len(),
        });
    }
    verify::check_proper(topology, input).map_err(ColoringError::ImproperInput)?;

    let delta = topology.max_degree() as u64;
    let target = delta + 1;
    let block_size = (((1.0 + epsilon) * (target as f64)).ceil() as u64).max(target + 1);

    let mut current = input.clone();
    let mut iterations = 0u64;
    let mut parallel_rounds = 0u64;
    let mut palette_trace = vec![current.palette()];

    while current.palette() > target {
        let palette = current.palette();
        let mut num_blocks = palette.div_ceil(block_size);
        let mut effective_block_size = block_size;
        // When chopping would no longer shrink the palette (the tail of the
        // recursion in Observation 5.1), finish with a single block over the
        // whole remaining color space.
        if num_blocks * target >= palette {
            num_blocks = 1;
            effective_block_size = palette;
        }
        let mut new_colors: Vec<u64> = vec![0; topology.num_nodes()];
        let mut round_this_iteration = 0u64;

        for block in 0..num_blocks {
            let lo = block * effective_block_size;
            let hi = (lo + effective_block_size).min(palette);
            let members: Vec<usize> = (0..topology.num_nodes())
                .filter(|&v| current.color(v) >= lo && current.color(v) < hi)
                .collect();
            if members.is_empty() {
                continue;
            }
            let sub = InducedSubgraph::extract(topology, &members);
            let sub_input = Coloring::new(
                sub.original
                    .iter()
                    .map(|&v| current.color(v) - lo)
                    .collect(),
                hi - lo,
            );
            let (reduced, rounds) = reducer(&sub.topology, &sub_input, target)?;
            round_this_iteration = round_this_iteration.max(rounds);
            for (i, &v) in sub.original.iter().enumerate() {
                new_colors[v] = block * target + reduced.color(i);
            }
        }

        iterations += 1;
        parallel_rounds += round_this_iteration;
        current = Coloring::new(new_colors, num_blocks * target);
        verify::check_proper(topology, &current).map_err(ColoringError::PostconditionFailed)?;
        palette_trace.push(current.palette());

        if iterations > 128 {
            return Err(ColoringError::DidNotTerminate {
                round_cap: iterations,
            });
        }
        // Progress guarantee: one block left means the next iteration maps
        // straight to the target palette and the loop exits.
        if num_blocks == 1 && current.palette() > target {
            // The reducer failed to reach the target (cannot happen with the
            // default reducer); avoid spinning forever.
            return Err(ColoringError::InvalidParameter {
                reason: "reducer did not reach the target palette".into(),
            });
        }
    }

    Ok(ChoppingOutcome {
        coloring: current,
        iterations,
        parallel_rounds,
        palette_trace,
    })
}

/// The theoretical overhead `⌈log_{1+ε}(m / (Δ+1))⌉` that experiment E10
/// compares the measured iteration count against.
pub fn expected_iterations(m: u64, delta: u32, epsilon: f64) -> u64 {
    let target = (delta as f64) + 1.0;
    if (m as f64) <= target {
        return 0;
    }
    ((m as f64 / target).ln() / (1.0 + epsilon).ln()).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcme_graphs::generators;

    #[test]
    fn chopping_reaches_delta_plus_one() {
        let g = generators::random_regular(150, 8, 3);
        let input = Coloring::from_ids(150);
        let out = reduce_by_chopping(&g, &input, 1.0, &default_reducer).unwrap();
        verify::check_proper(&g, &out.coloring).unwrap();
        assert_eq!(out.coloring.palette(), g.max_degree() as u64 + 1);
        assert!(out.iterations >= 1);
        // The palette shrinks monotonically.
        assert!(out.palette_trace.windows(2).all(|w| w[1] <= w[0]));
    }

    #[test]
    fn iteration_count_is_logarithmic_in_palette() {
        let g = generators::random_regular(300, 8, 9);
        let input = Coloring::from_ids(300);
        let out = reduce_by_chopping(&g, &input, 1.0, &default_reducer).unwrap();
        let expected = expected_iterations(300, g.max_degree(), 1.0);
        // Measured iterations within a small additive band of the prediction.
        assert!(
            out.iterations <= expected + 2,
            "iterations {} vs expected {}",
            out.iterations,
            expected
        );
    }

    #[test]
    fn smaller_epsilon_means_more_iterations() {
        let g = generators::random_regular(200, 6, 5);
        let input = Coloring::from_ids(200);
        let coarse = reduce_by_chopping(&g, &input, 2.0, &default_reducer).unwrap();
        let fine = reduce_by_chopping(&g, &input, 0.25, &default_reducer).unwrap();
        assert!(fine.iterations >= coarse.iterations);
        verify::check_proper(&g, &fine.coloring).unwrap();
    }

    #[test]
    fn rejects_nonpositive_epsilon_and_improper_input() {
        let g = generators::ring(6);
        let input = Coloring::from_ids(6);
        assert!(matches!(
            reduce_by_chopping(&g, &input, 0.0, &default_reducer),
            Err(ColoringError::InvalidParameter { .. })
        ));
        let improper = Coloring::new(vec![1, 1, 2, 3, 4, 5], 6);
        assert!(matches!(
            reduce_by_chopping(&g, &improper, 1.0, &default_reducer),
            Err(ColoringError::ImproperInput(_))
        ));
    }

    #[test]
    fn already_small_input_needs_no_iterations() {
        let g = generators::ring(8);
        let small = Coloring::new(vec![0, 1, 2, 0, 1, 2, 0, 1], 3);
        let out = reduce_by_chopping(&g, &small, 1.0, &default_reducer).unwrap();
        assert_eq!(out.iterations, 0);
        assert_eq!(out.coloring, small);
        assert_eq!(expected_iterations(3, 2, 1.0), 0);
    }
}
