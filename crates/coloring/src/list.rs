//! A deterministic CONGEST list-coloring routine used by the scheduled
//! `(Δ+1)`-coloring and by Theorem 1.3's per-class coloring step.
//!
//! Every node has a list of allowed colors (in our uses: `[Δ+1]` minus the
//! colors of already-finalised neighbours) and a priority that is distinct
//! from all its neighbours' priorities (in our uses: the node's input color
//! from a proper coloring).  Per round every active node proposes the
//! smallest list color not blocked by a finalised neighbour and keeps it
//! unless a *higher-priority* (smaller value) active neighbour proposed the
//! same color.  At least every local priority minimum succeeds per round, so
//! the routine always terminates; with the low-outdegree schedules of the
//! paper the classes it is applied to are small and it converges quickly.
//!
//! This replaces the 2-round "Linial for lists" step of \[MT20\] — the paper
//! under reproduction only *uses* that step as a black box; the substitution
//! (documented in DESIGN.md) preserves the schedule structure and
//! correctness, at the cost of a weaker worst-case round bound for the inner
//! step.

use dcme_algebra::logstar::bits_for;
use dcme_congest::{
    ExecutionMode, Inbox, MessageSize, NodeAlgorithm, NodeContext, Outbox, RunMetrics, Simulator,
    SimulatorConfig, Topology,
};
use dcme_graphs::coloring::Coloring;
use dcme_graphs::verify;

use crate::error::ColoringError;

/// Messages of the list-coloring routine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ListMessage {
    /// "I propose color `color` and my priority is `priority`."
    Propose {
        /// proposed color
        color: u64,
        /// sender's priority (smaller wins)
        priority: u64,
    },
    /// "I have finalised color `color`."
    Finalized {
        /// the final color
        color: u64,
    },
}

impl MessageSize for ListMessage {
    fn bit_size(&self) -> u64 {
        1 + match self {
            ListMessage::Propose { color, priority } => {
                bits_for(color + 1) as u64 + bits_for(priority + 1) as u64
            }
            ListMessage::Finalized { color } => bits_for(color + 1) as u64,
        }
    }
}

impl dcme_congest::WireMessage for ListMessage {
    fn encode(&self, w: &mut dcme_congest::BitWriter) -> u8 {
        match self {
            // Two variable-width fields: the color width travels in the aux
            // framing byte so the decoder knows where to split the payload.
            ListMessage::Propose { color, priority } => {
                w.write_bits(0, 1);
                dcme_congest::wire::write_color(w, *color);
                dcme_congest::wire::write_color(w, *priority);
                dcme_congest::wire::color_width(*color) as u8
            }
            ListMessage::Finalized { color } => {
                w.write_bits(1, 1);
                dcme_congest::wire::write_color(w, *color);
                0
            }
        }
    }

    fn decode(
        r: &mut dcme_congest::BitReader<'_>,
        bits: u16,
        aux: u8,
    ) -> Result<Self, dcme_congest::WireError> {
        let tag = r.read_bits(1)?;
        let rest = bits as u32 - 1;
        if tag == 1 {
            let color = dcme_congest::wire::read_color(r, rest)?;
            Ok(ListMessage::Finalized { color })
        } else {
            let color_bits = aux as u32;
            if color_bits == 0 || color_bits >= rest {
                return Err(dcme_congest::WireError::BadLength {
                    len: color_bits as usize,
                    limit: rest.saturating_sub(1) as usize,
                });
            }
            let color = dcme_congest::wire::read_color(r, color_bits)?;
            let priority = dcme_congest::wire::read_color(r, rest - color_bits)?;
            Ok(ListMessage::Propose { color, priority })
        }
    }
}

struct ListNode {
    list: Vec<u64>,
    priority: u64,
    /// Colors taken by finalised neighbours.
    blocked: std::collections::HashSet<u64>,
    proposal: Option<u64>,
    finalized: Option<u64>,
    announced: bool,
    halted: bool,
}

impl ListNode {
    fn available(&self) -> Option<u64> {
        self.list
            .iter()
            .copied()
            .find(|c| !self.blocked.contains(c))
    }
}

impl NodeAlgorithm for ListNode {
    type Message = ListMessage;
    type Output = Option<u64>;

    fn init(&mut self, _ctx: &NodeContext) {
        self.list.sort_unstable();
        self.list.dedup();
    }

    fn send(&mut self, _ctx: &NodeContext) -> Outbox<ListMessage> {
        if let Some(color) = self.finalized {
            if !self.announced {
                self.announced = true;
                return Outbox::Broadcast(ListMessage::Finalized { color });
            }
            return Outbox::Silent;
        }
        match self.available() {
            Some(color) => {
                self.proposal = Some(color);
                Outbox::Broadcast(ListMessage::Propose {
                    color,
                    priority: self.priority,
                })
            }
            None => {
                // The list is exhausted: this node can never finish.  The
                // driver detects the missing output and reports an error.
                self.proposal = None;
                Outbox::Silent
            }
        }
    }

    fn receive(&mut self, _ctx: &NodeContext, inbox: &Inbox<'_, ListMessage>) {
        if self.announced {
            self.halted = true;
            return;
        }
        let mut beaten = false;
        for (_, msg) in inbox.iter() {
            match msg {
                ListMessage::Finalized { color } => {
                    self.blocked.insert(*color);
                    if self.proposal == Some(*color) {
                        beaten = true;
                    }
                }
                ListMessage::Propose { color, priority } => {
                    if self.proposal == Some(*color) && *priority < self.priority {
                        beaten = true;
                    }
                }
            }
        }
        if !beaten {
            if let Some(p) = self.proposal {
                self.finalized = Some(p);
            }
        }
        // If the list is exhausted there is nothing left to do.
        if self.finalized.is_none() && self.available().is_none() {
            self.halted = true;
        }
    }

    fn is_halted(&self) -> bool {
        self.halted
    }

    fn output(&self) -> Option<u64> {
        self.finalized
    }
}

/// The result of a list-coloring run.
#[derive(Debug, Clone)]
pub struct ListColoringOutcome {
    /// The computed coloring (palette = 1 + max list entry).
    pub coloring: Coloring,
    /// Round/message accounting.
    pub metrics: RunMetrics,
}

/// Runs the priority list-coloring routine.
///
/// * `lists[v]` — allowed colors of node `v` (must be non-empty),
/// * `priorities[v]` — tie-break priority; adjacent nodes must have distinct
///   priorities (any proper coloring or the unique identifiers work).
///
/// # Errors
///
/// Fails if lists and priorities do not match the graph, if adjacent nodes
/// share a priority, or if some node exhausted its list without finding a
/// color (cannot happen when `|list(v)| > deg(v)` as in the (deg+1)-list
/// coloring uses of the paper).
pub fn list_coloring(
    topology: &Topology,
    lists: &[Vec<u64>],
    priorities: &[u64],
    mode: ExecutionMode,
) -> Result<ListColoringOutcome, ColoringError> {
    let n = topology.num_nodes();
    if lists.len() != n || priorities.len() != n {
        return Err(ColoringError::InputSizeMismatch {
            nodes: n,
            colors: lists.len().min(priorities.len()),
        });
    }
    for (u, v) in topology.edges() {
        if priorities[u] == priorities[v] {
            return Err(ColoringError::InvalidParameter {
                reason: format!(
                    "adjacent nodes {u} and {v} share priority {}",
                    priorities[u]
                ),
            });
        }
    }
    for (v, list) in lists.iter().enumerate() {
        if list.is_empty() {
            return Err(ColoringError::InvalidParameter {
                reason: format!("node {v} has an empty color list"),
            });
        }
    }

    let nodes: Vec<ListNode> = (0..n)
        .map(|v| ListNode {
            list: lists[v].clone(),
            priority: priorities[v],
            blocked: std::collections::HashSet::new(),
            proposal: None,
            finalized: None,
            announced: false,
            halted: false,
        })
        .collect();

    // Worst case the priority chain forces one finalisation per two rounds.
    let round_cap = 2 * (n as u64) + 4;
    let sim = Simulator::with_config(
        topology,
        SimulatorConfig {
            max_rounds: round_cap,
            mode,
        },
    );
    let outcome = sim.run(nodes);

    let palette = lists
        .iter()
        .flat_map(|l| l.iter().copied())
        .max()
        .unwrap_or(0)
        + 1;
    let mut colors = Vec::with_capacity(n);
    for (v, c) in outcome.outputs.iter().enumerate() {
        match c {
            Some(c) => colors.push(*c),
            None => {
                return Err(ColoringError::InvalidParameter {
                    reason: format!("node {v} exhausted its color list"),
                })
            }
        }
    }
    let coloring = Coloring::new(colors, palette);
    verify::check_list_coloring(topology, &coloring, lists)
        .map_err(ColoringError::PostconditionFailed)?;
    Ok(ListColoringOutcome {
        coloring,
        metrics: outcome.metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcme_graphs::generators;

    #[test]
    fn deg_plus_one_lists_always_succeed() {
        let g = generators::random_regular(100, 6, 2);
        let lists: Vec<Vec<u64>> = (0..100)
            .map(|v| (0..=g.degree(v) as u64).collect())
            .collect();
        let priorities: Vec<u64> = (0..100).collect();
        let out = list_coloring(&g, &lists, &priorities, ExecutionMode::Sequential).unwrap();
        verify::check_list_coloring(&g, &out.coloring, &lists).unwrap();
        assert!(out.metrics.rounds <= 2 * 100 + 4);
    }

    #[test]
    fn respects_restricted_lists() {
        // Path 0-1-2 where the middle node may only use color 5.
        let g = generators::path(3);
        let lists = vec![vec![0, 5], vec![5], vec![5, 1]];
        let priorities = vec![2, 0, 1];
        let out = list_coloring(&g, &lists, &priorities, ExecutionMode::Sequential).unwrap();
        assert_eq!(out.coloring.color(1), 5);
        assert_ne!(out.coloring.color(0), 5);
        assert_ne!(out.coloring.color(2), 5);
    }

    #[test]
    fn rejects_adjacent_equal_priorities_and_empty_lists() {
        let g = generators::path(2);
        let lists = vec![vec![0], vec![1]];
        assert!(matches!(
            list_coloring(&g, &lists, &[3, 3], ExecutionMode::Sequential),
            Err(ColoringError::InvalidParameter { .. })
        ));
        let empty = vec![vec![0], vec![]];
        assert!(matches!(
            list_coloring(&g, &empty, &[0, 1], ExecutionMode::Sequential),
            Err(ColoringError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn exhausted_list_is_reported() {
        // Triangle where everyone may only use color 0: only the highest
        // priority node gets it.
        let g = generators::complete(3);
        let lists = vec![vec![0], vec![0], vec![0]];
        let err = list_coloring(&g, &lists, &[0, 1, 2], ExecutionMode::Sequential).unwrap_err();
        assert!(matches!(err, ColoringError::InvalidParameter { .. }));
    }

    #[test]
    fn priority_chain_worst_case_still_terminates() {
        // A path where priorities strictly decrease along the path forces
        // sequential finalisation — the slowest case for this routine.
        let n = 50;
        let g = generators::path(n);
        let lists: Vec<Vec<u64>> = (0..n).map(|_| vec![0, 1]).collect();
        let priorities: Vec<u64> = (0..n as u64).rev().collect();
        let out = list_coloring(&g, &lists, &priorities, ExecutionMode::Sequential).unwrap();
        verify::check_proper(&g, &out.coloring).unwrap();
    }

    #[test]
    fn message_sizes() {
        let m = ListMessage::Propose {
            color: 3,
            priority: 7,
        };
        assert_eq!(m.bit_size(), 1 + 2 + 3);
        let m = ListMessage::Finalized { color: 0 };
        assert_eq!(m.bit_size(), 2);
    }
}
