//! Ruling sets: Lemma 3.2 and Theorem 1.5.
//!
//! A `(2, r)`-ruling set is an independent set `S` such that every vertex has
//! a member of `S` within hop distance `r`.  Lemma 3.2 (\[KMW18\]) turns any
//! `C`-coloring into a `(2, ⌈log_B C⌉)`-ruling set in `O(B log_B C)` rounds;
//! Theorem 1.5 balances the cost of *computing* the coloring (via
//! Theorem 1.3) against the cost of *using* it, obtaining
//! `O(Δ^{2/(r+2)}) + log* n` rounds — an improvement over the previous
//! `O(Δ^{2/r}) + log* n` bound, which we also implement as the baseline
//! (same lemma, but fed with Linial's `O(Δ²)`-coloring).
//!
//! The block algorithm implemented here is the classic recursive sparsification:
//! per level the current candidate set is swept through `B` color blocks, one
//! round per block; a candidate joins the next level's candidate set iff no
//! neighbour joined earlier in the sweep.  Every level shrinks the effective
//! palette by a factor `B` and increases the domination radius by one, so
//! after `⌈log_B C⌉` levels the surviving candidates form an independent set
//! that rules the whole graph at distance `⌈log_B C⌉`.  Round accounting is
//! `B` rounds per level, exactly as in Lemma 3.2.

use dcme_congest::Topology;
use dcme_graphs::coloring::Coloring;
use dcme_graphs::verify;

use crate::error::ColoringError;
use crate::fast;
use crate::linial;

/// Result of a ruling-set computation.
#[derive(Debug, Clone)]
pub struct RulingSetOutcome {
    /// Membership vector of the ruling set.
    pub in_set: Vec<bool>,
    /// Domination radius actually guaranteed (number of sparsification levels).
    pub radius: usize,
    /// Rounds charged for the sparsification sweeps (`B` per level).
    pub rounds: u64,
    /// Rounds spent computing the coloring that seeded the sparsification
    /// (0 when the caller supplied the coloring).
    pub coloring_rounds: u64,
    /// Size of the returned set.
    pub set_size: usize,
}

impl RulingSetOutcome {
    /// Total rounds: seeding coloring plus sparsification.
    pub fn total_rounds(&self) -> u64 {
        self.coloring_rounds + self.rounds
    }
}

/// Lemma 3.2: from a proper `C`-coloring, computes a `(2, ⌈log_B C⌉)`-ruling
/// set in `O(B · log_B C)` rounds.
pub fn ruling_set_from_coloring(
    topology: &Topology,
    coloring: &Coloring,
    b: u64,
) -> Result<RulingSetOutcome, ColoringError> {
    if b < 2 {
        return Err(ColoringError::InvalidParameter {
            reason: format!("block parameter B = {b} must be at least 2"),
        });
    }
    if coloring.len() != topology.num_nodes() {
        return Err(ColoringError::InputSizeMismatch {
            nodes: topology.num_nodes(),
            colors: coloring.len(),
        });
    }
    verify::check_proper(topology, coloring).map_err(ColoringError::ImproperInput)?;

    let n = topology.num_nodes();
    let mut candidate: Vec<bool> = vec![true; n];
    // The effective color of each candidate, living in a palette that shrinks
    // by a factor B per level.
    let mut color: Vec<u64> = (0..n).map(|v| coloring.color(v)).collect();
    let mut palette = coloring.palette().max(1);
    let mut rounds = 0u64;
    let mut radius = 0usize;

    while palette > 1 {
        let block_size = palette.div_ceil(b);
        // One sweep: blocks 0..B processed sequentially, one round each.
        let mut joined: Vec<bool> = vec![false; n];
        let blocks_this_level = palette.div_ceil(block_size);
        for block in 0..blocks_this_level {
            rounds += 1;
            // A candidate in this block joins iff no neighbour has joined in
            // an earlier block of this sweep (or earlier in this very round —
            // same-block neighbours are resolved in the *next* level because
            // their within-block colors still differ).
            let lo = block * block_size;
            let hi = (lo + block_size).min(palette);
            let snapshot = joined.clone();
            for v in 0..n {
                if candidate[v] && color[v] >= lo && color[v] < hi {
                    let blocked = topology.neighbors(v).iter().any(|&u| snapshot[u]);
                    if !blocked {
                        joined[v] = true;
                    }
                }
            }
        }
        // Next level: survivors keep their within-block color.
        for v in 0..n {
            if candidate[v] && joined[v] {
                color[v] %= block_size;
            }
            candidate[v] = candidate[v] && joined[v];
        }
        palette = block_size;
        radius += 1;
        if palette <= 1 {
            break;
        }
    }

    // After the final level every surviving candidate has the same effective
    // color (palette 1); surviving neighbours were eliminated level by level,
    // except possibly same-color pairs in the very last block sweep — finish
    // with one more sequential round over the final singleton palette.
    let mut in_set = candidate;
    // Resolve any residual adjacent pairs deterministically (lowest id wins);
    // this corresponds to the final single-color sweep round.
    rounds += 1;
    for v in 0..n {
        if in_set[v] && topology.neighbors(v).iter().any(|&u| u < v && in_set[u]) {
            in_set[v] = false;
        }
    }

    let set_size = in_set.iter().filter(|&&x| x).count();
    verify::check_ruling_set(topology, &in_set, radius.max(1))
        .map_err(ColoringError::PostconditionFailed)?;

    Ok(RulingSetOutcome {
        in_set,
        radius: radius.max(1),
        rounds,
        coloring_rounds: 0,
        set_size,
    })
}

/// Theorem 1.5: a `(2, r)`-ruling set in `O(Δ^{2/(r+2)}) + log* n` rounds.
///
/// Computes the `O(Δ^{1+ε})`-coloring of Theorem 1.3 with `ε = (r-2)/(r+2)`
/// and applies Lemma 3.2 with `B ≈ C^{1/r}`.
pub fn ruling_set(topology: &Topology, r: usize) -> Result<RulingSetOutcome, ColoringError> {
    if r < 2 {
        return Err(ColoringError::InvalidParameter {
            reason: format!("Theorem 1.5 requires r >= 2, got {r}"),
        });
    }
    // Seed: Linial O(Δ²) coloring from the identifiers (log* n rounds) …
    let lin = linial::delta_squared_from_ids(topology, None)?;
    // … then the Theorem 1.3 coloring with ε = (r-2)/(r+2).
    let epsilon = (r as f64 - 2.0) / (r as f64 + 2.0);
    let fast_out = fast::fast_coloring(
        topology,
        &lin.coloring,
        epsilon,
        dcme_congest::ExecutionMode::Sequential,
    )?;
    let coloring = fast_out.coloring.compacted();
    let seed_rounds = lin.total_rounds + fast_out.total_rounds();

    let b = block_parameter(coloring.palette(), r);
    let mut out = ruling_set_from_coloring(topology, &coloring, b)?;
    out.coloring_rounds = seed_rounds;
    if out.radius > r {
        return Err(ColoringError::PostconditionFailed(
            dcme_graphs::verify::Violation::NotDominated { node: 0, radius: r },
        ));
    }
    Ok(out)
}

/// The SEW13-style baseline: the same Lemma 3.2, but seeded with Linial's
/// `O(Δ²)`-coloring only, giving `O(Δ^{2/r}) + log* n` rounds.
pub fn ruling_set_baseline(
    topology: &Topology,
    r: usize,
) -> Result<RulingSetOutcome, ColoringError> {
    if r < 1 {
        return Err(ColoringError::InvalidParameter {
            reason: "r must be at least 1".into(),
        });
    }
    let lin = linial::delta_squared_from_ids(topology, None)?;
    let coloring = lin.coloring.compacted();
    let b = block_parameter(coloring.palette(), r);
    let mut out = ruling_set_from_coloring(topology, &coloring, b)?;
    out.coloring_rounds = lin.total_rounds;
    Ok(out)
}

/// An `(α, r)`-ruling set via the power graph `G^{α-1}` (LOCAL model only, as
/// in the paper's remark after Theorem 1.5).
pub fn alpha_ruling_set(
    topology: &Topology,
    alpha: usize,
    r: usize,
) -> Result<RulingSetOutcome, ColoringError> {
    if alpha < 2 {
        return Err(ColoringError::InvalidParameter {
            reason: "alpha must be at least 2 (alpha = 2 is the ordinary case)".into(),
        });
    }
    let power = topology.power(alpha - 1);
    let lin = linial::delta_squared_from_ids(&power, None)?;
    let coloring = lin.coloring.compacted();
    let b = block_parameter(coloring.palette(), r.max(1));
    let mut out = ruling_set_from_coloring(&power, &coloring, b)?;
    out.coloring_rounds = lin.total_rounds;
    // Independence in G^{alpha-1} means pairwise distance >= alpha in G; the
    // domination radius in G is at most (alpha-1) * radius.
    out.radius *= alpha - 1;
    verify::check_ruling_set(topology, &out.in_set, out.radius)
        .map_err(ColoringError::PostconditionFailed)?;
    Ok(out)
}

/// Picks `B` such that the block sparsification of a `C`-color palette needs
/// at most `r` levels, i.e. `B ≈ C^{1/r}` (at least 2).
pub fn block_parameter(palette: u64, r: usize) -> u64 {
    let c = palette.max(2) as f64;
    let mut b = (c.powf(1.0 / r as f64).ceil() as u64).max(2);
    loop {
        // Simulate the level count including the ceil-division rounding the
        // sweep actually performs.
        let mut p = palette.max(1);
        let mut levels = 0usize;
        while p > 1 {
            p = p.div_ceil(b);
            levels += 1;
        }
        if levels <= r {
            return b;
        }
        b += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcme_graphs::generators;

    #[test]
    fn block_parameter_covers_palette() {
        for c in [2u64, 10, 100, 1000, 4096] {
            for r in 1..6usize {
                let b = block_parameter(c, r);
                assert!((b as u128).pow(r as u32) >= c as u128, "c={c} r={r} b={b}");
            }
        }
    }

    #[test]
    fn lemma_3_2_on_ring_with_id_coloring() {
        let g = generators::ring(64);
        let coloring = Coloring::from_ids(64);
        let out = ruling_set_from_coloring(&g, &coloring, 4).unwrap();
        verify::check_ruling_set(&g, &out.in_set, out.radius).unwrap();
        assert!(out.set_size >= 1);
        // radius <= ceil(log_4 64) = 3.
        assert!(out.radius <= 3);
        // rounds <= B per level (+ final sweep round).
        assert!(out.rounds <= 4 * 3 + 1);
    }

    #[test]
    fn theorem_1_5_ruling_sets_for_various_r() {
        let g = generators::random_regular(300, 12, 5);
        for r in [2usize, 3, 4] {
            let out = ruling_set(&g, r).unwrap();
            verify::check_ruling_set(&g, &out.in_set, r).unwrap();
            assert!(out.radius <= r, "r={r} radius={}", out.radius);
            assert!(out.set_size >= 1);
        }
    }

    #[test]
    fn baseline_uses_more_sparsification_rounds_for_same_radius() {
        // The baseline seeds Lemma 3.2 with an O(Δ²)-coloring, the improved
        // algorithm with an O(Δ^{1+ε})-coloring; for the same r the improved
        // algorithm's B (and hence its sweep rounds) is no larger.
        let g = generators::random_regular(400, 16, 8);
        let r = 2;
        let improved = ruling_set(&g, r).unwrap();
        let baseline = ruling_set_baseline(&g, r).unwrap();
        verify::check_ruling_set(&g, &baseline.in_set, baseline.radius).unwrap();
        assert!(improved.rounds <= baseline.rounds);
    }

    #[test]
    fn rejects_bad_parameters() {
        let g = generators::ring(8);
        let c = Coloring::from_ids(8);
        assert!(matches!(
            ruling_set_from_coloring(&g, &c, 1),
            Err(ColoringError::InvalidParameter { .. })
        ));
        assert!(matches!(
            ruling_set(&g, 1),
            Err(ColoringError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn alpha_ruling_set_spreads_members_apart() {
        let g = generators::ring(48);
        let out = alpha_ruling_set(&g, 3, 2).unwrap();
        verify::check_ruling_set(&g, &out.in_set, out.radius).unwrap();
        // Independence in G^2: members are at pairwise distance >= 3 on the ring.
        let members: Vec<usize> = (0..48).filter(|&v| out.in_set[v]).collect();
        for w in members.windows(2) {
            assert!(w[1] - w[0] >= 3);
        }
    }

    #[test]
    fn ruling_set_on_disconnected_graph() {
        let g = generators::disjoint_cliques(4, 5);
        let coloring = Coloring::from_ids(20);
        let out = ruling_set_from_coloring(&g, &coloring, 3).unwrap();
        verify::check_ruling_set(&g, &out.in_set, out.radius).unwrap();
        // Every clique needs exactly one member.
        assert_eq!(out.set_size, 4);
    }
}
