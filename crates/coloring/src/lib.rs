//! *Distributed Graph Coloring Made Easy* (Maus, SPAA 2021) — the core library.
//!
//! The paper's contribution is one extremely simple CONGEST algorithm
//! (Theorem 1.1, called the *mother algorithm* here and implemented in
//! [`trial`]): every node locally derives a sequence of color trials from its
//! input color and tries them in batches of size `k`, keeping the first trial
//! that conflicts with at most `d` neighbours.  Depending on the parameters,
//! this single algorithm yields
//!
//! * Linial's one-round color reduction and the `O(Δ²)`-coloring in
//!   `O(log* n)` rounds ([`linial`], Corollary 1.2 (1)),
//! * an `O(kΔ)`-coloring in `O(Δ/k)` rounds for any `k` ([`corollary`],
//!   Corollary 1.2 (2)–(3)),
//! * `β`-outdegree (arbdefective) colorings and `d`-defective colorings
//!   ([`corollary`], Corollary 1.2 (4)–(6)),
//! * the `(Δ+1)`-coloring pipelines built on top ([`elimination`],
//!   [`schedule`], [`pipeline`]),
//! * the faster `O(Δ^{1+ε})`-coloring of Theorem 1.3 ([`fast`]),
//! * `(2, r)`-ruling sets of Theorem 1.5 ([`ruling`]),
//! * the one-round color reduction of Lemma 4.1 and the tightness
//!   characterization of Theorem 1.6 ([`reduction`]),
//! * and the color-space chopping of Observation 5.1 ([`chopping`]).
//!
//! Every algorithm runs on the [`dcme_congest`] simulator, is deterministic,
//! and its outputs are machine-checked against the paper's guarantees by
//! [`dcme_graphs::verify`] in the test suite.
//!
//! # Quickstart
//!
//! ```
//! use dcme_graphs::generators;
//! use dcme_coloring::pipeline;
//!
//! // Color a random-regular network with Δ+1 colors.
//! let g = generators::random_regular(200, 8, 7);
//! let result = pipeline::delta_plus_one(&g).unwrap();
//! assert!(result.coloring.palette() <= g.max_degree() as u64 + 1);
//! dcme_graphs::verify::check_proper(&g, &result.coloring).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chopping;
pub mod corollary;
pub mod elimination;
pub mod error;
pub mod fast;
pub mod linial;
pub mod list;
pub mod pipeline;
pub mod reduction;
pub mod ruling;
pub mod schedule;
pub mod trial;

pub use error::ColoringError;
pub use trial::{TrialConfig, TrialOutcome};
