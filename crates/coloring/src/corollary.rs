//! The parameter presets of Corollary 1.2.
//!
//! Corollary 1.2 is "the framework to the outer world": six useful
//! instantiations of Theorem 1.1.  Each function below fixes the parameters
//! exactly as in the paper's proof of the corollary and runs the mother
//! algorithm:
//!
//! | # | function | setting | colors | rounds |
//! |---|----------|---------|--------|--------|
//! | 1 | [`linial_color_reduction`] | `d = 0`, `k = X` | `O(Δ²)` (256Δ² for m = Δ⁴) | 1 |
//! | 2 | [`kdelta_coloring`]        | `d = 0`, free `k` | `O(kΔ)` | `O(Δ/k)` |
//! | 3 | [`delta_squared_coloring`] | `d = 0`, `k ≈ Δ²/X` | `Δ²` | `O(1)` |
//! | 4 | [`outdegree_coloring`]     | `d = β`, `k = 1` | `O(Δ/β)` | `O(Δ/β)` |
//! | 5 | [`defective_one_round`]    | `d`, `k = X` | `O((Δ/d)²)` | 1 |
//! | 6 | [`defective_multi_round`]  | `d`, `k = 1`, pair coloring | `O((Δ/d)²)` | `O(Δ/d)` |
//!
//! (The measured round counts include the one extra round in which freshly
//! colored nodes announce their choice.)

use dcme_algebra::sequence::SequenceParams;
use dcme_congest::Topology;
use dcme_graphs::coloring::Coloring;

use crate::error::ColoringError;
use crate::trial::{self, TrialConfig, TrialOutcome};

/// Derives the Theorem 1.1 domain bound `X` for a proper-coloring run on this
/// graph and input palette (the value used by the `k = X` presets).
pub fn domain_bound(topology: &Topology, m: u64, d: u32) -> Result<u64, ColoringError> {
    Ok(SequenceParams::derive(topology.max_degree(), m, d, 1)?.x)
}

/// Corollary 1.2 (1): Linial's color reduction — a proper `O(Δ²)`-coloring in
/// a single batch (`k = X`, `d = 0`).
///
/// Uses the tight single-round parameterization of Remark 2.2
/// ([`SequenceParams::derive_one_shot`]), so the output palette is
/// `q² ≈ (Δ·⌈log_q m⌉)²` rather than the looser `(4fΔ)²` of the general
/// theorem — this is what lets the iterated reduction of
/// [`crate::linial`] converge to `O(Δ²)` colors.
pub fn linial_color_reduction(
    topology: &Topology,
    input: &Coloring,
) -> Result<TrialOutcome, ColoringError> {
    let params = SequenceParams::derive_one_shot(topology.max_degree(), input.palette())?;
    trial::run_with_params(
        topology,
        input,
        params,
        dcme_congest::ExecutionMode::Sequential,
    )
}

/// Corollary 1.2 (2): a proper `O(kΔ)`-coloring in `O(Δ/k)` rounds.
pub fn kdelta_coloring(
    topology: &Topology,
    input: &Coloring,
    k: u64,
) -> Result<TrialOutcome, ColoringError> {
    trial::run(topology, input, TrialConfig::proper(k))
}

/// Corollary 1.2 (3): a proper `Δ²`-coloring in `O(1)` rounds (requires an
/// input coloring with `poly Δ` colors, e.g. the output of
/// [`crate::linial::delta_squared_from_ids`]).
pub fn delta_squared_coloring(
    topology: &Topology,
    input: &Coloring,
) -> Result<TrialOutcome, ColoringError> {
    let delta = topology.max_degree() as u64;
    let x = domain_bound(topology, input.palette(), 0)?;
    // k·X ≈ Δ²: matches the paper's k = ⌈Δ/16⌉ choice when X = 16Δ (m = Δ⁴).
    let k = (delta * delta).div_ceil(x).max(1);
    trial::run(topology, input, TrialConfig::proper(k))
}

/// Corollary 1.2 (4): a `β`-outdegree coloring with `O(Δ/β)` colors in
/// `O(Δ/β)` rounds (`d = β`, `k = 1`).
///
/// The returned outcome carries the orientation (Theorem 1.1 (1)); its
/// maximum outdegree is at most `β`.
pub fn outdegree_coloring(
    topology: &Topology,
    input: &Coloring,
    beta: u32,
) -> Result<TrialOutcome, ColoringError> {
    trial::run(topology, input, TrialConfig::defective(beta, 1))
}

/// Corollary 1.2 (5): a `d`-defective coloring with `O((Δ/d)²)` colors in a
/// single batch (`k = X`).
pub fn defective_one_round(
    topology: &Topology,
    input: &Coloring,
    d: u32,
) -> Result<TrialOutcome, ColoringError> {
    let x = domain_bound(topology, input.palette(), d)?;
    trial::run(topology, input, TrialConfig::defective(d, x))
}

/// Corollary 1.2 (6): a `d`-defective coloring with `O((Δ/d)²)` colors in
/// `O(Δ/d)` rounds, obtained from the `(color, part)` pair coloring of the
/// `k = 1` run.
///
/// Returns the pair coloring together with the underlying trial outcome.
pub fn defective_multi_round(
    topology: &Topology,
    input: &Coloring,
    d: u32,
) -> Result<(Coloring, TrialOutcome), ColoringError> {
    let outcome = trial::run(topology, input, TrialConfig::defective(d, 1))?;
    let pair = outcome.result.pair_coloring();
    Ok((pair, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcme_graphs::generators;
    use dcme_graphs::verify;

    fn regular(n: usize, d: usize, seed: u64) -> (Topology, Coloring) {
        let g = generators::random_regular(n, d, seed);
        let ids = Coloring::from_ids(n);
        (g, ids)
    }

    #[test]
    fn corollary_1_linial_reduction_is_one_batch() {
        let (g, ids) = regular(128, 8, 1);
        let out = linial_color_reduction(&g, &ids).unwrap();
        verify::check_proper(&g, out.coloring()).unwrap();
        assert!(out.metrics.rounds <= 2, "one batch + announce");
        // O(Δ²)-ish palette: kX = X².
        assert_eq!(out.params.color_bound(), out.params.x * out.params.x);
    }

    #[test]
    fn corollary_2_scaling_rounds_vs_colors() {
        let (g, ids) = regular(128, 16, 2);
        let mut prev_rounds = u64::MAX;
        for k in [1u64, 4, 16, 64] {
            let out = kdelta_coloring(&g, &ids, k).unwrap();
            verify::check_proper(&g, out.coloring()).unwrap();
            assert!(out.metrics.rounds <= out.params.rounds + 1);
            assert!(out.metrics.rounds <= prev_rounds);
            prev_rounds = out.metrics.rounds;
        }
    }

    #[test]
    fn corollary_3_delta_squared_in_constant_rounds() {
        let g = generators::random_regular(200, 16, 3);
        // Use a poly-Δ input palette: the Δ⁴ regime of the corollary.
        let delta = g.max_degree() as u64;
        let m = delta.pow(4).max(200);
        let ids: Vec<u64> = (0..200u64).collect();
        let input = Coloring::from_identifiers(&ids, m);
        let out = delta_squared_coloring(&g, &input).unwrap();
        verify::check_proper(&g, out.coloring()).unwrap();
        // Colors at most ~Δ² + X (rounding of k); rounds bounded by a constant
        // that does not depend on Δ (the paper's ~16Δ/k = 256; here ≤ q/k + 1).
        assert!(out.params.color_bound() <= delta * delta + out.params.x);
        assert!(
            out.metrics.rounds <= 300,
            "rounds {} should be O(1), i.e. independent of Δ",
            out.metrics.rounds
        );
    }

    #[test]
    fn corollary_4_outdegree_coloring() {
        let (g, ids) = regular(150, 16, 4);
        let beta = 4u32;
        let out = outdegree_coloring(&g, &ids, beta).unwrap();
        verify::check_outdegree_orientation(&g, &out.result.oriented, beta as usize).unwrap();
        // Colors O(Δ/β): the bound is X = 4·Z·f with Z = Δ/(β+1).
        assert!(out.params.color_bound() <= 4 * out.params.z * out.params.f);
        assert!(out.metrics.rounds <= out.params.rounds + 1);
    }

    #[test]
    fn corollary_5_one_round_defective() {
        let (g, ids) = regular(150, 16, 5);
        let d = 4u32;
        let out = defective_one_round(&g, &ids, d).unwrap();
        verify::check_defective(&g, out.coloring(), d as usize).unwrap();
        assert!(out.metrics.rounds <= 2);
    }

    #[test]
    fn corollary_6_multi_round_defective_pair_coloring() {
        let (g, ids) = regular(150, 16, 6);
        let d = 4u32;
        let (pair, outcome) = defective_multi_round(&g, &ids, d).unwrap();
        verify::check_defective(&g, &pair, d as usize).unwrap();
        assert!(outcome.metrics.rounds <= outcome.params.rounds + 1);
    }

    #[test]
    fn domain_bound_matches_params() {
        let (g, ids) = regular(64, 8, 7);
        let x = domain_bound(&g, ids.palette(), 0).unwrap();
        let p = SequenceParams::derive(g.max_degree(), ids.palette(), 0, 1).unwrap();
        assert_eq!(x, p.x);
    }
}
