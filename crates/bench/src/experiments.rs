//! The per-claim experiment runners (E1–E12).
//!
//! Each function builds its workloads, runs the algorithm(s), verifies the
//! outputs, and returns a [`Table`] whose rows mirror the claim being
//! reproduced.  See DESIGN.md for the experiment index and EXPERIMENTS.md for
//! the recorded paper-vs-measured comparison.

use dcme_algebra::logstar::log_star;
use dcme_baselines as baselines;
use dcme_coloring::{
    chopping, corollary, fast, linial, pipeline, reduction, ruling, trial, TrialConfig,
};
use dcme_congest::{BandwidthReport, ExecutionMode, Topology};
use dcme_graphs::coloring::Coloring;
use dcme_graphs::{generators, verify};

use crate::table::Table;

/// Scale knob: `quick` keeps every workload small enough for CI / Criterion;
/// `full` uses the sizes recorded in EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small instances (seconds).
    Quick,
    /// The sizes recorded in EXPERIMENTS.md.
    Full,
}

impl Scale {
    fn pick(self, quick: usize, full: usize) -> usize {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

fn ids(n: usize) -> Coloring {
    Coloring::from_ids(n)
}

/// E1 — Theorem 1.1 / Corollary 1.2 (2): the `k` ↔ rounds/colors trade-off.
pub fn e1_tradeoff(scale: Scale) -> Table {
    let mut t = Table::new(
        "E1: O(kΔ) colors in O(Δ/k) rounds (Theorem 1.1 / Corollary 1.2(2))",
        &[
            "graph",
            "Δ",
            "k",
            "rounds",
            "bound ⌈q/k⌉+1",
            "colors used",
            "color bound kX",
        ],
    );
    let n = scale.pick(300, 2000);
    for delta in [16usize, 32] {
        let g = generators::random_regular(n, delta, 7);
        let input = ids(n);
        let mut k = 1u64;
        loop {
            let out = trial::run(&g, &input, TrialConfig::proper(k)).expect("E1 run");
            verify::check_proper(&g, out.coloring()).expect("E1 proper");
            t.push_row(vec![
                format!("regular(n={n},d={delta})"),
                g.max_degree().to_string(),
                k.to_string(),
                out.metrics.rounds.to_string(),
                (out.params.rounds + 1).to_string(),
                out.coloring().distinct_colors().to_string(),
                out.params.color_bound().to_string(),
            ]);
            if k >= out.params.x {
                break;
            }
            k *= 4;
        }
    }
    t
}

/// E2 — Corollary 1.2 (1): Linial's one-round color reduction.
pub fn e2_linial_step(scale: Scale) -> Table {
    let mut t = Table::new(
        "E2: Linial color reduction in one round (Corollary 1.2(1))",
        &["graph", "Δ", "m (input)", "rounds", "colors out", "256·Δ²"],
    );
    let n = scale.pick(400, 4000);
    for delta in [4usize, 8, 16, 32] {
        let g = generators::random_regular(n, delta, 3);
        let input = ids(n);
        let out = corollary::linial_color_reduction(&g, &input).expect("E2 run");
        verify::check_proper(&g, out.coloring()).expect("E2 proper");
        let d = g.max_degree() as u64;
        t.push_row(vec![
            format!("regular(n={n},d={delta})"),
            d.to_string(),
            input.palette().to_string(),
            out.metrics.rounds.to_string(),
            out.params.encoded_colors().to_string(),
            (256 * d * d).to_string(),
        ]);
    }
    t
}

/// E3 — Corollary 1.2 (3): Δ² colors in O(1) rounds.
pub fn e3_delta_squared(scale: Scale) -> Table {
    let mut t = Table::new(
        "E3: Δ² colors in O(1) rounds (Corollary 1.2(3))",
        &["graph", "Δ", "m (input)", "rounds", "color bound", "Δ²"],
    );
    let n = scale.pick(300, 1500);
    for delta in [8usize, 16, 32] {
        let g = generators::random_regular(n, delta, 5);
        let d = g.max_degree() as u64;
        let m = (d.pow(4)).max(n as u64);
        let input = Coloring::from_identifiers(&(0..n as u64).collect::<Vec<_>>(), m);
        let out = corollary::delta_squared_coloring(&g, &input).expect("E3 run");
        verify::check_proper(&g, out.coloring()).expect("E3 proper");
        t.push_row(vec![
            format!("regular(n={n},d={delta})"),
            d.to_string(),
            m.to_string(),
            out.metrics.rounds.to_string(),
            out.params.color_bound().to_string(),
            (d * d).to_string(),
        ]);
    }
    t
}

/// E4 — Corollary 1.2 (4): β-outdegree colorings.
pub fn e4_outdegree(scale: Scale) -> Table {
    let mut t = Table::new(
        "E4: β-outdegree O(Δ/β) coloring in O(Δ/β) rounds (Corollary 1.2(4))",
        &[
            "graph",
            "Δ",
            "β",
            "rounds",
            "max outdegree",
            "colors",
            "color bound",
        ],
    );
    let n = scale.pick(300, 2000);
    let delta = 32usize;
    let g = generators::random_regular(n, delta, 11);
    let input = ids(n);
    for beta in [1u32, 2, 4, 8, 16] {
        let out = corollary::outdegree_coloring(&g, &input, beta).expect("E4 run");
        verify::check_outdegree_orientation(&g, &out.result.oriented, beta as usize)
            .expect("E4 orientation");
        t.push_row(vec![
            format!("regular(n={n},d={delta})"),
            g.max_degree().to_string(),
            beta.to_string(),
            out.metrics.rounds.to_string(),
            out.result.oriented.max_outdegree().to_string(),
            out.coloring().distinct_colors().to_string(),
            out.params.color_bound().to_string(),
        ]);
    }
    t
}

/// E5 — Corollary 1.2 (5)/(6): d-defective colorings.
pub fn e5_defective(scale: Scale) -> Table {
    let mut t = Table::new(
        "E5: d-defective O((Δ/d)²) colorings (Corollary 1.2(5) one round, (6) multi round)",
        &[
            "graph",
            "Δ",
            "d",
            "variant",
            "rounds",
            "max defect",
            "colors",
            "(Δ/d)²",
        ],
    );
    let n = scale.pick(300, 2000);
    let delta = 32usize;
    let g = generators::random_regular(n, delta, 13);
    let input = ids(n);
    let dd = g.max_degree() as u64;
    for d in [2u32, 4, 8, 16] {
        let one = corollary::defective_one_round(&g, &input, d).expect("E5 one-round");
        verify::check_defective(&g, one.coloring(), d as usize).expect("E5 defect");
        t.push_row(vec![
            format!("regular(n={n},d={delta})"),
            dd.to_string(),
            d.to_string(),
            "one-round (5)".into(),
            one.metrics.rounds.to_string(),
            verify::max_defect(&g, one.coloring()).to_string(),
            one.coloring().distinct_colors().to_string(),
            ((dd / d as u64).pow(2)).to_string(),
        ]);
        let (pair, multi) = corollary::defective_multi_round(&g, &input, d).expect("E5 multi");
        verify::check_defective(&g, &pair, d as usize).expect("E5 defect multi");
        t.push_row(vec![
            format!("regular(n={n},d={delta})"),
            dd.to_string(),
            d.to_string(),
            "multi-round (6)".into(),
            multi.metrics.rounds.to_string(),
            verify::max_defect(&g, &pair).to_string(),
            pair.distinct_colors().to_string(),
            ((dd / d as u64).pow(2)).to_string(),
        ]);
    }
    t
}

/// E6 — the (Δ+1)-coloring pipelines vs. the baselines.
pub fn e6_delta_plus_one(scale: Scale) -> Table {
    let mut t = Table::new(
        "E6: (Δ+1)-coloring end to end — paper pipelines vs baselines",
        &["graph", "Δ", "algorithm", "rounds", "colors", "proper"],
    );
    let n = scale.pick(250, 1500);
    let workloads = vec![
        generators::random_regular(n, 8, 17),
        generators::random_regular(n, 16, 18),
        generators::gnp(n, 12.0 / n as f64, 19),
    ];
    for g in &workloads {
        let name = format!("n={} Δ={}", g.num_nodes(), g.max_degree());
        let delta = g.max_degree() as u64;

        let simple = pipeline::delta_plus_one(g).expect("E6 simple pipeline");
        t.push_row(vec![
            name.clone(),
            delta.to_string(),
            "paper: linial + k=1 trial + elimination".into(),
            simple.total_rounds().to_string(),
            simple.coloring.distinct_colors().to_string(),
            verify::check_proper(g, &simple.coloring)
                .is_ok()
                .to_string(),
        ]);

        let sched = pipeline::delta_plus_one_scheduled(g, None, ExecutionMode::Sequential)
            .expect("E6 scheduled pipeline");
        t.push_row(vec![
            name.clone(),
            delta.to_string(),
            "paper: linial + β-outdegree schedule".into(),
            sched.total_rounds().to_string(),
            sched.coloring.distinct_colors().to_string(),
            verify::check_proper(g, &sched.coloring).is_ok().to_string(),
        ]);

        let input = ids(g.num_nodes());
        let kw = baselines::kuhn_wattenhofer(g, &input).expect("E6 KW");
        t.push_row(vec![
            name.clone(),
            delta.to_string(),
            "baseline: Kuhn-Wattenhofer halving".into(),
            kw.rounds.to_string(),
            kw.coloring.distinct_colors().to_string(),
            verify::check_proper(g, &kw.coloring).is_ok().to_string(),
        ]);

        let (li, li_metrics) =
            baselines::locally_iterative_reduction(g, &input, ExecutionMode::Sequential);
        t.push_row(vec![
            name.clone(),
            delta.to_string(),
            "baseline: locally-iterative (folklore)".into(),
            li_metrics.rounds.to_string(),
            li.distinct_colors().to_string(),
            verify::check_proper(g, &li).is_ok().to_string(),
        ]);

        let luby = baselines::luby_coloring(g, 1, ExecutionMode::Sequential);
        t.push_row(vec![
            name.clone(),
            delta.to_string(),
            "baseline: randomized trials".into(),
            luby.metrics.rounds.to_string(),
            luby.coloring.distinct_colors().to_string(),
            verify::check_proper(g, &luby.coloring).is_ok().to_string(),
        ]);

        let uf = baselines::ultrafast_coloring(g, 1, ExecutionMode::Sequential);
        t.push_row(vec![
            name.clone(),
            delta.to_string(),
            "baseline: HNT ultrafast (randomized)".into(),
            uf.metrics.rounds.to_string(),
            uf.coloring.distinct_colors().to_string(),
            verify::check_proper(g, &uf.coloring).is_ok().to_string(),
        ]);

        let d1 = baselines::degree_plus_one_coloring(g, 1, ExecutionMode::Sequential);
        t.push_row(vec![
            name.clone(),
            delta.to_string(),
            "baseline: D1LC degree+1 lists (randomized)".into(),
            d1.metrics.rounds.to_string(),
            d1.coloring.distinct_colors().to_string(),
            verify::check_proper(g, &d1.coloring).is_ok().to_string(),
        ]);

        let greedy = baselines::greedy_coloring(g, None);
        t.push_row(vec![
            name,
            delta.to_string(),
            "reference: sequential greedy".into(),
            "0 (sequential)".into(),
            greedy.distinct_colors().to_string(),
            verify::check_proper(g, &greedy).is_ok().to_string(),
        ]);
    }
    t
}

/// E7 — Theorem 1.3 / Corollary 1.4: the √ trade-off vs. the linear one.
pub fn e7_fast(scale: Scale) -> Table {
    let mut t = Table::new(
        "E7: O(Δ^{1+ε}) colors in O(Δ^{1/2-ε/2}) rounds (Theorem 1.3) vs the linear trade-off",
        &[
            "graph",
            "Δ",
            "ε",
            "rounds (Thm 1.3)",
            "colors (Thm 1.3)",
            "rounds (Cor 1.2(2))",
            "colors (Cor 1.2(2))",
        ],
    );
    let n = scale.pick(300, 1200);
    for delta in [16usize, 32, 64] {
        let g = generators::random_regular(n, delta, 23);
        let d = g.max_degree() as u64;
        let m = d.pow(4).max(n as u64);
        let input = Coloring::from_identifiers(&(0..n as u64).collect::<Vec<_>>(), m);
        for eps in [0.25f64, 0.5] {
            let fast_out =
                fast::fast_coloring(&g, &input, eps, ExecutionMode::Sequential).expect("E7 fast");
            verify::check_proper(&g, &fast_out.coloring).expect("E7 proper");
            // The linear-trade-off comparator with a matching color budget
            // k ≈ Δ^ε.
            let k = (f64::from(g.max_degree()).powf(eps).round() as u64).max(1);
            let lin = trial::run(&g, &input, TrialConfig::proper(k)).expect("E7 linear");
            t.push_row(vec![
                format!("regular(n={n},d={delta})"),
                d.to_string(),
                format!("{eps}"),
                fast_out.total_rounds().to_string(),
                fast_out.coloring.distinct_colors().to_string(),
                lin.metrics.rounds.to_string(),
                lin.coloring().distinct_colors().to_string(),
            ]);
        }
    }
    t
}

/// E8 — Theorem 1.5: (2, r)-ruling sets vs. the O(Δ^{2/r}) baseline.
pub fn e8_ruling(scale: Scale) -> Table {
    let mut t = Table::new(
        "E8: (2,r)-ruling sets — Theorem 1.5 vs the O(Δ^{2/r}) baseline",
        &[
            "graph",
            "Δ",
            "r",
            "algorithm",
            "sweep rounds",
            "total rounds",
            "set size",
            "radius ok",
        ],
    );
    let n = scale.pick(300, 1200);
    for delta in [16usize, 32] {
        let g = generators::random_regular(n, delta, 29);
        for r in [2usize, 3] {
            let new = ruling::ruling_set(&g, r).expect("E8 improved");
            verify::check_ruling_set(&g, &new.in_set, r).expect("E8 radius");
            t.push_row(vec![
                format!("regular(n={n},d={delta})"),
                g.max_degree().to_string(),
                r.to_string(),
                "Theorem 1.5".into(),
                new.rounds.to_string(),
                new.total_rounds().to_string(),
                new.set_size.to_string(),
                "true".into(),
            ]);
            let base = ruling::ruling_set_baseline(&g, r).expect("E8 baseline");
            let ok = verify::check_ruling_set(&g, &base.in_set, r).is_ok();
            t.push_row(vec![
                format!("regular(n={n},d={delta})"),
                g.max_degree().to_string(),
                r.to_string(),
                "baseline (Linial + Lemma 3.2)".into(),
                base.rounds.to_string(),
                base.total_rounds().to_string(),
                base.set_size.to_string(),
                ok.to_string(),
            ]);
        }
    }
    t
}

/// E9 — Lemma 4.1 / Theorem 1.6: one-round color reduction and its tightness.
pub fn e9_one_round(scale: Scale) -> Table {
    let mut t = Table::new(
        "E9: one-round color reduction (Lemma 4.1) and tightness (Theorem 1.6)",
        &["case", "Δ", "m", "k (threshold)", "result"],
    );
    // (a) Algorithm 2 at the threshold on real graphs.
    let n = scale.pick(300, 1500);
    for delta in [8usize, 16] {
        let g = generators::random_regular(n, delta, 31);
        let d = g.max_degree();
        for k in [1u64, 2, 3, 4] {
            let m = reduction::required_input_colors(k, d);
            let base = linial::delta_squared_from_ids(&g, None)
                .expect("E9 seed")
                .coloring;
            let input = if base.palette() > m {
                dcme_coloring::elimination::reduce_to_target(
                    &g,
                    &base,
                    m,
                    ExecutionMode::Sequential,
                )
                .expect("E9 shrink")
                .0
            } else {
                base.with_palette(m)
            };
            let out = reduction::one_round_reduction(&g, &input, ExecutionMode::Sequential)
                .expect("E9 reduce");
            verify::check_proper(&g, &out.coloring).expect("E9 proper");
            t.push_row(vec![
                format!("Algorithm 2 on regular(n={n},d={delta})"),
                d.to_string(),
                m.to_string(),
                k.to_string(),
                format!(
                    "removed {} colors in {} round(s), palette {} -> {}",
                    out.removed,
                    out.metrics.rounds,
                    m,
                    out.coloring.palette()
                ),
            ]);
        }
    }
    // (b) Exhaustive tightness for tiny Δ.
    for (delta, m) in [(2u32, 4u64), (2, 5), (3, 6)] {
        let k = reduction::max_reducible(m, delta);
        let (achievable, impossible) = reduction::lower_bound(delta, m, 3_000_000);
        t.push_row(vec![
            "exhaustive 1-round search".into(),
            delta.to_string(),
            m.to_string(),
            k.to_string(),
            format!(
                "m-k = {} colors achievable: {:?}; m-k-1 = {} impossible: {:?}",
                m - k,
                achievable,
                m - k - 1,
                impossible
            ),
        ]);
    }
    t
}

/// E10 — Observation 5.1: the chopping overhead.
pub fn e10_chopping(scale: Scale) -> Table {
    let mut t = Table::new(
        "E10: color-space chopping overhead (Observation 5.1)",
        &[
            "graph",
            "Δ",
            "ε",
            "m (input)",
            "iterations",
            "expected ⌈log_{1+ε}(m/(Δ+1))⌉",
            "parallel rounds",
            "final colors",
        ],
    );
    let n = scale.pick(300, 1200);
    let g = generators::random_regular(n, 12, 37);
    let input = ids(n);
    for eps in [0.5f64, 1.0, 2.0] {
        let out = chopping::reduce_by_chopping(&g, &input, eps, &chopping::default_reducer)
            .expect("E10 chop");
        verify::check_proper(&g, &out.coloring).expect("E10 proper");
        t.push_row(vec![
            format!("regular(n={n},d=12)"),
            g.max_degree().to_string(),
            format!("{eps}"),
            input.palette().to_string(),
            out.iterations.to_string(),
            chopping::expected_iterations(input.palette(), g.max_degree(), eps).to_string(),
            out.parallel_rounds.to_string(),
            out.coloring.distinct_colors().to_string(),
        ]);
    }
    t
}

/// E11 — Linial: O(Δ²) colors in O(log* n) rounds from unique identifiers.
pub fn e11_logstar(scale: Scale) -> Table {
    let mut t = Table::new(
        "E11: O(Δ²) colors in O(log* n) rounds from IDs (Linial)",
        &[
            "graph",
            "Δ",
            "n",
            "log* n",
            "iterations",
            "total rounds",
            "final colors",
            "256·Δ²",
        ],
    );
    let sizes: Vec<usize> = match scale {
        Scale::Quick => vec![1 << 8, 1 << 10, 1 << 12],
        Scale::Full => vec![1 << 8, 1 << 12, 1 << 16, 1 << 20],
    };
    for &n in &sizes {
        for (name, g) in [
            ("ring", generators::ring(n)),
            ("regular(d=8)", generators::random_regular(n, 8, 41)),
        ] {
            let out = linial::delta_squared_from_ids(&g, None).expect("E11 run");
            verify::check_proper(&g, &out.coloring).expect("E11 proper");
            let d = g.max_degree() as u64;
            t.push_row(vec![
                name.into(),
                d.to_string(),
                n.to_string(),
                log_star(n as u64).to_string(),
                out.iterations.to_string(),
                out.total_rounds.to_string(),
                out.coloring.palette().to_string(),
                (256 * d * d).to_string(),
            ]);
        }
    }
    t
}

/// E12 — CONGEST bandwidth: maximum message size across the main algorithms.
pub fn e12_bandwidth(scale: Scale) -> Table {
    let mut t = Table::new(
        "E12: CONGEST feasibility — maximum message size vs c·log2(n)",
        &[
            "algorithm",
            "n",
            "Δ",
            "max message bits",
            "allowed (4·log2 n)",
            "within CONGEST",
        ],
    );
    let n = scale.pick(400, 4000);
    let g = generators::random_regular(n, 16, 43);
    let input = ids(n);

    let runs: Vec<(&str, dcme_congest::RunMetrics)> = vec![
        (
            "trial k=1 (Cor 1.2(2))",
            trial::run(&g, &input, TrialConfig::proper(1))
                .expect("E12")
                .metrics,
        ),
        (
            "Linial one-shot (Cor 1.2(1))",
            corollary::linial_color_reduction(&g, &input)
                .expect("E12")
                .metrics,
        ),
        (
            "(Δ+1) pipeline",
            pipeline::delta_plus_one(&g).expect("E12").metrics,
        ),
        ("one-round reduction (Lemma 4.1)", {
            let seed = linial::delta_squared_from_ids(&g, None)
                .expect("E12")
                .coloring;
            reduction::one_round_reduction(&g, &seed, ExecutionMode::Sequential)
                .expect("E12")
                .metrics
        }),
    ];
    for (name, metrics) in runs {
        let report = BandwidthReport::check(n, &metrics, 4);
        t.push_row(vec![
            name.into(),
            n.to_string(),
            g.max_degree().to_string(),
            report.max_message_bits.to_string(),
            report.allowed_bits.to_string(),
            report.within_congest.to_string(),
        ]);
    }
    t
}

/// ET — transport backends: the sharded engine under the in-process
/// staging queues vs. the wire-codec'd socket loopback, with the sequential
/// executor as the bit-for-bit reference.  The socket rows carry the new
/// transport counters (`wire_bytes_sent`, `transport_flush_nanos`), so
/// `exp_all --jsonl` records them machine-readably.
pub fn transport_backends(scale: Scale) -> Table {
    use dcme_congest::{SequentialExecutor, ShardedExecutor, Simulator, SocketLoopback};

    let mut t = Table::new(
        "ET: transport backends — in-process vs wire-codec'd socket loopback",
        &[
            "graph",
            "backend",
            "rounds",
            "messages",
            "cross-shard",
            "wire bytes",
            "flush ms",
        ],
    );
    let n = scale.pick(600, 20_000);
    let shards = 3;
    let tail = 9;
    for family in ["ring", "circulant4"] {
        let g = crate::workloads::build_graph(family, n, shards, 11).expect("ET graph");
        let mk = || crate::workloads::gossip_nodes(0..n, tail);
        let reference = Simulator::new(&g).run_with_executor(mk(), &SequentialExecutor);
        let mut runs = vec![
            ("sequential", reference.metrics.clone()),
            (
                "sharded+inproc",
                Simulator::new(&g)
                    .run_with_executor(mk(), &ShardedExecutor::new())
                    .metrics,
            ),
            (
                "sharded+socket(tcp)",
                Simulator::new(&g)
                    .run_with_executor(
                        mk(),
                        &ShardedExecutor::with_transport(SocketLoopback::tcp()),
                    )
                    .metrics,
            ),
        ];
        #[cfg(unix)]
        runs.push((
            "sharded+socket(unix)",
            Simulator::new(&g)
                .run_with_executor(
                    mk(),
                    &ShardedExecutor::with_transport(SocketLoopback::unix()),
                )
                .metrics,
        ));
        for (backend, metrics) in &runs {
            // The backends must agree on every logical counter; the wire
            // counters are what this table is about.
            assert_eq!(metrics.rounds, reference.metrics.rounds, "{backend}");
            assert_eq!(metrics.messages, reference.metrics.messages, "{backend}");
            assert_eq!(
                metrics.total_bits, reference.metrics.total_bits,
                "{backend}"
            );
            t.push_row(vec![
                format!("{family}(n={n})"),
                backend.to_string(),
                metrics.rounds.to_string(),
                metrics.messages.to_string(),
                metrics.cross_shard_messages.to_string(),
                metrics.wire_bytes_sent.to_string(),
                format!("{:.2}", metrics.transport_flush_nanos as f64 / 1e6),
            ]);
        }
    }
    t
}

/// EB — the randomized baselines across executors and transport backends:
/// for a fixed seed, the HNT ultrafast structure and the D1LC degree+1 list
/// coloring must produce identical colorings, round counts and message
/// counters on the sequential, pooled and sharded executors, under both the
/// in-process staging queues and the wire-codec'd socket loopback.  The
/// runner *asserts* the bit-for-bit agreement before reporting each row, so
/// a diverging backend fails the experiment instead of printing a lie.
pub fn eb_randomized_baselines(scale: Scale) -> Table {
    use dcme_baselines::degree_plus_one::DegreePlusOneNode;
    use dcme_baselines::ultrafast::UltrafastNode;
    use dcme_congest::{
        NodeAlgorithm, PooledExecutor, RunOutcome, SequentialExecutor, ShardedExecutor,
        ShardedTopology, Simulator, SimulatorConfig, SocketLoopback,
    };

    let mut t = Table::new(
        "EB: randomized baselines — fixed-seed bit-exactness across executors and transports",
        &[
            "graph",
            "algorithm",
            "backend",
            "rounds",
            "messages",
            "total bits",
            "colors",
            "matches seq",
        ],
    );

    /// Runs `mk()` on every backend and asserts each run is bit-identical
    /// to the sequential reference — the outputs (the coloring itself) and
    /// every logical counter; returns the per-backend metrics.
    fn backends<A, F>(
        g: &Topology,
        shards: usize,
        cap: u64,
        mk: F,
    ) -> Vec<(&'static str, dcme_congest::RunMetrics)>
    where
        A: NodeAlgorithm<Output = Option<u64>>,
        F: Fn() -> Vec<A>,
    {
        let config = SimulatorConfig {
            max_rounds: cap,
            mode: ExecutionMode::Sequential,
        };
        let sharded = ShardedTopology::from_topology(g, shards).expect("EB shardable");
        let reference: RunOutcome<Option<u64>> =
            Simulator::with_config(g, config).run_with_executor(mk(), &SequentialExecutor);
        let mut runs = vec![
            (
                "pooled(4)",
                Simulator::with_config(g, config).run_with_executor(mk(), &PooledExecutor::new(4)),
            ),
            (
                "sharded+inproc",
                Simulator::with_config(&sharded, config)
                    .run_with_executor(mk(), &ShardedExecutor::new()),
            ),
            (
                "sharded+socket(tcp)",
                Simulator::with_config(&sharded, config).run_with_executor(
                    mk(),
                    &ShardedExecutor::with_transport(SocketLoopback::tcp()),
                ),
            ),
        ];
        #[cfg(unix)]
        runs.push((
            "sharded+socket(unix)",
            Simulator::with_config(&sharded, config).run_with_executor(
                mk(),
                &ShardedExecutor::with_transport(SocketLoopback::unix()),
            ),
        ));
        let mut rows = vec![("sequential", reference.metrics.clone())];
        for (backend, run) in runs {
            assert_eq!(run.outputs, reference.outputs, "{backend} outputs");
            assert_eq!(run.metrics.rounds, reference.metrics.rounds, "{backend}");
            assert_eq!(
                run.metrics.messages, reference.metrics.messages,
                "{backend}"
            );
            assert_eq!(
                run.metrics.total_bits, reference.metrics.total_bits,
                "{backend}"
            );
            assert_eq!(
                run.metrics.max_message_bits, reference.metrics.max_message_bits,
                "{backend}"
            );
            rows.push((backend, run.metrics));
        }
        rows
    }

    let n = scale.pick(220, 1200);
    let seed = 7u64;
    let shards = 3;
    let workloads = vec![
        ("regular(d=10)", generators::random_regular(n, 10, 47)),
        ("gnp(λ=8)", generators::gnp(n, 8.0 / n as f64, 48)),
    ];
    for (gname, g) in &workloads {
        let graph = format!("{gname} n={n}");
        for alg in ["HNT ultrafast", "D1LC degree+1"] {
            let (runs, colors) = if alg == "HNT ultrafast" {
                let cap = dcme_baselines::ultrafast::round_cap(n);
                let runs = backends(g, shards, cap, || {
                    (0..n).map(|_| UltrafastNode::new(seed)).collect()
                });
                (
                    runs,
                    baselines::ultrafast_coloring(g, seed, ExecutionMode::Sequential)
                        .coloring
                        .distinct_colors(),
                )
            } else {
                let cap = dcme_baselines::degree_plus_one::round_cap(n);
                let runs = backends(g, shards, cap, || {
                    (0..n).map(|_| DegreePlusOneNode::new(seed)).collect()
                });
                (
                    runs,
                    baselines::degree_plus_one_coloring(g, seed, ExecutionMode::Sequential)
                        .coloring
                        .distinct_colors(),
                )
            };
            for (backend, metrics) in &runs {
                t.push_row(vec![
                    graph.clone(),
                    alg.into(),
                    backend.to_string(),
                    metrics.rounds.to_string(),
                    metrics.messages.to_string(),
                    metrics.total_bits.to_string(),
                    colors.to_string(),
                    "true".into(),
                ]);
            }
        }
    }
    t
}

/// EF — invariant survival under injected message faults: every algorithm
/// (the paper pipeline, both randomized baselines, and the two model-checker
/// fixtures) against every fault class, with the outcome classified as
/// `holds` or `violated: …` and the run's fault counters alongside.  Every
/// row's plan column is a replayable `FaultPlan` spec: feed it back through
/// `exp_faults --replay` (or `FaultPlan::from_spec`) to reproduce the run
/// bit for bit.
pub fn ef_fault_injection(scale: Scale) -> Table {
    use std::sync::Arc;

    use dcme_algebra::sequence::{SequenceFamily, SequenceParams};
    use dcme_baselines::degree_plus_one::{self, DegreePlusOneNode};
    use dcme_baselines::ultrafast::{self, UltrafastNode};
    use dcme_coloring::trial::TrialNode;
    use dcme_congest::faults::{check_coloring, run_faulty, FaultPlan};
    use dcme_congest::mc::fixtures::{GreedyRobust, GreedyUnprotected};
    use dcme_congest::{InProcess, NodeAlgorithm, RunMetrics, ShardedTopology};
    use dcme_graphs::coloring::Coloring;
    use dcme_graphs::generators;

    let mut t = Table::new(
        "EF: fault injection — invariant survival by algorithm × fault class",
        &[
            "algorithm",
            "faults",
            "plan",
            "verdict",
            "rounds",
            "dropped",
            "duplicated",
            "delayed",
            "retransmitted",
            "stale",
        ],
    );

    /// One faulted run, classified: `Ok` row fields on invariant survival,
    /// the violation rendered otherwise.
    fn classify<A, F>(
        g: &ShardedTopology,
        mk: F,
        plan: &FaultPlan,
        cap: u64,
        colors_of: impl Fn(&[A::Output]) -> Vec<Option<u64>>,
    ) -> (String, RunMetrics)
    where
        A: NodeAlgorithm,
        F: Fn() -> Vec<A>,
    {
        let run = run_faulty(g, mk(), plan, InProcess, cap);
        let colors = colors_of(&run.outcome.outputs);
        let verdict = match check_coloring(g, &colors, true) {
            None => "holds".to_string(),
            Some(v) => format!("violated: {v}"),
        };
        (verdict, run.outcome.metrics)
    }

    let seed = 2024;
    let classes: Vec<(&str, FaultPlan)> = vec![
        ("none", FaultPlan::none(seed)),
        ("drop", FaultPlan::none(seed).with_drop(150)),
        (
            "drop+retransmit",
            FaultPlan::none(seed).with_drop(150).with_retransmission(),
        ),
        ("duplicate", FaultPlan::none(seed).with_duplication(150)),
        ("delay", FaultPlan::none(seed).with_delay(150, 3)),
        (
            "partition+retransmit",
            FaultPlan::none(seed)
                .with_partition(0, 1, 1, 4)
                .with_retransmission(),
        ),
    ];

    let n = scale.pick(24, 96);
    let g = generators::ring(n);
    let sharded = ShardedTopology::from_topology(&g, 4).expect("EF graph");
    // The greedy fixtures run one node per shard so the fault layer sees
    // every edge of their smaller ring.
    let fn_ = scale.pick(12, 16);
    let fg = generators::ring(fn_);
    let fsharded = ShardedTopology::from_topology(&fg, fn_).expect("EF fixture graph");

    let input = Coloring::from_ids(n);
    let params = SequenceParams::derive(g.max_degree(), input.palette(), 0, 1).expect("EF params");
    let family = Arc::new(SequenceFamily::new(params));
    let trial_cap = params.rounds + 10;

    for (class, plan) in &classes {
        let rows: Vec<(&str, String, RunMetrics)> = vec![
            {
                let fam = Arc::clone(&family);
                let (v, m) = classify(
                    &sharded,
                    || {
                        (0..n)
                            .map(|v| TrialNode::new(Arc::clone(&fam), input.color(v)))
                            .collect::<Vec<_>>()
                    },
                    plan,
                    trial_cap,
                    |outs| outs.iter().map(|o| o.color).collect(),
                );
                ("trial (paper)", v, m)
            },
            {
                let (v, m) = classify(
                    &sharded,
                    || (0..n).map(|_| UltrafastNode::new(seed)).collect::<Vec<_>>(),
                    plan,
                    ultrafast::round_cap(n) + 8,
                    |outs| outs.to_vec(),
                );
                ("ultrafast (HNT)", v, m)
            },
            {
                let (v, m) = classify(
                    &sharded,
                    || {
                        (0..n)
                            .map(|_| DegreePlusOneNode::new(seed))
                            .collect::<Vec<_>>()
                    },
                    plan,
                    degree_plus_one::round_cap(n) + 8,
                    |outs| outs.to_vec(),
                );
                ("degree+1 (D1LC)", v, m)
            },
            {
                let (v, m) = classify(
                    &fsharded,
                    || vec![GreedyUnprotected::new(); fn_],
                    plan,
                    64,
                    |outs| outs.to_vec(),
                );
                ("greedy-unprotected", v, m)
            },
            {
                let (v, m) = classify(
                    &fsharded,
                    || vec![GreedyRobust::new(4); fn_],
                    plan,
                    64,
                    |outs| outs.to_vec(),
                );
                ("greedy-robust", v, m)
            },
        ];
        for (algo, verdict, m) in rows {
            t.push_row(vec![
                algo.to_string(),
                class.to_string(),
                plan.to_spec(),
                verdict,
                m.rounds.to_string(),
                m.faults_dropped.to_string(),
                m.faults_duplicated.to_string(),
                m.faults_delayed.to_string(),
                m.faults_retransmitted.to_string(),
                m.stale_overwrites.to_string(),
            ]);
        }
    }
    t
}

/// Runs every experiment at the given scale and returns the tables in order.
pub fn run_all(scale: Scale) -> Vec<Table> {
    vec![
        e1_tradeoff(scale),
        e2_linial_step(scale),
        e3_delta_squared(scale),
        e4_outdegree(scale),
        e5_defective(scale),
        e6_delta_plus_one(scale),
        e7_fast(scale),
        e8_ruling(scale),
        e9_one_round(scale),
        e10_chopping(scale),
        e11_logstar(scale),
        e12_bandwidth(scale),
        transport_backends(scale),
        eb_randomized_baselines(scale),
        ef_fault_injection(scale),
    ]
}

/// Helper shared by the experiment binaries: parse `--full` from the argv.
pub fn scale_from_args() -> Scale {
    if std::env::args().any(|a| a == "--full") {
        Scale::Full
    } else {
        Scale::Quick
    }
}

/// Helper shared by the experiment binaries: parse `--jsonl PATH` from the
/// argv.  When present, binaries append every table row as a JSON-lines
/// record to `PATH` (via [`Table::to_jsonl`] and
/// [`dcme_congest::JsonLinesWriter`]) in addition to printing markdown.
pub fn jsonl_path_from_args() -> Option<std::path::PathBuf> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--jsonl" {
            return args.next().map(std::path::PathBuf::from);
        }
    }
    None
}

/// Appends every row of `tables` to the JSON-lines file at `path` (created
/// if missing), as the experiment binaries do for `--jsonl`.
pub fn append_tables_jsonl(path: &std::path::Path, tables: &[Table]) -> std::io::Result<()> {
    let file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    let mut writer = dcme_congest::JsonLinesWriter::new(file);
    for table in tables {
        for line in table.to_jsonl().lines() {
            writer.append_raw(line)?;
        }
    }
    Ok(())
}

/// Needed by E12 and tests: a tiny smoke check that a topology is usable.
pub fn smoke(topology: &Topology) -> bool {
    topology.num_nodes() > 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_experiments_produce_rows() {
        // The cheap experiments run in a few hundred milliseconds each; the
        // expensive ones are covered by the binaries and integration tests.
        assert!(!e2_linial_step(Scale::Quick).rows.is_empty());
        assert!(!e4_outdegree(Scale::Quick).rows.is_empty());
        assert!(!e5_defective(Scale::Quick).rows.is_empty());
        assert!(!e12_bandwidth(Scale::Quick).rows.is_empty());
        let et = transport_backends(Scale::Quick);
        assert!(!et.rows.is_empty());
        // Every socket row must have crossed real wire bytes.
        for row in et.rows.iter().filter(|r| r[1].contains("socket")) {
            assert_ne!(row[5], "0", "socket backend sent no wire bytes: {row:?}");
        }
    }

    #[test]
    fn fault_injection_table_covers_the_matrix() {
        let ef = ef_fault_injection(Scale::Quick);
        // 6 fault classes × 5 algorithms.
        assert_eq!(ef.rows.len(), 6 * 5);
        // Fault-free rows and the true masking class (retransmission
        // delivers drops in their own round) must hold their invariants,
        // and the async-tolerant hardened fixture must hold everywhere.
        // Partition windows defer traffic even with retransmission — that
        // is reordering, which non-tolerant algorithms may legitimately
        // fail under; those rows are reported, not asserted.
        for row in &ef.rows {
            if row[1] == "none" || row[1] == "drop+retransmit" || row[0] == "greedy-robust" {
                assert_eq!(row[3], "holds", "row {row:?}");
            }
        }
        // The unprotected fixture exists to be broken.
        assert!(
            ef.rows
                .iter()
                .any(|r| r[0] == "greedy-unprotected" && r[3].starts_with("violated")),
            "the unprotected fixture must break under some fault class"
        );
        // Every row's plan column must round-trip through the spec parser.
        for row in &ef.rows {
            dcme_congest::FaultPlan::from_spec(&row[2]).expect("replayable plan spec");
        }
    }

    #[test]
    fn randomized_baselines_table_reports_every_backend() {
        // The runner itself asserts the fixed-seed bit-exactness; here we
        // additionally pin that every backend row made it into the table.
        let eb = eb_randomized_baselines(Scale::Quick);
        let backends = if cfg!(unix) { 5 } else { 4 };
        // 2 graphs × 2 algorithms × backends.
        assert_eq!(eb.rows.len(), 2 * 2 * backends);
        assert!(eb.rows.iter().all(|r| r[7] == "true"));
    }

    #[test]
    fn smoke_helper() {
        assert!(smoke(&generators::ring(4)));
    }
}
