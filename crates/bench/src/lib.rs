//! Experiment harness: workload definitions, per-experiment runners and table
//! formatting.
//!
//! Every theorem/claim of the paper has one experiment (E1–E12, see DESIGN.md
//! for the index).  Each runner in [`experiments`] produces a [`table::Table`]
//! whose rows are exactly what the corresponding `exp_*` binary prints and
//! what EXPERIMENTS.md records; the Criterion benches in `benches/` reuse the
//! same runners on smaller instances to track wall-clock performance of the
//! simulator + algorithms.  The transport backends get their own table
//! ([`experiments::transport_backends`], `exp_transport`), the randomized
//! baselines their fixed-seed cross-executor table
//! ([`experiments::eb_randomized_baselines`], `exp_baselines_randomized`)
//! and wall-clock bench (`baselines_randomized`,
//! `BASELINES_RANDOMIZED_SMOKE=1` for CI), the fault-injection survival
//! matrix its table and replay tool
//! ([`experiments::ef_fault_injection`], `exp_faults`, `FAULTS_SMOKE=1`
//! for CI, `--replay '<plan-spec>'` to reproduce a recorded run), and the
//! multi-process socket backend its own binary (`exp_worker`, which both
//! coordinates and serves, with a coordinator-relayed or direct
//! worker↔worker mesh data plane — see its `--help`).
//!
//! # The JSON-lines schema
//!
//! Two row shapes are emitted, both one self-contained JSON object per line:
//!
//! **Table rows** (`exp_* --jsonl PATH`, including `exp_all`): every cell of
//! every table, keyed by its column header plus a `"table"` tag.  Cells are
//! strings (rows are self-describing, not typed):
//!
//! ```json
//! {"table":"ET: transport backends ...","graph":"ring(n=600)","backend":"sharded+socket(tcp)",
//!  "rounds":"8","messages":"9600","cross-shard":"24","wire bytes":"4310","flush ms":"0.11"}
//! ```
//!
//! **RunMetrics rows** (`DCME_METRICS_JSONL=PATH` for the `engine_*`
//! benches, or any [`dcme_congest::JsonLinesWriter::append`] caller): the
//! numeric fields of one [`dcme_congest::RunMetrics`], one-to-one with the
//! struct fields, tagged with a `"label"`:
//!
//! ```json
//! {"label":"ring/n20000/sharded4","rounds":16,"messages":833568,"total_bits":12015224,
//!  "max_message_bits":15,"hit_round_cap":false,"intra_shard_messages":833540,
//!  "cross_shard_messages":28,"wire_bytes_sent":3584,"transport_flush_nanos":113917,
//!  "syscall_batches":96,"faults_dropped":0,"faults_duplicated":0,"faults_delayed":0,
//!  "faults_retransmitted":0,"stale_overwrites":0,
//!  "peak_rss_bytes":0,"relayed_data_bytes":0,
//!  "active_per_round":[20000,…],"phase_nanos":{"send":…,"deliver":…,"receive":…},
//!  "shard_phase_nanos":[{…},…]}
//! ```
//!
//! `syscall_batches` counts the kernel write batches the cross-shard socket
//! transport issued (one per successful `write(2)`; a whole round's frames
//! coalesced into one write count once).  Zero for in-memory backends, and —
//! like the two timing counters — scheduling-dependent, so exempt from the
//! executor-equivalence guarantee.
//!
//! `phase_nanos` covers only the three engine phases; the transport's frame
//! sealing/flushing time is the separate `transport_flush_nanos` counter.
//! Socket-run wall-clock totals should therefore quote
//! [`dcme_congest::RunMetrics::total_with_transport`]
//! (`phase_nanos.total() + transport_flush_nanos`), not
//! `phase_nanos.total()` alone, which under-reports socket runs.
//!
//! **Round-series rows** (`exp_trace --series PATH`, or any
//! [`dcme_congest::RoundSeries::write_jsonl`] caller): one row per round of
//! one run, tagged `"kind":"round_series"` to keep the shapes distinguishable
//! in a shared file:
//!
//! ```json
//! {"kind":"round_series","label":"circulant4/n2000/sharded4","round":3,"active":1480,
//!  "wall_nanos":52114,"messages":5920,"bits":88800,"cross_messages":12,"wire_bytes":1536}
//! ```
//!
//! Both row shapes round-trip: [`dcme_congest::RunMetrics::from_json`] and
//! [`dcme_congest::RoundRow::from_json`] parse emitted lines back (pinned by
//! field-for-field equality tests), so schema drift fails loudly instead of
//! silently corrupting analyses.
//!
//! `relayed_data_bytes` is the coordinator-side mirror of
//! `wire_bytes_sent`: the data-frame bytes the multi-process coordinator
//! forwarded between workers.  Equal to `wire_bytes_sent` in relay mode,
//! `0` in mesh mode (workers exchange data peer-to-peer) and for every
//! in-process backend.  `peak_rss_bytes` is the maximum per-process
//! high-water RSS (`VmHWM`) across the coordinator and the worker
//! processes of an `exp_worker` run — a measurement, `0` for in-process
//! executors (threads share one address space, and a process-wide value
//! would break byte-identical metric replays) and on platforms without
//! `/proc/self/status`.
//!
//! Fields are only ever **added** (`wire_bytes_sent` and
//! `transport_flush_nanos` arrived with the transport subsystem,
//! `syscall_batches` with the overlapped socket drain, the five
//! `faults_*`/`stale_overwrites` counters with the fault-injection harness
//! — see [`experiments::ef_fault_injection`] and the `exp_faults` binary —
//! `relayed_data_bytes`/`peak_rss_bytes` with the scale-out data
//! mesh, and the per-round fault counters on round-series rows with the
//! run-diff engine), so rows stay parseable across versions; consumers
//! must ignore unknown keys.
//!
//! # The committed baseline and the regression gate
//!
//! `baselines/metrics-baseline.jsonl` (repo root) is a checked-in file of
//! exactly these rows, captured from the CI-sized smoke benches
//! (`ENGINE_SCALING_SMOKE=1` / `ENGINE_SHARDING_SMOKE=1` /
//! `ENGINE_TRANSPORT_SMOKE=1` with `DCME_METRICS_JSONL` set).  The
//! [`diff`] module compares a fresh capture against it, matched by label:
//! deterministic counters (rounds, messages, bits, the intra/cross split,
//! wire bytes, fault counters, the `active_per_round` schedule) must match
//! **exactly** — they are pinned by the executor-equivalence guarantee, so
//! the committed file is machine-independent — while scheduling-dependent
//! counters (`syscall_batches`, `peak_rss_bytes`, timings) are reported
//! but never gate by default.  Each comparison yields a typed
//! [`diff::Verdict`]: `Improved` (the counter went down), `Unchanged`
//! (equal, or within the configured [`diff::Tolerance`]), or
//! `Regressed` carrying the threshold that fired.  `exp_diff
//! BASELINE CANDIDATE --check` renders the markdown report and exits
//! nonzero on any regression — the CI ratchet.  After an intentional
//! change (an algorithm or wire-format improvement shifts the
//! deterministic counters), re-capture and re-commit the baseline in the
//! same PR, with the diff report in the PR description.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod experiments;
pub mod table;
pub mod workloads;

pub use table::Table;
