//! Experiment harness: workload definitions, per-experiment runners and table
//! formatting.
//!
//! Every theorem/claim of the paper has one experiment (E1–E12, see DESIGN.md
//! for the index).  Each runner in [`experiments`] produces a [`table::Table`]
//! whose rows are exactly what the corresponding `exp_*` binary prints and
//! what EXPERIMENTS.md records; the Criterion benches in `benches/` reuse the
//! same runners on smaller instances to track wall-clock performance of the
//! simulator + algorithms.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod table;

pub use table::Table;
