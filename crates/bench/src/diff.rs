//! The run-diff engine: compares two JSONL experiment files
//! ([`dcme_congest::RunMetrics`] rows plus optional `"kind":"round_series"`
//! rows), matched by label, and renders per-counter deltas with typed
//! verdicts — the analysis half of the regression gate behind
//! `exp_diff --check`.
//!
//! # What gates and what merely reports
//!
//! The engine splits [`RunMetrics`] counters into two classes:
//!
//! * **Deterministic counters** (`rounds`, `messages`, `total_bits`,
//!   `max_message_bits`, the intra/cross split, `wire_bytes_sent`,
//!   `relayed_data_bytes`, the `faults_*` family, `stale_overwrites`,
//!   `hit_round_cap`, and the `active_per_round` schedule) are pure
//!   functions of the workload — the executor-equivalence guarantee pins
//!   them bit-for-bit across machines.  These **gate**: any increase
//!   beyond the tolerance is [`Verdict::Regressed`].
//! * **Noisy counters** (`syscall_batches`, `peak_rss_bytes`,
//!   `transport_flush_nanos`, `phase_total_nanos`) depend on the kernel,
//!   the scheduler and the host — a committed baseline cannot pin them
//!   across machines.  These are **report-only** by default;
//!   [`Tolerance::gate_noisy`] opts them into the gate with their own
//!   (looser) threshold for same-machine A/B runs.
//!
//! Round-series rows diff per round on the deterministic per-round fields
//! (`active`, `messages`, `bits`, `cross_messages`, `wire_bytes`, the
//! fault counters, `stale_overwrites`); `wall_nanos` never gates and is
//! summarized as a p50/p95/max shift instead.
//!
//! Lower is better for every gated counter, so a decrease is
//! [`Verdict::Improved`], equality (or an increase within tolerance) is
//! [`Verdict::Unchanged`], and an increase beyond tolerance is
//! [`Verdict::Regressed`] carrying the threshold that fired.  A label
//! present in the baseline but missing from the candidate is a regression
//! (lost coverage); a label only in the candidate is new coverage and
//! never gates.
//!
//! Files may contain repeated labels (appended runs): the **last** row per
//! label wins, and the last series row per `(label, round)` wins —
//! matching "rerun and re-append" workflows.

use std::collections::BTreeMap;

use dcme_congest::{RoundRow, RunMetrics};

/// What the gate permits before calling a counter increase a regression.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Allowed fractional increase on deterministic counters
    /// (`0.0` = exact, the default: these are bit-pinned by the
    /// executor-equivalence guarantee, so any growth is real).
    pub counters: f64,
    /// Also gate the machine-dependent counters (`syscall_batches`,
    /// `peak_rss_bytes`, timings)?  Off by default so a committed
    /// baseline stays robust across machines.
    pub gate_noisy: bool,
    /// Allowed fractional increase on noisy counters when
    /// [`Tolerance::gate_noisy`] is set (default 20%).
    pub noisy: f64,
}

impl Default for Tolerance {
    fn default() -> Self {
        Tolerance {
            counters: 0.0,
            gate_noisy: false,
            noisy: 0.20,
        }
    }
}

/// The typed outcome of one counter (or one run) comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Verdict {
    /// The counter decreased (lower is better for every gated counter).
    Improved,
    /// Equal, or increased within the permitted tolerance.
    Unchanged,
    /// Increased beyond the permitted tolerance.
    Regressed {
        /// The fractional increase that was permitted when the gate fired.
        allowed: f64,
    },
}

impl Verdict {
    /// Is this verdict a gate failure?
    pub fn is_regression(self) -> bool {
        matches!(self, Verdict::Regressed { .. })
    }

    fn of(before: u64, after: u64, allowed: f64) -> Verdict {
        if after == before {
            Verdict::Unchanged
        } else if after < before {
            Verdict::Improved
        } else if (after as f64) <= (before as f64) * (1.0 + allowed) {
            Verdict::Unchanged
        } else {
            Verdict::Regressed { allowed }
        }
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Verdict::Improved => write!(f, "improved"),
            Verdict::Unchanged => write!(f, "unchanged"),
            Verdict::Regressed { allowed } => {
                write!(f, "REGRESSED (allowed +{:.0}%)", allowed * 100.0)
            }
        }
    }
}

/// One counter's before/after pair with its verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterDelta {
    /// The [`RunMetrics`] field name (or `phase_total_nanos`).
    pub name: &'static str,
    /// Baseline value.
    pub before: u64,
    /// Candidate value.
    pub after: u64,
    /// Does this counter participate in the regression gate?
    pub gated: bool,
    /// The comparison outcome.
    pub verdict: Verdict,
}

/// One round whose deterministic per-round fields differ, with exactly the
/// fields that changed as `(name, before, after)` triples.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundDelta {
    /// The 0-based round number.
    pub round: u64,
    /// The changed fields (never empty, never includes `wall_nanos`).
    pub fields: Vec<(&'static str, u64, u64)>,
}

/// Nearest-rank p50/p95/max of a series' `wall_nanos` — the same rule as
/// [`dcme_congest::SeriesSummary`], recomputed here from parsed rows.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WallStats {
    /// Median round wall time, nanoseconds.
    pub p50_nanos: u64,
    /// 95th-percentile round wall time, nanoseconds.
    pub p95_nanos: u64,
    /// Slowest round wall time, nanoseconds.
    pub max_nanos: u64,
}

impl WallStats {
    fn of(rows: &BTreeMap<u64, RoundRow>) -> WallStats {
        let mut nanos: Vec<u64> = rows.values().map(|r| r.wall_nanos).collect();
        if nanos.is_empty() {
            return WallStats::default();
        }
        nanos.sort_unstable();
        let pick = |p: f64| {
            let rank = (p * nanos.len() as f64).ceil() as usize;
            nanos[rank.clamp(1, nanos.len()) - 1]
        };
        WallStats {
            p50_nanos: pick(0.50),
            p95_nanos: pick(0.95),
            max_nanos: *nanos.last().unwrap(),
        }
    }
}

/// The per-round comparison of one label's round series.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesDiff {
    /// Rounds recorded in the baseline series.
    pub rounds_before: usize,
    /// Rounds recorded in the candidate series.
    pub rounds_after: usize,
    /// Baseline wall-time percentiles (report-only, never gates).
    pub wall_before: WallStats,
    /// Candidate wall-time percentiles (report-only, never gates).
    pub wall_after: WallStats,
    /// Exactly the rounds whose deterministic fields differ.  A round
    /// present on only one side diffs against an all-zero row.  Non-empty
    /// is a gate failure.
    pub changed_rounds: Vec<RoundDelta>,
}

/// The comparison of one label present in both files.
#[derive(Debug, Clone, PartialEq)]
pub struct RunDiff {
    /// The shared run label.
    pub label: String,
    /// Every counter's before/after/verdict, in schema order.
    pub counters: Vec<CounterDelta>,
    /// First index where the `active_per_round` schedules diverge
    /// (or `min(len)` on a pure length mismatch).  `Some` gates.
    pub active_mismatch: Option<usize>,
    /// Present when both files carry series rows for this label.
    pub series: Option<SeriesDiff>,
    /// Set when exactly one side has series rows (report-only).
    pub series_note: Option<String>,
}

impl RunDiff {
    /// Did any gated comparison of this run fail?
    pub fn regressed(&self) -> bool {
        self.counters
            .iter()
            .any(|c| c.gated && c.verdict.is_regression())
            || self.active_mismatch.is_some()
            || self
                .series
                .as_ref()
                .is_some_and(|s| !s.changed_rounds.is_empty())
    }
}

/// One parsed JSONL experiment file: the last [`RunMetrics`] row per label
/// and the last series row per `(label, round)`.
#[derive(Debug, Clone, Default)]
pub struct RunFile {
    /// Metrics rows by label (keep-last).
    pub metrics: BTreeMap<String, RunMetrics>,
    /// Series rows by label, then round (keep-last).
    pub series: BTreeMap<String, BTreeMap<u64, RoundRow>>,
}

impl RunFile {
    /// Parses JSONL text, classifying each line by shape: round-series
    /// rows by their `"kind"` tag, metrics rows by their `"label"`, table
    /// rows (valid JSON, neither tag) ignored.  Malformed JSON is an
    /// error carrying the 1-based line number.
    pub fn parse(text: &str) -> Result<RunFile, String> {
        let mut out = RunFile::default();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Ok((label, row)) = RoundRow::from_json(line) {
                out.series.entry(label).or_default().insert(row.round, row);
                continue;
            }
            match RunMetrics::from_json(line) {
                Ok((label, m)) => {
                    out.metrics.insert(label, m);
                }
                Err(e) => {
                    // Table rows carry no "label" but are valid JSON; only
                    // unparseable lines are real errors.
                    if dcme_congest::JsonValue::parse(line).is_err() {
                        return Err(format!("line {}: {e}", i + 1));
                    }
                }
            }
        }
        Ok(out)
    }
}

/// The full comparison of two [`RunFile`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// Per-label comparisons, label-sorted.
    pub runs: Vec<RunDiff>,
    /// Labels only the baseline has — lost coverage, gates.
    pub only_before: Vec<String>,
    /// Labels only the candidate has — new coverage, never gates.
    pub only_after: Vec<String>,
}

impl DiffReport {
    /// Did any gated comparison fail anywhere?
    pub fn regressed(&self) -> bool {
        !self.only_before.is_empty() || self.runs.iter().any(RunDiff::regressed)
    }

    /// The whole report's verdict: [`Verdict::Regressed`] if anything
    /// gated fired, [`Verdict::Improved`] if at least one gated counter
    /// improved and nothing regressed, [`Verdict::Unchanged`] otherwise.
    pub fn verdict(&self) -> Verdict {
        if self.regressed() {
            return Verdict::Regressed { allowed: 0.0 };
        }
        let improved = self.runs.iter().any(|r| {
            r.counters
                .iter()
                .any(|c| c.gated && c.verdict == Verdict::Improved)
        });
        if improved {
            Verdict::Improved
        } else {
            Verdict::Unchanged
        }
    }

    /// Renders the report as a markdown document: one table per label
    /// listing the counters whose values changed (all-unchanged labels get
    /// a single line), the series summary shift and the exact changed
    /// rounds.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("# Run diff\n\n");
        out.push_str(&format!(
            "- runs compared: {}\n- verdict: {}\n",
            self.runs.len(),
            self.verdict(),
        ));
        if !self.only_before.is_empty() {
            out.push_str(&format!(
                "- only in baseline (lost coverage, REGRESSED): {}\n",
                self.only_before.join(", ")
            ));
        }
        if !self.only_after.is_empty() {
            out.push_str(&format!(
                "- only in candidate (new coverage): {}\n",
                self.only_after.join(", ")
            ));
        }
        for run in &self.runs {
            out.push_str(&format!("\n## {}\n\n", run.label));
            let changed: Vec<&CounterDelta> = run
                .counters
                .iter()
                .filter(|c| c.before != c.after)
                .collect();
            if changed.is_empty() {
                out.push_str("all counters unchanged\n");
            } else {
                out.push_str("| counter | gated | baseline | candidate | delta | verdict |\n");
                out.push_str("|---|---|---:|---:|---:|---|\n");
                for c in changed {
                    out.push_str(&format!(
                        "| {} | {} | {} | {} | {:+} | {} |\n",
                        c.name,
                        if c.gated { "yes" } else { "no" },
                        c.before,
                        c.after,
                        c.after as i128 - c.before as i128,
                        c.verdict,
                    ));
                }
            }
            if let Some(at) = run.active_mismatch {
                out.push_str(&format!(
                    "\nactive_per_round schedules diverge at round {at} (REGRESSED)\n"
                ));
            }
            if let Some(s) = &run.series {
                out.push_str(&format!(
                    "\nseries: {} -> {} rounds; wall p50 {} -> {} ns, p95 {} -> {} ns, \
                     max {} -> {} ns (report-only)\n",
                    s.rounds_before,
                    s.rounds_after,
                    s.wall_before.p50_nanos,
                    s.wall_after.p50_nanos,
                    s.wall_before.p95_nanos,
                    s.wall_after.p95_nanos,
                    s.wall_before.max_nanos,
                    s.wall_after.max_nanos,
                ));
                if s.changed_rounds.is_empty() {
                    out.push_str("series rows unchanged\n");
                } else {
                    out.push_str(&format!(
                        "{} changed round(s) (REGRESSED):\n",
                        s.changed_rounds.len()
                    ));
                    for r in &s.changed_rounds {
                        let fields: Vec<String> = r
                            .fields
                            .iter()
                            .map(|(name, b, a)| format!("{name} {b} -> {a}"))
                            .collect();
                        out.push_str(&format!("- round {}: {}\n", r.round, fields.join(", ")));
                    }
                }
            }
            if let Some(note) = &run.series_note {
                out.push_str(&format!("\n{note}\n"));
            }
        }
        out
    }
}

/// Every counter of one metrics row, in report order, with its gate class.
fn counter_values(m: &RunMetrics) -> [(&'static str, u64, bool); 18] {
    [
        ("rounds", m.rounds, true),
        ("hit_round_cap", m.hit_round_cap as u64, true),
        ("messages", m.messages, true),
        ("total_bits", m.total_bits, true),
        ("max_message_bits", m.max_message_bits, true),
        ("intra_shard_messages", m.intra_shard_messages, true),
        ("cross_shard_messages", m.cross_shard_messages, true),
        ("wire_bytes_sent", m.wire_bytes_sent, true),
        ("relayed_data_bytes", m.relayed_data_bytes, true),
        ("faults_dropped", m.faults_dropped, true),
        ("faults_duplicated", m.faults_duplicated, true),
        ("faults_delayed", m.faults_delayed, true),
        ("faults_retransmitted", m.faults_retransmitted, true),
        ("stale_overwrites", m.stale_overwrites, true),
        ("syscall_batches", m.syscall_batches, false),
        ("peak_rss_bytes", m.peak_rss_bytes, false),
        ("transport_flush_nanos", m.transport_flush_nanos, false),
        ("phase_total_nanos", m.phase_nanos.total(), false),
    ]
}

/// The deterministic per-round fields (everything but `wall_nanos`).
fn row_fields(r: &RoundRow) -> [(&'static str, u64); 10] {
    [
        ("active", r.active),
        ("messages", r.messages),
        ("bits", r.bits),
        ("cross_messages", r.cross_messages),
        ("wire_bytes", r.wire_bytes),
        ("dropped", r.dropped),
        ("duplicated", r.duplicated),
        ("delayed", r.delayed),
        ("retransmitted", r.retransmitted),
        ("stale_overwrites", r.stale_overwrites),
    ]
}

fn diff_series(before: &BTreeMap<u64, RoundRow>, after: &BTreeMap<u64, RoundRow>) -> SeriesDiff {
    let mut rounds: Vec<u64> = before.keys().chain(after.keys()).copied().collect();
    rounds.sort_unstable();
    rounds.dedup();
    let zero = RoundRow::default();
    let mut changed_rounds = Vec::new();
    for round in rounds {
        let b = before.get(&round).unwrap_or(&zero);
        let a = after.get(&round).unwrap_or(&zero);
        let fields: Vec<(&'static str, u64, u64)> = row_fields(b)
            .into_iter()
            .zip(row_fields(a))
            .filter(|((_, bv), (_, av))| bv != av)
            .map(|((name, bv), (_, av))| (name, bv, av))
            .collect();
        if !fields.is_empty() {
            changed_rounds.push(RoundDelta { round, fields });
        }
    }
    SeriesDiff {
        rounds_before: before.len(),
        rounds_after: after.len(),
        wall_before: WallStats::of(before),
        wall_after: WallStats::of(after),
        changed_rounds,
    }
}

/// Compares two parsed files label by label.
pub fn diff(before: &RunFile, after: &RunFile, tol: &Tolerance) -> DiffReport {
    let mut runs = Vec::new();
    let mut only_before = Vec::new();
    for (label, b) in &before.metrics {
        let Some(a) = after.metrics.get(label) else {
            only_before.push(label.clone());
            continue;
        };
        let counters = counter_values(b)
            .into_iter()
            .zip(counter_values(a))
            .map(|((name, bv, deterministic), (_, av, _))| {
                let gated = deterministic || tol.gate_noisy;
                let allowed = if deterministic {
                    tol.counters
                } else {
                    tol.noisy
                };
                CounterDelta {
                    name,
                    before: bv,
                    after: av,
                    gated,
                    verdict: if gated {
                        Verdict::of(bv, av, allowed)
                    } else {
                        // Report-only counters still get a readable verdict
                        // against the noisy threshold; it never gates.
                        Verdict::of(bv, av, tol.noisy)
                    },
                }
            })
            .collect();
        let active_mismatch = if b.active_per_round == a.active_per_round {
            None
        } else {
            Some(
                b.active_per_round
                    .iter()
                    .zip(&a.active_per_round)
                    .position(|(x, y)| x != y)
                    .unwrap_or_else(|| b.active_per_round.len().min(a.active_per_round.len())),
            )
        };
        let (series, series_note) = match (before.series.get(label), after.series.get(label)) {
            (Some(b), Some(a)) => (Some(diff_series(b, a)), None),
            (Some(_), None) => (
                None,
                Some("series rows only in baseline (not compared)".to_string()),
            ),
            (None, Some(_)) => (
                None,
                Some("series rows only in candidate (not compared)".to_string()),
            ),
            (None, None) => (None, None),
        };
        runs.push(RunDiff {
            label: label.clone(),
            counters,
            active_mismatch,
            series,
            series_note,
        });
    }
    let only_after = after
        .metrics
        .keys()
        .filter(|l| !before.metrics.contains_key(*l))
        .cloned()
        .collect();
    DiffReport {
        runs,
        only_before,
        only_after,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_file() -> String {
        let mut m = RunMetrics {
            rounds: 8,
            messages: 40232,
            total_bits: 401408,
            max_message_bits: 11,
            intra_shard_messages: 2738,
            cross_shard_messages: 37494,
            wire_bytes_sent: 483751,
            syscall_batches: 48,
            peak_rss_bytes: 3_600_384,
            ..RunMetrics::default()
        };
        m.active_per_round = vec![2000, 1717, 1434];
        let mut text = String::new();
        text.push_str(&m.to_json("run/a"));
        text.push('\n');
        m.messages = 9600;
        m.active_per_round = vec![600, 600];
        text.push_str(&m.to_json("run/b"));
        text.push('\n');
        // A table row: valid JSON without "label" — classified and ignored.
        text.push_str("{\"table\":\"ET: transports\",\"rounds\":\"8\"}\n");
        for (round, wall) in [(0u64, 700u64), (1, 300), (2, 450)] {
            let row = RoundRow {
                round,
                active: 2000 - round * 300,
                wall_nanos: wall,
                messages: 8000,
                bits: 79812,
                cross_messages: 7458,
                wire_bytes: 96145,
                ..RoundRow::default()
            };
            text.push_str(&row.to_json("run/a"));
            text.push('\n');
        }
        text
    }

    #[test]
    fn parse_classifies_rows_and_rejects_garbage() {
        let file = RunFile::parse(&sample_file()).expect("parse");
        assert_eq!(file.metrics.len(), 2, "two labelled metrics rows");
        assert_eq!(file.series["run/a"].len(), 3, "three series rows");
        assert!(!file.series.contains_key("run/b"));
        let err = RunFile::parse("{\"label\":\"x\"}\nnot json\n").unwrap_err();
        assert!(err.contains("line 2"), "error names the line: {err}");
    }

    #[test]
    fn self_diff_is_unchanged_everywhere() {
        let file = RunFile::parse(&sample_file()).expect("parse");
        let report = diff(&file, &file, &Tolerance::default());
        assert_eq!(report.runs.len(), 2);
        assert!(!report.regressed());
        assert_eq!(report.verdict(), Verdict::Unchanged);
        for run in &report.runs {
            assert!(run.counters.iter().all(|c| c.verdict == Verdict::Unchanged));
            assert_eq!(run.active_mismatch, None);
            if let Some(s) = &run.series {
                assert!(s.changed_rounds.is_empty());
            }
        }
        assert!(report.to_markdown().contains("all counters unchanged"));
    }

    #[test]
    fn perturbed_counters_and_rows_are_reported_exactly() {
        let base = RunFile::parse(&sample_file()).expect("parse");
        let mut cand = base.clone();
        cand.metrics.get_mut("run/a").unwrap().messages += 5;
        cand.metrics.get_mut("run/b").unwrap().wire_bytes_sent -= 100;
        let row = cand.series.get_mut("run/a").unwrap().get_mut(&1).unwrap();
        row.bits = 80000;
        row.wall_nanos = 999; // never gates, never listed

        let report = diff(&base, &cand, &Tolerance::default());
        assert!(report.regressed());
        let a = &report.runs[0];
        let messages = a.counters.iter().find(|c| c.name == "messages").unwrap();
        assert_eq!(
            (messages.before, messages.after),
            (40232, 40237),
            "exact before/after"
        );
        assert!(messages.verdict.is_regression());
        let changed = &a.series.as_ref().unwrap().changed_rounds;
        assert_eq!(changed.len(), 1, "exactly the perturbed row");
        assert_eq!(changed[0].round, 1);
        assert_eq!(changed[0].fields, vec![("bits", 79812, 80000)]);

        // run/b only improved — its wire bytes dropped.
        let b = &report.runs[1];
        assert!(!b.regressed());
        let wire = b
            .counters
            .iter()
            .find(|c| c.name == "wire_bytes_sent")
            .unwrap();
        assert_eq!(wire.verdict, Verdict::Improved);

        let md = report.to_markdown();
        assert!(
            md.contains("| messages | yes | 40232 | 40237 | +5 |"),
            "{md}"
        );
        assert!(md.contains("round 1: bits 79812 -> 80000"), "{md}");
    }

    #[test]
    fn tolerance_and_noisy_gating_behave() {
        let base = RunFile::parse(&sample_file()).expect("parse");
        let mut cand = base.clone();
        {
            let m = cand.metrics.get_mut("run/a").unwrap();
            m.wire_bytes_sent += m.wire_bytes_sent / 20; // +5%
            m.peak_rss_bytes *= 2; // noisy, huge jump
        }
        // Exact gate: +5% on a deterministic counter fires.
        assert!(diff(&base, &cand, &Tolerance::default()).regressed());
        // 10% slack absorbs it; the noisy doubling still doesn't gate.
        let loose = Tolerance {
            counters: 0.10,
            ..Tolerance::default()
        };
        assert!(!diff(&base, &cand, &loose).regressed());
        // Opting noisy counters in catches the doubling.
        let strict = Tolerance {
            counters: 0.10,
            gate_noisy: true,
            noisy: 0.20,
        };
        let report = diff(&base, &cand, &strict);
        assert!(report.regressed());
        let rss = report.runs[0]
            .counters
            .iter()
            .find(|c| c.name == "peak_rss_bytes")
            .unwrap();
        assert!(rss.gated && rss.verdict.is_regression());
    }

    #[test]
    fn coverage_changes_gate_asymmetrically() {
        let base = RunFile::parse(&sample_file()).expect("parse");
        let mut shrunk = base.clone();
        shrunk.metrics.remove("run/b");
        let report = diff(&base, &shrunk, &Tolerance::default());
        assert_eq!(report.only_before, vec!["run/b".to_string()]);
        assert!(report.regressed(), "lost coverage gates");
        // The mirror direction — new labels — never gates.
        let report = diff(&shrunk, &base, &Tolerance::default());
        assert_eq!(report.only_after, vec!["run/b".to_string()]);
        assert!(!report.regressed());
    }

    #[test]
    fn active_schedule_divergence_is_located() {
        let base = RunFile::parse(&sample_file()).expect("parse");
        let mut cand = base.clone();
        cand.metrics.get_mut("run/a").unwrap().active_per_round[2] = 9;
        let report = diff(&base, &cand, &Tolerance::default());
        assert_eq!(report.runs[0].active_mismatch, Some(2));
        assert!(report.regressed());
    }
}
