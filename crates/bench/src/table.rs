//! Minimal markdown/CSV table formatting for experiment output.

use serde::{Deserialize, Serialize};

/// A simple table: a header and rows of stringified cells.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    /// Table title (printed above the table).
    pub title: String,
    /// Column names.
    pub header: Vec<String>,
    /// Row data.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given title and columns.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must have the same arity as the header).
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Renders the table as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            let padded: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("|-{}-|\n", sep.join("-|-")));
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Renders the table as [JSON lines](https://jsonlines.org): one object
    /// per row, keyed by the header columns plus a `"table"` tag, suitable
    /// for [`dcme_congest::JsonLinesWriter::append_raw`].  Cells stay
    /// strings — rows are self-describing, not typed.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for row in &self.rows {
            out.push_str("{\"table\":");
            push_json_string(&mut out, &self.title);
            for (key, cell) in self.header.iter().zip(row) {
                out.push(',');
                push_json_string(&mut out, key);
                out.push(':');
                push_json_string(&mut out, cell);
            }
            out.push_str("}\n");
        }
        out
    }
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    dcme_congest::metrics::json_escape_into(out, s);
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_and_csv_round() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into(), "22".into()]);
        t.push_row(vec!["333".into(), "4".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### demo"));
        assert!(md.lines().count() >= 5);
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("a,b"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_is_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn jsonl_rows_are_keyed_and_escaped() {
        let mut t = Table::new("E\"1\"", &["graph", "rounds"]);
        t.push_row(vec!["ring(n=3)".into(), "2".into()]);
        t.push_row(vec!["K_{4}".into(), "5".into()]);
        let jsonl = t.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"table\":\"E\\\"1\\\"\",\"graph\":\"ring(n=3)\",\"rounds\":\"2\"}"
        );
        assert!(lines[1].contains("\"graph\":\"K_{4}\""));
    }
}
