//! Experiment binary: prints the e8_ruling table (see DESIGN.md / EXPERIMENTS.md).
//!
//! Usage: `cargo run -p dcme_bench --release --bin exp_e8_ruling [-- --full]`

fn main() {
    let scale = dcme_bench::experiments::scale_from_args();
    let table = dcme_bench::experiments::e8_ruling(scale);
    println!("{}", table.to_markdown());
}
