//! Experiment binary: prints the e4_outdegree table (see DESIGN.md / EXPERIMENTS.md).
//!
//! Usage: `cargo run -p dcme_bench --release --bin exp_e4_outdegree [-- --full]`

fn main() {
    let scale = dcme_bench::experiments::scale_from_args();
    let table = dcme_bench::experiments::e4_outdegree(scale);
    println!("{}", table.to_markdown());
}
