//! Experiment binary: prints the e6_delta_plus_one table (see DESIGN.md / EXPERIMENTS.md).
//!
//! Usage: `cargo run -p dcme_bench --release --bin exp_e6_delta_plus_one [-- --full]`

fn main() {
    let scale = dcme_bench::experiments::scale_from_args();
    let table = dcme_bench::experiments::e6_delta_plus_one(scale);
    println!("{}", table.to_markdown());
}
