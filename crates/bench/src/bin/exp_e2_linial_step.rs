//! Experiment binary: prints the e2_linial_step table (see DESIGN.md / EXPERIMENTS.md).
//!
//! Usage: `cargo run -p dcme_bench --release --bin exp_e2_linial_step [-- --full]`

fn main() {
    let scale = dcme_bench::experiments::scale_from_args();
    let table = dcme_bench::experiments::e2_linial_step(scale);
    println!("{}", table.to_markdown());
}
